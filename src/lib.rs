//! Facade crate for the NBL-SAT reproduction workspace.
//!
//! `nbl-sat-repro` re-exports the public APIs of every crate in the workspace
//! so that applications (and the examples in `examples/`) can depend on a
//! single crate:
//!
//! * [`cnf`] — CNF formulas, DIMACS I/O, workload generators
//! * [`circuit`] (crate `nbl-circuit`) — gate-level netlists, Tseitin
//!   encoding, equivalence-checking miters, stuck-at ATPG, `.bench` I/O
//! * [`noise`] (crate `nbl-noise`) — carrier banks, statistics, correlators
//! * [`analog`] (crate `nbl-analog`) — analog block and netlist simulation
//! * [`logic`] (crate `nbl-logic`) — the noise-based logic algebra
//! * [`nbl_sat`] (crate `nbl-sat-core`) — the NBL-SAT transform, engines,
//!   checker, assignment extraction, SNR model, hybrid solver **and the
//!   unified solving API**
//! * [`solvers`] (crate `sat-solvers`) — DPLL / CDCL / WalkSAT / brute force
//! * [`net`] (crate `nbl-net`) — the wire protocol, the `nbl-satd` TCP
//!   server and the blocking client for out-of-process solving
//! * [`shard`] (crate `nbl-shard`) — the cube splitter and the
//!   cube-and-conquer coordinator distributing a solve over a fleet of
//!   `nbl-satd` servers
//!
//! # The unified solving API
//!
//! The recommended entry point is the request/outcome API of `nbl-sat-core`:
//! describe the job with a [`SolveRequest`](prelude::SolveRequest) (formula,
//! desired artifacts, deterministic seed, resource
//! [`Budget`](prelude::Budget)), pick a backend by name from the
//! [`BackendRegistry`](prelude::BackendRegistry) — classical solvers, the
//! NBL check/extract pipeline and the §V hybrid flow all sit behind the same
//! [`SatBackend`](prelude::SatBackend) trait — and inspect the
//! [`SolveOutcome`](prelude::SolveOutcome) (three-valued verdict including
//! `Unknown(BudgetExhausted)`, optional model / prime-implicant cube, merged
//! statistics, engine trace).
//!
//! ```
//! use nbl_sat_repro::prelude::*;
//!
//! let formula = cnf::cnf_formula![[1, 2], [-1, -2]];
//! let registry = BackendRegistry::default();
//! let outcome = registry.solve(
//!     "nbl-symbolic",
//!     &SolveRequest::new(&formula).artifacts(Artifacts::Model),
//! )?;
//! assert!(outcome.verdict.is_sat());
//! assert!(formula.evaluate(outcome.model.as_ref().unwrap()));
//! # Ok::<(), NblSatError>(())
//! ```
//!
//! For many requests at once, [`SolveBatch`](prelude::SolveBatch) fans a
//! one-shot batch out over a bounded worker pool against a shared budget, and
//! the persistent [`SolveService`](prelude::SolveService) job queue serves a
//! *stream* of requests: non-blocking submission, priorities, per-job
//! cancellation, refillable budgets, and drain-vs-abort shutdown.
//!
//! Every entry point — registry, service, wire server, fleet coordinator —
//! routes through the shared [`SolvePipeline`](prelude::SolvePipeline):
//! canonicalizing preprocessing (unit propagation, pure literals), an
//! optional verdict/model cache keyed on canonical fingerprints so
//! isomorphic resubmissions answer without dispatch, and a
//! [`MetricsRegistry`](prelude::MetricsRegistry) whose
//! [`MetricsSnapshot`](prelude::MetricsSnapshot) (queue depth, cache hit
//! rates, per-backend latency) is also served as the `METRICS` wire frame
//! by `nbl-satd`.
//!
//! The lower-level building blocks ([`SatChecker`](prelude::SatChecker),
//! [`AssignmentExtractor`](prelude::AssignmentExtractor),
//! [`HybridSolver`](prelude::HybridSolver), the [`Solver`](prelude::Solver)
//! trait) remain available for callers that need direct control.

#![deny(missing_docs)]

pub use cnf;
pub use nbl_analog as analog;
pub use nbl_circuit as circuit;
pub use nbl_logic as logic;
pub use nbl_net as net;
pub use nbl_noise as noise;
pub use nbl_sat_core as nbl_sat;
pub use nbl_shard as shard;
pub use sat_solvers as solvers;

/// Commonly used items, importable with a single `use nbl_sat_repro::prelude::*`.
pub mod prelude {
    pub use cnf::{Assignment, Clause, CnfFormula, Cube, Literal, PartialAssignment, Variable};
    pub use nbl_circuit::{
        Circuit, CircuitBuilder, GateKind, Simulator, StuckAtFault, TseitinEncoder,
    };
    pub use nbl_net::{
        ClientConfig, NblSatClient, NblSatServer, NetError, RemoteJob, RemoteOutcome,
        RemoteSession, ServerConfig, SolveFrame, WireBacklog, WireMetrics, WireStats, WireVerdict,
    };
    pub use nbl_noise::{CarrierKind, RunningStats};
    pub use nbl_sat_core::{
        AlgebraicEngine, Artifacts, AssignmentExtractor, BackendRegistry, Budget, BudgetMeter,
        EngineConfig, ExhaustedResource, HybridSolver, IncrementalBackend, JobHandle, JobPriority,
        JobStatus, MeanEstimate, MetricsRegistry, MetricsSnapshot, NblEngine, NblSatError,
        NblSatInstance, PipelineConfig, SampledEngine, SatBackend, SatChecker, ServiceBuilder,
        SessionCall, SessionHandle, SharedBudget, SnrModel, SolveBatch, SolveOutcome,
        SolvePipeline, SolveRequest, SolveService, SolveSession, SolveStats, SolveVerdict,
        SymbolicEngine, UnknownCause, Verdict, VerdictCache,
    };
    pub use nbl_shard::{
        CubeSplit, FleetOutcome, FleetStats, ShardConfig, ShardCoordinator, ShardError, SplitConfig,
    };
    pub use sat_solvers::{
        BruteForceSolver, CdclSolver, DpllSolver, Gsat, IncrementalResult, MusExtractor,
        MusOutcome, ParallelPortfolio, Portfolio, Schoening, SearchLimits, ShareHandle,
        SharedClausePool, SharingConfig, SolveResult, Solver, SolverStats, TwoSatSolver, WalkSat,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let formula = cnf::generators::section4_sat_instance();
        let instance = NblSatInstance::new(&formula).unwrap();
        let mut checker = SatChecker::new(SymbolicEngine::new());
        assert_eq!(checker.check(&instance).unwrap(), Verdict::Satisfiable);
        let mut cdcl = CdclSolver::new();
        assert!(cdcl.solve(&formula).is_sat());
    }

    #[test]
    fn unified_api_is_reachable_through_the_facade() {
        let formula = cnf::generators::section4_unsat_instance();
        let registry = BackendRegistry::default();
        let request = SolveRequest::new(&formula).budget(Budget::unlimited().with_max_checks(8));
        let outcome = registry.solve("nbl-symbolic", &request).unwrap();
        assert_eq!(outcome.verdict, SolveVerdict::Unsatisfiable);
        assert_eq!(outcome.stats.coprocessor_checks, 1);
    }
}
