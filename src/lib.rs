//! Facade crate for the NBL-SAT reproduction workspace.
//!
//! `nbl-sat-repro` re-exports the public APIs of every crate in the workspace
//! so that applications (and the examples in `examples/`) can depend on a
//! single crate:
//!
//! * [`cnf`] — CNF formulas, DIMACS I/O, workload generators
//! * [`circuit`] (crate `nbl-circuit`) — gate-level netlists, Tseitin
//!   encoding, equivalence-checking miters, stuck-at ATPG, `.bench` I/O
//! * [`noise`] (crate `nbl-noise`) — carrier banks, statistics, correlators
//! * [`analog`] (crate `nbl-analog`) — analog block and netlist simulation
//! * [`logic`] (crate `nbl-logic`) — the noise-based logic algebra
//! * [`nbl_sat`] (crate `nbl-sat-core`) — the NBL-SAT transform, engines,
//!   checker, assignment extraction, SNR model and hybrid solver
//! * [`solvers`] (crate `sat-solvers`) — DPLL / CDCL / WalkSAT / brute force
//!
//! # Example
//!
//! ```
//! use nbl_sat_repro::prelude::*;
//!
//! let formula = cnf::cnf_formula![[1, 2], [-1, -2]];
//! let instance = NblSatInstance::new(&formula)?;
//! let mut checker = SatChecker::new(SymbolicEngine::new());
//! assert_eq!(checker.check(&instance)?, Verdict::Satisfiable);
//! # Ok::<(), NblSatError>(())
//! ```

#![deny(missing_docs)]

pub use cnf;
pub use nbl_analog as analog;
pub use nbl_circuit as circuit;
pub use nbl_logic as logic;
pub use nbl_noise as noise;
pub use nbl_sat_core as nbl_sat;
pub use sat_solvers as solvers;

/// Commonly used items, importable with a single `use nbl_sat_repro::prelude::*`.
pub mod prelude {
    pub use cnf::{Assignment, Clause, CnfFormula, Cube, Literal, PartialAssignment, Variable};
    pub use nbl_circuit::{
        Circuit, CircuitBuilder, GateKind, Simulator, StuckAtFault, TseitinEncoder,
    };
    pub use nbl_noise::{CarrierKind, RunningStats};
    pub use nbl_sat_core::{
        AlgebraicEngine, AssignmentExtractor, EngineConfig, HybridSolver, MeanEstimate, NblEngine,
        NblSatError, NblSatInstance, SampledEngine, SatChecker, SnrModel, SymbolicEngine, Verdict,
    };
    pub use sat_solvers::{
        BruteForceSolver, CdclSolver, DpllSolver, Gsat, MusExtractor, Portfolio, Schoening,
        SolveResult, Solver, TwoSatSolver, WalkSat,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let formula = cnf::generators::section4_sat_instance();
        let instance = NblSatInstance::new(&formula).unwrap();
        let mut checker = SatChecker::new(SymbolicEngine::new());
        assert_eq!(checker.check(&instance).unwrap(), Verdict::Satisfiable);
        let mut cdcl = CdclSolver::new();
        assert!(cdcl.solve(&formula).is_sat());
    }
}
