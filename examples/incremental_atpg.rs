//! Incremental ATPG: one solver, one clause database, one assumption per
//! fault.
//!
//! The classic SAT-based ATPG flow (see `examples/atpg.rs`) builds and solves
//! a fresh miter CNF per fault. The incremental flow instead Tseitin-encodes
//! a single selector-instrumented miter — the good design next to one shadow
//! copy whose faulted lines carry selector muxes — pushes it into a CDCL
//! solver **once**, and decides each fault with
//! `solve_under_assumptions([fault_literal])`, so conflict clauses learned on
//! one fault (and the model found for it) carry over to every later fault.
//!
//! This doubles as a CI smoke: the process exits non-zero if the incremental
//! sweep's fault coverage disagrees with the from-scratch per-fault oracle on
//! a single fault.
//!
//! Run with:
//! ```text
//! cargo run --example incremental_atpg
//! ```

use nbl_sat_repro::circuit::{atpg_check, atpg_sweep, fault_list, fault_simulate, library};
use nbl_sat_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let adder = library::ripple_carry_adder(3);
    println!("{adder}");
    let faults = fault_list(&adder);
    println!("single stuck-at fault list: {} faults", faults.len());

    // --- Incremental sweep: encode once, assume per fault.
    let sweep = atpg_sweep(&adder, &faults)?;
    println!(
        "shared instrumented CNF: {} variables, {} clauses for {} checks",
        sweep.formula().num_vars(),
        sweep.formula().num_clauses(),
        sweep.num_faults()
    );
    let limits = SearchLimits::unlimited();
    let mut solver = CdclSolver::new();
    solver.push(sweep.formula());
    let mut testable = Vec::new();
    let mut patterns: Vec<Vec<bool>> = Vec::new();
    for (index, &fault) in faults.iter().enumerate() {
        match solver.solve_under_assumptions(&[sweep.fault_literal(index)], &limits) {
            IncrementalResult::Satisfiable(model) => {
                testable.push(true);
                patterns.push(sweep.test_pattern(&model));
            }
            IncrementalResult::Unsatisfiable(_) => {
                testable.push(false);
                println!("  untestable: {}", fault.describe(&adder));
            }
            IncrementalResult::Unknown => unreachable!("unlimited CDCL is complete"),
        }
    }
    let stats = solver.stats();
    println!(
        "incremental sweep: {} testable / {} faults on ONE solver \
         ({} conflicts, {} learned clauses total)",
        testable.iter().filter(|&&t| t).count(),
        faults.len(),
        stats.conflicts,
        stats.learned_clauses
    );

    // --- Oracle: the from-scratch flow, one fresh CNF + solver per fault.
    let mut mismatches = 0usize;
    for (index, &fault) in faults.iter().enumerate() {
        let check = atpg_check(&adder, fault)?;
        let mut oracle = CdclSolver::new();
        let expected = oracle.solve(check.formula()).is_sat();
        if expected != testable[index] {
            eprintln!(
                "COVERAGE MISMATCH on {}: incremental={} oracle={}",
                fault.describe(&adder),
                testable[index],
                expected
            );
            mismatches += 1;
        }
    }
    if mismatches > 0 {
        eprintln!("{mismatches} coverage mismatches — incremental ATPG is wrong");
        std::process::exit(1);
    }
    println!("from-scratch oracle agrees on all {} faults", faults.len());

    // --- The generated patterns really detect the testable faults.
    let report = fault_simulate(&adder, &faults, &patterns)?;
    println!("replaying the incremental patterns: {report}");
    let testable_count = testable.iter().filter(|&&t| t).count();
    if report.detected.len() != testable_count {
        eprintln!(
            "pattern replay detected {} faults but {} are testable",
            report.detected.len(),
            testable_count
        );
        std::process::exit(1);
    }
    Ok(())
}
