//! Combinational equivalence checking — one of the EDA applications the
//! paper's introduction motivates SAT with.
//!
//! Two circuits are equivalent iff their *miter* (XOR of corresponding
//! outputs, ORed together and asserted true) is unsatisfiable. This example
//! checks a 1-bit ripple-carry adder against (a) an identical copy and (b) a
//! copy with an injected bug, using the NBL-SAT single-operation check for the
//! small miters and a CDCL baseline for a larger one.
//!
//! Run with:
//! ```text
//! cargo run --example equivalence_checking
//! ```

use nbl_sat_repro::prelude::*;

fn nbl_verdict(formula: &cnf::CnfFormula) -> Result<Verdict, NblSatError> {
    let instance = NblSatInstance::new(formula)?;
    let mut checker = SatChecker::new(SymbolicEngine::new());
    checker.check(&instance)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // (a) Golden vs. identical copy: the miter must be UNSAT (equivalent).
    let equivalent = cnf::generators::adder_equivalence_miter(1);
    println!(
        "1-bit adder vs itself: {} variables, {} clauses",
        equivalent.num_vars(),
        equivalent.num_clauses()
    );
    let verdict = nbl_verdict(&equivalent)?;
    println!("  NBL-SAT verdict: {verdict}  (UNSAT = circuits are equivalent)");
    assert_eq!(verdict, Verdict::Unsatisfiable);

    // (b) Golden vs. buggy copy (sum bit 0 replaced by OR): the miter is SAT
    //     and any model is a counterexample input exposing the bug.
    let buggy = cnf::generators::buggy_adder_miter(1, 0);
    let verdict = nbl_verdict(&buggy)?;
    println!("golden vs buggy adder: NBL-SAT verdict: {verdict}");
    assert_eq!(verdict, Verdict::Satisfiable);

    let instance = NblSatInstance::new(&buggy)?;
    let mut extractor = AssignmentExtractor::new(SymbolicEngine::new());
    let outcome = extractor.extract(&instance)?;
    let counterexample = outcome.assignment.expect("miter is satisfiable");
    println!(
        "  counterexample inputs: a0={} b0={} (found with {} NBL checks)",
        counterexample.value(Variable::new(0)) as u8,
        counterexample.value(Variable::new(1)) as u8,
        outcome.checks_used
    );
    assert!(buggy.evaluate(&counterexample));

    // (c) A wider miter is out of reach for the exponentially scaling NBL
    //     software engines but routine for CDCL — the comparison the paper's
    //     "previous work" section frames.
    let wide = cnf::generators::adder_equivalence_miter(8);
    let mut cdcl = CdclSolver::new();
    let result = cdcl.solve(&wide);
    println!(
        "8-bit adder equivalence via CDCL: {} ({} vars, {} clauses, {})",
        if result.is_unsat() {
            "equivalent"
        } else {
            "NOT equivalent"
        },
        wide.num_vars(),
        wide.num_clauses(),
        cdcl.stats()
    );
    assert!(result.is_unsat());
    Ok(())
}
