//! The hybrid CPU + NBL-coprocessor flow of §V, driven through the unified
//! solving API.
//!
//! The CPU runs a complete search; before every decision it asks the NBL
//! coprocessor for the mean of the reduced S_N with each candidate binding
//! (that mean is proportional to the number of satisfying minterms in the
//! corresponding subspace) and follows the larger one. With an ideal
//! coprocessor the search never backtracks on satisfiable instances.
//!
//! Both the hybrid flow and the DPLL baseline are dispatched through the
//! [`BackendRegistry`], so their merged [`SolveStats`] are directly
//! comparable. The last section shows the coprocessor-check budget
//! interrupting the flow.
//!
//! Run with:
//! ```text
//! cargo run --example hybrid_coprocessor
//! ```

use nbl_sat_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = BackendRegistry::default();
    println!("instance                    | result |  hybrid decisions/conflicts/checks | dpll decisions/conflicts");
    println!("----------------------------+--------+------------------------------------+-------------------------");
    let instances: Vec<(&str, cnf::CnfFormula)> = vec![
        (
            "random 3-SAT n=8 m=24",
            cnf::generators::random_ksat(
                &cnf::generators::RandomKSatConfig::new(8, 24, 3).with_seed(7),
            )?,
        ),
        (
            "random 3-SAT n=8 m=34",
            cnf::generators::random_ksat(
                &cnf::generators::RandomKSatConfig::new(8, 34, 3).with_seed(11),
            )?,
        ),
        ("parity chain n=5", cnf::generators::parity_chain(5, true)),
        ("pigeonhole 3 into 3", cnf::generators::pigeonhole(3, 3)),
        (
            "pigeonhole 4 into 3 (UNSAT)",
            cnf::generators::pigeonhole(4, 3),
        ),
    ];

    for (name, formula) in &instances {
        let request = SolveRequest::new(formula).artifacts(Artifacts::Model);
        let hybrid = registry.solve("hybrid-symbolic", &request)?;
        let dpll = registry.solve("dpll", &request)?;
        assert_eq!(
            hybrid.verdict.is_sat(),
            dpll.verdict.is_sat(),
            "backends must agree"
        );
        if let Some(model) = &hybrid.model {
            assert!(formula.evaluate(model));
        }
        println!(
            "{name:<28}| {:<6} | {:>10} / {:<9} / {:<9} | {:>8} / {}",
            hybrid.verdict,
            hybrid.stats.decisions,
            hybrid.stats.conflicts,
            hybrid.stats.coprocessor_checks,
            dpll.stats.decisions,
            dpll.stats.conflicts,
        );
    }

    // A tight coprocessor-check budget interrupts the flow instead of letting
    // it run: the verdict degrades to UNKNOWN (budget exhausted).
    let (_, hard) = &instances[4];
    let tight = SolveRequest::new(hard).budget(Budget::unlimited().with_max_checks(6));
    let outcome = registry.solve("hybrid-symbolic", &tight)?;
    println!();
    println!(
        "with a 6-check budget on the UNSAT pigeonhole instance: {} ({} checks spent)",
        outcome.verdict, outcome.stats.coprocessor_checks
    );
    assert!(!outcome.verdict.is_definitive());

    println!();
    println!(
        "Note: every hybrid decision costs two NBL coprocessor checks per free variable;\n\
         the win is in decisions/conflicts avoided, exactly the trade-off §V describes."
    );
    Ok(())
}
