//! The hybrid CPU + NBL-coprocessor flow of §V.
//!
//! The CPU runs a complete search; before every decision it asks the NBL
//! coprocessor for the mean of the reduced S_N with each candidate binding
//! (that mean is proportional to the number of satisfying minterms in the
//! corresponding subspace) and follows the larger one. With an ideal
//! coprocessor the search never backtracks on satisfiable instances.
//!
//! Run with:
//! ```text
//! cargo run --example hybrid_coprocessor
//! ```

use nbl_sat_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("instance                    | result |  hybrid decisions/conflicts | dpll decisions/conflicts");
    println!("----------------------------+--------+-----------------------------+-------------------------");
    let instances: Vec<(&str, cnf::CnfFormula)> = vec![
        (
            "random 3-SAT n=8 m=24",
            cnf::generators::random_ksat(
                &cnf::generators::RandomKSatConfig::new(8, 24, 3).with_seed(7),
            )?,
        ),
        (
            "random 3-SAT n=8 m=34",
            cnf::generators::random_ksat(
                &cnf::generators::RandomKSatConfig::new(8, 34, 3).with_seed(11),
            )?,
        ),
        ("parity chain n=5", cnf::generators::parity_chain(5, true)),
        ("pigeonhole 3 into 3", cnf::generators::pigeonhole(3, 3)),
        (
            "pigeonhole 4 into 3 (UNSAT)",
            cnf::generators::pigeonhole(4, 3),
        ),
    ];

    for (name, formula) in instances {
        let mut hybrid = HybridSolver::with_ideal_coprocessor();
        let model = hybrid.solve(&formula)?;
        let mut dpll = DpllSolver::new();
        let dpll_result = dpll.solve(&formula);
        assert_eq!(model.is_some(), dpll_result.is_sat(), "solvers must agree");
        if let Some(ref m) = model {
            assert!(formula.evaluate(m));
        }
        println!(
            "{name:<28}| {:<6} | {:>10} / {:<14} | {:>8} / {}",
            if model.is_some() { "SAT" } else { "UNSAT" },
            hybrid.stats().decisions,
            hybrid.stats().conflicts,
            dpll.stats().decisions,
            dpll.stats().conflicts,
        );
    }

    println!();
    println!(
        "Note: every hybrid decision costs two NBL coprocessor checks per free variable;\n\
         the win is in decisions/conflicts avoided, exactly the trade-off §V describes."
    );
    Ok(())
}
