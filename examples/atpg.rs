//! SAT-based test pattern generation (ATPG) for stuck-at faults.
//!
//! Circuit testing is one of the SAT applications the paper's introduction
//! motivates: a manufacturing defect that pins a signal to 0 or 1 is detected
//! by an input pattern on which the faulty chip disagrees with the good
//! design, and finding that pattern is a miter SAT problem. This example runs
//! the full flow on a ripple-carry adder — fault enumeration, CDCL-based test
//! generation with fault dropping, bit-parallel fault simulation — and then
//! shows that the NBL-SAT checker answers the same ATPG queries on a smaller
//! circuit with a single correlation each.
//!
//! Run with:
//! ```text
//! cargo run --example atpg
//! ```

use nbl_sat_repro::circuit::{atpg_check, fault_list, fault_simulate, library};
use nbl_sat_repro::nbl_sat::{NblSatInstance, SatChecker, SymbolicEngine};
use nbl_sat_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Full ATPG flow on a 3-bit ripple-carry adder.
    let adder = library::ripple_carry_adder(3);
    println!("{adder}");
    let faults = fault_list(&adder);
    println!("single stuck-at fault list: {} faults", faults.len());

    let mut patterns: Vec<Vec<bool>> = Vec::new();
    let mut untestable = 0usize;
    let mut remaining = faults.clone();
    let mut solver_calls = 0u64;
    while let Some(&fault) = remaining.first() {
        let check = atpg_check(&adder, fault)?;
        let mut cdcl = CdclSolver::new();
        solver_calls += 1;
        match cdcl.solve(check.formula()) {
            SolveResult::Satisfiable(model) => {
                let pattern: Vec<bool> = check
                    .counterexample(&model)
                    .into_iter()
                    .map(|(_, value)| value)
                    .collect();
                patterns.push(pattern);
                // Fault dropping: one simulation pass removes every fault the
                // new pattern also happens to detect.
                remaining = fault_simulate(&adder, &remaining, &patterns)?.undetected;
            }
            SolveResult::Unsatisfiable => {
                untestable += 1;
                remaining.retain(|f| *f != fault);
            }
            SolveResult::Unknown => unreachable!("CDCL is complete"),
        }
    }
    let detectable: Vec<_> = faults.to_vec();
    let report = fault_simulate(&adder, &detectable, &patterns)?;
    println!(
        "generated {} test patterns with {} SAT calls; {} untestable faults; {report}",
        patterns.len(),
        solver_calls,
        untestable
    );

    // --- The same ATPG query, answered by the NBL-SAT engine in one operation.
    let small = library::majority3();
    let fault = fault_list(&small)[0];
    let check = atpg_check(&small, fault)?;
    let instance = NblSatInstance::new(check.formula())?;
    let mut nbl = SatChecker::new(SymbolicEngine::new());
    let verdict = nbl.check(&instance)?;
    println!(
        "NBL-SAT check of the ATPG instance for `{}` on {}: {verdict} (one correlation, {} noise sources)",
        fault.describe(&small),
        small.name(),
        instance.num_sources()
    );
    let mut cdcl = CdclSolver::new();
    assert_eq!(
        verdict.is_sat(),
        cdcl.solve(check.formula()).is_sat(),
        "NBL-SAT and CDCL must agree"
    );
    println!("CDCL agrees.");
    Ok(())
}
