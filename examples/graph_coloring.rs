//! Graph coloring through NBL-SAT.
//!
//! Encodes k-coloring of small graphs as CNF, decides colorability with the
//! single-operation NBL check, and extracts an explicit coloring with
//! Algorithm 2. Also shows the cube variant reporting don't-care variables.
//!
//! Run with:
//! ```text
//! cargo run --example graph_coloring
//! ```

use nbl_sat_repro::prelude::*;

fn color_of(model: &Assignment, vertex: usize, k: usize) -> Option<usize> {
    (0..k).find(|&c| model.value(Variable::new(vertex * k + c)))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 2;

    // An odd cycle (C5) is not 2-colorable; an even cycle (C4) is.
    for (name, graph, expected) in [
        (
            "C5 (odd cycle)",
            cnf::generators::cycle_graph(5),
            Verdict::Unsatisfiable,
        ),
        (
            "C4 (even cycle)",
            cnf::generators::cycle_graph(4),
            Verdict::Satisfiable,
        ),
    ] {
        let formula = cnf::generators::graph_coloring(&graph, k);
        let instance = NblSatInstance::new(&formula)?;
        let mut checker = SatChecker::new(SymbolicEngine::new());
        let verdict = checker.check(&instance)?;
        println!(
            "{name}: {k}-colorable? {} ({} vars, {} clauses, one NBL operation)",
            verdict,
            formula.num_vars(),
            formula.num_clauses()
        );
        assert_eq!(verdict, expected);

        if verdict == Verdict::Satisfiable {
            let mut extractor = AssignmentExtractor::new(SymbolicEngine::new());
            let outcome = extractor.extract(&instance)?;
            let model = outcome.assignment.expect("colorable");
            print!("  coloring:");
            for v in 0..graph.num_vertices {
                print!(
                    " v{}→color{}",
                    v,
                    color_of(&model, v, k).expect("every vertex gets a color")
                );
            }
            println!("  ({} NBL checks)", outcome.checks_used);
            // Verify no edge is monochromatic.
            for &(u, v) in &graph.edges {
                assert_ne!(color_of(&model, u, k), color_of(&model, v, k));
            }
        }
    }

    // The triangle needs three colors; show the cube extraction on it.
    let triangle = cnf::generators::complete_graph(3);
    let formula = cnf::generators::graph_coloring(&triangle, 3);
    let instance = NblSatInstance::new(&formula)?;
    let mut extractor = AssignmentExtractor::new(SymbolicEngine::new());
    let outcome = extractor.extract_cube(&instance)?;
    println!(
        "K3 with 3 colors: satisfying cube {} covering {} assignments",
        outcome.cube,
        outcome.cube.num_minterms(formula.num_vars())
    );
    Ok(())
}
