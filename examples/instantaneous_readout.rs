//! Instantaneous (random-telegraph-wave) readout of an NBL superposition.
//!
//! Section V of the paper lists random telegraph waves as an alternative
//! carrier family (its reference [17], "instantaneous noise-based logic").
//! Because RTW carriers are deterministic ±1 sequences known to the receiver,
//! the superposition on a wire can be decoded *exactly* from a short sample
//! window — no statistical averaging, no convergence threshold. This example
//! uses that readout on the paper's Example 6: the wire carries the
//! superposition of the satisfying minterms of `(x1 + x2)(¬x1 + ¬x2)`, and
//! the decoder recovers exactly which minterms are present.
//!
//! Run with:
//! ```text
//! cargo run --example instantaneous_readout
//! ```

use nbl_sat_repro::logic::instantaneous::{InstantaneousDecoder, RtwChannel};
use nbl_sat_repro::logic::HyperspaceBuilder;
use nbl_sat_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Example 6 of the paper: (x1 + x2)(¬x1 + ¬x2); its models are 01 and 10.
    let formula = cnf::cnf_formula![[1, 2], [-1, -2]];
    let n = formula.num_vars();
    println!("formula: {formula}");

    // The candidate references are the 2^n minterm noise products; the wire
    // carries the superposition of the minterms that satisfy the formula.
    let builder = HyperspaceBuilder::new(n);
    let references: Vec<_> = (0..(1u64 << n)).map(|mask| builder.minterm(mask)).collect();
    let transmitted: Vec<bool> = (0..(1u64 << n))
        .map(|mask| formula.evaluate(&Assignment::from_index(n, mask)))
        .collect();
    println!(
        "transmitting the superposition of {} satisfying minterms on one wire",
        transmitted.iter().filter(|&&x| x).count()
    );

    // Both ends share the seeded RTW channel; the sender forms the wire
    // samples, the receiver decodes them exactly.
    let channel = RtwChannel::new(2012);
    let decoder = InstantaneousDecoder::new(channel, references);
    let wire = decoder.encode(&transmitted, 0);
    println!(
        "wire window: {} samples (vs. the ~10^5 samples the averaging readout needs at this size)",
        wire.len()
    );
    let decoded = decoder.decode(&wire, 0)?;
    assert_eq!(decoded, transmitted);
    for (mask, present) in decoded.iter().enumerate() {
        if *present {
            println!(
                "  decoded minterm {:0width$b} -> model {}",
                mask,
                Assignment::from_index(n, mask as u64),
                width = n
            );
        }
    }

    // The SAT verdict is then immediate: the instance is satisfiable iff any
    // reference decodes as present. Cross-check against a classical solver.
    let nbl_sat_verdict = decoded.iter().any(|&present| present);
    let mut cdcl = CdclSolver::new();
    assert_eq!(nbl_sat_verdict, cdcl.solve(&formula).is_sat());
    println!("instantaneous NBL verdict: SAT = {nbl_sat_verdict}; CDCL agrees");
    Ok(())
}
