//! Batched solving through the unified API: a queue of SAT jobs, one shared
//! resource budget, a bounded worker pool, and the thread-racing parallel
//! portfolio — the workspace's expression of the paper's "all assignments at
//! once" parallelism at the service level.
//!
//! The example builds a mixed workload (paper instances, random 3-SAT around
//! the phase transition, a pigeonhole refutation), fans it out with
//! [`SolveBatch`], and then shows starvation: the same workload under a
//! nearly-empty shared budget answers `UNKNOWN (budget exhausted …)` for the
//! jobs the pool could not afford — immediately, never hanging.
//!
//! Run with:
//! ```text
//! cargo run --example batch_solver
//! ```

use nbl_sat_repro::prelude::*;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = BackendRegistry::default();

    // A mixed workload, the shape a production front door actually sees.
    let mut workload: Vec<(String, CnfFormula)> = vec![
        (
            "example 6 (2-CNF, SAT)".into(),
            cnf::generators::example6_sat(),
        ),
        (
            "example 7 (UNSAT)".into(),
            cnf::generators::example7_unsat(),
        ),
        (
            "pigeonhole 5→4 (UNSAT)".into(),
            cnf::generators::pigeonhole(5, 4),
        ),
    ];
    for seed in 0..5 {
        workload.push((
            format!("random 3-SAT n=12 @4.2 seed {seed}"),
            cnf::generators::random_ksat(
                &cnf::generators::RandomKSatConfig::from_ratio(12, 4.2, 3).with_seed(seed),
            )?,
        ));
    }

    println!("== batch of {} jobs, racing portfolio ==", workload.len());
    let mut batch = SolveBatch::new(&registry).workers(4);
    for (_, formula) in &workload {
        batch = batch.job(
            "parallel-portfolio",
            SolveRequest::new(formula)
                .artifacts(Artifacts::Model)
                .seed(2012),
        );
    }
    for ((label, formula), outcome) in workload.iter().zip(batch.run()) {
        let outcome = outcome?;
        if let Some(model) = &outcome.model {
            assert!(formula.evaluate(model), "model must verify");
        }
        let winner = outcome.stats.winner.unwrap_or("-");
        println!(
            "  {label:<34} -> {:<7} winner={winner:<9} wall={:?}",
            outcome.verdict.to_string(),
            outcome.stats.wall_time
        );
    }

    println!("\n== same batch under a 5 ms shared wall budget ==");
    let mut tight = SolveBatch::new(&registry)
        .workers(2)
        .shared_budget(Budget::unlimited().with_wall_time(Duration::from_millis(5)));
    for (_, formula) in &workload {
        tight = tight.job("parallel-portfolio", SolveRequest::new(formula).seed(2012));
    }
    let outcomes = tight.run();
    let starved = outcomes
        .iter()
        .filter(|o| {
            o.as_ref()
                .is_ok_and(|o| o.verdict.exhausted_resource().is_some())
        })
        .count();
    for ((label, _), outcome) in workload.iter().zip(&outcomes) {
        let outcome = outcome.as_ref().map_err(|e| e.to_string())?;
        println!("  {label:<34} -> {}", outcome.verdict);
    }
    println!(
        "  ({starved}/{} jobs starved by the shared budget; none hung)",
        outcomes.len()
    );

    Ok(())
}
