//! Multi-valued noise-based logic on a graph-coloring problem.
//!
//! The paper's reference [14] extends NBL beyond binary values: an L-valued
//! variable gets one orthogonal carrier per value, and a wire can carry the
//! superposition of multi-valued states. This example uses that
//! representation directly on graph coloring (one ternary variable per
//! vertex), finds the feasible colorings by intersecting per-edge constraint
//! superpositions, and cross-checks the verdict against the binary CNF
//! encoding solved by CDCL.
//!
//! Run with:
//! ```text
//! cargo run --example multivalued_coloring
//! ```

use nbl_sat_repro::cnf::generators::{cycle_graph, graph_coloring};
use nbl_sat_repro::logic::multivalued::{MvSet, MvSpace};
use nbl_sat_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 5-cycle: 3-colorable, not 2-colorable (odd cycle).
    let vertices = 5usize;
    let graph = cycle_graph(vertices);

    for colors in [3usize, 2] {
        // --- Multi-valued NBL: one L-valued variable per vertex.
        let space = MvSpace::uniform(vertices, colors);
        let mut feasible = MvSet::full(&space);
        for &(u, v) in &graph.edges {
            let not_equal = MvSet::from_constraint(&space, &[u, v], |t| t[0] != t[1]);
            feasible = feasible.intersection(&not_equal);
        }
        println!(
            "{colors}-coloring of C{vertices}: {} carriers, {} states, {} proper colorings",
            space.num_carriers(),
            space.num_states(),
            feasible.len()
        );
        if let Some(coloring) = feasible.iter_tuples().next() {
            println!("  example coloring: {coloring:?}");
            println!(
                "  single-wire superposition carries {} state products",
                feasible.to_superposition().num_terms()
            );
        }

        // --- Cross-check: the classical binary CNF encoding of the same problem.
        let formula = graph_coloring(&graph, colors);
        let mut cdcl = CdclSolver::new();
        let classical = cdcl.solve(&formula);
        println!(
            "  binary CNF encoding: {} vars, {} clauses -> CDCL says {}",
            formula.num_vars(),
            formula.num_clauses(),
            if classical.is_sat() { "SAT" } else { "UNSAT" }
        );
        assert_eq!(!feasible.is_empty(), classical.is_sat());
    }
    Ok(())
}
