//! Streaming solving through the `SolveService` job queue: a producer thread
//! submits a live stream of SAT jobs while the main thread consumes outcomes
//! as they land — the service front end a long-lived deployment of the
//! paper's NBL coprocessor would sit behind, where requests arrive
//! continuously instead of in one-shot batches.
//!
//! The example shows the full service lifecycle:
//!
//! 1. a producer streams a mixed workload into the queue (with one
//!    high-priority job jumping ahead of the backlog),
//! 2. the consumer polls handles without blocking and collects outcomes in
//!    completion order,
//! 3. a long-running pigeonhole refutation is cancelled mid-search,
//! 4. a check-starved job is revived by refilling the shared budget,
//! 5. a graceful `shutdown()` drains the queue.
//!
//! Run with:
//! ```text
//! cargo run --example solve_service
//! ```

use nbl_sat_repro::prelude::*;
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = BackendRegistry::default();
    let service = SolveService::builder(&registry)
        .workers(4)
        .shared_budget(Budget::unlimited().with_max_checks(6))
        .start();
    println!(
        "service up: {} workers, {} backends\n",
        service.worker_count(),
        registry.len()
    );

    // 1. Produce a stream of jobs from a separate thread; each submission
    //    returns its handle immediately, so the producer never waits for a
    //    solve.
    let mut workload: Vec<(String, &'static str, CnfFormula)> = vec![
        (
            "example 6 (SAT)".into(),
            "cdcl",
            cnf::generators::example6_sat(),
        ),
        (
            "example 7 (UNSAT)".into(),
            "nbl-symbolic",
            cnf::generators::example7_unsat(),
        ),
        (
            "section 4 (SAT)".into(),
            "portfolio",
            cnf::generators::section4_sat_instance(),
        ),
    ];
    for seed in 0..5 {
        workload.push((
            format!("random 3-SAT n=12 seed {seed}"),
            if seed % 2 == 0 {
                "cdcl"
            } else {
                "parallel-portfolio"
            },
            cnf::generators::random_ksat(
                &cnf::generators::RandomKSatConfig::from_ratio(12, 4.2, 3).with_seed(seed),
            )?,
        ));
    }

    let handles: Vec<(String, JobHandle)> = std::thread::scope(|scope| {
        let producer = scope.spawn(|| {
            let mut handles = Vec::new();
            for (label, backend, formula) in &workload {
                let request = SolveRequest::new(formula)
                    .artifacts(Artifacts::Model)
                    .seed(2012);
                handles.push((label.clone(), service.submit(backend, &request)));
            }
            // One latency-sensitive job jumps the whole backlog.
            let urgent = cnf::generators::section4_unsat_instance();
            handles.push((
                "URGENT section 4 (UNSAT)".into(),
                service.submit_with_priority(
                    "dpll",
                    &SolveRequest::new(&urgent),
                    JobPriority::High,
                ),
            ));
            handles
        });
        producer.join().expect("producer thread")
    });
    println!("streamed {} jobs into the queue", handles.len());

    // 2. Consume without blocking: poll every handle until all have landed.
    let mut pending: Vec<(String, JobHandle)> = handles;
    while !pending.is_empty() {
        let mut still_pending = Vec::new();
        for (label, handle) in pending {
            match handle.poll() {
                Some(result) => {
                    let outcome = result?;
                    println!("  [{:>8}] {label}: {}", handle.backend(), outcome.verdict);
                }
                None => still_pending.push((label, handle)),
            }
        }
        pending = still_pending;
        std::thread::yield_now();
    }

    // 3. Cancel a refutation that would otherwise grind for a long time.
    let hard = cnf::generators::pigeonhole(8, 7);
    let doomed = service.submit("cdcl", &SolveRequest::new(&hard));
    std::thread::sleep(Duration::from_millis(20));
    let cancelled_at = Instant::now();
    doomed.cancel();
    let outcome = doomed.wait()?;
    println!(
        "\ncancelled pigeonhole 8\u{2192}7 after 20 ms: {} (observed in {:?})",
        outcome.verdict,
        cancelled_at.elapsed()
    );

    // 4. Starve the service's check pool (6 checks), then refill it. The
    //    workload must be a formula preprocessing cannot resolve — example 7
    //    is refuted by unit propagation before it ever reaches a backend, so
    //    it would spend nothing — and the §IV UNSAT instance (no units, no
    //    pure literals) costs one coprocessor check per nbl-symbolic solve.
    let unsat = cnf::generators::section4_unsat_instance();
    loop {
        let outcome = service
            .submit("nbl-symbolic", &SolveRequest::new(&unsat))
            .wait()?;
        if let Some(resource) = outcome.exhausted {
            println!("pool starved: {} exhausted", resource);
            break;
        }
    }
    service.refill_checks(4);
    let revived = service
        .submit("nbl-symbolic", &SolveRequest::new(&unsat))
        .wait()?;
    println!("after refill_checks(4): {}", revived.verdict);

    // 5. Graceful drain.
    service.shutdown();
    println!("\nservice drained and stopped");
    Ok(())
}
