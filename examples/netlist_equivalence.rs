//! Combinational equivalence checking of gate-level netlists.
//!
//! A "golden" majority voter written in the ISCAS `.bench` interchange format
//! is checked against two re-implementations: a correct NAND-only rewrite and
//! a buggy one. The miter construction turns each comparison into a SAT
//! instance; CDCL finds the distinguishing input pattern for the buggy one,
//! and the NBL-SAT symbolic checker reproduces both verdicts with one
//! correlation each — the equivalence-checking use case from the paper's
//! introduction, end to end.
//!
//! Run with:
//! ```text
//! cargo run --example netlist_equivalence
//! ```

use nbl_sat_repro::circuit::{equivalence_check, parse_bench, write_bench};
use nbl_sat_repro::nbl_sat::{NblSatInstance, SatChecker, SymbolicEngine};
use nbl_sat_repro::prelude::*;

const GOLDEN: &str = "
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(maj)
ab = AND(a, b)
ac = AND(a, c)
bc = AND(b, c)
maj = OR(ab, ac, bc)
";

const NAND_REWRITE: &str = "
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(maj)
nab = NAND(a, b)
nac = NAND(a, c)
nbc = NAND(b, c)
t = NAND(nab, nac)
nt = NOT(t)
maj = NAND(nt, nbc)
";

const BUGGY_REWRITE: &str = "
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(maj)
ab = AND(a, b)
ac = AND(a, c)
bc = OR(b, c)
maj = OR(ab, ac, bc)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let golden = parse_bench(GOLDEN)?;
    println!("golden netlist:\n{}", write_bench(&golden));

    for (label, text) in [
        ("NAND rewrite", NAND_REWRITE),
        ("buggy rewrite", BUGGY_REWRITE),
    ] {
        let revised = parse_bench(text)?;
        let check = equivalence_check(&golden, &revised)?;
        println!(
            "{label}: miter CNF has {} variables, {} clauses",
            check.formula().num_vars(),
            check.formula().num_clauses()
        );

        // Classical answer: CDCL on the miter CNF.
        let mut cdcl = CdclSolver::new();
        match cdcl.solve(check.formula()) {
            SolveResult::Unsatisfiable => println!("  CDCL: circuits are equivalent"),
            SolveResult::Satisfiable(model) => {
                let pattern: Vec<String> = check
                    .counterexample(&model)
                    .into_iter()
                    .map(|(name, value)| format!("{name}={}", value as u8))
                    .collect();
                println!(
                    "  CDCL: NOT equivalent, counterexample {}",
                    pattern.join(" ")
                );
            }
            SolveResult::Unknown => unreachable!("CDCL is complete"),
        }

        // NBL-SAT answer: one correlation on the same CNF.
        let instance = NblSatInstance::new(check.formula())?;
        let mut nbl = SatChecker::new(SymbolicEngine::new());
        let verdict = nbl.check(&instance)?;
        println!(
            "  NBL-SAT (single operation, {} noise sources): miter is {}",
            instance.num_sources(),
            if verdict.is_sat() {
                "satisfiable -> NOT equivalent"
            } else {
                "unsatisfiable -> equivalent"
            }
        );
    }
    Ok(())
}
