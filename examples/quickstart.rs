//! Quickstart: encode a small CNF instance in noise-based logic, decide
//! SAT/UNSAT with a single correlation, and recover a satisfying assignment.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use nbl_sat_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example from Section III.A:
    //   S(x1, x2, x3) = (x1 + ¬x2) · (¬x1 + x2 + x3)
    let formula = cnf::cnf_formula![[1, -2], [-1, 2, 3]];
    println!("formula: {formula}");

    // Transform it into an NBL-SAT instance: 2·m·n basis noise sources.
    let instance = NblSatInstance::new(&formula)?;
    println!(
        "NBL transform: n={} variables, m={} clauses, {} basis noise sources",
        instance.num_vars(),
        instance.num_clauses(),
        instance.num_sources()
    );

    // 1. The ideal (infinite-sample) check: exact expectation of S_N.
    let mut ideal = SatChecker::new(SymbolicEngine::new());
    let verdict = ideal.check(&instance)?;
    println!("ideal hardware verdict (1 operation): {verdict}");

    // 2. The Monte-Carlo simulation of the analog datapath, as in the paper's
    //    MATLAB experiment: uniform [-0.5, 0.5] carriers, running mean of S_N.
    let config = EngineConfig::new()
        .with_seed(2012)
        .with_max_samples(200_000)
        .with_check_interval(20_000);
    let mut simulated = SatChecker::new(SampledEngine::new(config));
    let estimate = simulated.estimate_with_bindings(&instance, &instance.empty_bindings())?;
    println!(
        "simulated analog engine: {estimate} -> verdict {}",
        simulated.decide(&estimate)
    );

    // 3. Recover a satisfying assignment with at most n more checks (Algorithm 2).
    let mut extractor = AssignmentExtractor::new(SymbolicEngine::new());
    let outcome = extractor.extract(&instance)?;
    let model = outcome.assignment.expect("instance is satisfiable");
    println!(
        "satisfying assignment {model} found with {} NBL check operations (n = {})",
        outcome.checks_used,
        instance.num_vars()
    );
    assert!(formula.evaluate(&model));

    // Cross-check with a classical CDCL solver.
    let mut cdcl = CdclSolver::new();
    assert!(cdcl.solve(&formula).is_sat());
    println!("CDCL agrees: SAT ({})", cdcl.stats());
    Ok(())
}
