//! Quickstart: solve a small CNF instance through the unified
//! request/outcome API, then peek under the hood at the NBL machinery.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use nbl_sat_repro::prelude::*;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example from Section III.A:
    //   S(x1, x2, x3) = (x1 + ¬x2) · (¬x1 + x2 + x3)
    let formula = cnf::cnf_formula![[1, -2], [-1, 2, 3]];
    println!("formula: {formula}");

    // One request serves every backend: formula + desired artifacts +
    // deterministic seed + resource budget.
    let registry = BackendRegistry::default();
    let request = SolveRequest::new(&formula)
        .artifacts(Artifacts::PrimeCube)
        .seed(2012)
        .budget(Budget::unlimited().with_wall_time(Duration::from_secs(10)));

    println!("\nthe same request across backends ({:?}):", registry);
    for name in ["nbl-symbolic", "nbl-sampled", "cdcl", "hybrid-symbolic"] {
        let outcome = registry.solve(name, &request)?;
        println!("  {name:<16} -> {}", outcome.verdict);
        if let Some(model) = &outcome.model {
            assert!(formula.evaluate(model));
            println!("  {:<16}    model {model}", "");
        }
        if let Some(cube) = &outcome.cube {
            assert!(cube.is_implicant_of(&formula));
            println!("  {:<16}    prime cube {cube}", "");
        }
        println!("  {:<16}    stats: {}", "", outcome.stats);
    }

    // Under the hood, the NBL backends run the paper's pipeline: the
    // transform allocates 2·m·n basis noise sources...
    let instance = NblSatInstance::new(&formula)?;
    println!(
        "\nNBL transform: n={} variables, m={} clauses, {} basis noise sources",
        instance.num_vars(),
        instance.num_clauses(),
        instance.num_sources()
    );

    // ...Algorithm 1 decides SAT/UNSAT from one correlation...
    let mut ideal = SatChecker::new(SymbolicEngine::new());
    println!(
        "ideal hardware verdict (1 operation): {}",
        ideal.check(&instance)?
    );

    // ...and Algorithm 2 recovers a satisfying assignment with ≤ n more.
    let mut extractor = AssignmentExtractor::new(SymbolicEngine::new());
    let extraction = extractor.extract(&instance)?;
    println!(
        "satisfying assignment {} found with {} NBL check operations (n = {})",
        extraction.assignment.expect("instance is satisfiable"),
        extraction.checks_used,
        instance.num_vars()
    );

    // Budgets genuinely interrupt: one coprocessor check is not enough to
    // also extract a model, so the artifact is dropped while the verdict
    // (already decided) is kept.
    let tight = SolveRequest::new(&formula)
        .artifacts(Artifacts::Model)
        .budget(Budget::unlimited().with_max_checks(1));
    let outcome = registry.solve("nbl-symbolic", &tight)?;
    println!(
        "\ntight budget (1 check): verdict {} | model extracted: {} | exhausted: {:?}",
        outcome.verdict,
        outcome.model.is_some(),
        outcome.exhausted
    );
    Ok(())
}
