//! A DIMACS front end over the unified solving API: read a CNF file (or use
//! a built-in instance), dispatch it to a named backend from the
//! [`BackendRegistry`], and print standard DIMACS solver output
//! (`s SATISFIABLE` / `s UNSATISFIABLE` / `s UNKNOWN` plus `v` model lines).
//!
//! Run with:
//! ```text
//! cargo run --example dimacs_solver                      # built-in instance, auto backend
//! cargo run --example dimacs_solver -- path/to.cnf       # your file, auto backend
//! cargo run --example dimacs_solver -- path/to.cnf cdcl  # your file, named backend
//! cargo run --example dimacs_solver -- portfolio         # built-in instance, named backend
//! ```
//!
//! `auto` picks the exact NBL engine when the instance fits the software
//! budget and falls back to CDCL otherwise — the hybrid deployment story of
//! §V. Any registry name (`cdcl`, `dpll`, `walksat`, `gsat`, `schoening`,
//! `two-sat`, `brute-force`, `portfolio`, `parallel-portfolio`,
//! `nbl-symbolic`, `nbl-sampled`, `nbl-algebraic`, `hybrid-symbolic`,
//! `hybrid-sampled`) works.
//!
//! Exits with the SAT-competition convention so harnesses can branch on the
//! verdict: 10 for SATISFIABLE, 20 for UNSATISFIABLE, 0 for UNKNOWN (2 for
//! usage errors, 1 for I/O or solver errors).

use nbl_sat_repro::prelude::*;
use std::fs;

/// n·m budget under which the exact NBL software engine is used directly.
const NBL_NM_BUDGET: usize = 400;

fn main() {
    match run() {
        // SAT-competition exit codes: 10 SAT, 20 UNSAT, 0 UNKNOWN.
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("c error: {e}");
            std::process::exit(1);
        }
    }
}

fn run() -> Result<i32, Box<dyn std::error::Error>> {
    let registry = BackendRegistry::default();

    // Positional args: [FILE] [BACKEND]. A single argument that names a
    // registered backend is treated as the backend.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, mut backend) = match args.as_slice() {
        [] => (None, None),
        [only] if registry.contains(only) => (None, Some(only.clone())),
        [path] => (Some(path.clone()), None),
        [path, backend, ..] => (Some(path.clone()), Some(backend.clone())),
    };

    let formula = match &path {
        Some(path) => {
            println!("c reading DIMACS from {path}");
            cnf::dimacs::parse_str(&fs::read_to_string(path)?)?
        }
        None => {
            println!("c no file given; using a built-in 20-variable random 3-SAT instance");
            cnf::generators::random_ksat(
                &cnf::generators::RandomKSatConfig::from_ratio(20, 4.0, 3).with_seed(42),
            )?
        }
    };
    let stats = cnf::FormulaStats::of(&formula);
    println!("c instance: {stats}");

    if backend.is_none() {
        // Auto dispatch, mirroring §V: NBL engine within the software budget,
        // classical CDCL beyond it.
        let name = if stats.num_vars <= 20 && stats.nm() <= NBL_NM_BUDGET {
            "nbl-symbolic"
        } else {
            "cdcl"
        };
        println!(
            "c auto backend selection: {name} (n·m = {}, budget {NBL_NM_BUDGET})",
            stats.nm()
        );
        backend = Some(name.to_string());
    }
    let backend = backend.expect("backend resolved above");
    if !registry.contains(&backend) {
        eprintln!(
            "c unknown backend {backend:?}; available: {}",
            registry.names().join(", ")
        );
        std::process::exit(2);
    }
    println!("c backend: {backend}");

    let request = SolveRequest::new(&formula)
        .artifacts(Artifacts::Model)
        .seed(2012);
    let outcome = registry.solve(&backend, &request)?;
    println!("c stats: {}", outcome.stats);
    let code = match outcome.verdict {
        SolveVerdict::Satisfiable => {
            println!("s SATISFIABLE");
            if let Some(model) = &outcome.model {
                assert!(formula.evaluate(model));
                print_model(model);
            }
            10
        }
        SolveVerdict::Unsatisfiable => {
            println!("s UNSATISFIABLE");
            20
        }
        SolveVerdict::Unknown(cause) => {
            println!("c {cause}");
            println!("s UNKNOWN");
            0
        }
    };
    Ok(code)
}

/// Prints the model in DIMACS `v` lines (1-based signed literals, 0-terminated).
fn print_model(model: &Assignment) {
    print!("v");
    for (var, value) in model.iter() {
        let lit = if value {
            (var.index() + 1) as i64
        } else {
            -((var.index() + 1) as i64)
        };
        print!(" {lit}");
    }
    println!(" 0");
}
