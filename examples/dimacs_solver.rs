//! A small DIMACS front end: read a CNF file (or use a built-in instance),
//! solve it with the appropriate engine, and print the result.
//!
//! Small instances (n·m within the NBL software-simulation budget) are decided
//! with the NBL-SAT single-operation check and Algorithm 2; larger ones fall
//! back to the CDCL baseline — mirroring the hybrid deployment story of §V.
//!
//! Run with:
//! ```text
//! cargo run --example dimacs_solver                 # built-in demo instance
//! cargo run --example dimacs_solver -- path/to.cnf  # your own DIMACS file
//! ```

use nbl_sat_repro::prelude::*;
use std::fs;

/// n·m budget under which the exact NBL software engine is used directly.
const NBL_NM_BUDGET: usize = 400;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let formula = match std::env::args().nth(1) {
        Some(path) => {
            println!("reading DIMACS from {path}");
            cnf::dimacs::parse_str(&fs::read_to_string(path)?)?
        }
        None => {
            println!("no file given; using a built-in 20-variable random 3-SAT instance");
            cnf::generators::random_ksat(
                &cnf::generators::RandomKSatConfig::from_ratio(20, 4.0, 3).with_seed(42),
            )?
        }
    };
    let stats = cnf::FormulaStats::of(&formula);
    println!("instance: {stats}");

    if stats.num_vars <= 20 && stats.nm() <= NBL_NM_BUDGET && stats.num_empty_clauses == 0 {
        println!(
            "within the NBL software budget (n·m = {} ≤ {NBL_NM_BUDGET}): using the NBL-SAT engine",
            stats.nm()
        );
        let instance = NblSatInstance::new(&formula)?;
        let mut checker = SatChecker::new(SymbolicEngine::new());
        match checker.check(&instance)? {
            Verdict::Unsatisfiable => println!("s UNSATISFIABLE  (1 NBL check operation)"),
            Verdict::Satisfiable => {
                let mut extractor = AssignmentExtractor::new(SymbolicEngine::new());
                let outcome = extractor.extract(&instance)?;
                let model = outcome.assignment.expect("satisfiable");
                assert!(formula.evaluate(&model));
                println!(
                    "s SATISFIABLE  (1 + {} NBL check operations)",
                    outcome.checks_used
                );
                print_model(&model);
            }
        }
    } else {
        println!(
            "outside the NBL software budget (n·m = {}): falling back to CDCL",
            stats.nm()
        );
        let mut solver = CdclSolver::new();
        match solver.solve(&formula) {
            SolveResult::Unsatisfiable => {
                println!("s UNSATISFIABLE  ({})", solver.stats());
            }
            SolveResult::Satisfiable(model) => {
                assert!(formula.evaluate(&model));
                println!("s SATISFIABLE  ({})", solver.stats());
                print_model(&model);
            }
            SolveResult::Unknown => unreachable!("CDCL is complete"),
        }
    }
    Ok(())
}

fn print_model(model: &Assignment) {
    print!("v");
    for (var, value) in model.iter() {
        let lit = if value {
            (var.index() + 1) as i64
        } else {
            -((var.index() + 1) as i64)
        };
        print!(" {lit}");
    }
    println!(" 0");
}
