//! Block-level view of the NBL-SAT hardware datapath (§V).
//!
//! Builds the paper's proposed analog signal chain out of simulated
//! components — noise sources (wideband-amplified thermal noise), analog
//! adders, analog multipliers, a low-pass filter and a correlator — and shows
//! the two correlation facts the whole scheme rests on:
//!
//! 1. ⟨N_i · N_j⟩ = 0 for independent sources,
//! 2. ⟨N_i²⟩ = Var > 0,
//!
//! then assembles the miniature NBL-SAT readout for the unsatisfiable
//! instance (x1)(¬x1) and its satisfiable sibling (x1)(x1).
//!
//! Run with:
//! ```text
//! cargo run --example analog_datapath
//! ```

use nbl_sat_repro::analog::{
    CorrelatorBlock, LowPassFilter, Multiplier, Netlist, NoiseSourceBlock, Summer,
};
use nbl_sat_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Fact 1 & 2: the correlator readout distinguishes self from cross products.
    let mut net = Netlist::new();
    let n1 = net.add_block(Box::new(NoiseSourceBlock::new(CarrierKind::Uniform, 1)));
    let n2 = net.add_block(Box::new(NoiseSourceBlock::new(CarrierKind::Uniform, 2)));
    let self_mult = net.add_block(Box::new(Multiplier::new()));
    let cross_mult = net.add_block(Box::new(Multiplier::new()));
    let self_corr = net.add_block(Box::new(CorrelatorBlock::new()));
    let cross_corr = net.add_block(Box::new(CorrelatorBlock::new()));
    net.connect(n1, self_mult, 0)?;
    net.connect(n1, self_mult, 1)?;
    net.connect(n1, cross_mult, 0)?;
    net.connect(n2, cross_mult, 1)?;
    net.connect(self_mult, self_corr, 0)?;
    net.connect(cross_mult, cross_corr, 0)?;
    for _ in 0..50_000 {
        net.step()?;
    }
    println!(
        "correlator readouts: ⟨N1·N1⟩ = {:+.5} (expected 1/12 ≈ 0.08333), ⟨N1·N2⟩ = {:+.5} (expected 0)",
        net.output(self_corr)?,
        net.output(cross_corr)?
    );

    // --- The same decision with a low-pass filter as the DC extractor,
    //     demonstrating the filter-based readout §V describes.
    let mut chain = Netlist::new();
    let a = chain.add_block(Box::new(NoiseSourceBlock::new(CarrierKind::Uniform, 3)));
    let sq = chain.add_block(Box::new(Multiplier::new()));
    let lp = chain.add_block(Box::new(LowPassFilter::with_order(0.002, 2)));
    chain.connect(a, sq, 0)?;
    chain.connect(a, sq, 1)?;
    chain.connect(sq, lp, 0)?;
    let filtered = chain.run(100_000, lp)?;
    println!("low-pass extracted DC of N² after 100k steps: {filtered:.5} (→ 1/12)");

    // --- Miniature NBL-SAT readout, built only from analog blocks:
    //     instance UNSAT = (x1)(¬x1) vs SAT = (x1)(x1), n = 1, m = 2.
    //     τ_N = N¹_{x1}N²_{x1} + N¹_{x̄1}N²_{x̄1}
    //     Σ_N(UNSAT) = N¹_{x1} · N²_{x̄1},   Σ_N(SAT) = N¹_{x1} · N²_{x1}
    for (label, sat_version) in [("(x1)(¬x1)  [UNSAT]", false), ("(x1)(x1)   [SAT]", true)] {
        let mut engine = Netlist::new();
        let p1 = engine.add_block(Box::new(NoiseSourceBlock::new(CarrierKind::Uniform, 10))); // N¹_{x1}
        let m1 = engine.add_block(Box::new(NoiseSourceBlock::new(CarrierKind::Uniform, 11))); // N¹_{x̄1}
        let p2 = engine.add_block(Box::new(NoiseSourceBlock::new(CarrierKind::Uniform, 12))); // N²_{x1}
        let m2 = engine.add_block(Box::new(NoiseSourceBlock::new(CarrierKind::Uniform, 13))); // N²_{x̄1}

        let tau_pos = engine.add_block(Box::new(Multiplier::new()));
        let tau_neg = engine.add_block(Box::new(Multiplier::new()));
        let tau = engine.add_block(Box::new(Summer::new(2)));
        engine.connect(p1, tau_pos, 0)?;
        engine.connect(p2, tau_pos, 1)?;
        engine.connect(m1, tau_neg, 0)?;
        engine.connect(m2, tau_neg, 1)?;
        engine.connect(tau_pos, tau, 0)?;
        engine.connect(tau_neg, tau, 1)?;

        let sigma = engine.add_block(Box::new(Multiplier::new()));
        engine.connect(p1, sigma, 0)?;
        engine.connect(if sat_version { p2 } else { m2 }, sigma, 1)?;

        let s_n = engine.add_block(Box::new(Multiplier::new()));
        let readout = engine.add_block(Box::new(CorrelatorBlock::new()));
        engine.connect(tau, s_n, 0)?;
        engine.connect(sigma, s_n, 1)?;
        engine.connect(s_n, readout, 0)?;

        let mean = engine.run(200_000, readout)?;
        println!(
            "block-level NBL-SAT readout for {label}: ⟨S_N⟩ = {mean:+.6} (expected {})",
            if sat_version {
                "(1/12)² ≈ +0.00694"
            } else {
                "0"
            }
        );
    }
    Ok(())
}
