//! The hybrid CPU + NBL-coprocessor solver (§V of the paper).

use crate::budget::BudgetMeter;
use crate::checker::SatChecker;
use crate::engine::NblEngine;
use crate::error::{NblSatError, Result};
use crate::transform::NblSatInstance;
use cnf::{
    propagate_units, Assignment, CnfFormula, PartialAssignment, PropagationOutcome, Variable,
};
use std::fmt;

/// Statistics of a hybrid solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HybridStats {
    /// Branching decisions made by the CPU-side search.
    pub decisions: u64,
    /// Conflicts (backtracks) encountered.
    pub conflicts: u64,
    /// Literals fixed by unit propagation.
    pub propagations: u64,
    /// NBL-SAT check operations issued to the coprocessor.
    pub coprocessor_checks: u64,
}

impl fmt::Display for HybridStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decisions={} conflicts={} propagations={} coprocessor_checks={}",
            self.decisions, self.conflicts, self.propagations, self.coprocessor_checks
        )
    }
}

/// A complete solver in which the branching variable and polarity are chosen
/// by an NBL coprocessor: for every candidate binding the coprocessor reports
/// the mean of the reduced `S_N`, which is proportional to the number of
/// satisfying minterms in that subspace, and the CPU follows the direction
/// with the larger mean (paper §V).
///
/// With an exact engine the guidance is perfect — the search never needs to
/// backtrack on satisfiable instances — but the solver retains full
/// backtracking so it stays complete (and correct) even with a noisy sampled
/// engine as the coprocessor.
#[derive(Debug, Clone)]
pub struct HybridSolver<E> {
    checker: SatChecker<E>,
    stats: HybridStats,
}

impl<E: NblEngine> HybridSolver<E> {
    /// Creates a hybrid solver around the given coprocessor engine.
    pub fn new(engine: E) -> Self {
        HybridSolver {
            checker: SatChecker::new(engine),
            stats: HybridStats::default(),
        }
    }

    /// Statistics of the most recent solve.
    pub fn stats(&self) -> HybridStats {
        self.stats
    }

    /// Solves the formula, returning a model when satisfiable and `None` when
    /// unsatisfiable.
    ///
    /// # Errors
    ///
    /// Propagates coprocessor (engine) errors such as size limits.
    pub fn solve(&mut self, formula: &CnfFormula) -> Result<Option<Assignment>> {
        self.solve_budgeted(formula, &mut BudgetMeter::default())
    }

    /// Budgeted solve: every coprocessor check is charged against `meter`, so
    /// a check, sample or wall-clock limit interrupts the CPU-side search
    /// between (and, for the sampled coprocessor, inside) the NBL estimates.
    ///
    /// # Errors
    ///
    /// [`NblSatError::BudgetExhausted`] when a limit fires, plus everything
    /// [`HybridSolver::solve`] can return. The statistics accumulated up to
    /// the interruption remain readable through [`HybridSolver::stats`].
    pub fn solve_budgeted(
        &mut self,
        formula: &CnfFormula,
        meter: &mut BudgetMeter,
    ) -> Result<Option<Assignment>> {
        self.stats = HybridStats::default();
        if formula.has_empty_clause() {
            return Ok(None);
        }
        if formula.num_clauses() == 0 || formula.num_vars() == 0 {
            return Ok(Some(Assignment::all_false(formula.num_vars())));
        }
        let instance = NblSatInstance::new(formula)?;
        let mut assignment = PartialAssignment::new(formula.num_vars());
        let found = self.search(&instance, &mut assignment, meter)?;
        if found {
            let model = assignment.to_complete(false);
            debug_assert!(formula.evaluate(&model));
            Ok(Some(model))
        } else {
            Ok(None)
        }
    }

    fn search(
        &mut self,
        instance: &NblSatInstance,
        assignment: &mut PartialAssignment,
        meter: &mut BudgetMeter,
    ) -> Result<bool> {
        let formula = instance.formula();
        let snapshot: Vec<Option<bool>> = (0..formula.num_vars())
            .map(|i| assignment.value(Variable::new(i)))
            .collect();
        match propagate_units(formula, assignment) {
            PropagationOutcome::Conflict { .. } => {
                self.stats.conflicts += 1;
                restore(assignment, &snapshot);
                return Ok(false);
            }
            PropagationOutcome::Consistent { implied } => {
                self.stats.propagations += implied.len() as u64;
            }
        }
        match formula.evaluate_partial(assignment) {
            Some(true) => return Ok(true),
            Some(false) => {
                self.stats.conflicts += 1;
                restore(assignment, &snapshot);
                return Ok(false);
            }
            None => {}
        }
        // Ask the coprocessor for guidance: for every free variable and both
        // polarities, estimate the reduced S_N mean and take the maximum.
        let mut best: Option<(Variable, bool, f64)> = None;
        for i in 0..formula.num_vars() {
            let var = Variable::new(i);
            if assignment.value(var).is_some() {
                continue;
            }
            for value in [true, false] {
                assignment.assign(var, value);
                let estimate = self.checker.estimate_budgeted(instance, assignment, meter);
                assignment.unassign(var);
                let estimate = match estimate {
                    Ok(estimate) => {
                        self.stats.coprocessor_checks += 1;
                        estimate
                    }
                    Err(e) => {
                        // Leave the assignment state consistent before
                        // propagating budget exhaustion (or any engine error)
                        // up through the recursion.
                        restore(assignment, &snapshot);
                        return Err(e);
                    }
                };
                let better = match best {
                    None => true,
                    Some((_, _, best_mean)) => estimate.mean > best_mean,
                };
                if better {
                    best = Some((var, value, estimate.mean));
                }
            }
        }
        let (var, first_value, best_mean) = match best {
            Some(b) => b,
            None => {
                // No free variable left: the partial evaluation above was
                // inconclusive only because of unconstrained variables.
                return Ok(formula.evaluate_partial(assignment) != Some(false));
            }
        };
        if best_mean <= 0.0 {
            // The coprocessor sees no satisfying minterm in any subspace
            // consistent with the current partial assignment.
            self.stats.conflicts += 1;
            restore(assignment, &snapshot);
            return Ok(false);
        }
        for value in [first_value, !first_value] {
            self.stats.decisions += 1;
            assignment.assign(var, value);
            if self.search(instance, assignment, meter)? {
                return Ok(true);
            }
            assignment.unassign(var);
        }
        restore(assignment, &snapshot);
        Ok(false)
    }

    /// Number of coprocessor checks issued over the solver's lifetime
    /// (not reset between solves), as reported by the inner checker.
    pub fn total_coprocessor_checks(&self) -> u64 {
        self.checker.checks_performed()
    }
}

/// Convenience: solve with perfect (symbolic) guidance and panic-free errors.
impl HybridSolver<crate::SymbolicEngine> {
    /// Creates a hybrid solver whose coprocessor is the exact symbolic engine
    /// (the ideal hardware limit).
    pub fn with_ideal_coprocessor() -> Self {
        HybridSolver::new(crate::SymbolicEngine::new())
    }
}

fn restore(assignment: &mut PartialAssignment, snapshot: &[Option<bool>]) {
    for (i, v) in snapshot.iter().enumerate() {
        match v {
            Some(b) => assignment.assign(Variable::new(i), *b),
            None => assignment.unassign(Variable::new(i)),
        }
    }
}

/// Guidance quality comparison helper: solves with both the hybrid solver and
/// a plain DPLL baseline, returning `(hybrid_decisions, dpll_decisions)`.
///
/// # Errors
///
/// Propagates coprocessor errors from the hybrid run.
pub fn compare_against_dpll<E: NblEngine>(
    solver: &mut HybridSolver<E>,
    formula: &CnfFormula,
) -> Result<(u64, u64)> {
    use sat_solvers::{DpllSolver, Solver};
    let hybrid_result = solver.solve(formula)?;
    let mut dpll = DpllSolver::new();
    let dpll_result = dpll.solve(formula);
    // Both must agree on satisfiability.
    debug_assert_eq!(hybrid_result.is_some(), dpll_result.is_sat());
    if hybrid_result.is_some() != dpll_result.is_sat() {
        return Err(NblSatError::Inconclusive {
            mean: 0.0,
            samples: 0,
        });
    }
    Ok((solver.stats().decisions, dpll.stats().decisions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::SymbolicEngine;
    use cnf::generators::{self, RandomKSatConfig};
    use sat_solvers::{BruteForceSolver, Solver};

    #[test]
    fn solves_paper_instances() {
        let mut solver = HybridSolver::with_ideal_coprocessor();
        assert!(solver.solve(&generators::example6_sat()).unwrap().is_some());
        assert!(solver
            .solve(&generators::example7_unsat())
            .unwrap()
            .is_none());
        assert!(solver
            .solve(&generators::section4_sat_instance())
            .unwrap()
            .is_some());
        assert!(solver
            .solve(&generators::section4_unsat_instance())
            .unwrap()
            .is_none());
    }

    #[test]
    fn ideal_guidance_never_backtracks_on_satisfiable_instances() {
        let mut solver = HybridSolver::with_ideal_coprocessor();
        for seed in 0..20 {
            let f =
                generators::random_ksat(&RandomKSatConfig::new(7, 21, 3).with_seed(seed)).unwrap();
            if f.count_satisfying_assignments() == 0 {
                continue;
            }
            let model = solver.solve(&f).unwrap().expect("satisfiable");
            assert!(f.evaluate(&model), "seed {seed}");
            assert_eq!(solver.stats().conflicts, 0, "seed {seed}");
            // At most one decision per variable.
            assert!(solver.stats().decisions <= f.num_vars() as u64);
        }
    }

    #[test]
    fn agrees_with_brute_force() {
        let mut solver = HybridSolver::new(SymbolicEngine::new());
        for seed in 0..25 {
            let f =
                generators::random_ksat(&RandomKSatConfig::new(6, 24, 3).with_seed(seed)).unwrap();
            let expected = BruteForceSolver::new().solve(&f).is_sat();
            let got = solver.solve(&f).unwrap();
            assert_eq!(got.is_some(), expected, "seed {seed}");
            if let Some(model) = got {
                assert!(f.evaluate(&model));
            }
        }
    }

    #[test]
    fn trivial_formulas() {
        let mut solver = HybridSolver::with_ideal_coprocessor();
        assert!(solver.solve(&CnfFormula::new(0)).unwrap().is_some());
        assert!(solver.solve(&CnfFormula::new(3)).unwrap().is_some());
        let mut with_empty = CnfFormula::new(2);
        with_empty.push_clause(cnf::Clause::new());
        assert!(solver.solve(&with_empty).unwrap().is_none());
    }

    #[test]
    fn stats_track_coprocessor_usage() {
        let mut solver = HybridSolver::with_ideal_coprocessor();
        let _ = solver.solve(&generators::example6_sat()).unwrap();
        let stats = solver.stats();
        assert!(stats.coprocessor_checks > 0);
        assert!(stats.decisions >= 1);
        assert!(solver.total_coprocessor_checks() >= stats.coprocessor_checks);
        assert!(stats.to_string().contains("coprocessor_checks"));
    }

    #[test]
    fn guidance_bounds_decisions_and_agrees_with_dpll() {
        // With ideal guidance the hybrid solver commits at most one decision
        // per variable and never backtracks on satisfiable instances; DPLL may
        // still win on raw decision count thanks to pure-literal shortcuts, so
        // the comparison below only requires the hybrid solver to be
        // competitive in aggregate.
        let mut hybrid_total = 0u64;
        let mut dpll_total = 0u64;
        let mut comparisons = 0usize;
        for seed in 0..15 {
            let f =
                generators::random_ksat(&RandomKSatConfig::new(7, 28, 3).with_seed(seed)).unwrap();
            if f.count_satisfying_assignments() == 0 {
                continue;
            }
            let mut solver = HybridSolver::with_ideal_coprocessor();
            let (hybrid_decisions, dpll_decisions) = compare_against_dpll(&mut solver, &f).unwrap();
            assert_eq!(solver.stats().conflicts, 0, "seed {seed}");
            assert!(hybrid_decisions <= f.num_vars() as u64, "seed {seed}");
            hybrid_total += hybrid_decisions;
            dpll_total += dpll_decisions;
            comparisons += 1;
        }
        assert!(comparisons > 5);
        assert!(
            hybrid_total <= 2 * dpll_total + comparisons as u64 * 2,
            "hybrid {hybrid_total} vs dpll {dpll_total}"
        );
    }

    #[test]
    fn check_budget_interrupts_the_search() {
        use crate::budget::{Budget, BudgetMeter, ExhaustedResource};
        let mut solver = HybridSolver::with_ideal_coprocessor();
        let f = generators::pigeonhole(4, 3);
        let mut meter = BudgetMeter::start(&Budget::unlimited().with_max_checks(5));
        let err = solver.solve_budgeted(&f, &mut meter).unwrap_err();
        assert!(matches!(
            err,
            NblSatError::BudgetExhausted {
                resource: ExhaustedResource::CoprocessorChecks
            }
        ));
        assert_eq!(meter.checks_used(), 5);
        assert_eq!(solver.stats().coprocessor_checks, 5);
        // The same solver still works with an unlimited budget afterwards.
        assert!(solver.solve(&generators::example6_sat()).unwrap().is_some());
    }

    #[test]
    fn unsat_instances_report_conflicts() {
        let mut solver = HybridSolver::with_ideal_coprocessor();
        assert!(solver
            .solve(&generators::pigeonhole(3, 2))
            .unwrap()
            .is_none());
        assert!(solver.stats().conflicts > 0 || solver.stats().decisions == 0);
    }
}
