//! Resource budgets for the unified solving API.
//!
//! A [`Budget`] expresses what a caller is willing to spend on one solve:
//! wall-clock time, noise samples (the cost unit of the Monte-Carlo
//! [`crate::SampledEngine`] — §IV of the paper runs up to 10⁸ of them per
//! decision), and NBL coprocessor check operations (the paper's own
//! complexity metric: Algorithm 1 is one check, Algorithm 2 at most `n`
//! more, and the §V hybrid flow two per free variable per decision).
//!
//! A [`BudgetMeter`] is the running account for one solve. It is threaded
//! through the engines, the checker, the extractor and the hybrid solver so
//! that limits *interrupt* the inner loops — exhaustion surfaces as
//! [`NblSatError::BudgetExhausted`], which the backend adapters translate
//! into a [`crate::SolveVerdict::Unknown`] outcome rather than an error.

use crate::error::{NblSatError, Result};
use sat_solvers::limits::saturating_deadline_after;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The resource that ran out when a budget was exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExhaustedResource {
    /// The wall-clock limit passed.
    WallClock,
    /// The noise-sample allowance was consumed.
    Samples,
    /// The coprocessor-check allowance was consumed.
    CoprocessorChecks,
}

impl fmt::Display for ExhaustedResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExhaustedResource::WallClock => write!(f, "wall-clock time"),
            ExhaustedResource::Samples => write!(f, "noise samples"),
            ExhaustedResource::CoprocessorChecks => write!(f, "coprocessor checks"),
        }
    }
}

/// Resource limits for a single solve. `None` means unlimited.
///
/// ```
/// use nbl_sat_core::Budget;
/// use std::time::Duration;
///
/// let budget = Budget::unlimited()
///     .with_wall_time(Duration::from_secs(2))
///     .with_max_samples(1_000_000)
///     .with_max_checks(64);
/// assert_eq!(budget.max_checks, Some(64));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Wall-clock allowance for the whole solve.
    pub wall_time: Option<Duration>,
    /// Total noise samples the sampled engine may draw across all checks.
    pub max_samples: Option<u64>,
    /// Total NBL check operations (Algorithm 1 invocations) allowed.
    pub max_checks: Option<u64>,
}

impl Budget {
    /// No limits at all.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Sets the wall-clock allowance.
    pub fn with_wall_time(mut self, wall_time: Duration) -> Self {
        self.wall_time = Some(wall_time);
        self
    }

    /// Sets the total noise-sample allowance.
    pub fn with_max_samples(mut self, max_samples: u64) -> Self {
        self.max_samples = Some(max_samples);
        self
    }

    /// Sets the total coprocessor-check allowance.
    pub fn with_max_checks(mut self, max_checks: u64) -> Self {
        self.max_checks = Some(max_checks);
        self
    }

    /// Returns `true` if no limit is set on any resource.
    pub fn is_unlimited(&self) -> bool {
        self.wall_time.is_none() && self.max_samples.is_none() && self.max_checks.is_none()
    }
}

/// The running account of one solve against a [`Budget`].
///
/// Created when the solve starts (fixing the wall-clock deadline) and passed
/// by mutable reference through every layer that spends resources.
#[derive(Debug, Clone)]
pub struct BudgetMeter {
    deadline: Option<Instant>,
    cancel: Vec<Arc<AtomicBool>>,
    max_samples: Option<u64>,
    samples_used: u64,
    max_checks: Option<u64>,
    checks_used: u64,
}

impl BudgetMeter {
    /// Starts metering against `budget`; the wall-clock deadline is fixed
    /// now. A wall budget too large to represent as an absolute deadline
    /// (e.g. [`Duration::MAX`]) saturates to a far-future deadline instead of
    /// silently becoming unlimited.
    pub fn start(budget: &Budget) -> Self {
        BudgetMeter {
            deadline: budget
                .wall_time
                .map(|wall| saturating_deadline_after(Instant::now(), wall)),
            cancel: Vec::new(),
            max_samples: budget.max_samples,
            samples_used: 0,
            max_checks: budget.max_checks,
            checks_used: 0,
        }
    }

    /// Chains a cancellation token onto the meter: once any chained flag is
    /// raised, [`BudgetMeter::ensure_time`] errors with
    /// [`NblSatError::Cancelled`], so every loop that polls the deadline also
    /// observes cancellation — this is what makes the NBL engines (which meter
    /// their work rather than taking [`sat_solvers::SearchLimits`])
    /// cancellable mid-check.
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel.push(cancel);
        self
    }

    /// The absolute wall-clock deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Returns `true` once any chained cancellation flag was raised.
    pub fn cancelled(&self) -> bool {
        self.cancel.iter().any(|flag| flag.load(Ordering::Relaxed))
    }

    /// Errors with [`NblSatError::Cancelled`] once a chained cancellation
    /// flag was raised, or with [`NblSatError::BudgetExhausted`] once the
    /// deadline passed.
    pub fn ensure_time(&self) -> Result<()> {
        if self.cancelled() {
            return Err(NblSatError::Cancelled);
        }
        match self.deadline {
            Some(deadline) if Instant::now() >= deadline => Err(NblSatError::BudgetExhausted {
                resource: ExhaustedResource::WallClock,
            }),
            _ => Ok(()),
        }
    }

    /// Charges one coprocessor check, erroring when the allowance is spent.
    pub fn charge_check(&mut self) -> Result<()> {
        if let Some(max) = self.max_checks {
            if self.checks_used >= max {
                return Err(NblSatError::BudgetExhausted {
                    resource: ExhaustedResource::CoprocessorChecks,
                });
            }
        }
        self.checks_used += 1;
        Ok(())
    }

    /// Records `n` noise samples as spent (never errors: engines clamp their
    /// sample loops to [`BudgetMeter::remaining_samples`] up front).
    pub fn charge_samples(&mut self, n: u64) {
        self.samples_used = self.samples_used.saturating_add(n);
    }

    /// Samples still available, or `None` when unlimited.
    pub fn remaining_samples(&self) -> Option<u64> {
        self.max_samples
            .map(|max| max.saturating_sub(self.samples_used))
    }

    /// Errors with [`NblSatError::BudgetExhausted`] when a sample limit exists
    /// and nothing of it is left.
    pub fn ensure_samples(&self) -> Result<()> {
        if self.remaining_samples() == Some(0) {
            return Err(NblSatError::BudgetExhausted {
                resource: ExhaustedResource::Samples,
            });
        }
        Ok(())
    }

    /// Returns `true` if a sample limit is configured.
    pub fn sample_limited(&self) -> bool {
        self.max_samples.is_some()
    }

    /// Samples spent so far.
    pub fn samples_used(&self) -> u64 {
        self.samples_used
    }

    /// Checks spent so far.
    pub fn checks_used(&self) -> u64 {
        self.checks_used
    }
}

impl Default for BudgetMeter {
    fn default() -> Self {
        BudgetMeter::start(&Budget::unlimited())
    }
}

/// One [`Budget`] shared by a whole batch of solves running concurrently.
///
/// Where a [`BudgetMeter`] is the private account of a single solve, a
/// `SharedBudget` is the *common pool* of a [`crate::SolveBatch`] or a
/// [`crate::SolveService`]: one wall-clock deadline (fixed when the pool
/// starts) plus atomic sample and check counters that every worker thread
/// charges. The pool hands each request a *slice* — a per-request [`Budget`]
/// no larger than what remains — so the existing per-solve metering machinery
/// enforces the shared limits without any locking inside the solver loops.
///
/// # Accounting semantics
///
/// Reservation is optimistic: a request's slice is computed from the pool's
/// remainder when the request *starts*, and its actual spend is charged back
/// when it *finishes*. Each individual request always respects the remainder
/// it saw, and the charge-back saturates at the pool ceiling, so the spent
/// counters never exceed the configured budget even when concurrent in-flight
/// requests were handed overlapping slices. A request that starts after the
/// pool is empty is answered `Unknown(BudgetExhausted)` without running at
/// all. The wall-clock deadline has no slice slack: it is one absolute
/// instant that every solver polls inside its loops.
///
/// # Refilling
///
/// A long-lived front end (the [`crate::SolveService`]) can top the pool back
/// up: [`SharedBudget::refill_samples`] / [`SharedBudget::refill_checks`]
/// return spent allowance to the pool, and
/// [`SharedBudget::extend_deadline`] pushes the wall-clock deadline out.
/// Unlimited resources stay unlimited; refilling them is a no-op.
#[derive(Debug)]
pub struct SharedBudget {
    deadline: Mutex<Option<Instant>>,
    max_samples: Option<u64>,
    samples_used: AtomicU64,
    max_checks: Option<u64>,
    checks_used: AtomicU64,
}

/// Adds `amount` to `counter`, saturating at `ceiling` so optimistic
/// post-hoc charge-back can never report more spend than the pool holds.
fn charge_saturating(counter: &AtomicU64, ceiling: u64, amount: u64) {
    let mut seen = counter.load(Ordering::Relaxed);
    loop {
        let next = seen.saturating_add(amount).min(ceiling);
        match counter.compare_exchange_weak(seen, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => seen = actual,
        }
    }
}

impl SharedBudget {
    /// Starts the shared pool; the wall-clock deadline is fixed now (and
    /// saturates like [`BudgetMeter::start`] on overflow).
    pub fn start(budget: &Budget) -> Self {
        SharedBudget {
            deadline: Mutex::new(
                budget
                    .wall_time
                    .map(|wall| saturating_deadline_after(Instant::now(), wall)),
            ),
            max_samples: budget.max_samples,
            samples_used: AtomicU64::new(0),
            max_checks: budget.max_checks,
            checks_used: AtomicU64::new(0),
        }
    }

    /// The absolute wall-clock deadline of the pool, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        *self.deadline.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The first resource of the pool that is already spent, or `None` while
    /// everything still has headroom. Requests starting while this is `Some`
    /// should be starved (answered `Unknown(BudgetExhausted)`) rather than
    /// run.
    pub fn exhausted(&self) -> Option<ExhaustedResource> {
        if let Some(deadline) = self.deadline() {
            if Instant::now() >= deadline {
                return Some(ExhaustedResource::WallClock);
            }
        }
        if self.remaining_samples() == Some(0) {
            return Some(ExhaustedResource::Samples);
        }
        if self.remaining_checks() == Some(0) {
            return Some(ExhaustedResource::CoprocessorChecks);
        }
        None
    }

    /// Samples still available in the pool, or `None` when unlimited.
    pub fn remaining_samples(&self) -> Option<u64> {
        self.max_samples
            .map(|max| max.saturating_sub(self.samples_used.load(Ordering::Relaxed)))
    }

    /// Checks still available in the pool, or `None` when unlimited.
    pub fn remaining_checks(&self) -> Option<u64> {
        self.max_checks
            .map(|max| max.saturating_sub(self.checks_used.load(Ordering::Relaxed)))
    }

    /// The per-request budget slice: the pool's current remainder, further
    /// capped by the request's own `budget` on every resource (whichever is
    /// smaller wins).
    pub fn slice(&self, request: &Budget) -> Budget {
        fn min_opt(a: Option<u64>, b: Option<u64>) -> Option<u64> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            }
        }
        let remaining_wall = self
            .deadline()
            .map(|deadline| deadline.saturating_duration_since(Instant::now()));
        let wall_time = match (remaining_wall, request.wall_time) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        };
        Budget {
            wall_time,
            max_samples: min_opt(self.remaining_samples(), request.max_samples),
            max_checks: min_opt(self.remaining_checks(), request.max_checks),
        }
    }

    /// Charges a finished request's actual spend back to the pool, saturating
    /// at the pool ceiling: `spent <= budget` holds at all times, even when
    /// concurrently running requests were handed overlapping slices.
    pub fn charge(&self, samples: u64, checks: u64) {
        if let Some(max) = self.max_samples {
            charge_saturating(&self.samples_used, max, samples);
        }
        if let Some(max) = self.max_checks {
            charge_saturating(&self.checks_used, max, checks);
        }
    }

    /// Returns `samples` of spent allowance to the pool (saturating at a
    /// fully unspent pool). A no-op on an unlimited sample pool.
    pub fn refill_samples(&self, samples: u64) {
        if self.max_samples.is_some() {
            let _ = self
                .samples_used
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |used| {
                    Some(used.saturating_sub(samples))
                });
        }
    }

    /// Returns `checks` of spent allowance to the pool (saturating at a
    /// fully unspent pool). A no-op on an unlimited check pool.
    pub fn refill_checks(&self, checks: u64) {
        if self.max_checks.is_some() {
            let _ = self
                .checks_used
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |used| {
                    Some(used.saturating_sub(checks))
                });
        }
    }

    /// Pushes the wall-clock deadline `extra` further out, measured from the
    /// current deadline or from now if that has already passed (so refilling
    /// a spent pool grants a full fresh window, not a partial one). A no-op
    /// on a pool without a wall-clock limit.
    pub fn extend_deadline(&self, extra: Duration) {
        let mut deadline = self.deadline.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(current) = *deadline {
            let base = current.max(Instant::now());
            *deadline = Some(saturating_deadline_after(base, extra));
        }
    }

    /// Samples charged to the pool so far.
    pub fn samples_used(&self) -> u64 {
        self.samples_used.load(Ordering::Relaxed)
    }

    /// Checks charged to the pool so far.
    pub fn checks_used(&self) -> u64 {
        self.checks_used.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let mut meter = BudgetMeter::start(&Budget::unlimited());
        assert!(Budget::unlimited().is_unlimited());
        assert!(meter.ensure_time().is_ok());
        assert!(meter.ensure_samples().is_ok());
        for _ in 0..1000 {
            assert!(meter.charge_check().is_ok());
        }
        meter.charge_samples(u64::MAX);
        meter.charge_samples(1); // saturates, no panic
        assert_eq!(meter.remaining_samples(), None);
        assert!(!meter.sample_limited());
    }

    #[test]
    fn check_allowance_is_enforced() {
        let mut meter = BudgetMeter::start(&Budget::unlimited().with_max_checks(2));
        assert!(meter.charge_check().is_ok());
        assert!(meter.charge_check().is_ok());
        let err = meter.charge_check().unwrap_err();
        assert!(matches!(
            err,
            NblSatError::BudgetExhausted {
                resource: ExhaustedResource::CoprocessorChecks
            }
        ));
        assert_eq!(meter.checks_used(), 2);
    }

    #[test]
    fn sample_allowance_is_tracked() {
        let mut meter = BudgetMeter::start(&Budget::unlimited().with_max_samples(100));
        assert!(meter.sample_limited());
        assert_eq!(meter.remaining_samples(), Some(100));
        meter.charge_samples(60);
        assert_eq!(meter.remaining_samples(), Some(40));
        meter.charge_samples(60);
        assert_eq!(meter.remaining_samples(), Some(0));
        assert!(matches!(
            meter.ensure_samples().unwrap_err(),
            NblSatError::BudgetExhausted {
                resource: ExhaustedResource::Samples
            }
        ));
        assert_eq!(meter.samples_used(), 120);
    }

    #[test]
    fn zero_wall_time_expires_immediately() {
        let meter = BudgetMeter::start(&Budget::unlimited().with_wall_time(Duration::ZERO));
        assert!(meter.deadline().is_some());
        assert!(matches!(
            meter.ensure_time().unwrap_err(),
            NblSatError::BudgetExhausted {
                resource: ExhaustedResource::WallClock
            }
        ));
        let generous =
            BudgetMeter::start(&Budget::unlimited().with_wall_time(Duration::from_secs(3600)));
        assert!(generous.ensure_time().is_ok());
    }

    #[test]
    fn duration_max_wall_budget_saturates_instead_of_unlimiting() {
        // Regression: Duration::MAX used to overflow checked_add and fall
        // back to None, i.e. *no* deadline at all.
        let meter = BudgetMeter::start(&Budget::unlimited().with_wall_time(Duration::MAX));
        let deadline = meter.deadline().expect("deadline must survive overflow");
        assert!(meter.ensure_time().is_ok());
        assert!(deadline.duration_since(Instant::now()) > Duration::from_secs(86_400 * 365));
        let shared = SharedBudget::start(&Budget::unlimited().with_wall_time(Duration::MAX));
        assert!(shared.deadline().is_some());
        assert_eq!(shared.exhausted(), None);
    }

    #[test]
    fn shared_budget_slices_and_charges() {
        let shared = SharedBudget::start(
            &Budget::unlimited()
                .with_max_samples(100)
                .with_max_checks(10),
        );
        assert_eq!(shared.exhausted(), None);
        // The slice is the remainder, capped by the request's own budget.
        let slice = shared.slice(&Budget::unlimited());
        assert_eq!(slice.max_samples, Some(100));
        assert_eq!(slice.max_checks, Some(10));
        let capped = shared.slice(&Budget::unlimited().with_max_samples(30));
        assert_eq!(capped.max_samples, Some(30));
        shared.charge(60, 4);
        assert_eq!(shared.remaining_samples(), Some(40));
        assert_eq!(shared.remaining_checks(), Some(6));
        assert_eq!(shared.samples_used(), 60);
        assert_eq!(shared.checks_used(), 4);
        shared.charge(40, 0);
        assert_eq!(shared.exhausted(), Some(ExhaustedResource::Samples));
        // Unlimited resources are never charged (no counter wrap risk).
        let unlimited = SharedBudget::start(&Budget::unlimited());
        unlimited.charge(u64::MAX, u64::MAX);
        assert_eq!(unlimited.samples_used(), 0);
        assert_eq!(unlimited.remaining_samples(), None);
        assert_eq!(unlimited.exhausted(), None);
    }

    #[test]
    fn shared_budget_wall_clock_exhaustion() {
        let shared = SharedBudget::start(&Budget::unlimited().with_wall_time(Duration::ZERO));
        assert_eq!(shared.exhausted(), Some(ExhaustedResource::WallClock));
        // The slice of an exhausted pool has zero wall allowance left.
        let slice = shared.slice(&Budget::unlimited());
        assert_eq!(slice.wall_time, Some(Duration::ZERO));
    }

    #[test]
    fn meter_cancellation_interrupts_ensure_time() {
        let flag = Arc::new(AtomicBool::new(false));
        let meter = BudgetMeter::start(&Budget::unlimited()).with_cancel(Arc::clone(&flag));
        assert!(!meter.cancelled());
        assert!(meter.ensure_time().is_ok());
        flag.store(true, Ordering::Relaxed);
        assert!(meter.cancelled());
        assert!(matches!(
            meter.ensure_time().unwrap_err(),
            NblSatError::Cancelled
        ));
        // Cancellation outranks the deadline in the report.
        let expired = BudgetMeter::start(&Budget::unlimited().with_wall_time(Duration::ZERO))
            .with_cancel(flag);
        assert!(matches!(
            expired.ensure_time().unwrap_err(),
            NblSatError::Cancelled
        ));
    }

    #[test]
    fn shared_charge_saturates_at_the_pool_ceiling() {
        // Regression: optimistic post-hoc charging used to fetch_add blindly,
        // so two in-flight jobs that each spent their full slice pushed the
        // spent counter past the configured budget.
        let shared = SharedBudget::start(&Budget::unlimited().with_max_samples(100));
        shared.charge(80, 0);
        shared.charge(80, 0); // second charge-back overdraws; must clamp
        assert_eq!(shared.samples_used(), 100);
        assert_eq!(shared.remaining_samples(), Some(0));
        assert_eq!(shared.exhausted(), Some(ExhaustedResource::Samples));
    }

    #[test]
    fn shared_charge_never_exceeds_budget_under_contention() {
        const BUDGET: u64 = 10_000;
        let shared = SharedBudget::start(
            &Budget::unlimited()
                .with_max_samples(BUDGET)
                .with_max_checks(BUDGET),
        );
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..500 {
                        shared.charge(7, 13);
                        assert!(shared.samples_used() <= BUDGET, "sample overdraw");
                        assert!(shared.checks_used() <= BUDGET, "check overdraw");
                    }
                });
            }
        });
        // 8 * 500 * 13 > BUDGET, so the check pool must have clamped exactly.
        assert_eq!(shared.checks_used(), BUDGET);
        assert!(shared.samples_used() <= BUDGET);
    }

    #[test]
    fn refill_returns_spent_allowance_to_the_pool() {
        let shared = SharedBudget::start(&Budget::unlimited().with_max_checks(4));
        shared.charge(0, 4);
        assert_eq!(
            shared.exhausted(),
            Some(ExhaustedResource::CoprocessorChecks)
        );
        shared.refill_checks(2);
        assert_eq!(shared.remaining_checks(), Some(2));
        assert_eq!(shared.exhausted(), None);
        // Refilling more than was spent saturates at a fully unspent pool;
        // the ceiling itself never grows.
        shared.refill_checks(u64::MAX);
        assert_eq!(shared.remaining_checks(), Some(4));
        // Unlimited pools ignore refills entirely.
        let unlimited = SharedBudget::start(&Budget::unlimited());
        unlimited.refill_samples(10);
        unlimited.refill_checks(10);
        assert_eq!(unlimited.remaining_samples(), None);
        assert_eq!(unlimited.remaining_checks(), None);
    }

    #[test]
    fn extend_deadline_revives_a_spent_wall_pool() {
        let shared = SharedBudget::start(&Budget::unlimited().with_wall_time(Duration::ZERO));
        assert_eq!(shared.exhausted(), Some(ExhaustedResource::WallClock));
        shared.extend_deadline(Duration::from_secs(3600));
        assert_eq!(shared.exhausted(), None);
        assert!(shared.deadline().unwrap() > Instant::now());
        // A pool with no wall limit stays unlimited.
        let unlimited = SharedBudget::start(&Budget::unlimited());
        unlimited.extend_deadline(Duration::from_secs(1));
        assert_eq!(unlimited.deadline(), None);
    }

    #[test]
    fn exhausted_resource_display() {
        assert_eq!(ExhaustedResource::WallClock.to_string(), "wall-clock time");
        assert_eq!(ExhaustedResource::Samples.to_string(), "noise samples");
        assert_eq!(
            ExhaustedResource::CoprocessorChecks.to_string(),
            "coprocessor checks"
        );
    }
}
