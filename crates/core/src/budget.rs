//! Resource budgets for the unified solving API.
//!
//! A [`Budget`] expresses what a caller is willing to spend on one solve:
//! wall-clock time, noise samples (the cost unit of the Monte-Carlo
//! [`crate::SampledEngine`] — §IV of the paper runs up to 10⁸ of them per
//! decision), and NBL coprocessor check operations (the paper's own
//! complexity metric: Algorithm 1 is one check, Algorithm 2 at most `n`
//! more, and the §V hybrid flow two per free variable per decision).
//!
//! A [`BudgetMeter`] is the running account for one solve. It is threaded
//! through the engines, the checker, the extractor and the hybrid solver so
//! that limits *interrupt* the inner loops — exhaustion surfaces as
//! [`NblSatError::BudgetExhausted`], which the backend adapters translate
//! into a [`crate::SolveVerdict::Unknown`] outcome rather than an error.

use crate::error::{NblSatError, Result};
use std::fmt;
use std::time::{Duration, Instant};

/// The resource that ran out when a budget was exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExhaustedResource {
    /// The wall-clock limit passed.
    WallClock,
    /// The noise-sample allowance was consumed.
    Samples,
    /// The coprocessor-check allowance was consumed.
    CoprocessorChecks,
}

impl fmt::Display for ExhaustedResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExhaustedResource::WallClock => write!(f, "wall-clock time"),
            ExhaustedResource::Samples => write!(f, "noise samples"),
            ExhaustedResource::CoprocessorChecks => write!(f, "coprocessor checks"),
        }
    }
}

/// Resource limits for a single solve. `None` means unlimited.
///
/// ```
/// use nbl_sat_core::Budget;
/// use std::time::Duration;
///
/// let budget = Budget::unlimited()
///     .with_wall_time(Duration::from_secs(2))
///     .with_max_samples(1_000_000)
///     .with_max_checks(64);
/// assert_eq!(budget.max_checks, Some(64));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Wall-clock allowance for the whole solve.
    pub wall_time: Option<Duration>,
    /// Total noise samples the sampled engine may draw across all checks.
    pub max_samples: Option<u64>,
    /// Total NBL check operations (Algorithm 1 invocations) allowed.
    pub max_checks: Option<u64>,
}

impl Budget {
    /// No limits at all.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Sets the wall-clock allowance.
    pub fn with_wall_time(mut self, wall_time: Duration) -> Self {
        self.wall_time = Some(wall_time);
        self
    }

    /// Sets the total noise-sample allowance.
    pub fn with_max_samples(mut self, max_samples: u64) -> Self {
        self.max_samples = Some(max_samples);
        self
    }

    /// Sets the total coprocessor-check allowance.
    pub fn with_max_checks(mut self, max_checks: u64) -> Self {
        self.max_checks = Some(max_checks);
        self
    }

    /// Returns `true` if no limit is set on any resource.
    pub fn is_unlimited(&self) -> bool {
        self.wall_time.is_none() && self.max_samples.is_none() && self.max_checks.is_none()
    }
}

/// The running account of one solve against a [`Budget`].
///
/// Created when the solve starts (fixing the wall-clock deadline) and passed
/// by mutable reference through every layer that spends resources.
#[derive(Debug, Clone)]
pub struct BudgetMeter {
    deadline: Option<Instant>,
    max_samples: Option<u64>,
    samples_used: u64,
    max_checks: Option<u64>,
    checks_used: u64,
}

impl BudgetMeter {
    /// Starts metering against `budget`; the wall-clock deadline is fixed now.
    pub fn start(budget: &Budget) -> Self {
        BudgetMeter {
            deadline: budget
                .wall_time
                .and_then(|wall| Instant::now().checked_add(wall)),
            max_samples: budget.max_samples,
            samples_used: 0,
            max_checks: budget.max_checks,
            checks_used: 0,
        }
    }

    /// The absolute wall-clock deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Errors with [`NblSatError::BudgetExhausted`] once the deadline passed.
    pub fn ensure_time(&self) -> Result<()> {
        match self.deadline {
            Some(deadline) if Instant::now() >= deadline => Err(NblSatError::BudgetExhausted {
                resource: ExhaustedResource::WallClock,
            }),
            _ => Ok(()),
        }
    }

    /// Charges one coprocessor check, erroring when the allowance is spent.
    pub fn charge_check(&mut self) -> Result<()> {
        if let Some(max) = self.max_checks {
            if self.checks_used >= max {
                return Err(NblSatError::BudgetExhausted {
                    resource: ExhaustedResource::CoprocessorChecks,
                });
            }
        }
        self.checks_used += 1;
        Ok(())
    }

    /// Records `n` noise samples as spent (never errors: engines clamp their
    /// sample loops to [`BudgetMeter::remaining_samples`] up front).
    pub fn charge_samples(&mut self, n: u64) {
        self.samples_used = self.samples_used.saturating_add(n);
    }

    /// Samples still available, or `None` when unlimited.
    pub fn remaining_samples(&self) -> Option<u64> {
        self.max_samples
            .map(|max| max.saturating_sub(self.samples_used))
    }

    /// Errors with [`NblSatError::BudgetExhausted`] when a sample limit exists
    /// and nothing of it is left.
    pub fn ensure_samples(&self) -> Result<()> {
        if self.remaining_samples() == Some(0) {
            return Err(NblSatError::BudgetExhausted {
                resource: ExhaustedResource::Samples,
            });
        }
        Ok(())
    }

    /// Returns `true` if a sample limit is configured.
    pub fn sample_limited(&self) -> bool {
        self.max_samples.is_some()
    }

    /// Samples spent so far.
    pub fn samples_used(&self) -> u64 {
        self.samples_used
    }

    /// Checks spent so far.
    pub fn checks_used(&self) -> u64 {
        self.checks_used
    }
}

impl Default for BudgetMeter {
    fn default() -> Self {
        BudgetMeter::start(&Budget::unlimited())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let mut meter = BudgetMeter::start(&Budget::unlimited());
        assert!(Budget::unlimited().is_unlimited());
        assert!(meter.ensure_time().is_ok());
        assert!(meter.ensure_samples().is_ok());
        for _ in 0..1000 {
            assert!(meter.charge_check().is_ok());
        }
        meter.charge_samples(u64::MAX);
        meter.charge_samples(1); // saturates, no panic
        assert_eq!(meter.remaining_samples(), None);
        assert!(!meter.sample_limited());
    }

    #[test]
    fn check_allowance_is_enforced() {
        let mut meter = BudgetMeter::start(&Budget::unlimited().with_max_checks(2));
        assert!(meter.charge_check().is_ok());
        assert!(meter.charge_check().is_ok());
        let err = meter.charge_check().unwrap_err();
        assert!(matches!(
            err,
            NblSatError::BudgetExhausted {
                resource: ExhaustedResource::CoprocessorChecks
            }
        ));
        assert_eq!(meter.checks_used(), 2);
    }

    #[test]
    fn sample_allowance_is_tracked() {
        let mut meter = BudgetMeter::start(&Budget::unlimited().with_max_samples(100));
        assert!(meter.sample_limited());
        assert_eq!(meter.remaining_samples(), Some(100));
        meter.charge_samples(60);
        assert_eq!(meter.remaining_samples(), Some(40));
        meter.charge_samples(60);
        assert_eq!(meter.remaining_samples(), Some(0));
        assert!(matches!(
            meter.ensure_samples().unwrap_err(),
            NblSatError::BudgetExhausted {
                resource: ExhaustedResource::Samples
            }
        ));
        assert_eq!(meter.samples_used(), 120);
    }

    #[test]
    fn zero_wall_time_expires_immediately() {
        let meter = BudgetMeter::start(&Budget::unlimited().with_wall_time(Duration::ZERO));
        assert!(meter.deadline().is_some());
        assert!(matches!(
            meter.ensure_time().unwrap_err(),
            NblSatError::BudgetExhausted {
                resource: ExhaustedResource::WallClock
            }
        ));
        let generous =
            BudgetMeter::start(&Budget::unlimited().with_wall_time(Duration::from_secs(3600)));
        assert!(generous.ensure_time().is_ok());
    }

    #[test]
    fn exhausted_resource_display() {
        assert_eq!(ExhaustedResource::WallClock.to_string(), "wall-clock time");
        assert_eq!(ExhaustedResource::Samples.to_string(), "noise samples");
        assert_eq!(
            ExhaustedResource::CoprocessorChecks.to_string(),
            "coprocessor checks"
        );
    }
}
