//! The SAT → NBL-SAT transformation (§III.C of the paper).

use crate::error::{NblSatError, Result};
use cnf::{CnfFormula, FormulaStats, Literal, PartialAssignment, Variable};
use nbl_logic::BasisId;
use std::fmt;

/// Dense index of a basis noise source allocated by the transform.
///
/// The transform allocates one independent basis source per
/// `(clause, variable, polarity)` triple — `N^j_{x_i}` and `N^j_{x̄_i}` in the
/// paper's notation — for a total of `2·m·n` sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceIndex(usize);

impl SourceIndex {
    /// The dense index (usable to address sample buffers).
    pub fn index(self) -> usize {
        self.0
    }

    /// Converts to a [`BasisId`] for use with the `nbl-logic` algebra.
    pub fn basis_id(self) -> BasisId {
        BasisId::new(self.0)
    }
}

impl fmt::Display for SourceIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src{}", self.0)
    }
}

/// An NBL-SAT instance: a CNF formula together with the basis-source
/// allocation of the noise-based transform.
///
/// The instance is immutable once constructed; engines combine it with a
/// [`PartialAssignment`] of *bindings* (the τ_N restrictions of Algorithm 2)
/// at estimation time.
///
/// ```
/// use cnf::cnf_formula;
/// use nbl_sat_core::NblSatInstance;
///
/// let formula = cnf_formula![[1, 2], [-1, -2]];
/// let instance = NblSatInstance::new(&formula)?;
/// assert_eq!(instance.num_vars(), 2);
/// assert_eq!(instance.num_clauses(), 2);
/// assert_eq!(instance.num_sources(), 8); // 2 · m · n
/// # Ok::<(), nbl_sat_core::NblSatError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NblSatInstance {
    formula: CnfFormula,
    num_vars: usize,
    num_clauses: usize,
}

impl NblSatInstance {
    /// Transforms a CNF formula into an NBL-SAT instance.
    ///
    /// # Errors
    ///
    /// * [`NblSatError::DegenerateFormula`] if the formula has no variables or
    ///   no clauses (nothing to encode — handle trivial instances upstream).
    /// * [`NblSatError::EmptyClause`] if some clause is empty (it has no
    ///   satisfying cube subspace and the instance is trivially UNSAT).
    pub fn new(formula: &CnfFormula) -> Result<Self> {
        if formula.num_vars() == 0 {
            return Err(NblSatError::DegenerateFormula(
                "formula has no variables".into(),
            ));
        }
        if formula.num_clauses() == 0 {
            return Err(NblSatError::DegenerateFormula(
                "formula has no clauses".into(),
            ));
        }
        if let Some(idx) = formula.iter().position(|c| c.is_empty()) {
            return Err(NblSatError::EmptyClause { clause_index: idx });
        }
        Ok(NblSatInstance {
            num_vars: formula.num_vars(),
            num_clauses: formula.num_clauses(),
            formula: formula.clone(),
        })
    }

    /// The underlying CNF formula.
    pub fn formula(&self) -> &CnfFormula {
        &self.formula
    }

    /// Number of variables `n`.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses `m`.
    pub fn num_clauses(&self) -> usize {
        self.num_clauses
    }

    /// Total number of basis noise sources: `2·m·n`.
    pub fn num_sources(&self) -> usize {
        2 * self.num_vars * self.num_clauses
    }

    /// The exponent `n·m` that governs the paper's product-count and SNR scaling.
    pub fn nm(&self) -> usize {
        self.num_vars * self.num_clauses
    }

    /// Formula statistics (clause lengths, ratios, ...).
    pub fn stats(&self) -> FormulaStats {
        FormulaStats::of(&self.formula)
    }

    /// The basis source `N^j_{x_i}` (positive) or `N^j_{x̄_i}` (negative) for
    /// clause `j`, variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `clause >= m` or `var.index() >= n`.
    pub fn source(&self, clause: usize, var: Variable, positive: bool) -> SourceIndex {
        assert!(clause < self.num_clauses, "clause index out of range");
        assert!(var.index() < self.num_vars, "variable index out of range");
        SourceIndex(((clause * self.num_vars) + var.index()) * 2 + usize::from(!positive))
    }

    /// The basis source carrying `literal` in clause `clause`.
    ///
    /// # Panics
    ///
    /// Panics if the clause or variable is out of range.
    pub fn literal_source(&self, clause: usize, literal: Literal) -> SourceIndex {
        self.source(clause, literal.variable(), literal.is_positive())
    }

    /// Creates an empty binding set (all τ_N variables free).
    pub fn empty_bindings(&self) -> PartialAssignment {
        PartialAssignment::new(self.num_vars)
    }

    /// Validates that a binding set matches this instance.
    ///
    /// # Errors
    ///
    /// Returns [`NblSatError::BindingOutOfRange`] if the binding set covers a
    /// different number of variables.
    pub fn validate_bindings(&self, bindings: &PartialAssignment) -> Result<()> {
        if bindings.num_vars() != self.num_vars {
            return Err(NblSatError::BindingOutOfRange {
                variable: bindings.num_vars(),
                num_vars: self.num_vars,
            });
        }
        Ok(())
    }

    /// Number of valid minterms in τ_N under the given bindings: `2^free`.
    pub fn tau_cardinality(&self, bindings: &PartialAssignment) -> u128 {
        let free = self.num_vars - bindings.num_assigned();
        1u128 << free
    }

    /// Exact number of product terms in the expanded τ_N · Σ_N, the quantity
    /// the paper bounds as `O(2^{nm})` in §III.F: `2^free · Π_j Σ_{l ∈ c_j} 2^{n-1}`.
    ///
    /// Returned as `f64` because it overflows integers almost immediately.
    pub fn product_term_count(&self, bindings: &PartialAssignment) -> f64 {
        let free = (self.num_vars - bindings.num_assigned()) as f64;
        let tau_terms = free.exp2();
        let sigma_terms: f64 = self
            .formula
            .iter()
            .map(|c| c.len() as f64 * ((self.num_vars - 1) as f64).exp2())
            .product();
        tau_terms * sigma_terms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::cnf_formula;
    use cnf::generators;

    #[test]
    fn source_indices_are_dense_and_unique() {
        let f = cnf_formula![[1, 2], [-1, -2], [1, -2]];
        let inst = NblSatInstance::new(&f).unwrap();
        assert_eq!(inst.num_sources(), 12);
        let mut seen = std::collections::HashSet::new();
        for j in 0..inst.num_clauses() {
            for i in 0..inst.num_vars() {
                for pol in [true, false] {
                    let s = inst.source(j, Variable::new(i), pol);
                    assert!(s.index() < inst.num_sources());
                    assert!(seen.insert(s.index()), "duplicate source index");
                    assert_eq!(s.basis_id().index(), s.index());
                }
            }
        }
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn literal_source_respects_polarity() {
        let f = cnf_formula![[1, -2]];
        let inst = NblSatInstance::new(&f).unwrap();
        let pos = inst.literal_source(0, Literal::from_dimacs(1).unwrap());
        let neg = inst.literal_source(0, Literal::from_dimacs(-1).unwrap());
        assert_ne!(pos, neg);
        assert_eq!(pos, inst.source(0, Variable::new(0), true));
        assert_eq!(neg, inst.source(0, Variable::new(0), false));
    }

    #[test]
    fn rejects_degenerate_formulas() {
        assert!(matches!(
            NblSatInstance::new(&CnfFormula::new(0)),
            Err(NblSatError::DegenerateFormula(_))
        ));
        assert!(matches!(
            NblSatInstance::new(&CnfFormula::new(3)),
            Err(NblSatError::DegenerateFormula(_))
        ));
        let mut with_empty = cnf_formula![[1]];
        with_empty.push_clause(cnf::Clause::new());
        assert!(matches!(
            NblSatInstance::new(&with_empty),
            Err(NblSatError::EmptyClause { clause_index: 1 })
        ));
    }

    #[test]
    fn binding_validation_and_cardinality() {
        let f = generators::section4_sat_instance();
        let inst = NblSatInstance::new(&f).unwrap();
        let mut bindings = inst.empty_bindings();
        assert!(inst.validate_bindings(&bindings).is_ok());
        assert_eq!(inst.tau_cardinality(&bindings), 4);
        bindings.assign(Variable::new(0), true);
        assert_eq!(inst.tau_cardinality(&bindings), 2);
        let wrong = PartialAssignment::new(5);
        assert!(inst.validate_bindings(&wrong).is_err());
    }

    #[test]
    fn product_term_count_matches_paper_order() {
        // 3-SAT, n variables, m clauses: (2^n)·(3·2^{n-1})^m products.
        let f = cnf_formula![[1, 2, 3], [-1, 2, -3]];
        let inst = NblSatInstance::new(&f).unwrap();
        let bindings = inst.empty_bindings();
        let expected = 8.0 * (3.0 * 4.0f64).powi(2);
        assert!((inst.product_term_count(&bindings) - expected).abs() < 1e-9);
    }

    #[test]
    fn stats_and_accessors() {
        let f = generators::example6_sat();
        let inst = NblSatInstance::new(&f).unwrap();
        assert_eq!(inst.num_vars(), 2);
        assert_eq!(inst.num_clauses(), 2);
        assert_eq!(inst.nm(), 4);
        assert_eq!(inst.stats().num_literals, 4);
        assert_eq!(inst.formula(), &f);
        assert_eq!(inst.source(0, Variable::new(0), true).to_string(), "src0");
    }
}
