//! Satisfying-assignment determination (Algorithm 2 of the paper).

use crate::budget::BudgetMeter;
use crate::checker::{SatChecker, Verdict};
use crate::engine::NblEngine;
use crate::error::{NblSatError, Result};
use crate::transform::NblSatInstance;
use cnf::{Assignment, CnfFormula, Cube, Literal, Variable};
use std::fmt;

/// Shrinks a satisfying assignment to a prime-implicant cube by greedily
/// dropping variables whose removal keeps the cube an implicant of the
/// formula. `model` must satisfy `formula`.
///
/// A cube implies a clause iff the clause is a tautology or contains one of
/// the cube's literals, so the shrink reduces to support counting: each
/// non-tautological clause tracks how many literal occurrences the still-
/// included variables satisfy, and a variable can be dropped iff every
/// clause it supports keeps at least one supporter. This is linear in the
/// formula size overall, instead of re-running the implicant test per
/// variable.
///
/// Shared by [`AssignmentExtractor::extract_cube`] and the classical backends
/// of the unified solving API, which produce a model first and derive the
/// cube from it.
pub fn prime_implicant_cube(formula: &CnfFormula, model: &Assignment) -> Cube {
    debug_assert!(
        formula.evaluate(model),
        "prime_implicant_cube requires a satisfying model"
    );
    let n = model.num_vars();
    let mut support = vec![0usize; formula.num_clauses()];
    // Clause indices each variable's model-phase literal occurs in, with
    // multiplicity (duplicate literals in a clause count separately so the
    // support arithmetic below stays consistent).
    let mut occurrences: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (j, clause) in formula.iter().enumerate() {
        if clause.is_tautology() {
            continue;
        }
        for &lit in clause.iter() {
            if model.satisfies(lit) {
                support[j] += 1;
                occurrences[lit.variable().index()].push(j);
            }
        }
    }
    let mut included = vec![true; n];
    for i in 0..n {
        for &j in &occurrences[i] {
            support[j] -= 1;
        }
        if occurrences[i].iter().all(|&j| support[j] >= 1) {
            included[i] = false;
        } else {
            for &j in &occurrences[i] {
                support[j] += 1;
            }
        }
    }
    (0..n)
        .filter(|&k| included[k])
        .map(|k| Literal::with_phase(Variable::new(k), model.value(Variable::new(k))))
        .collect()
}

/// Result of an assignment-extraction run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionOutcome {
    /// The satisfying minterm (Algorithm 2) or `None` when only a cube was
    /// requested.
    pub assignment: Option<Assignment>,
    /// The satisfying cube (populated by [`AssignmentExtractor::extract_cube`];
    /// for minterm extraction it is the full minterm cube).
    pub cube: Cube,
    /// Number of NBL-SAT check operations used (the paper's complexity metric:
    /// at most `n` for a minterm, at most `2n` for a cube).
    pub checks_used: u64,
}

impl fmt::Display for ExtractionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cube {} ({} checks{})",
            self.cube,
            self.checks_used,
            if self.assignment.is_some() {
                ", full minterm"
            } else {
                ""
            }
        )
    }
}

/// Algorithm 2: determine a satisfying assignment with at most `n` additional
/// NBL-SAT check operations.
///
/// Each iteration binds the next variable to 1 inside τ_N and re-runs the
/// single-operation check on the reduced instance: if the reduced hyperspace
/// still overlaps a satisfying minterm the variable is kept at 1, otherwise it
/// must be 0 (the instance is known satisfiable a priori). The cube variant
/// additionally detects don't-care variables by probing both polarities.
#[derive(Debug, Clone)]
pub struct AssignmentExtractor<E> {
    checker: SatChecker<E>,
}

impl<E: NblEngine> AssignmentExtractor<E> {
    /// Creates an extractor around an engine.
    pub fn new(engine: E) -> Self {
        AssignmentExtractor {
            checker: SatChecker::new(engine),
        }
    }

    /// Creates an extractor around an existing checker (keeps its decision
    /// threshold and operation count).
    pub fn from_checker(checker: SatChecker<E>) -> Self {
        AssignmentExtractor { checker }
    }

    /// Access to the inner checker (e.g. to read the total operation count).
    pub fn checker(&self) -> &SatChecker<E> {
        &self.checker
    }

    /// Runs Algorithm 2 and returns a satisfying minterm.
    ///
    /// The instance must be satisfiable (the paper assumes Algorithm 1 has
    /// already answered SAT). If the extracted assignment does not verify,
    /// the failure is classified from the engine's own telemetry: when every
    /// restricted check was exact the instance is provably unsatisfiable
    /// ([`NblSatError::InstanceUnsatisfiable`]); with a statistical engine
    /// the run is merely [`NblSatError::Inconclusive`] (an unlucky restricted
    /// decision), since distinguishing the two would require an exponential
    /// recount.
    ///
    /// # Errors
    ///
    /// * [`NblSatError::InstanceUnsatisfiable`] if the instance has no model
    ///   (exact engines).
    /// * [`NblSatError::Inconclusive`] if a statistical engine mis-steered.
    /// * Any engine error (size limits, mismatched bindings).
    pub fn extract(&mut self, instance: &NblSatInstance) -> Result<ExtractionOutcome> {
        self.extract_budgeted(instance, &mut BudgetMeter::default())
    }

    /// Budgeted Algorithm 2: identical to [`AssignmentExtractor::extract`]
    /// but charges each of the `n` restricted checks against `meter`, so a
    /// check, sample or wall-clock limit interrupts the extraction.
    ///
    /// # Errors
    ///
    /// [`NblSatError::BudgetExhausted`] when a limit fires, plus everything
    /// [`AssignmentExtractor::extract`] can return.
    pub fn extract_budgeted(
        &mut self,
        instance: &NblSatInstance,
        meter: &mut BudgetMeter,
    ) -> Result<ExtractionOutcome> {
        let checks_before = self.checker.checks_performed();
        let mut bindings = instance.empty_bindings();
        let mut all_exact = true;
        let mut last_estimate: Option<crate::MeanEstimate> = None;
        for i in 0..instance.num_vars() {
            let var = Variable::new(i);
            // Line 4: bind x_i to 1 in the (already reduced) hyperspace.
            bindings.assign(var, true);
            let estimate = self.checker.estimate_budgeted(instance, &bindings, meter)?;
            all_exact &= estimate.exact;
            if self.checker.decide(&estimate) == Verdict::Unsatisfiable {
                // The solution lies in the x̄_i subspace (line 8).
                bindings.assign(var, false);
            }
            last_estimate = Some(estimate);
        }
        let assignment = bindings
            .try_to_complete()
            .expect("every variable was bound");
        if !instance.formula().evaluate(&assignment) {
            // Exact restricted checks steer correctly on satisfiable
            // instances, so a non-verifying result proves unsatisfiability.
            // A statistical engine may simply have made an unlucky decision;
            // report that without an exponential recount (which no budget
            // could interrupt).
            return if all_exact {
                Err(NblSatError::InstanceUnsatisfiable)
            } else {
                let estimate = last_estimate.expect("at least one variable was bound");
                Err(NblSatError::Inconclusive {
                    mean: estimate.mean,
                    samples: estimate.samples,
                })
            };
        }
        Ok(ExtractionOutcome {
            cube: Cube::from_assignment(&assignment),
            assignment: Some(assignment),
            checks_used: self.checker.checks_performed() - checks_before,
        })
    }

    /// Runs the cube variant of Algorithm 2: first a satisfying minterm is
    /// extracted with `n` NBL-SAT checks, then each variable is probed as a
    /// potential don't-care and dropped from the cube when the remaining cube
    /// is still an implicant of the formula (every minterm it covers satisfies
    /// the instance).
    ///
    /// The paper sketches the don't-care probe as a pair of restricted NBL
    /// checks; a "both polarities satisfiable" probe alone, however, only
    /// proves that each half-space *contains* a model, not that the whole
    /// enlarged cube is an implicant, so this implementation confirms each
    /// drop with the exact linear-time implicant test
    /// ([`Cube::is_implicant_of`]) over the freed variables. The NBL-check
    /// budget remains the paper's `n` operations.
    ///
    /// # Errors
    ///
    /// Same as [`AssignmentExtractor::extract`].
    pub fn extract_cube(&mut self, instance: &NblSatInstance) -> Result<ExtractionOutcome> {
        self.extract_cube_budgeted(instance, &mut BudgetMeter::default())
    }

    /// Budgeted variant of [`AssignmentExtractor::extract_cube`]; only the
    /// minterm extraction spends NBL checks, the don't-care shrink is pure
    /// CPU-side post-processing.
    ///
    /// # Errors
    ///
    /// Same as [`AssignmentExtractor::extract_budgeted`].
    pub fn extract_cube_budgeted(
        &mut self,
        instance: &NblSatInstance,
        meter: &mut BudgetMeter,
    ) -> Result<ExtractionOutcome> {
        let minterm = self.extract_budgeted(instance, meter)?;
        let assignment = minterm
            .assignment
            .as_ref()
            .expect("extract always returns a full minterm");
        Ok(ExtractionOutcome {
            assignment: None,
            cube: prime_implicant_cube(instance.formula(), assignment),
            checks_used: minterm.checks_used,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::sampled::SampledEngine;
    use crate::symbolic::SymbolicEngine;
    use cnf::cnf_formula;
    use cnf::generators::{self, RandomKSatConfig};

    fn instance(f: &cnf::CnfFormula) -> NblSatInstance {
        NblSatInstance::new(f).unwrap()
    }

    #[test]
    fn example8_walkthrough() {
        // Example 8: S = (x1+x2)(¬x1+¬x2); the paper's run finds x1·x̄2.
        let inst = instance(&generators::example6_sat());
        let mut extractor = AssignmentExtractor::new(SymbolicEngine::new());
        let outcome = extractor.extract(&inst).unwrap();
        let model = outcome.assignment.as_ref().unwrap();
        assert!(inst.formula().evaluate(model));
        // x1 = 1, and x2 is forced to 0 (matching the paper's walkthrough).
        assert!(model.value(Variable::new(0)));
        assert!(!model.value(Variable::new(1)));
        assert_eq!(outcome.checks_used, 2); // exactly n = 2 operations
        assert_eq!(outcome.cube.to_string(), "x1·¬x2");
    }

    #[test]
    fn linear_number_of_checks_on_random_satisfiable_instances() {
        let mut extractor = AssignmentExtractor::new(SymbolicEngine::new());
        let mut found = 0;
        for seed in 0..40 {
            let f =
                generators::random_ksat(&RandomKSatConfig::new(8, 20, 3).with_seed(seed)).unwrap();
            if f.count_satisfying_assignments() == 0 {
                continue;
            }
            found += 1;
            let inst = instance(&f);
            let outcome = extractor.extract(&inst).unwrap();
            assert!(
                f.evaluate(outcome.assignment.as_ref().unwrap()),
                "seed {seed}"
            );
            assert_eq!(outcome.checks_used, f.num_vars() as u64, "seed {seed}");
        }
        assert!(
            found > 10,
            "need enough satisfiable instances to be meaningful"
        );
    }

    #[test]
    fn unsatisfiable_instance_is_detected() {
        let inst = instance(&generators::section4_unsat_instance());
        let mut extractor = AssignmentExtractor::new(SymbolicEngine::new());
        assert!(matches!(
            extractor.extract(&inst),
            Err(NblSatError::InstanceUnsatisfiable)
        ));
        assert!(matches!(
            extractor.extract_cube(&inst),
            Err(NblSatError::InstanceUnsatisfiable)
        ));
    }

    #[test]
    fn cube_extraction_finds_dont_cares() {
        // S = (x1): x2 and x3 are don't-cares; the prime cube is just x1.
        let inst = instance(&cnf_formula![[1], [1, 2, 3]]);
        let mut extractor = AssignmentExtractor::new(SymbolicEngine::new());
        let outcome = extractor.extract_cube(&inst).unwrap();
        assert_eq!(outcome.cube.to_string(), "x1");
        assert_eq!(outcome.checks_used, inst.num_vars() as u64);
        assert!(outcome.assignment.is_none());
        // Every expansion of the cube satisfies the formula.
        for a in outcome.cube.expand(inst.num_vars()) {
            assert!(inst.formula().evaluate(&a));
        }
        assert!(outcome.to_string().contains("checks"));
    }

    #[test]
    fn cube_extraction_on_xor_like_instance_returns_full_minterm() {
        // (x1+x2)(¬x1+¬x2): no don't-cares exist, the cube has both variables.
        let inst = instance(&generators::example6_sat());
        let mut extractor = AssignmentExtractor::new(SymbolicEngine::new());
        let outcome = extractor.extract_cube(&inst).unwrap();
        assert_eq!(outcome.cube.len(), 2);
        for a in outcome.cube.expand(2) {
            assert!(inst.formula().evaluate(&a));
        }
    }

    #[test]
    fn sampled_engine_extracts_a_model_on_the_small_example() {
        let inst = instance(&generators::example6_sat());
        let engine = SampledEngine::new(
            EngineConfig::new()
                .with_seed(23)
                .with_max_samples(80_000)
                .with_check_interval(20_000),
        );
        let mut extractor = AssignmentExtractor::new(engine);
        let outcome = extractor.extract(&inst).unwrap();
        assert!(inst
            .formula()
            .evaluate(outcome.assignment.as_ref().unwrap()));
    }

    #[test]
    fn prime_implicant_helper_matches_expansion_semantics() {
        // S = (x1): x2, x3 are don't-cares.
        let f = cnf_formula![[1], [1, 2, 3]];
        let model = Assignment::from_bools(vec![true, false, true]);
        let cube = prime_implicant_cube(&f, &model);
        assert_eq!(cube.to_string(), "x1");
        for a in cube.expand(3) {
            assert!(f.evaluate(&a));
        }
        // XOR-like instance: no don't-cares exist.
        let g = cnf_formula![[1, 2], [-1, -2]];
        let model = Assignment::from_bools(vec![true, false]);
        assert_eq!(prime_implicant_cube(&g, &model).len(), 2);
    }

    #[test]
    fn prime_implicant_cube_is_a_prime_implicant_on_random_instances() {
        use cnf::generators::RandomKSatConfig;
        let mut covered = 0;
        for seed in 0..30 {
            let f =
                generators::random_ksat(&RandomKSatConfig::new(7, 18, 3).with_seed(seed)).unwrap();
            let Some(model) =
                sat_solvers::Solver::solve(&mut sat_solvers::BruteForceSolver::new(), &f)
                    .model()
                    .cloned()
            else {
                continue;
            };
            covered += 1;
            let cube = prime_implicant_cube(&f, &model);
            // Implicant...
            assert!(cube.is_implicant_of(&f), "seed {seed}");
            // ...and prime: no single literal can be removed.
            for skip in 0..cube.len() {
                let smaller: Cube = cube
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| k != skip)
                    .map(|(_, &l)| l)
                    .collect();
                assert!(!smaller.is_implicant_of(&f), "seed {seed} literal {skip}");
            }
        }
        assert!(covered > 10, "need satisfiable instances to be meaningful");
    }

    #[test]
    fn check_budget_interrupts_extraction() {
        use crate::budget::{Budget, BudgetMeter, ExhaustedResource};
        // Algorithm 2 needs n = 2 checks; a 1-check allowance must interrupt.
        let inst = instance(&generators::example6_sat());
        let mut extractor = AssignmentExtractor::new(SymbolicEngine::new());
        let mut meter = BudgetMeter::start(&Budget::unlimited().with_max_checks(1));
        let err = extractor.extract_budgeted(&inst, &mut meter).unwrap_err();
        assert!(matches!(
            err,
            NblSatError::BudgetExhausted {
                resource: ExhaustedResource::CoprocessorChecks
            }
        ));
        assert_eq!(meter.checks_used(), 1);
        // With exactly n checks the extraction completes.
        let mut meter = BudgetMeter::start(&Budget::unlimited().with_max_checks(2));
        let outcome = extractor.extract_budgeted(&inst, &mut meter).unwrap();
        assert!(outcome.assignment.is_some());
        assert_eq!(meter.checks_used(), 2);
    }

    #[test]
    fn extractor_exposes_its_checker() {
        let extractor = AssignmentExtractor::new(SymbolicEngine::new());
        assert_eq!(extractor.checker().checks_performed(), 0);
        let checker = SatChecker::new(SymbolicEngine::new()).with_decision_sigmas(4.0);
        let extractor = AssignmentExtractor::from_checker(checker);
        assert_eq!(extractor.checker().checks_performed(), 0);
    }
}
