//! Satisfying-assignment determination (Algorithm 2 of the paper).

use crate::checker::{SatChecker, Verdict};
use crate::engine::NblEngine;
use crate::error::{NblSatError, Result};
use crate::transform::NblSatInstance;
use cnf::{Assignment, Cube, Literal, Variable};
use std::fmt;

/// Result of an assignment-extraction run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionOutcome {
    /// The satisfying minterm (Algorithm 2) or `None` when only a cube was
    /// requested.
    pub assignment: Option<Assignment>,
    /// The satisfying cube (populated by [`AssignmentExtractor::extract_cube`];
    /// for minterm extraction it is the full minterm cube).
    pub cube: Cube,
    /// Number of NBL-SAT check operations used (the paper's complexity metric:
    /// at most `n` for a minterm, at most `2n` for a cube).
    pub checks_used: u64,
}

impl fmt::Display for ExtractionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cube {} ({} checks{})",
            self.cube,
            self.checks_used,
            if self.assignment.is_some() {
                ", full minterm"
            } else {
                ""
            }
        )
    }
}

/// Algorithm 2: determine a satisfying assignment with at most `n` additional
/// NBL-SAT check operations.
///
/// Each iteration binds the next variable to 1 inside τ_N and re-runs the
/// single-operation check on the reduced instance: if the reduced hyperspace
/// still overlaps a satisfying minterm the variable is kept at 1, otherwise it
/// must be 0 (the instance is known satisfiable a priori). The cube variant
/// additionally detects don't-care variables by probing both polarities.
#[derive(Debug, Clone)]
pub struct AssignmentExtractor<E> {
    checker: SatChecker<E>,
}

impl<E: NblEngine> AssignmentExtractor<E> {
    /// Creates an extractor around an engine.
    pub fn new(engine: E) -> Self {
        AssignmentExtractor {
            checker: SatChecker::new(engine),
        }
    }

    /// Creates an extractor around an existing checker (keeps its decision
    /// threshold and operation count).
    pub fn from_checker(checker: SatChecker<E>) -> Self {
        AssignmentExtractor { checker }
    }

    /// Access to the inner checker (e.g. to read the total operation count).
    pub fn checker(&self) -> &SatChecker<E> {
        &self.checker
    }

    /// Runs Algorithm 2 and returns a satisfying minterm.
    ///
    /// The instance must be satisfiable (the paper assumes Algorithm 1 has
    /// already answered SAT); if it is not, the procedure detects the
    /// contradiction and reports [`NblSatError::InstanceUnsatisfiable`].
    ///
    /// # Errors
    ///
    /// * [`NblSatError::InstanceUnsatisfiable`] if the instance has no model.
    /// * Any engine error (size limits, mismatched bindings).
    pub fn extract(&mut self, instance: &NblSatInstance) -> Result<ExtractionOutcome> {
        let checks_before = self.checker.checks_performed();
        let mut bindings = instance.empty_bindings();
        for i in 0..instance.num_vars() {
            let var = Variable::new(i);
            // Line 4: bind x_i to 1 in the (already reduced) hyperspace.
            bindings.assign(var, true);
            let verdict = self.checker.check_with_bindings(instance, &bindings)?;
            if verdict == Verdict::Unsatisfiable {
                // The solution lies in the x̄_i subspace (line 8).
                bindings.assign(var, false);
            }
        }
        let assignment = bindings
            .try_to_complete()
            .expect("every variable was bound");
        if !instance.formula().evaluate(&assignment) {
            // Either the instance was unsatisfiable to begin with, or a
            // sampled engine made a statistically unlucky decision.
            return if instance.formula().count_satisfying_assignments() == 0 {
                Err(NblSatError::InstanceUnsatisfiable)
            } else {
                Err(NblSatError::Inconclusive {
                    mean: 0.0,
                    samples: 0,
                })
            };
        }
        Ok(ExtractionOutcome {
            cube: Cube::from_assignment(&assignment),
            assignment: Some(assignment),
            checks_used: self.checker.checks_performed() - checks_before,
        })
    }

    /// Runs the cube variant of Algorithm 2: first a satisfying minterm is
    /// extracted with `n` NBL-SAT checks, then each variable is probed as a
    /// potential don't-care and dropped from the cube when the remaining cube
    /// is still an implicant of the formula (every minterm it covers satisfies
    /// the instance).
    ///
    /// The paper sketches the don't-care probe as a pair of restricted NBL
    /// checks; a "both polarities satisfiable" probe alone, however, only
    /// proves that each half-space *contains* a model, not that the whole
    /// enlarged cube is an implicant, so this implementation confirms each
    /// drop with an explicit implicant test over the freed variables. The
    /// NBL-check budget remains the paper's `n` operations.
    ///
    /// # Errors
    ///
    /// Same as [`AssignmentExtractor::extract`].
    pub fn extract_cube(&mut self, instance: &NblSatInstance) -> Result<ExtractionOutcome> {
        let minterm = self.extract(instance)?;
        let assignment = minterm
            .assignment
            .as_ref()
            .expect("extract always returns a full minterm");
        let n = instance.num_vars();
        let formula = instance.formula();
        let mut included = vec![true; n];
        for i in 0..n {
            included[i] = false;
            let candidate: Cube = (0..n)
                .filter(|&k| included[k])
                .map(|k| Literal::with_phase(Variable::new(k), assignment.value(Variable::new(k))))
                .collect();
            let is_implicant = candidate.expand(n).iter().all(|a| formula.evaluate(a));
            if !is_implicant {
                included[i] = true;
            }
        }
        let cube: Cube = (0..n)
            .filter(|&k| included[k])
            .map(|k| Literal::with_phase(Variable::new(k), assignment.value(Variable::new(k))))
            .collect();
        Ok(ExtractionOutcome {
            assignment: None,
            cube,
            checks_used: minterm.checks_used,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::sampled::SampledEngine;
    use crate::symbolic::SymbolicEngine;
    use cnf::cnf_formula;
    use cnf::generators::{self, RandomKSatConfig};

    fn instance(f: &cnf::CnfFormula) -> NblSatInstance {
        NblSatInstance::new(f).unwrap()
    }

    #[test]
    fn example8_walkthrough() {
        // Example 8: S = (x1+x2)(¬x1+¬x2); the paper's run finds x1·x̄2.
        let inst = instance(&generators::example6_sat());
        let mut extractor = AssignmentExtractor::new(SymbolicEngine::new());
        let outcome = extractor.extract(&inst).unwrap();
        let model = outcome.assignment.as_ref().unwrap();
        assert!(inst.formula().evaluate(model));
        // x1 = 1, and x2 is forced to 0 (matching the paper's walkthrough).
        assert!(model.value(Variable::new(0)));
        assert!(!model.value(Variable::new(1)));
        assert_eq!(outcome.checks_used, 2); // exactly n = 2 operations
        assert_eq!(outcome.cube.to_string(), "x1·¬x2");
    }

    #[test]
    fn linear_number_of_checks_on_random_satisfiable_instances() {
        let mut extractor = AssignmentExtractor::new(SymbolicEngine::new());
        let mut found = 0;
        for seed in 0..40 {
            let f =
                generators::random_ksat(&RandomKSatConfig::new(8, 20, 3).with_seed(seed)).unwrap();
            if f.count_satisfying_assignments() == 0 {
                continue;
            }
            found += 1;
            let inst = instance(&f);
            let outcome = extractor.extract(&inst).unwrap();
            assert!(
                f.evaluate(outcome.assignment.as_ref().unwrap()),
                "seed {seed}"
            );
            assert_eq!(outcome.checks_used, f.num_vars() as u64, "seed {seed}");
        }
        assert!(
            found > 10,
            "need enough satisfiable instances to be meaningful"
        );
    }

    #[test]
    fn unsatisfiable_instance_is_detected() {
        let inst = instance(&generators::section4_unsat_instance());
        let mut extractor = AssignmentExtractor::new(SymbolicEngine::new());
        assert!(matches!(
            extractor.extract(&inst),
            Err(NblSatError::InstanceUnsatisfiable)
        ));
        assert!(matches!(
            extractor.extract_cube(&inst),
            Err(NblSatError::InstanceUnsatisfiable)
        ));
    }

    #[test]
    fn cube_extraction_finds_dont_cares() {
        // S = (x1): x2 and x3 are don't-cares; the prime cube is just x1.
        let inst = instance(&cnf_formula![[1], [1, 2, 3]]);
        let mut extractor = AssignmentExtractor::new(SymbolicEngine::new());
        let outcome = extractor.extract_cube(&inst).unwrap();
        assert_eq!(outcome.cube.to_string(), "x1");
        assert_eq!(outcome.checks_used, inst.num_vars() as u64);
        assert!(outcome.assignment.is_none());
        // Every expansion of the cube satisfies the formula.
        for a in outcome.cube.expand(inst.num_vars()) {
            assert!(inst.formula().evaluate(&a));
        }
        assert!(outcome.to_string().contains("checks"));
    }

    #[test]
    fn cube_extraction_on_xor_like_instance_returns_full_minterm() {
        // (x1+x2)(¬x1+¬x2): no don't-cares exist, the cube has both variables.
        let inst = instance(&generators::example6_sat());
        let mut extractor = AssignmentExtractor::new(SymbolicEngine::new());
        let outcome = extractor.extract_cube(&inst).unwrap();
        assert_eq!(outcome.cube.len(), 2);
        for a in outcome.cube.expand(2) {
            assert!(inst.formula().evaluate(&a));
        }
    }

    #[test]
    fn sampled_engine_extracts_a_model_on_the_small_example() {
        let inst = instance(&generators::example6_sat());
        let engine = SampledEngine::new(
            EngineConfig::new()
                .with_seed(23)
                .with_max_samples(80_000)
                .with_check_interval(20_000),
        );
        let mut extractor = AssignmentExtractor::new(engine);
        let outcome = extractor.extract(&inst).unwrap();
        assert!(inst
            .formula()
            .evaluate(outcome.assignment.as_ref().unwrap()));
    }

    #[test]
    fn extractor_exposes_its_checker() {
        let extractor = AssignmentExtractor::new(SymbolicEngine::new());
        assert_eq!(extractor.checker().checks_performed(), 0);
        let checker = SatChecker::new(SymbolicEngine::new()).with_decision_sigmas(4.0);
        let extractor = AssignmentExtractor::from_checker(checker);
        assert_eq!(extractor.checker().checks_performed(), 0);
    }
}
