//! The Monte-Carlo (analog-simulation) engine.
//!
//! This engine is the Rust counterpart of the MATLAB simulation the paper
//! validates its scheme with (§IV): every basis noise source is an explicit
//! carrier stream, the superpositions τ_N and Σ_N are evaluated sample by
//! sample exactly as the analog datapath would produce them, and the SAT
//! decision observes the running mean of the product waveform.

use crate::budget::{BudgetMeter, ExhaustedResource};
use crate::config::EngineConfig;
use crate::convergence::{log_spaced_checkpoints, ConvergenceTrace};
use crate::engine::{MeanEstimate, NblEngine};
use crate::error::{NblSatError, Result};
use crate::transform::NblSatInstance;
use cnf::bits::WORD_BITS;
use cnf::{EvalMode, PartialAssignment, Variable};
use nbl_noise::{CarrierBank, ConvergenceTracker, Correlator};

/// How often (in samples) the budgeted convergence loop polls the wall-clock
/// deadline. Each sample already costs `O(n·m)` multiplications, so polling
/// every few samples keeps the overhead negligible while bounding the
/// reaction latency. Kept equal to [`WORD_BITS`] so the scalar and packed
/// loops poll at the same instants (word boundaries) and therefore interrupt
/// identically.
const DEADLINE_POLL_INTERVAL: u64 = WORD_BITS as u64;

/// Monte-Carlo simulation engine for ⟨S_N⟩.
///
/// One *sample* corresponds to one simulated time step: every one of the
/// `2·m·n` basis sources produces a value, τ_N and Σ_N are evaluated on those
/// values, and their product is integrated by a correlator. The engine stops
/// when the §IV criterion is met (running mean stable to
/// [`EngineConfig::significant_digits`] significant digits) or when the sample
/// cap is reached.
///
/// ```
/// use cnf::generators::example7_unsat;
/// use nbl_sat_core::{EngineConfig, NblEngine, NblSatInstance, SampledEngine};
///
/// let instance = NblSatInstance::new(&example7_unsat())?;
/// let mut engine = SampledEngine::new(EngineConfig::new().with_max_samples(20_000));
/// let estimate = engine.estimate(&instance, &instance.empty_bindings())?;
/// assert!(!estimate.is_positive(3.0)); // UNSAT: mean statistically zero
/// # Ok::<(), nbl_sat_core::NblSatError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SampledEngine {
    config: EngineConfig,
}

impl Default for SampledEngine {
    fn default() -> Self {
        SampledEngine::new(EngineConfig::default())
    }
}

/// Reusable per-sample evaluation state.
#[derive(Debug)]
struct Evaluator {
    values: Vec<f64>,
    bank: Box<dyn CarrierBank>,
}

/// Flattened evaluation plan for the packed convergence loop: the τ_N / Σ_N
/// datapath with every source lookup resolved to a flat index up front, so
/// the per-sample inner loop touches only contiguous index arrays.
///
/// The multiplication order is *identical* to [`SampledEngine::tau_sample`]
/// and [`SampledEngine::sigma_sample`], so the scalar and packed loops
/// produce bit-identical floating-point streams.
#[derive(Debug)]
struct SamplePlan {
    tau: Vec<TauTerm>,
    sigma: Vec<SigmaClause>,
}

/// One τ_N factor: the binding of variable `i` plus the flat source indices
/// of its positive and negative carrier products across all clauses.
#[derive(Debug)]
struct TauTerm {
    binding: Option<bool>,
    pos: Vec<u32>,
    neg: Vec<u32>,
}

/// One Σ_N factor (clause hyperspace Z_j): the cube-subspace terms summed.
#[derive(Debug)]
struct SigmaClause {
    terms: Vec<SigmaTerm>,
}

/// One cube subspace T^j_lit: the literal's own source index and the
/// `(positive, negative)` source pairs of every other variable.
#[derive(Debug)]
struct SigmaTerm {
    lit_source: u32,
    others: Vec<(u32, u32)>,
}

impl SamplePlan {
    fn new(instance: &NblSatInstance, bindings: &PartialAssignment) -> Self {
        let m = instance.num_clauses();
        let n = instance.num_vars();
        let tau = (0..n)
            .map(|i| {
                let var = Variable::new(i);
                TauTerm {
                    binding: bindings.value(var),
                    pos: (0..m)
                        .map(|j| instance.source(j, var, true).index() as u32)
                        .collect(),
                    neg: (0..m)
                        .map(|j| instance.source(j, var, false).index() as u32)
                        .collect(),
                }
            })
            .collect();
        let sigma = instance
            .formula()
            .iter()
            .enumerate()
            .map(|(j, clause)| SigmaClause {
                terms: clause
                    .iter()
                    .map(|&lit| SigmaTerm {
                        lit_source: instance.literal_source(j, lit).index() as u32,
                        others: (0..n)
                            .filter(|&i| Variable::new(i) != lit.variable())
                            .map(|i| {
                                let var = Variable::new(i);
                                (
                                    instance.source(j, var, true).index() as u32,
                                    instance.source(j, var, false).index() as u32,
                                )
                            })
                            .collect(),
                    })
                    .collect(),
            })
            .collect();
        SamplePlan { tau, sigma }
    }

    /// One sample of S_N = τ_N · Σ_N through the flattened plan.
    fn s_sample(&self, values: &[f64]) -> f64 {
        let mut tau = 1.0;
        for term in &self.tau {
            let product = |indices: &[u32]| {
                let mut p = 1.0;
                for &s in indices {
                    p *= values[s as usize];
                }
                p
            };
            tau *= match term.binding {
                None => product(&term.pos) + product(&term.neg),
                Some(true) => product(&term.pos),
                Some(false) => product(&term.neg),
            };
        }
        let mut sigma = 1.0;
        for clause in &self.sigma {
            let mut z_j = 0.0;
            for term in &clause.terms {
                let mut t = values[term.lit_source as usize];
                for &(pos, neg) in &term.others {
                    t *= values[pos as usize] + values[neg as usize];
                }
                z_j += t;
            }
            sigma *= z_j;
        }
        tau * sigma
    }
}

/// Mutable state threaded through the scalar/packed convergence loops.
#[derive(Debug)]
struct LoopState {
    eval: Evaluator,
    correlator: Correlator,
    tracker: ConvergenceTracker,
    samples: u64,
    converged: bool,
    timed_out: bool,
}

impl SampledEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        SampledEngine { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    fn evaluator(&self, instance: &NblSatInstance) -> Evaluator {
        Evaluator {
            values: vec![0.0; instance.num_sources()],
            bank: self
                .config
                .carrier
                .bank(instance.num_sources(), self.config.seed),
        }
    }

    /// Evaluates one sample of τ_N on the current source values.
    fn tau_sample(instance: &NblSatInstance, bindings: &PartialAssignment, values: &[f64]) -> f64 {
        let m = instance.num_clauses();
        let mut tau = 1.0;
        for i in 0..instance.num_vars() {
            let var = Variable::new(i);
            let pos: f64 = (0..m)
                .map(|j| values[instance.source(j, var, true).index()])
                .product();
            let neg: f64 = (0..m)
                .map(|j| values[instance.source(j, var, false).index()])
                .product();
            tau *= match bindings.value(var) {
                None => pos + neg,
                Some(true) => pos,
                Some(false) => neg,
            };
        }
        tau
    }

    /// Evaluates one sample of Σ_N on the current source values.
    fn sigma_sample(instance: &NblSatInstance, values: &[f64]) -> f64 {
        let n = instance.num_vars();
        let mut sigma = 1.0;
        for (j, clause) in instance.formula().iter().enumerate() {
            let mut z_j = 0.0;
            for &lit in clause.iter() {
                // Cube subspace T^j_lit evaluated on clause j's sources.
                let mut term = values[instance.literal_source(j, lit).index()];
                for i in 0..n {
                    let var = Variable::new(i);
                    if var == lit.variable() {
                        continue;
                    }
                    term *= values[instance.source(j, var, true).index()]
                        + values[instance.source(j, var, false).index()];
                }
                z_j += term;
            }
            sigma *= z_j;
        }
        sigma
    }

    /// Evaluates one full sample of S_N = τ_N · Σ_N.
    fn s_sample(instance: &NblSatInstance, bindings: &PartialAssignment, values: &[f64]) -> f64 {
        Self::tau_sample(instance, bindings, values) * Self::sigma_sample(instance, values)
    }

    /// The scalar reference convergence loop: one sample per iteration, the
    /// whole run charged to the meter in one piece at the end.
    fn converge_scalar(
        instance: &NblSatInstance,
        bindings: &PartialAssignment,
        cap: u64,
        meter: &mut BudgetMeter,
        state: &mut LoopState,
    ) {
        while state.samples < cap {
            if state.samples.is_multiple_of(DEADLINE_POLL_INTERVAL) && meter.ensure_time().is_err()
            {
                state.timed_out = true;
                break;
            }
            state.eval.bank.next_sample(&mut state.eval.values);
            state
                .correlator
                .push_product(Self::s_sample(instance, bindings, &state.eval.values));
            state.samples += 1;
            if state
                .tracker
                .observe(state.samples, state.correlator.mean_product())
            {
                state.converged = true;
                break;
            }
        }
        meter.charge_samples(state.samples);
    }

    /// The packed convergence loop: samples are drawn and charged a 64-lane
    /// word at a time through a flattened [`SamplePlan`]. Each full word
    /// charges [`WORD_BITS`] samples to the meter; the tail word is clamped
    /// to `cap` and an early convergence break charges exactly the lanes
    /// drawn, so the accounting matches the scalar loop sample for sample.
    /// The wall-clock deadline is polled at word boundaries — the same
    /// instants as the scalar loop's poll.
    fn converge_packed(
        instance: &NblSatInstance,
        bindings: &PartialAssignment,
        cap: u64,
        meter: &mut BudgetMeter,
        state: &mut LoopState,
    ) {
        let plan = SamplePlan::new(instance, bindings);
        while state.samples < cap {
            if meter.ensure_time().is_err() {
                state.timed_out = true;
                break;
            }
            let lanes = (WORD_BITS as u64).min(cap - state.samples);
            let mut drawn = 0u64;
            for _ in 0..lanes {
                state.eval.bank.next_sample(&mut state.eval.values);
                state
                    .correlator
                    .push_product(plan.s_sample(&state.eval.values));
                state.samples += 1;
                drawn += 1;
                if state
                    .tracker
                    .observe(state.samples, state.correlator.mean_product())
                {
                    state.converged = true;
                    break;
                }
            }
            meter.charge_samples(drawn);
            if state.converged {
                break;
            }
        }
    }

    /// Runs the simulation and records the running mean at the given sample
    /// checkpoints (used to regenerate Figure 1). The simulation always runs
    /// to the last checkpoint, ignoring the convergence stopping rule.
    ///
    /// # Errors
    ///
    /// Returns an error if the bindings do not match the instance.
    pub fn trace(
        &mut self,
        instance: &NblSatInstance,
        bindings: &PartialAssignment,
        label: impl Into<String>,
        checkpoints: &[u64],
    ) -> Result<ConvergenceTrace> {
        instance.validate_bindings(bindings)?;
        let mut trace = ConvergenceTrace::new(label);
        if checkpoints.is_empty() {
            return Ok(trace);
        }
        let mut sorted: Vec<u64> = checkpoints.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let max = *sorted.last().expect("non-empty");
        let mut eval = self.evaluator(instance);
        let mut correlator = Correlator::new();
        let mut next_checkpoint = 0usize;
        for sample in 1..=max {
            eval.bank.next_sample(&mut eval.values);
            correlator.push_product(Self::s_sample(instance, bindings, &eval.values));
            if sample == sorted[next_checkpoint] {
                trace.push(sample, correlator.mean_product());
                next_checkpoint += 1;
                if next_checkpoint == sorted.len() {
                    break;
                }
            }
        }
        Ok(trace)
    }

    /// Convenience wrapper around [`SampledEngine::trace`] with
    /// logarithmically spaced checkpoints up to the configured sample cap.
    ///
    /// # Errors
    ///
    /// Returns an error if the bindings do not match the instance.
    pub fn trace_logspaced(
        &mut self,
        instance: &NblSatInstance,
        bindings: &PartialAssignment,
        label: impl Into<String>,
        points_per_decade: u32,
    ) -> Result<ConvergenceTrace> {
        let checkpoints = log_spaced_checkpoints(self.config.max_samples, points_per_decade);
        self.trace(instance, bindings, label, &checkpoints)
    }
}

impl NblEngine for SampledEngine {
    fn estimate(
        &mut self,
        instance: &NblSatInstance,
        bindings: &PartialAssignment,
    ) -> Result<MeanEstimate> {
        // One convergence loop serves both entry points: an unlimited meter
        // imposes no clamp and polls no deadline that can fire.
        self.estimate_budgeted(instance, bindings, &mut BudgetMeter::default())
    }

    /// Budgeted variant of the convergence loop: the sample cap is clamped to
    /// the meter's remaining allowance and the wall-clock deadline is polled
    /// every few samples, so a budget genuinely interrupts the simulation.
    ///
    /// When a limit fires before the engine's own stopping rule (§IV
    /// convergence) is met, the exhaustion is reported as
    /// [`NblSatError::BudgetExhausted`] — the partial estimate is *not*
    /// returned, because the engine cannot know the decision threshold its
    /// caller (e.g. a [`crate::SatChecker`] with custom sigmas) would apply
    /// to it, and a truncated mean must never masquerade as a definitive
    /// verdict.
    fn estimate_budgeted(
        &mut self,
        instance: &NblSatInstance,
        bindings: &PartialAssignment,
        meter: &mut BudgetMeter,
    ) -> Result<MeanEstimate> {
        meter.ensure_time()?;
        meter.ensure_samples()?;
        instance.validate_bindings(bindings)?;
        let budget_cap = meter.remaining_samples().unwrap_or(u64::MAX);
        let cap = self.config.max_samples.min(budget_cap);
        let budget_clamped = budget_cap < self.config.max_samples;
        let mut state = LoopState {
            eval: self.evaluator(instance),
            correlator: Correlator::new(),
            tracker: ConvergenceTracker::new(
                self.config.significant_digits,
                self.config.check_interval,
            ),
            samples: 0,
            converged: false,
            timed_out: false,
        };
        match self.config.eval_mode {
            EvalMode::Scalar => Self::converge_scalar(instance, bindings, cap, meter, &mut state),
            EvalMode::Packed => Self::converge_packed(instance, bindings, cap, meter, &mut state),
        }
        if state.timed_out && !state.converged {
            return Err(NblSatError::BudgetExhausted {
                resource: ExhaustedResource::WallClock,
            });
        }
        if budget_clamped && state.samples == cap && !state.converged {
            return Err(NblSatError::BudgetExhausted {
                resource: ExhaustedResource::Samples,
            });
        }
        Ok(MeanEstimate {
            mean: state.correlator.mean_product(),
            std_error: state.correlator.std_error(),
            samples: state.samples,
            converged: state.converged,
            exact: false,
        })
    }

    fn name(&self) -> &'static str {
        "sampled"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::SymbolicEngine;
    use cnf::generators;
    use nbl_noise::CarrierKind;

    fn instance(f: &cnf::CnfFormula) -> NblSatInstance {
        NblSatInstance::new(f).unwrap()
    }

    fn quick_config(seed: u64) -> EngineConfig {
        EngineConfig::new()
            .with_seed(seed)
            .with_max_samples(60_000)
            .with_check_interval(5_000)
    }

    #[test]
    fn sat_instance_has_positive_mean_unsat_has_zero_mean() {
        // The §IV instances have n·m = 8, so the single-minterm mean is
        // 4·(1/12)^8 ≈ 9·10⁻⁹ and needs a few hundred thousand samples to
        // clear the 3σ detection threshold (SNR ≈ √N / (3·2^{nm})).
        let sat = instance(&generators::section4_sat_instance());
        let unsat = instance(&generators::section4_unsat_instance());
        let mut engine = SampledEngine::new(
            EngineConfig::new()
                .with_seed(1)
                .with_max_samples(500_000)
                .with_check_interval(100_000),
        );
        let sat_est = engine.estimate(&sat, &sat.empty_bindings()).unwrap();
        let unsat_est = engine.estimate(&unsat, &unsat.empty_bindings()).unwrap();
        assert!(
            sat_est.is_positive(3.0),
            "SAT mean should be positive: {sat_est}"
        );
        assert!(
            !unsat_est.is_positive(3.0),
            "UNSAT mean should be statistically zero: {unsat_est}"
        );
    }

    #[test]
    fn sampled_mean_approaches_symbolic_mean() {
        // Example 6: expected mean 2·(1/12)^4 ≈ 9.6e-5.
        let inst = instance(&generators::example6_sat());
        let exact = SymbolicEngine::new()
            .estimate(&inst, &inst.empty_bindings())
            .unwrap()
            .mean;
        let mut engine = SampledEngine::new(
            EngineConfig::new()
                .with_seed(7)
                .with_max_samples(400_000)
                .with_check_interval(400_000),
        );
        let est = engine.estimate(&inst, &inst.empty_bindings()).unwrap();
        // Within 5 standard errors of the exact value.
        assert!(
            (est.mean - exact).abs() < 5.0 * est.std_error,
            "sampled {est} vs exact {exact}"
        );
    }

    #[test]
    fn bindings_flip_the_answer_for_example8() {
        // Example 8: binding x1=1 keeps the instance satisfiable; adding x2=1
        // makes the reduced hyperspace miss every satisfying minterm.
        let inst = instance(&generators::example6_sat());
        let mut engine = SampledEngine::new(quick_config(3));
        let mut bindings = inst.empty_bindings();
        bindings.assign(Variable::new(0), true);
        assert!(engine.estimate(&inst, &bindings).unwrap().is_positive(3.0));
        bindings.assign(Variable::new(1), true);
        assert!(!engine.estimate(&inst, &bindings).unwrap().is_positive(3.0));
    }

    #[test]
    fn stochastic_carrier_families_reach_the_same_verdict() {
        // Uniform, Gaussian and RTW carriers satisfy the exact independence
        // algebra, so they all discriminate the paper's examples. Sinusoidal
        // carriers with consecutive integer frequencies do NOT: products of
        // four or more carriers can hit frequency collisions (Σ±f_i = 0) that
        // leave a spurious DC term, which is precisely the carrier-planning
        // caveat §V raises for SBL. The sinusoid case is therefore exercised
        // separately (it must still run without error) and its quantitative
        // behaviour is reported by the carrier-ablation experiment (E7).
        let sat = instance(&generators::example6_sat());
        let unsat = instance(&generators::example7_unsat());
        for kind in [
            CarrierKind::Uniform,
            CarrierKind::Gaussian,
            CarrierKind::Rtw,
        ] {
            let cfg = quick_config(11).with_carrier(kind);
            let mut engine = SampledEngine::new(cfg);
            assert!(
                engine
                    .estimate(&sat, &sat.empty_bindings())
                    .unwrap()
                    .is_positive(3.0),
                "{kind} failed on SAT instance"
            );
            assert!(
                !engine
                    .estimate(&unsat, &unsat.empty_bindings())
                    .unwrap()
                    .is_positive(3.0),
                "{kind} failed on UNSAT instance"
            );
        }
        let mut sbl = SampledEngine::new(quick_config(11).with_carrier(CarrierKind::Sinusoid));
        let est = sbl.estimate(&sat, &sat.empty_bindings()).unwrap();
        assert!(est.samples > 0);
    }

    #[test]
    fn determinism_for_fixed_seed() {
        let inst = instance(&generators::section4_sat_instance());
        let mut a = SampledEngine::new(quick_config(42));
        let mut b = SampledEngine::new(quick_config(42));
        let ea = a.estimate(&inst, &inst.empty_bindings()).unwrap();
        let eb = b.estimate(&inst, &inst.empty_bindings()).unwrap();
        assert_eq!(ea, eb);
        let mut c = SampledEngine::new(quick_config(43));
        let ec = c.estimate(&inst, &inst.empty_bindings()).unwrap();
        assert_ne!(ea.mean, ec.mean);
    }

    #[test]
    fn trace_is_monotone_in_samples_and_matches_estimate_protocol() {
        let inst = instance(&generators::section4_sat_instance());
        let mut engine = SampledEngine::new(quick_config(5));
        let checkpoints = [10, 100, 1_000, 10_000];
        let trace = engine
            .trace(&inst, &inst.empty_bindings(), "S_SAT", &checkpoints)
            .unwrap();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.final_samples(), Some(10_000));
        let samples: Vec<u64> = trace.points.iter().map(|p| p.samples).collect();
        assert_eq!(samples, checkpoints);
        assert_eq!(engine.name(), "sampled");
    }

    #[test]
    fn logspaced_trace_reaches_the_cap() {
        let inst = instance(&generators::example7_unsat());
        let mut engine =
            SampledEngine::new(EngineConfig::new().with_seed(2).with_max_samples(10_000));
        let trace = engine
            .trace_logspaced(&inst, &inst.empty_bindings(), "S_UNSAT", 3)
            .unwrap();
        assert_eq!(trace.final_samples(), Some(10_000));
        // UNSAT trace hovers around zero.
        assert!(trace.final_mean().unwrap().abs() < 1e-2);
    }

    #[test]
    fn empty_checkpoints_give_empty_trace() {
        let inst = instance(&generators::example6_sat());
        let mut engine = SampledEngine::new(quick_config(0));
        let trace = engine
            .trace(&inst, &inst.empty_bindings(), "empty", &[])
            .unwrap();
        assert!(trace.is_empty());
    }

    #[test]
    fn sample_budget_interrupts_the_convergence_loop() {
        use crate::budget::{Budget, BudgetMeter, ExhaustedResource};
        // The §IV UNSAT instance needs ~10⁵ samples to converge; a 200-sample
        // allowance must interrupt with a Samples exhaustion, not block.
        let inst = instance(&generators::section4_unsat_instance());
        let mut engine = SampledEngine::new(quick_config(1));
        let mut meter = BudgetMeter::start(&Budget::unlimited().with_max_samples(200));
        let err = engine
            .estimate_budgeted(&inst, &inst.empty_bindings(), &mut meter)
            .unwrap_err();
        assert!(matches!(
            err,
            crate::NblSatError::BudgetExhausted {
                resource: ExhaustedResource::Samples
            }
        ));
        assert_eq!(meter.samples_used(), 200);
        // A second attempt finds the allowance already empty.
        assert!(engine
            .estimate_budgeted(&inst, &inst.empty_bindings(), &mut meter)
            .is_err());
    }

    #[test]
    fn generous_budget_matches_unbudgeted_estimate() {
        use crate::budget::{Budget, BudgetMeter};
        let inst = instance(&generators::section4_sat_instance());
        let mut engine = SampledEngine::new(quick_config(42));
        let plain = engine.estimate(&inst, &inst.empty_bindings()).unwrap();
        let mut meter = BudgetMeter::start(&Budget::unlimited().with_max_samples(10_000_000));
        let budgeted = engine
            .estimate_budgeted(&inst, &inst.empty_bindings(), &mut meter)
            .unwrap();
        assert_eq!(plain, budgeted);
        assert_eq!(meter.samples_used(), budgeted.samples);
    }

    #[test]
    fn expired_deadline_interrupts_the_convergence_loop() {
        use crate::budget::{Budget, BudgetMeter, ExhaustedResource};
        use std::time::Duration;
        let inst = instance(&generators::section4_unsat_instance());
        let mut engine = SampledEngine::new(quick_config(2));
        let mut meter = BudgetMeter::start(&Budget::unlimited().with_wall_time(Duration::ZERO));
        let err = engine
            .estimate_budgeted(&inst, &inst.empty_bindings(), &mut meter)
            .unwrap_err();
        assert!(matches!(
            err,
            crate::NblSatError::BudgetExhausted {
                resource: ExhaustedResource::WallClock
            }
        ));
    }

    #[test]
    fn packed_and_scalar_estimates_are_bit_identical() {
        // The flattened SamplePlan preserves the scalar path's f64
        // multiplication order exactly, so the two modes must agree on every
        // bit of the estimate — mean, std error, sample count, convergence.
        for formula in [
            generators::example6_sat(),
            generators::example7_unsat(),
            generators::section4_sat_instance(),
        ] {
            let inst = instance(&formula);
            for bound in [false, true] {
                let mut bindings = inst.empty_bindings();
                if bound {
                    bindings.assign(Variable::new(0), true);
                }
                let mut scalar =
                    SampledEngine::new(quick_config(9).with_eval_mode(cnf::EvalMode::Scalar));
                let mut packed =
                    SampledEngine::new(quick_config(9).with_eval_mode(cnf::EvalMode::Packed));
                let es = scalar.estimate(&inst, &bindings).unwrap();
                let ep = packed.estimate(&inst, &bindings).unwrap();
                assert_eq!(es, ep, "modes diverged (bound={bound})");
            }
        }
    }

    #[test]
    fn packed_budget_accounting_is_exact() {
        use crate::budget::{Budget, BudgetMeter};
        // A 200-sample allowance is not a multiple of anything the packed
        // loop cares about beyond three full words plus an 8-lane tail; the
        // per-word charges must still add up to exactly 200.
        let inst = instance(&generators::section4_unsat_instance());
        let mut engine = SampledEngine::new(quick_config(1).with_eval_mode(cnf::EvalMode::Packed));
        let mut meter = BudgetMeter::start(&Budget::unlimited().with_max_samples(200));
        assert!(engine
            .estimate_budgeted(&inst, &inst.empty_bindings(), &mut meter)
            .is_err());
        assert_eq!(meter.samples_used(), 200);
        // And when the engine converges early, only the drawn lanes of the
        // final word are charged.
        let mut engine = SampledEngine::new(quick_config(1).with_eval_mode(cnf::EvalMode::Packed));
        let mut meter = BudgetMeter::start(&Budget::unlimited().with_max_samples(10_000_000));
        let est = engine
            .estimate_budgeted(&inst, &inst.empty_bindings(), &mut meter)
            .unwrap();
        assert_eq!(meter.samples_used(), est.samples);
    }

    #[test]
    fn mismatched_bindings_error() {
        let inst = instance(&generators::example6_sat());
        let mut engine = SampledEngine::new(quick_config(0));
        let wrong = PartialAssignment::new(7);
        assert!(engine.estimate(&inst, &wrong).is_err());
        assert!(engine.trace(&inst, &wrong, "x", &[10]).is_err());
    }
}
