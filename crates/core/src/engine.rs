//! The engine abstraction: anything that can estimate ⟨S_N⟩.

use crate::budget::BudgetMeter;
use crate::error::Result;
use crate::transform::NblSatInstance;
use cnf::PartialAssignment;
use std::fmt;

/// An estimate of the mean of `S_N = τ_N · Σ_N` under a set of bindings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanEstimate {
    /// The estimated (or exact) mean ⟨S_N⟩.
    pub mean: f64,
    /// Standard error of the estimate (0 for exact engines).
    pub std_error: f64,
    /// Number of noise samples used (0 for exact engines).
    pub samples: u64,
    /// Whether the engine's own convergence criterion was met.
    pub converged: bool,
    /// `true` if the estimate is exact (symbolic/algebraic engines).
    pub exact: bool,
}

impl MeanEstimate {
    /// Creates an exact estimate (no sampling error).
    pub fn exact(mean: f64) -> Self {
        MeanEstimate {
            mean,
            std_error: 0.0,
            samples: 0,
            converged: true,
            exact: true,
        }
    }

    /// Decides whether the mean is positive with the given confidence
    /// threshold (in standard errors).
    ///
    /// Exact estimates just compare against zero; sampled estimates require
    /// the mean to exceed `sigmas` standard errors, which keeps the UNSAT
    /// false-positive rate at the corresponding Gaussian tail probability.
    pub fn is_positive(&self, sigmas: f64) -> bool {
        if self.exact || self.std_error == 0.0 {
            self.mean > 0.0
        } else {
            self.mean > sigmas * self.std_error
        }
    }

    /// Signal-to-noise proxy of the estimate: mean divided by standard error
    /// (infinite for exact estimates with non-zero mean).
    pub fn snr(&self) -> f64 {
        if self.std_error == 0.0 {
            if self.mean > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            self.mean / self.std_error
        }
    }
}

impl fmt::Display for MeanEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean={:.6e} ± {:.2e} (samples={}, {}{})",
            self.mean,
            self.std_error,
            self.samples,
            if self.exact { "exact" } else { "sampled" },
            if self.converged { ", converged" } else { "" }
        )
    }
}

/// An engine capable of estimating ⟨S_N⟩ for an NBL-SAT instance under
/// τ_N-side variable bindings.
///
/// The three provided implementations are [`crate::SymbolicEngine`] (exact,
/// counting-based), [`crate::AlgebraicEngine`] (exact, term-expansion based)
/// and [`crate::SampledEngine`] (Monte-Carlo simulation of the analog
/// datapath).
pub trait NblEngine {
    /// Estimates ⟨S_N⟩ for `instance` with the given τ_N bindings.
    ///
    /// # Errors
    ///
    /// Implementations return an error if the instance exceeds their size
    /// limits or the bindings do not match the instance.
    fn estimate(
        &mut self,
        instance: &NblSatInstance,
        bindings: &PartialAssignment,
    ) -> Result<MeanEstimate>;

    /// Estimates ⟨S_N⟩ while charging the given [`BudgetMeter`].
    ///
    /// Engines with internal loops override this so the budget genuinely
    /// *interrupts* the work: [`crate::SampledEngine`] clamps its convergence
    /// loop to the remaining sample allowance and polls the deadline every
    /// sample, [`crate::SymbolicEngine`] polls the deadline inside its
    /// assignment enumeration. The default implementation only pre-checks the
    /// deadline and sample allowance, then charges the samples the estimate
    /// consumed.
    ///
    /// # Errors
    ///
    /// [`crate::NblSatError::BudgetExhausted`] when a limit fires, plus
    /// everything [`NblEngine::estimate`] can return.
    fn estimate_budgeted(
        &mut self,
        instance: &NblSatInstance,
        bindings: &PartialAssignment,
        meter: &mut BudgetMeter,
    ) -> Result<MeanEstimate> {
        meter.ensure_time()?;
        meter.ensure_samples()?;
        let estimate = self.estimate(instance, bindings)?;
        meter.charge_samples(estimate.samples);
        Ok(estimate)
    }

    /// Short human-readable engine name.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_estimate_properties() {
        let e = MeanEstimate::exact(0.25);
        assert!(e.exact);
        assert!(e.converged);
        assert_eq!(e.samples, 0);
        assert!(e.is_positive(3.0));
        assert_eq!(e.snr(), f64::INFINITY);
        assert!(e.to_string().contains("exact"));

        let zero = MeanEstimate::exact(0.0);
        assert!(!zero.is_positive(3.0));
        assert_eq!(zero.snr(), 0.0);
    }

    #[test]
    fn sampled_estimate_decision_rule() {
        let strong = MeanEstimate {
            mean: 1.0,
            std_error: 0.1,
            samples: 1000,
            converged: true,
            exact: false,
        };
        let weak = MeanEstimate {
            mean: 0.1,
            std_error: 0.2,
            samples: 1000,
            converged: false,
            exact: false,
        };
        assert!(strong.is_positive(3.0));
        assert!(!weak.is_positive(3.0));
        assert!((strong.snr() - 10.0).abs() < 1e-12);
        assert!(weak.to_string().contains("sampled"));
    }
}
