//! The single-operation satisfiability check (Algorithm 1 of the paper).

use crate::budget::BudgetMeter;
use crate::engine::{MeanEstimate, NblEngine};
use crate::error::Result;
use crate::transform::NblSatInstance;
use cnf::PartialAssignment;
use std::fmt;

/// The outcome of an NBL-SAT check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The mean of S_N is (statistically) positive: the instance is satisfiable.
    Satisfiable,
    /// The mean of S_N is (statistically) zero: the instance is unsatisfiable.
    Unsatisfiable,
}

impl Verdict {
    /// Returns `true` for [`Verdict::Satisfiable`].
    pub fn is_sat(self) -> bool {
        self == Verdict::Satisfiable
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Satisfiable => write!(f, "SAT"),
            Verdict::Unsatisfiable => write!(f, "UNSAT"),
        }
    }
}

/// Algorithm 1: `NBL-SAT check` — observe S_N = τ_N · Σ_N once and decide
/// SAT/UNSAT from the sign of its average.
///
/// The checker is generic over the [`NblEngine`] that produces the mean
/// estimate: with the exact [`crate::SymbolicEngine`] the decision is the
/// ideal hardware answer; with the [`crate::SampledEngine`] it follows the
/// statistical decision rule of [`MeanEstimate::is_positive`] with the
/// configured confidence threshold.
#[derive(Debug, Clone)]
pub struct SatChecker<E> {
    engine: E,
    decision_sigmas: f64,
    /// Number of checks performed so far (each check is "one operation" in the
    /// paper's accounting).
    checks_performed: u64,
}

impl<E: NblEngine> SatChecker<E> {
    /// Creates a checker around an engine with the default 3σ decision rule.
    pub fn new(engine: E) -> Self {
        SatChecker {
            engine,
            decision_sigmas: 3.0,
            checks_performed: 0,
        }
    }

    /// Overrides the decision threshold (in standard errors of the mean).
    pub fn with_decision_sigmas(mut self, sigmas: f64) -> Self {
        self.decision_sigmas = sigmas;
        self
    }

    /// Checks satisfiability of the full instance (no bindings).
    ///
    /// # Errors
    ///
    /// Propagates engine errors (size limits, mismatched bindings).
    pub fn check(&mut self, instance: &NblSatInstance) -> Result<Verdict> {
        let bindings = instance.empty_bindings();
        self.check_with_bindings(instance, &bindings)
    }

    /// Checks satisfiability of the instance restricted to a τ_N subspace.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (size limits, mismatched bindings).
    pub fn check_with_bindings(
        &mut self,
        instance: &NblSatInstance,
        bindings: &PartialAssignment,
    ) -> Result<Verdict> {
        let estimate = self.estimate_with_bindings(instance, bindings)?;
        Ok(self.decide(&estimate))
    }

    /// Returns the raw mean estimate for a restricted check, for callers that
    /// want the magnitude (e.g. the hybrid solver's branching guidance) and
    /// not just the verdict.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (size limits, mismatched bindings).
    pub fn estimate_with_bindings(
        &mut self,
        instance: &NblSatInstance,
        bindings: &PartialAssignment,
    ) -> Result<MeanEstimate> {
        self.checks_performed += 1;
        self.engine.estimate(instance, bindings)
    }

    /// Budgeted restricted check: charges one coprocessor check against the
    /// meter and runs the engine's budget-aware estimate, so both the check
    /// allowance and the wall-clock/sample limits can interrupt it.
    ///
    /// # Errors
    ///
    /// [`crate::NblSatError::BudgetExhausted`] when a limit fires, plus any
    /// engine error.
    pub fn check_budgeted(
        &mut self,
        instance: &NblSatInstance,
        bindings: &PartialAssignment,
        meter: &mut BudgetMeter,
    ) -> Result<Verdict> {
        let estimate = self.estimate_budgeted(instance, bindings, meter)?;
        Ok(self.decide(&estimate))
    }

    /// Budgeted raw estimate, charging the meter like
    /// [`SatChecker::check_budgeted`].
    ///
    /// # Errors
    ///
    /// [`crate::NblSatError::BudgetExhausted`] when a limit fires, plus any
    /// engine error.
    pub fn estimate_budgeted(
        &mut self,
        instance: &NblSatInstance,
        bindings: &PartialAssignment,
        meter: &mut BudgetMeter,
    ) -> Result<MeanEstimate> {
        meter.charge_check()?;
        self.checks_performed += 1;
        self.engine.estimate_budgeted(instance, bindings, meter)
    }

    /// Applies the decision rule of Algorithm 1 to a mean estimate.
    pub fn decide(&self, estimate: &MeanEstimate) -> Verdict {
        if estimate.is_positive(self.decision_sigmas) {
            Verdict::Satisfiable
        } else {
            Verdict::Unsatisfiable
        }
    }

    /// Number of check operations performed so far.
    pub fn checks_performed(&self) -> u64 {
        self.checks_performed
    }

    /// Access to the underlying engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Mutable access to the underlying engine.
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// Consumes the checker and returns the engine.
    pub fn into_engine(self) -> E {
        self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::sampled::SampledEngine;
    use crate::symbolic::SymbolicEngine;
    use cnf::generators::{self, RandomKSatConfig};

    fn instance(f: &cnf::CnfFormula) -> NblSatInstance {
        NblSatInstance::new(f).unwrap()
    }

    #[test]
    fn verdict_display_and_accessors() {
        assert_eq!(Verdict::Satisfiable.to_string(), "SAT");
        assert_eq!(Verdict::Unsatisfiable.to_string(), "UNSAT");
        assert!(Verdict::Satisfiable.is_sat());
        assert!(!Verdict::Unsatisfiable.is_sat());
    }

    #[test]
    fn single_operation_check_on_paper_examples_symbolic() {
        let mut checker = SatChecker::new(SymbolicEngine::new());
        assert_eq!(
            checker
                .check(&instance(&generators::example6_sat()))
                .unwrap(),
            Verdict::Satisfiable
        );
        assert_eq!(
            checker
                .check(&instance(&generators::example7_unsat()))
                .unwrap(),
            Verdict::Unsatisfiable
        );
        assert_eq!(
            checker
                .check(&instance(&generators::section4_sat_instance()))
                .unwrap(),
            Verdict::Satisfiable
        );
        assert_eq!(
            checker
                .check(&instance(&generators::section4_unsat_instance()))
                .unwrap(),
            Verdict::Unsatisfiable
        );
        // Each decision costs exactly one check operation.
        assert_eq!(checker.checks_performed(), 4);
    }

    #[test]
    fn single_operation_check_on_paper_examples_sampled() {
        let engine = SampledEngine::new(
            EngineConfig::new()
                .with_seed(13)
                .with_max_samples(80_000)
                .with_check_interval(20_000),
        );
        let mut checker = SatChecker::new(engine);
        assert_eq!(
            checker
                .check(&instance(&generators::example6_sat()))
                .unwrap(),
            Verdict::Satisfiable
        );
        assert_eq!(
            checker
                .check(&instance(&generators::example7_unsat()))
                .unwrap(),
            Verdict::Unsatisfiable
        );
        assert_eq!(checker.engine().config().seed, 13);
    }

    #[test]
    fn symbolic_checker_matches_model_counting_on_random_instances() {
        let mut checker = SatChecker::new(SymbolicEngine::new());
        for seed in 0..30 {
            let f =
                generators::random_ksat(&RandomKSatConfig::new(7, 30, 3).with_seed(seed)).unwrap();
            let expected = f.count_satisfying_assignments() > 0;
            let verdict = checker.check(&instance(&f)).unwrap();
            assert_eq!(verdict.is_sat(), expected, "seed {seed}");
        }
    }

    #[test]
    fn restricted_checks_follow_example8() {
        let inst = instance(&generators::example6_sat());
        let mut checker = SatChecker::new(SymbolicEngine::new());
        let mut bindings = inst.empty_bindings();
        bindings.assign(cnf::Variable::new(0), true);
        assert_eq!(
            checker.check_with_bindings(&inst, &bindings).unwrap(),
            Verdict::Satisfiable
        );
        bindings.assign(cnf::Variable::new(1), true);
        assert_eq!(
            checker.check_with_bindings(&inst, &bindings).unwrap(),
            Verdict::Unsatisfiable
        );
    }

    #[test]
    fn custom_decision_threshold_is_respected() {
        // With an absurdly high threshold even a positive sampled mean is
        // treated as not-yet-significant.
        let estimate = MeanEstimate {
            mean: 1.0,
            std_error: 0.3,
            samples: 100,
            converged: true,
            exact: false,
        };
        let checker = SatChecker::new(SymbolicEngine::new()).with_decision_sigmas(10.0);
        assert_eq!(checker.decide(&estimate), Verdict::Unsatisfiable);
        let relaxed = SatChecker::new(SymbolicEngine::new()).with_decision_sigmas(2.0);
        assert_eq!(relaxed.decide(&estimate), Verdict::Satisfiable);
    }

    #[test]
    fn engine_access() {
        let mut checker = SatChecker::new(SymbolicEngine::new());
        let _ = checker.engine_mut();
        let engine = checker.into_engine();
        assert_eq!(nbl_sat_core_engine_name(&engine), "symbolic");
    }

    fn nbl_sat_core_engine_name<E: NblEngine>(e: &E) -> &'static str {
        e.name()
    }
}
