//! Error types for the NBL-SAT core.

use crate::budget::ExhaustedResource;
use std::fmt;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NblSatError>;

/// Errors produced while transforming or solving NBL-SAT instances.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NblSatError {
    /// The formula is too large for the requested engine.
    InstanceTooLarge {
        /// Human-readable description of the violated limit.
        limit: String,
        /// The offending size.
        actual: usize,
    },
    /// The formula contains an empty clause, which the NBL transform cannot
    /// encode (an empty clause has no satisfying cube subspace); callers
    /// should simplify first or report UNSAT directly.
    EmptyClause {
        /// Index of the empty clause.
        clause_index: usize,
    },
    /// The formula has no variables or no clauses where the operation needs them.
    DegenerateFormula(String),
    /// A binding referenced a variable outside the instance.
    BindingOutOfRange {
        /// The variable index that was out of range.
        variable: usize,
        /// Number of variables in the instance.
        num_vars: usize,
    },
    /// The assignment extractor was invoked on an unsatisfiable instance.
    InstanceUnsatisfiable,
    /// An engine failed to reach a confident decision within its sample budget.
    Inconclusive {
        /// The mean estimate at the point of giving up.
        mean: f64,
        /// Number of samples used.
        samples: u64,
    },
    /// A resource budget ran out mid-solve. The unified solving API catches
    /// this and reports it as a `SolveVerdict::Unknown` outcome; it only
    /// escapes as an error from the lower-level budgeted entry points.
    BudgetExhausted {
        /// Which resource ran out.
        resource: ExhaustedResource,
    },
    /// A backend name was not found in the registry.
    UnknownBackend(String),
    /// The solve was cancelled through a cancellation token before it could
    /// decide. The unified solving API catches this and reports it as a
    /// `SolveVerdict::Unknown` outcome, like budget exhaustion.
    Cancelled,
    /// A backend panicked while solving; the panic was caught at the worker
    /// boundary so sibling jobs keep their outcomes.
    BackendPanicked {
        /// Name of the backend that panicked.
        backend: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The job was submitted to a solve service that had already been shut
    /// down or aborted.
    ServiceStopped,
    /// An operation reached a service session whose pinned solver is gone —
    /// explicitly closed, evicted after its idle timeout, or dead after a
    /// backend panic.
    SessionClosed {
        /// Why the session ended.
        reason: String,
    },
    /// An error bubbled up from the CNF substrate.
    Cnf(cnf::CnfError),
}

impl fmt::Display for NblSatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NblSatError::InstanceTooLarge { limit, actual } => {
                write!(f, "instance too large: {limit} (got {actual})")
            }
            NblSatError::EmptyClause { clause_index } => {
                write!(f, "clause {clause_index} is empty and cannot be encoded in NBL")
            }
            NblSatError::DegenerateFormula(msg) => write!(f, "degenerate formula: {msg}"),
            NblSatError::BindingOutOfRange { variable, num_vars } => write!(
                f,
                "binding references variable {variable} but the instance has {num_vars} variables"
            ),
            NblSatError::InstanceUnsatisfiable => {
                write!(f, "cannot extract a satisfying assignment from an unsatisfiable instance")
            }
            NblSatError::Inconclusive { mean, samples } => write!(
                f,
                "engine could not reach a confident decision after {samples} samples (mean {mean:.3e})"
            ),
            NblSatError::BudgetExhausted { resource } => {
                write!(f, "budget exhausted: out of {resource}")
            }
            NblSatError::UnknownBackend(name) => {
                write!(f, "no backend named {name:?} is registered")
            }
            NblSatError::Cancelled => write!(f, "solve cancelled"),
            NblSatError::BackendPanicked { backend, message } => {
                write!(f, "backend {backend:?} panicked: {message}")
            }
            NblSatError::ServiceStopped => {
                write!(f, "the solve service is no longer accepting jobs")
            }
            NblSatError::SessionClosed { reason } => {
                write!(f, "the solve session is closed: {reason}")
            }
            NblSatError::Cnf(e) => write!(f, "cnf error: {e}"),
        }
    }
}

impl std::error::Error for NblSatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NblSatError::Cnf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cnf::CnfError> for NblSatError {
    fn from(e: cnf::CnfError) -> Self {
        NblSatError::Cnf(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = NblSatError::Cnf(cnf::CnfError::ZeroLiteral);
        assert!(e.to_string().contains("cnf error"));
        assert!(std::error::Error::source(&e).is_some());
        let e = NblSatError::InstanceTooLarge {
            limit: "30 variables".into(),
            actual: 64,
        };
        assert!(e.to_string().contains("64"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NblSatError>();
    }
}
