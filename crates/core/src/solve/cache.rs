//! Canonical-key verdict/model cache.
//!
//! The pipeline canonicalizes every submission (dense variable renaming in a
//! structure-derived order), so two formulas differing only by a variable
//! renaming and clause/literal permutations reduce to one canonical formula
//! and hash to one key. The cache maps that key to a definitive verdict and,
//! for satisfiable entries, a *verified* model in canonical variable space;
//! callers lift cached models back through their own
//! [`ReductionTrace`](cnf::ReductionTrace).
//!
//! Design points:
//!
//! - **Exact compare on hit.** The 64-bit key is only a bucket index; each
//!   entry stores its canonical formula and a lookup must match it exactly,
//!   so a hash collision can never smuggle a wrong verdict.
//! - **Verification on insert.** A satisfiable entry is only accepted with a
//!   model that evaluates to true on the canonical formula; unverifiable
//!   insertions are counted and dropped, never stored.
//! - **Definitive only.** `Unknown` verdicts are never cached — a budget
//!   failure on one submission must not poison a later, better-funded one.
//! - **LRU by tick.** Every hit stamps the entry with a monotonic tick; when
//!   the configurable capacity is exceeded the stalest entry goes first.

use crate::solve::outcome::SolveVerdict;
use cnf::{Assignment, CnfFormula};
use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};

/// Default number of entries a cache holds before evicting.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// A cached answer in canonical variable space.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedAnswer {
    /// The definitive verdict.
    pub verdict: SolveVerdict,
    /// The verified model (canonical space), present iff the verdict is SAT.
    pub model: Option<Assignment>,
}

#[derive(Debug)]
struct CacheEntry {
    formula: CnfFormula,
    answer: CachedAnswer,
    tick: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    buckets: HashMap<u64, Vec<CacheEntry>>,
    entries: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    rejected: u64,
}

/// Counter snapshot of a [`VerdictCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that returned a cached answer.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Insertions accepted.
    pub insertions: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Insertions rejected (non-definitive verdict, missing or failing model).
    pub rejected: u64,
    /// Entries currently resident.
    pub entries: u64,
}

/// A bounded, thread-safe LRU cache from canonical formulas to verified
/// definitive answers.
#[derive(Debug)]
pub struct VerdictCache {
    capacity: usize,
    state: Mutex<CacheState>,
}

impl Default for VerdictCache {
    fn default() -> Self {
        VerdictCache::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl VerdictCache {
    /// A cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        VerdictCache {
            capacity: capacity.max(1),
            state: Mutex::new(CacheState::default()),
        }
    }

    /// Maximum number of resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up the canonical `formula` under `key`. A hit requires an exact
    /// formula match (the key alone is never trusted) and refreshes the
    /// entry's recency.
    pub fn lookup(&self, key: u64, formula: &CnfFormula) -> Option<CachedAnswer> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.tick += 1;
        let tick = state.tick;
        let found = state
            .buckets
            .get_mut(&key)
            .and_then(|bucket| bucket.iter_mut().find(|entry| entry.formula == *formula))
            .map(|entry| {
                entry.tick = tick;
                entry.answer.clone()
            });
        match &found {
            Some(_) => state.hits += 1,
            None => state.misses += 1,
        }
        found
    }

    /// Inserts a definitive answer for the canonical `formula` under `key`.
    ///
    /// Satisfiable answers must carry a model that satisfies `formula`;
    /// anything else (non-definitive verdict, missing model, failing model)
    /// is rejected and counted. Returns the number of entries evicted to
    /// make room (also visible via [`CacheStats::evictions`]).
    pub fn insert(
        &self,
        key: u64,
        formula: CnfFormula,
        verdict: SolveVerdict,
        model: Option<Assignment>,
    ) -> u64 {
        let verified = match verdict {
            SolveVerdict::Satisfiable => model
                .as_ref()
                .is_some_and(|candidate| formula.evaluate(candidate)),
            SolveVerdict::Unsatisfiable => model.is_none(),
            SolveVerdict::Unknown(_) => false,
        };
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if !verified {
            state.rejected += 1;
            return 0;
        }
        state.tick += 1;
        let tick = state.tick;
        let bucket = state.buckets.entry(key).or_default();
        if let Some(entry) = bucket.iter_mut().find(|entry| entry.formula == formula) {
            // Refresh rather than duplicate: the answer is already verified.
            entry.tick = tick;
            return 0;
        }
        bucket.push(CacheEntry {
            formula,
            answer: CachedAnswer { verdict, model },
            tick,
        });
        state.entries += 1;
        state.insertions += 1;
        let mut evicted = 0;
        while state.entries > self.capacity {
            evict_stalest(&mut state);
            evicted += 1;
        }
        state.evictions += evicted;
        evicted
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entries
    }

    /// `true` when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss/insertion/eviction/rejection counters.
    pub fn stats(&self) -> CacheStats {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        CacheStats {
            hits: state.hits,
            misses: state.misses,
            insertions: state.insertions,
            evictions: state.evictions,
            rejected: state.rejected,
            entries: state.entries as u64,
        }
    }
}

/// Removes the least-recently-used entry. Linear in resident entries, which
/// is fine for the capacities this cache is built for (hundreds to a few
/// thousand) and only runs when the cache is over capacity.
fn evict_stalest(state: &mut CacheState) {
    let stalest = state
        .buckets
        .iter()
        .filter_map(|(key, bucket)| {
            bucket
                .iter()
                .enumerate()
                .min_by_key(|(_, entry)| entry.tick)
                .map(|(index, entry)| (*key, index, entry.tick))
        })
        .min_by_key(|&(_, _, tick)| tick);
    if let Some((key, index, _)) = stalest {
        let bucket = state.buckets.get_mut(&key).expect("bucket exists");
        bucket.remove(index);
        if bucket.is_empty() {
            state.buckets.remove(&key);
        }
        state.entries -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::outcome::UnknownCause;
    use cnf::{cnf_formula, fingerprint};

    fn sat_entry() -> (u64, CnfFormula, Assignment) {
        let formula = cnf_formula![[1, 2], [-1, -2]];
        let model = Assignment::from_bools(vec![true, false]);
        (fingerprint(&formula), formula, model)
    }

    #[test]
    fn hit_requires_exact_formula_match() {
        let cache = VerdictCache::new(4);
        let (key, formula, model) = sat_entry();
        cache.insert(key, formula.clone(), SolveVerdict::Satisfiable, Some(model));
        assert!(cache.lookup(key, &formula).is_some());
        // Same key, different formula: a simulated hash collision must miss.
        let other = cnf_formula![[1], [2]];
        assert!(cache.lookup(key, &other).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn unverified_models_are_rejected() {
        let cache = VerdictCache::new(4);
        let (key, formula, _) = sat_entry();
        let bogus = Assignment::from_bools(vec![true, true]);
        cache.insert(key, formula.clone(), SolveVerdict::Satisfiable, Some(bogus));
        cache.insert(key, formula.clone(), SolveVerdict::Satisfiable, None);
        cache.insert(
            key,
            formula.clone(),
            SolveVerdict::Unknown(UnknownCause::Incomplete),
            None,
        );
        assert!(cache.is_empty());
        assert_eq!(cache.stats().rejected, 3);
        assert!(cache.lookup(key, &formula).is_none());
    }

    #[test]
    fn unsat_entries_cache_without_models() {
        let cache = VerdictCache::new(4);
        let formula = cnf_formula![[1], [-1]];
        let key = fingerprint(&formula);
        cache.insert(key, formula.clone(), SolveVerdict::Unsatisfiable, None);
        let answer = cache.lookup(key, &formula).expect("cached");
        assert_eq!(answer.verdict, SolveVerdict::Unsatisfiable);
        assert!(answer.model.is_none());
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let cache = VerdictCache::new(2);
        let a = cnf_formula![[1], [-1]];
        let b = cnf_formula![[1], [2], [-1, -2]];
        let c = cnf_formula![[1, 2], [-1], [-2]];
        for formula in [&a, &b] {
            cache.insert(
                fingerprint(formula),
                formula.clone(),
                SolveVerdict::Unsatisfiable,
                None,
            );
        }
        // Touch `a` so `b` becomes the stalest, then overflow with `c`.
        assert!(cache.lookup(fingerprint(&a), &a).is_some());
        let evicted = cache.insert(
            fingerprint(&c),
            c.clone(),
            SolveVerdict::Unsatisfiable,
            None,
        );
        assert_eq!(evicted, 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(fingerprint(&a), &a).is_some());
        assert!(cache.lookup(fingerprint(&b), &b).is_none());
        assert!(cache.lookup(fingerprint(&c), &c).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinsertion_refreshes_instead_of_duplicating() {
        let cache = VerdictCache::new(4);
        let (key, formula, model) = sat_entry();
        cache.insert(
            key,
            formula.clone(),
            SolveVerdict::Satisfiable,
            Some(model.clone()),
        );
        cache.insert(key, formula.clone(), SolveVerdict::Satisfiable, Some(model));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().insertions, 1);
    }
}
