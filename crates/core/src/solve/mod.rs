//! The unified solving API: one request, one outcome, many backends.
//!
//! The paper's central claim is that a single NBL correlation answers
//! SAT/UNSAT for all `2^n` candidate assignments at once, and its §V
//! deployment story treats that check as a *coprocessor operation* invoked
//! from a conventional solver. This module is the workspace's expression of
//! that separation: callers describe *what* they want solved — a
//! [`SolveRequest`] carrying the formula, the desired artifacts (verdict,
//! model, prime-implicant cube), a deterministic seed and a resource
//! [`Budget`](crate::Budget) — and a [`SatBackend`] describes *how*, whether
//! that is a classical CDCL search, the NBL check/extract pipeline
//! (Algorithms 1 and 2) or the hybrid CPU + coprocessor flow.
//!
//! Every backend answers with a [`SolveOutcome`]: a three-valued
//! [`SolveVerdict`] (`Satisfiable`, `Unsatisfiable`, or `Unknown` with its
//! cause — budget exhaustion or genuine incompleteness), the requested
//! artifacts, merged [`SolveStats`] telemetry and, for the sampled engine,
//! the convergence trace. Budgets are enforced *inside* the search loops:
//! the classical solvers poll the wall-clock deadline per node/flip, the
//! sampled engine clamps its convergence loop to the sample allowance, and
//! the NBL pipeline charges each check operation — so a tight budget always
//! yields `Unknown(BudgetExhausted)` instead of an unbounded run.
//!
//! The [`BackendRegistry`] names every engine in the workspace
//! (`"cdcl"`, `"dpll"`, `"walksat"`, `"gsat"`, `"schoening"`, `"two-sat"`,
//! `"brute-force"`, `"portfolio"`, `"parallel-portfolio"`, `"nbl-symbolic"`,
//! `"nbl-sampled"`, `"nbl-algebraic"`, `"hybrid-symbolic"`,
//! `"hybrid-sampled"`) so front ends can dispatch by configuration instead
//! of by type. For many requests sharing one resource envelope, the batch
//! entry point [`SolveBatch`] fans jobs out across a bounded worker pool
//! against a [`SharedBudget`](crate::SharedBudget); for a *stream* of
//! requests, the persistent [`SolveService`] job queue accepts submissions
//! without blocking and answers through cancellable, prioritised
//! [`JobHandle`]s.
//!
//! ```
//! use cnf::cnf_formula;
//! use nbl_sat_core::{Artifacts, BackendRegistry, Budget, SolveRequest};
//!
//! let formula = cnf_formula![[1, 2], [-1, -2]];
//! let registry = BackendRegistry::default();
//! let request = SolveRequest::new(&formula).artifacts(Artifacts::PrimeCube);
//! for name in ["cdcl", "nbl-symbolic", "hybrid-symbolic"] {
//!     let outcome = registry.solve(name, &request)?;
//!     assert!(outcome.verdict.is_sat());
//!     assert!(outcome.cube.unwrap().is_implicant_of(&formula));
//! }
//! # Ok::<(), nbl_sat_core::NblSatError>(())
//! ```

pub mod adapters;
pub mod backend;
pub mod batch;
pub mod cache;
pub mod metrics;
pub mod outcome;
pub mod pipeline;
pub mod registry;
pub mod request;
pub mod service;
pub mod session;

pub use adapters::{ClassicalBackend, HybridBackend, NblCheckBackend};
pub use backend::SatBackend;
pub use batch::SolveBatch;
pub use cache::{CacheStats, CachedAnswer, VerdictCache, DEFAULT_CACHE_CAPACITY};
pub use metrics::{BackendLatency, MetricsRegistry, MetricsSnapshot, LATENCY_BUCKETS};
pub use outcome::{SolveOutcome, SolveStats, SolveVerdict, UnknownCause};
pub use pipeline::{PipelineConfig, PipelineDecision, PreparedRequest, SolvePipeline};
pub use registry::BackendRegistry;
pub use request::{Artifacts, SolveRequest};
pub use service::{
    JobHandle, JobPriority, JobStatus, ServiceBuilder, SessionHandle, SessionSolve, SolveService,
};
pub use session::{CdclSessionBackend, IncrementalBackend, SessionCall, SolveSession};
