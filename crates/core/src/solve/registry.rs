//! Name-based backend registry.

use crate::algebraic::AlgebraicEngine;
use crate::config::EngineConfig;
use crate::error::{NblSatError, Result};
use crate::hybrid::HybridSolver;
use crate::sampled::SampledEngine;
use crate::solve::adapters::{ClassicalBackend, HybridBackend, NblCheckBackend};
use crate::solve::backend::SatBackend;
use crate::solve::outcome::SolveOutcome;
use crate::solve::pipeline::SolvePipeline;
use crate::solve::request::SolveRequest;
use crate::solve::session::{CdclSessionBackend, IncrementalBackend, SolveSession};
use crate::symbolic::SymbolicEngine;
use cnf::EvalMode;
use sat_solvers::{
    BruteForceSolver, CdclSolver, DpllSolver, Gsat, GsatConfig, ParallelPortfolio, Portfolio,
    Schoening, SchoeningConfig, SharingConfig, TwoSatSolver, WalkSat, WalkSatConfig,
};
use std::fmt;
use std::sync::Arc;

/// Points per decade of the log-spaced convergence trace the sampled backend
/// records when a request asks for one.
const TRACE_POINTS_PER_DECADE: u32 = 4;

type BackendFactory = Arc<dyn Fn() -> Box<dyn SatBackend> + Send + Sync>;
type SessionFactory = Arc<dyn Fn() -> Box<dyn IncrementalBackend> + Send + Sync>;

/// A registry mapping backend names to factories, with enumeration in
/// registration order.
///
/// Backends are stateful (they carry per-solve statistics), so the registry
/// hands out fresh instances via [`BackendRegistry::create`] rather than
/// sharing one. The factories are reference-counted, so cloning a registry is
/// cheap — this is how the long-lived worker threads of a
/// [`crate::SolveService`] get their own handle on the backend set.
/// [`BackendRegistry::default`] registers every solving engine in the
/// workspace:
///
/// | name | engine | complete |
/// |---|---|---|
/// | `brute-force` | exhaustive enumeration (≤ 24 vars) | yes |
/// | `dpll` | DPLL with unit propagation + pure literals | yes |
/// | `cdcl` | CDCL (watched literals, VSIDS, Luby restarts) | yes |
/// | `two-sat` | Aspvall–Plass–Tarjan 2-SAT | scope-limited |
/// | `walksat` | WalkSAT local search | no |
/// | `gsat` | GSAT local search | no |
/// | `schoening` | Schöning's random walk | no |
/// | `portfolio` | 2-SAT → WalkSAT → CDCL portfolio | yes |
/// | `parallel-portfolio` | 2-SAT ∥ WalkSAT ∥ CDCL raced across threads | yes |
/// | `nbl-symbolic` | NBL check, exact counting engine | yes |
/// | `nbl-algebraic` | NBL check, exact term expansion | yes |
/// | `nbl-sampled` | NBL check, Monte-Carlo engine | statistical |
/// | `hybrid-symbolic` | §V hybrid flow, ideal coprocessor | yes |
/// | `hybrid-sampled` | §V hybrid flow, sampled coprocessor | statistical |
///
/// "Scope-limited" and "statistical" backends report
/// [`SatBackend::is_complete`] `false`: 2-SAT answers only 2-CNF, and the
/// sampled engines' verdicts carry the §III.F statistical decision rule whose
/// sample cost grows as `2^{n·m}`.
#[derive(Clone)]
pub struct BackendRegistry {
    entries: Vec<(&'static str, BackendFactory)>,
    session_entries: Vec<(&'static str, SessionFactory)>,
}

impl fmt::Debug for BackendRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BackendRegistry")
            .field("backends", &self.names())
            .field("session_backends", &self.session_names())
            .finish()
    }
}

impl BackendRegistry {
    /// An empty registry (use [`BackendRegistry::default`] for the full set).
    pub fn empty() -> Self {
        BackendRegistry {
            entries: Vec::new(),
            session_entries: Vec::new(),
        }
    }

    /// Registers (or replaces) a backend factory under `name`.
    pub fn register(
        &mut self,
        name: &'static str,
        factory: impl Fn() -> Box<dyn SatBackend> + Send + Sync + 'static,
    ) {
        if let Some(entry) = self.entries.iter_mut().find(|(n, _)| *n == name) {
            entry.1 = Arc::new(factory);
        } else {
            self.entries.push((name, Arc::new(factory)));
        }
    }

    /// Creates a fresh instance of the named backend.
    ///
    /// # Errors
    ///
    /// [`NblSatError::UnknownBackend`] if no backend is registered under
    /// `name`.
    pub fn create(&self, name: &str) -> Result<Box<dyn SatBackend>> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, factory)| factory())
            .ok_or_else(|| NblSatError::UnknownBackend(name.to_string()))
    }

    /// Registers (or replaces) an incremental session factory under `name`.
    /// A session factory is independent of the one-shot factory registered
    /// under the same name; most backends only have the latter.
    pub fn register_session(
        &mut self,
        name: &'static str,
        factory: impl Fn() -> Box<dyn IncrementalBackend> + Send + Sync + 'static,
    ) {
        if let Some(entry) = self.session_entries.iter_mut().find(|(n, _)| *n == name) {
            entry.1 = Arc::new(factory);
        } else {
            self.session_entries.push((name, Arc::new(factory)));
        }
    }

    /// Opens a fresh incremental [`SolveSession`] on the named backend.
    ///
    /// # Errors
    ///
    /// [`NblSatError::UnknownBackend`] if no *session-capable* backend is
    /// registered under `name` (a name may support one-shot solves only).
    pub fn open_session(&self, name: &str) -> Result<SolveSession> {
        self.session_entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, factory)| SolveSession::new(factory()))
            .ok_or_else(|| NblSatError::UnknownBackend(name.to_string()))
    }

    /// Returns `true` if the named backend can host incremental sessions.
    pub fn supports_sessions(&self, name: &str) -> bool {
        self.session_entries.iter().any(|(n, _)| *n == name)
    }

    /// The session-capable backend names, in registration order.
    pub fn session_names(&self) -> Vec<&'static str> {
        self.session_entries.iter().map(|(name, _)| *name).collect()
    }

    /// The registered backend names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|(name, _)| *name).collect()
    }

    /// Returns `true` if a backend is registered under `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _)| *n == name)
    }

    /// Number of registered backends.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no backend is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The full default backend set with an explicit evaluation core for
    /// every backend that has one: the brute-force enumerator, the
    /// stochastic local-search solvers (directly and inside both
    /// portfolios), and the Monte-Carlo NBL engines. Backends without a
    /// packed/scalar distinction (DPLL, CDCL, 2-SAT, the exact NBL engines)
    /// are registered unchanged. `BackendRegistry::default()` is
    /// `with_eval_mode(EvalMode::default())`, which in turn is
    /// [`BackendRegistry::with_modes`] under the default cooperative
    /// [`SharingConfig`].
    pub fn with_eval_mode(eval_mode: EvalMode) -> Self {
        BackendRegistry::with_modes(eval_mode, SharingConfig::default())
    }

    /// [`BackendRegistry::with_eval_mode`] plus an explicit clause-sharing
    /// configuration for the `parallel-portfolio` backend (cooperative by
    /// default; pass [`SharingConfig::racing_only`] for the pure racing
    /// ensemble).
    pub fn with_modes(eval_mode: EvalMode, sharing: SharingConfig) -> Self {
        let mut registry = BackendRegistry::empty();
        registry.register("brute-force", move || {
            Box::new(
                ClassicalBackend::new("brute-force", true, move |_| {
                    BruteForceSolver::new().with_eval_mode(eval_mode)
                })
                .with_var_limit(24),
            )
        });
        registry.register("dpll", || {
            Box::new(ClassicalBackend::new("dpll", true, |_| DpllSolver::new()))
        });
        registry.register("cdcl", || {
            Box::new(ClassicalBackend::new("cdcl", true, |_| CdclSolver::new()))
        });
        // Complete only on 2-CNF; the unified API is formula-agnostic, so the
        // backend is advertised as incomplete (it answers Unknown out of
        // scope).
        registry.register("two-sat", || {
            Box::new(ClassicalBackend::new("two-sat", false, |_| {
                TwoSatSolver::new()
            }))
        });
        registry.register("walksat", move || {
            Box::new(ClassicalBackend::new("walksat", false, move |seed| {
                WalkSat::with_config(WalkSatConfig {
                    seed,
                    eval_mode,
                    ..WalkSatConfig::default()
                })
            }))
        });
        registry.register("gsat", move || {
            Box::new(ClassicalBackend::new("gsat", false, move |seed| {
                Gsat::with_config(GsatConfig {
                    seed,
                    eval_mode,
                    ..GsatConfig::default()
                })
            }))
        });
        registry.register("schoening", move || {
            Box::new(ClassicalBackend::new("schoening", false, move |seed| {
                Schoening::with_config(SchoeningConfig {
                    seed,
                    eval_mode,
                    ..SchoeningConfig::default()
                })
            }))
        });
        // The portfolios are seed-aware so the request seed reaches their
        // stochastic members (reseeded per solve, not per construction).
        registry.register("portfolio", move || {
            Box::new(ClassicalBackend::new("portfolio", true, move |seed| {
                Portfolio::new_with_eval_mode(eval_mode).with_seed(seed)
            }))
        });
        registry.register("parallel-portfolio", move || {
            Box::new(ClassicalBackend::new(
                "parallel-portfolio",
                true,
                move |seed| {
                    ParallelPortfolio::new_with_eval_mode(eval_mode)
                        .with_seed(seed)
                        .with_sharing(sharing)
                },
            ))
        });
        registry.register("nbl-symbolic", || {
            Box::new(NblCheckBackend::new("nbl-symbolic", true, |_| {
                SymbolicEngine::new()
            }))
        });
        registry.register("nbl-algebraic", || {
            Box::new(NblCheckBackend::new("nbl-algebraic", true, |_| {
                AlgebraicEngine::new()
            }))
        });
        registry.register("nbl-sampled", move || {
            Box::new(
                NblCheckBackend::new("nbl-sampled", false, move |seed| {
                    SampledEngine::new(
                        EngineConfig::new()
                            .with_seed(seed)
                            .with_eval_mode(eval_mode),
                    )
                })
                .with_trace_fn(move |seed, instance, sample_allowance| {
                    let mut config = EngineConfig::new()
                        .with_seed(seed)
                        .with_eval_mode(eval_mode);
                    if let Some(allowance) = sample_allowance {
                        config = config.with_max_samples(allowance.min(config.max_samples).max(1));
                    }
                    let mut engine = SampledEngine::new(config);
                    engine.trace_logspaced(
                        instance,
                        &instance.empty_bindings(),
                        "S_N running mean",
                        TRACE_POINTS_PER_DECADE,
                    )
                }),
            )
        });
        registry.register("hybrid-symbolic", || {
            Box::new(HybridBackend::new("hybrid-symbolic", true, |_| {
                HybridSolver::with_ideal_coprocessor()
            }))
        });
        registry.register("hybrid-sampled", move || {
            Box::new(HybridBackend::new("hybrid-sampled", false, move |seed| {
                HybridSolver::new(SampledEngine::new(
                    EngineConfig::new()
                        .with_seed(seed)
                        .with_eval_mode(eval_mode),
                ))
            }))
        });
        // CDCL is the one engine with true incremental state worth keeping
        // between calls; it doubles as the session backend under its one-shot
        // name.
        registry.register_session("cdcl", || Box::new(CdclSessionBackend::new()));
        registry
    }

    /// Convenience: solve one request with the named backend through an
    /// ephemeral preprocessing pipeline (no cache — one-shot callers have no
    /// re-solve traffic to hit it with). The request's formula is normalized,
    /// unit-propagated and canonicalized before dispatch, and any model is
    /// mapped back to the caller's variable space; requests carrying
    /// assumptions, or asking for a convergence trace or prime-implicant
    /// cube, are dispatched untouched.
    ///
    /// # Errors
    ///
    /// [`NblSatError::UnknownBackend`] for unregistered names, plus whatever
    /// the backend's [`SatBackend::solve`] returns.
    pub fn solve(&self, name: &str, request: &SolveRequest<'_>) -> Result<SolveOutcome> {
        SolvePipeline::default().solve(self, name, request)
    }
}

impl Default for BackendRegistry {
    fn default() -> Self {
        BackendRegistry::with_eval_mode(EvalMode::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::generators;

    #[test]
    fn default_registry_has_fourteen_backends() {
        let registry = BackendRegistry::default();
        assert_eq!(registry.len(), 14, "got {:?}", registry.names());
        assert!(!registry.is_empty());
        for name in [
            "brute-force",
            "dpll",
            "cdcl",
            "two-sat",
            "walksat",
            "gsat",
            "schoening",
            "portfolio",
            "parallel-portfolio",
            "nbl-symbolic",
            "nbl-algebraic",
            "nbl-sampled",
            "hybrid-symbolic",
            "hybrid-sampled",
        ] {
            assert!(registry.contains(name), "missing {name}");
            let backend = registry.create(name).unwrap();
            assert_eq!(backend.name(), name);
        }
    }

    #[test]
    fn session_support_is_advertised_and_opens() {
        let registry = BackendRegistry::default();
        assert!(registry.supports_sessions("cdcl"));
        assert!(!registry.supports_sessions("dpll"));
        assert_eq!(registry.session_names(), vec!["cdcl"]);
        let mut session = registry.open_session("cdcl").unwrap();
        assert_eq!(session.backend_name(), "cdcl");
        session.push(&generators::example7_unsat());
        let outcome = session
            .solve(&crate::solve::session::SessionCall::new())
            .unwrap();
        assert!(outcome.verdict.is_unsat());
        let err = registry.open_session("walksat").unwrap_err();
        assert!(matches!(err, NblSatError::UnknownBackend(ref n) if n == "walksat"));
    }

    #[test]
    fn unknown_backend_is_an_error() {
        let registry = BackendRegistry::default();
        let err = registry.create("minisat").unwrap_err();
        assert!(matches!(err, NblSatError::UnknownBackend(ref n) if n == "minisat"));
        let f = generators::example6_sat();
        assert!(registry.solve("minisat", &SolveRequest::new(&f)).is_err());
    }

    #[test]
    fn register_replaces_existing_names() {
        let mut registry = BackendRegistry::empty();
        registry.register("cdcl", || {
            Box::new(ClassicalBackend::new("cdcl", true, |_| CdclSolver::new()))
        });
        registry.register("cdcl", || {
            Box::new(ClassicalBackend::new("cdcl", true, |_| {
                CdclSolver::new().with_restart_base(10)
            }))
        });
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.names(), vec!["cdcl"]);
    }

    #[test]
    fn registry_solve_round_trip() {
        let registry = BackendRegistry::default();
        let f = generators::section4_sat_instance();
        let request = SolveRequest::new(&f);
        for name in ["cdcl", "nbl-symbolic", "hybrid-symbolic"] {
            let outcome = registry.solve(name, &request).unwrap();
            assert!(outcome.verdict.is_sat(), "{name}");
        }
        let unsat = generators::section4_unsat_instance();
        let request = SolveRequest::new(&unsat);
        for name in ["dpll", "portfolio", "nbl-algebraic"] {
            let outcome = registry.solve(name, &request).unwrap();
            assert!(outcome.verdict.is_unsat(), "{name}");
        }
    }

    #[test]
    fn parallel_portfolio_sharing_is_on_by_default_and_opts_out() {
        let f = generators::pigeonhole(5, 4);
        // Default registry: cooperative portfolio, counters flow into the
        // unified stats (CDCL must decide, so exports are guaranteed).
        let cooperative = BackendRegistry::default();
        let outcome = cooperative
            .solve("parallel-portfolio", &SolveRequest::new(&f).seed(1))
            .unwrap();
        assert!(outcome.verdict.is_unsat());
        assert!(outcome.stats.clauses_exported > 0);
        // Racing-only registry: same verdict, zero sharing traffic.
        let racing = BackendRegistry::with_modes(EvalMode::default(), SharingConfig::racing_only());
        let outcome = racing
            .solve("parallel-portfolio", &SolveRequest::new(&f).seed(1))
            .unwrap();
        assert!(outcome.verdict.is_unsat());
        assert_eq!(outcome.stats.clauses_exported, 0);
        assert_eq!(outcome.stats.clauses_imported, 0);
    }

    #[test]
    fn trace_requests_stay_inside_the_budget() {
        use crate::budget::Budget;
        let registry = BackendRegistry::default();
        let f = generators::example7_unsat();
        // Once the sample allowance is spent by the check itself, the trace
        // must be skipped rather than silently re-running the simulation.
        let request = SolveRequest::new(&f)
            .seed(3)
            .trace(true)
            .budget(Budget::unlimited().with_max_samples(150));
        let outcome = registry.solve("nbl-sampled", &request).unwrap();
        assert!(outcome.trace.is_none());
        assert!(outcome.exhausted.is_some());
        assert!(outcome.stats.samples <= 150);
        // With headroom (the engine's own 10⁶-sample cap plus room for the
        // trace) the trace runs, stays inside the allowance, and its samples
        // are charged to the unified stats on top of the check's.
        let request = SolveRequest::new(&f)
            .seed(3)
            .trace(true)
            .budget(Budget::unlimited().with_max_samples(2_500_000));
        let outcome = registry.solve("nbl-sampled", &request).unwrap();
        let trace = outcome.trace.expect("trace affordable");
        assert!(trace.final_samples().unwrap() <= 1_000_000);
        assert!(outcome.stats.samples <= 2_500_000);
        assert!(outcome.stats.samples > trace.final_samples().unwrap());
    }

    #[test]
    fn sampled_backend_produces_a_trace_on_request() {
        let registry = BackendRegistry::default();
        let f = generators::example6_sat();
        let request = SolveRequest::new(&f).seed(5).trace(true);
        let outcome = registry.solve("nbl-sampled", &request).unwrap();
        assert!(outcome.verdict.is_sat());
        let trace = outcome.trace.expect("trace requested");
        assert!(!trace.is_empty());
        // Without the flag no trace is produced.
        let quiet = registry
            .solve("nbl-sampled", &SolveRequest::new(&f).seed(5))
            .unwrap();
        assert!(quiet.trace.is_none());
    }
}
