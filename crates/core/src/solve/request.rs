//! The unified solve request.

use crate::budget::Budget;
use cnf::{Clause, CnfFormula, Literal};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Which artifacts the caller wants beyond the SAT/UNSAT verdict.
///
/// The tiers mirror the paper's cost model: the verdict is one NBL check
/// operation (Algorithm 1), a model costs at most `n` more (Algorithm 2), and
/// a prime-implicant cube is the model plus a CPU-side don't-care shrink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Artifacts {
    /// Only the verdict.
    #[default]
    Verdict,
    /// Verdict plus a satisfying assignment when satisfiable.
    Model,
    /// Verdict plus a satisfying prime-implicant cube (and the model it was
    /// shrunk from) when satisfiable.
    PrimeCube,
}

impl Artifacts {
    /// Returns `true` if a model must be produced.
    pub fn wants_model(self) -> bool {
        matches!(self, Artifacts::Model | Artifacts::PrimeCube)
    }

    /// Returns `true` if a prime-implicant cube must be produced.
    pub fn wants_cube(self) -> bool {
        matches!(self, Artifacts::PrimeCube)
    }
}

/// A single solving job for a [`crate::SatBackend`]: the formula plus the
/// desired artifacts, a deterministic seed, a resource [`Budget`] and an
/// optional convergence-trace request.
///
/// Built with a fluent builder; the request borrows the formula, so it is
/// cheap to construct per call.
///
/// ```
/// use cnf::cnf_formula;
/// use nbl_sat_core::{Artifacts, BackendRegistry, Budget, SolveRequest};
///
/// let formula = cnf_formula![[1, 2], [-1, -2]];
/// let request = SolveRequest::new(&formula)
///     .artifacts(Artifacts::Model)
///     .seed(2012)
///     .budget(Budget::unlimited().with_max_checks(16));
/// let outcome = BackendRegistry::default().solve("nbl-symbolic", &request)?;
/// assert!(outcome.verdict.is_sat());
/// assert!(formula.evaluate(outcome.model.as_ref().unwrap()));
/// # Ok::<(), nbl_sat_core::NblSatError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SolveRequest<'a> {
    formula: &'a CnfFormula,
    assumptions: Vec<Literal>,
    artifacts: Artifacts,
    seed: u64,
    budget: Budget,
    trace: bool,
    cancel: Vec<Arc<AtomicBool>>,
}

impl<'a> SolveRequest<'a> {
    /// A verdict-only request with seed 0 and an unlimited budget.
    pub fn new(formula: &'a CnfFormula) -> Self {
        SolveRequest {
            formula,
            assumptions: Vec::new(),
            artifacts: Artifacts::default(),
            seed: 0,
            budget: Budget::unlimited(),
            trace: false,
            cancel: Vec::new(),
        }
    }

    /// Selects the desired artifacts.
    pub fn artifacts(mut self, artifacts: Artifacts) -> Self {
        self.artifacts = artifacts;
        self
    }

    /// Sets assumption literals the solve must honour: the backend answers
    /// for `formula ∧ assumptions`. One-shot backends fold them in as unit
    /// clauses; incremental backends (see [`crate::SolveSession`]) enqueue
    /// them as IPASIR-style assumption decisions and can report a
    /// failed-assumption core on the outcome.
    pub fn assumptions<I: IntoIterator<Item = Literal>>(mut self, assumptions: I) -> Self {
        self.assumptions = assumptions.into_iter().collect();
        self
    }

    /// Sets the deterministic seed handed to stochastic backends (local
    /// search, the sampled NBL engine). Exact backends ignore it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the resource budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Requests the engine convergence trace (honoured by the sampled NBL
    /// backend, which records its running mean; other backends return none).
    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Chains a cancellation token onto the request: once any thread raises
    /// any chained flag, the backend aborts within one poll interval of its
    /// search loop and answers `Unknown(Cancelled)`. Tokens accumulate, so a
    /// job-queue front end can chain a per-job token onto a service-wide
    /// abort token.
    pub fn cancel_token(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel.push(cancel);
        self
    }

    /// The formula to solve.
    pub fn formula(&self) -> &'a CnfFormula {
        self.formula
    }

    /// The assumption literals, in the order they were given.
    pub fn requested_assumptions(&self) -> &[Literal] {
        &self.assumptions
    }

    /// The formula with every assumption folded in as a unit clause — how a
    /// one-shot backend honours [`SolveRequest::assumptions`].
    pub fn formula_with_assumptions(&self) -> CnfFormula {
        let mut augmented = self.formula.clone();
        let max_var = self
            .assumptions
            .iter()
            .map(|l| l.variable().index() + 1)
            .max()
            .unwrap_or(0);
        augmented.ensure_vars(max_var);
        for &a in &self.assumptions {
            augmented.push_clause(Clause::from_literals([a]));
        }
        augmented
    }

    /// Clones this request against a different (borrowed) formula, dropping
    /// the assumptions. Used by the backend adapters to re-enter their solve
    /// path with the assumption-augmented formula.
    pub(crate) fn reborrow<'b>(&self, formula: &'b CnfFormula) -> SolveRequest<'b> {
        SolveRequest {
            formula,
            assumptions: Vec::new(),
            artifacts: self.artifacts,
            seed: self.seed,
            budget: self.budget,
            trace: self.trace,
            cancel: self.cancel.clone(),
        }
    }

    /// The requested artifacts.
    pub fn requested_artifacts(&self) -> Artifacts {
        self.artifacts
    }

    /// The deterministic seed.
    pub fn requested_seed(&self) -> u64 {
        self.seed
    }

    /// The resource budget.
    pub fn requested_budget(&self) -> &Budget {
        &self.budget
    }

    /// Whether a convergence trace was requested.
    pub fn wants_trace(&self) -> bool {
        self.trace
    }

    /// The cancellation tokens chained onto this request, in attachment
    /// order.
    pub fn cancel_tokens(&self) -> &[Arc<AtomicBool>] {
        &self.cancel
    }

    /// Returns `true` once any chained cancellation flag was raised.
    pub fn cancelled(&self) -> bool {
        self.cancel.iter().any(|flag| flag.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::cnf_formula;
    use std::time::Duration;

    #[test]
    fn builder_round_trip() {
        let f = cnf_formula![[1, -2]];
        let budget = Budget::unlimited()
            .with_wall_time(Duration::from_secs(1))
            .with_max_samples(10)
            .with_max_checks(3);
        let request = SolveRequest::new(&f)
            .artifacts(Artifacts::PrimeCube)
            .seed(7)
            .budget(budget)
            .trace(true);
        assert_eq!(request.formula(), &f);
        assert_eq!(request.requested_artifacts(), Artifacts::PrimeCube);
        assert_eq!(request.requested_seed(), 7);
        assert_eq!(request.requested_budget(), &budget);
        assert!(request.wants_trace());
    }

    #[test]
    fn cancel_tokens_chain_and_trip() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let f = cnf_formula![[1]];
        let job = Arc::new(AtomicBool::new(false));
        let service = Arc::new(AtomicBool::new(false));
        let request = SolveRequest::new(&f)
            .cancel_token(Arc::clone(&job))
            .cancel_token(Arc::clone(&service));
        assert_eq!(request.cancel_tokens().len(), 2);
        assert!(!request.cancelled());
        service.store(true, std::sync::atomic::Ordering::Relaxed);
        assert!(request.cancelled());
    }

    #[test]
    fn defaults_are_verdict_only_and_unlimited() {
        let f = cnf_formula![[1]];
        let request = SolveRequest::new(&f);
        assert_eq!(request.requested_artifacts(), Artifacts::Verdict);
        assert_eq!(request.requested_seed(), 0);
        assert!(request.requested_budget().is_unlimited());
        assert!(!request.wants_trace());
    }

    #[test]
    fn assumptions_fold_into_unit_clauses() {
        let f = cnf_formula![[1, 2]];
        let a3 = Literal::from_dimacs(-3).unwrap();
        let a1 = Literal::from_dimacs(1).unwrap();
        let request = SolveRequest::new(&f).assumptions([a1, a3]);
        assert_eq!(request.requested_assumptions(), &[a1, a3]);
        let augmented = request.formula_with_assumptions();
        // The augmented formula covers the assumption variables and carries
        // one extra unit clause per assumption.
        assert_eq!(augmented.num_vars(), 3);
        assert_eq!(augmented.num_clauses(), f.num_clauses() + 2);
        // Reborrowing against the augmented formula drops the assumptions.
        let inner = request.reborrow(&augmented);
        assert!(inner.requested_assumptions().is_empty());
        assert_eq!(inner.formula(), &augmented);
    }

    #[test]
    fn artifact_tiers() {
        assert!(!Artifacts::Verdict.wants_model());
        assert!(!Artifacts::Verdict.wants_cube());
        assert!(Artifacts::Model.wants_model());
        assert!(!Artifacts::Model.wants_cube());
        assert!(Artifacts::PrimeCube.wants_model());
        assert!(Artifacts::PrimeCube.wants_cube());
    }
}
