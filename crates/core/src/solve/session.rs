//! IPASIR-style incremental solving sessions.
//!
//! A [`SolveSession`] owns a persistent solver instance across many related
//! queries: clauses are added in frames with [`SolveSession::push`] /
//! [`SolveSession::pop`], and each [`SolveSession::solve`] call answers for
//! the pushed clauses under per-call assumption literals ([`SessionCall`]).
//! Learned clauses, branching activities and saved phases survive between
//! calls — the throughput win the paper's §V coprocessor deployment assumes
//! when a conventional solver steers hundreds of near-identical queries
//! (ATPG fault lists, miter equivalence sweeps) through one engine.
//!
//! The session speaks the same outcome language as the one-shot API: every
//! call returns a [`SolveOutcome`], with budget exhaustion and cancellation
//! surfacing as [`SolveVerdict::Unknown`] and an UNSAT-under-assumptions
//! verdict carrying its failed-assumption core in
//! [`SolveOutcome::failed_assumptions`].
//!
//! ```
//! use cnf::{cnf_formula, Literal};
//! use nbl_sat_core::{BackendRegistry, SessionCall};
//!
//! let mut session = BackendRegistry::default().open_session("cdcl")?;
//! session.push(&cnf_formula![[1, 2], [-1, 2]]);
//! let lit = |i| Literal::from_dimacs(i).unwrap();
//! let unsat = session.solve(&SessionCall::new().assumptions([lit(-2)]))?;
//! assert!(unsat.verdict.is_unsat());
//! assert!(!unsat.failed_assumptions.unwrap().is_empty());
//! let sat = session.solve(&SessionCall::new().assumptions([lit(1)]))?;
//! assert!(sat.verdict.is_sat());
//! # Ok::<(), nbl_sat_core::NblSatError>(())
//! ```

use crate::budget::{Budget, BudgetMeter};
use crate::error::{NblSatError, Result};
use crate::solve::outcome::{SolveOutcome, SolveStats, SolveVerdict, UnknownCause};
use cnf::{CnfFormula, Literal};
use sat_solvers::{CdclSolver, IncrementalResult, SearchLimits, Solver};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One incremental solve call: the assumption literals plus this call's own
/// resource [`Budget`] and cancellation tokens.
///
/// Mirrors the one-shot [`crate::SolveRequest`] builder, minus the formula —
/// the clauses live in the session.
#[derive(Debug, Clone, Default)]
pub struct SessionCall {
    assumptions: Vec<Literal>,
    budget: Budget,
    cancel: Vec<Arc<AtomicBool>>,
}

impl SessionCall {
    /// An assumption-free call with an unlimited budget.
    pub fn new() -> Self {
        SessionCall::default()
    }

    /// Sets the assumption literals for this call, in decision order.
    pub fn assumptions<I: IntoIterator<Item = Literal>>(mut self, assumptions: I) -> Self {
        self.assumptions = assumptions.into_iter().collect();
        self
    }

    /// Sets this call's resource budget (metered per call, not per session).
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Chains a cancellation token onto the call (tokens accumulate, like
    /// [`crate::SolveRequest::cancel_token`]).
    pub fn cancel_token(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel.push(cancel);
        self
    }

    /// The assumption literals, in the order they were given.
    pub fn requested_assumptions(&self) -> &[Literal] {
        &self.assumptions
    }

    /// This call's resource budget.
    pub fn requested_budget(&self) -> &Budget {
        &self.budget
    }

    /// The cancellation tokens chained onto this call.
    pub fn cancel_tokens(&self) -> &[Arc<AtomicBool>] {
        &self.cancel
    }

    /// Returns `true` once any chained cancellation flag was raised.
    pub fn cancelled(&self) -> bool {
        self.cancel.iter().any(|flag| flag.load(Ordering::Relaxed))
    }
}

/// A stateful backend that solves repeatedly over a pushed clause database.
///
/// The incremental counterpart of [`crate::SatBackend`]: instead of taking a
/// whole formula per request, the backend accumulates clause frames via
/// [`IncrementalBackend::push`] and answers [`SessionCall`]s against them,
/// retaining whatever internal state (learned clauses, heuristics) makes the
/// next call cheaper.
pub trait IncrementalBackend: std::fmt::Debug + Send {
    /// Stable identifier of the backend (matches the registry name).
    fn name(&self) -> &'static str;

    /// Pushes a frame of clauses; returns the new push depth (≥ 1).
    fn push(&mut self, formula: &CnfFormula) -> usize;

    /// Pops the most recent frame; `false` when no frame is open.
    fn pop(&mut self) -> bool;

    /// The number of currently open frames.
    fn depth(&self) -> usize;

    /// The number of variables the backend currently tracks.
    fn num_vars(&self) -> usize;

    /// Solves the pushed clauses under the call's assumptions and budget.
    ///
    /// # Errors
    ///
    /// Reserved for structural failures; budget exhaustion and cancellation
    /// are verdicts ([`SolveVerdict::Unknown`]), not errors.
    fn solve(&mut self, call: &SessionCall) -> Result<SolveOutcome>;
}

/// [`IncrementalBackend`] over the workspace CDCL solver — the engine behind
/// `BackendRegistry::open_session("cdcl")`.
#[derive(Debug, Default)]
pub struct CdclSessionBackend {
    solver: CdclSolver,
}

impl CdclSessionBackend {
    /// A session backend around a fresh CDCL solver.
    pub fn new() -> Self {
        CdclSessionBackend::default()
    }
}

impl IncrementalBackend for CdclSessionBackend {
    fn name(&self) -> &'static str {
        "cdcl"
    }

    fn push(&mut self, formula: &CnfFormula) -> usize {
        self.solver.push(formula)
    }

    fn pop(&mut self) -> bool {
        self.solver.pop()
    }

    fn depth(&self) -> usize {
        self.solver.push_depth()
    }

    fn num_vars(&self) -> usize {
        self.solver.num_vars()
    }

    fn solve(&mut self, call: &SessionCall) -> Result<SolveOutcome> {
        let started = Instant::now();
        let mut meter = BudgetMeter::start(call.requested_budget());
        let mut limits = match meter.deadline() {
            Some(deadline) => SearchLimits::with_deadline(deadline),
            None => SearchLimits::unlimited(),
        };
        for token in call.cancel_tokens() {
            meter = meter.with_cancel(Arc::clone(token));
            limits = limits.with_cancel(Arc::clone(token));
        }
        let result = self
            .solver
            .solve_under_assumptions(call.requested_assumptions(), &limits);
        let mut outcome = match result {
            IncrementalResult::Satisfiable(model) => {
                let mut outcome = SolveOutcome::of_verdict(SolveVerdict::Satisfiable);
                outcome.model = Some(model);
                outcome
            }
            IncrementalResult::Unsatisfiable(core) => {
                let mut outcome = SolveOutcome::of_verdict(SolveVerdict::Unsatisfiable);
                outcome.failed_assumptions = Some(core);
                outcome
            }
            IncrementalResult::Unknown => {
                // Cancellation outranks the deadline, as in the one-shot
                // adapters: a raised token is definitive caller intent.
                let cause = if meter.cancelled() {
                    UnknownCause::Cancelled
                } else {
                    match meter.ensure_time() {
                        Err(NblSatError::BudgetExhausted { resource }) => {
                            UnknownCause::BudgetExhausted(resource)
                        }
                        _ => UnknownCause::Incomplete,
                    }
                };
                let mut outcome = SolveOutcome::of_verdict(SolveVerdict::Unknown(cause));
                outcome.exhausted = outcome.verdict.exhausted_resource();
                outcome
            }
        };
        outcome.stats.absorb_solver(&self.solver.stats());
        outcome.stats.wall_time = started.elapsed();
        Ok(outcome)
    }
}

/// A persistent incremental solving session with cumulative telemetry.
///
/// Obtained from [`crate::BackendRegistry::open_session`]; owns its backend
/// (and therefore the whole clause database and learned-clause store), counts
/// the calls made, and folds every call's [`SolveStats`] into a running
/// total so a sweep can report its aggregate cost.
#[derive(Debug)]
pub struct SolveSession {
    backend: Box<dyn IncrementalBackend>,
    calls: u64,
    cumulative: SolveStats,
}

impl SolveSession {
    /// Wraps an incremental backend in a session.
    pub fn new(backend: Box<dyn IncrementalBackend>) -> Self {
        SolveSession {
            backend,
            calls: 0,
            cumulative: SolveStats::default(),
        }
    }

    /// The backend's registry name.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Pushes a frame of clauses; returns the new push depth (≥ 1).
    pub fn push(&mut self, formula: &CnfFormula) -> usize {
        self.backend.push(formula)
    }

    /// Pops the most recent frame; `false` when no frame is open.
    pub fn pop(&mut self) -> bool {
        self.backend.pop()
    }

    /// The number of currently open frames.
    pub fn depth(&self) -> usize {
        self.backend.depth()
    }

    /// The number of variables the session currently tracks.
    pub fn num_vars(&self) -> usize {
        self.backend.num_vars()
    }

    /// Solves the pushed clauses under the call's assumptions, with the
    /// call's own budget.
    ///
    /// # Errors
    ///
    /// Structural failures of the backend only; see
    /// [`IncrementalBackend::solve`].
    pub fn solve(&mut self, call: &SessionCall) -> Result<SolveOutcome> {
        let outcome = self.backend.solve(call)?;
        self.calls += 1;
        accumulate(&mut self.cumulative, &outcome.stats);
        Ok(outcome)
    }

    /// How many solve calls this session has answered.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// The summed statistics of every call so far.
    pub fn cumulative_stats(&self) -> &SolveStats {
        &self.cumulative
    }
}

/// Folds one call's statistics into the session total.
fn accumulate(total: &mut SolveStats, call: &SolveStats) {
    total.decisions += call.decisions;
    total.conflicts += call.conflicts;
    total.propagations += call.propagations;
    total.restarts += call.restarts;
    total.learned_clauses += call.learned_clauses;
    total.assignments_tried += call.assignments_tried;
    total.flips += call.flips;
    total.coprocessor_checks += call.coprocessor_checks;
    total.samples += call.samples;
    total.wall_time += call.wall_time;
    if call.winner.is_some() {
        total.winner = call.winner;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::cnf_formula;
    use cnf::generators;
    use std::time::Duration;

    fn lit(i: i64) -> Literal {
        Literal::from_dimacs(i).unwrap()
    }

    fn session() -> SolveSession {
        SolveSession::new(Box::new(CdclSessionBackend::new()))
    }

    #[test]
    fn session_round_trip_with_assumptions() {
        let mut session = session();
        assert_eq!(session.backend_name(), "cdcl");
        assert_eq!(session.push(&cnf_formula![[1, 2], [-1, 2]]), 1);
        let sat = session
            .solve(&SessionCall::new().assumptions([lit(1)]))
            .unwrap();
        assert!(sat.verdict.is_sat());
        let model = sat.model.expect("incremental SAT carries a model");
        assert!(model.satisfies(lit(1)));
        assert!(model.satisfies(lit(2)));
        assert!(sat.failed_assumptions.is_none());

        let unsat = session
            .solve(&SessionCall::new().assumptions([lit(-2)]))
            .unwrap();
        assert!(unsat.verdict.is_unsat());
        let core = unsat.failed_assumptions.expect("UNSAT under assumptions");
        assert_eq!(core, vec![lit(-2)]);
        assert_eq!(session.calls(), 2);
        assert!(session.cumulative_stats().decisions >= 1);
    }

    #[test]
    fn push_pop_lifecycle() {
        let mut session = session();
        session.push(&cnf_formula![[1]]);
        assert_eq!(session.depth(), 1);
        session.push(&cnf_formula![[-1]]);
        assert_eq!(session.depth(), 2);
        let unsat = session.solve(&SessionCall::new()).unwrap();
        assert!(unsat.verdict.is_unsat());
        assert_eq!(unsat.failed_assumptions, Some(Vec::new()));
        assert!(session.pop());
        assert_eq!(session.depth(), 1);
        assert!(session.solve(&SessionCall::new()).unwrap().verdict.is_sat());
        assert!(session.pop());
        assert!(!session.pop());
        assert!(session.num_vars() >= 1);
    }

    #[test]
    fn per_call_budget_and_cancellation() {
        let mut session = session();
        session.push(&generators::pigeonhole(7, 6));
        let tight = SessionCall::new().budget(Budget::unlimited().with_wall_time(Duration::ZERO));
        let outcome = session.solve(&tight).unwrap();
        assert_eq!(
            outcome.verdict.exhausted_resource(),
            Some(crate::budget::ExhaustedResource::WallClock)
        );
        assert!(outcome.exhausted.is_some());

        let flag = Arc::new(AtomicBool::new(true));
        let cancelled = SessionCall::new().cancel_token(Arc::clone(&flag));
        assert!(cancelled.cancelled());
        let outcome = session.solve(&cancelled).unwrap();
        assert!(outcome.verdict.is_cancelled());
        // The session stays usable after interrupted calls.
        let verdict = session.solve(&SessionCall::new()).unwrap().verdict;
        assert!(verdict.is_unsat());
        assert_eq!(session.calls(), 3);
    }
}
