//! Backend adapters: every solving engine in the workspace behind
//! [`SatBackend`].
//!
//! Three adapter families cover the whole landscape:
//!
//! * [`ClassicalBackend`] — any [`sat_solvers::Solver`] (DPLL, CDCL, brute
//!   force, 2-SAT, the local searches and the portfolio). The budget's
//!   wall-clock limit is translated into a [`SearchLimits`] deadline that the
//!   solvers poll inside their search loops.
//! * [`NblCheckBackend`] — the paper's Algorithm 1 + Algorithm 2 pipeline
//!   over any [`NblEngine`] (symbolic, algebraic, sampled). Check, sample and
//!   wall-clock limits are charged through a [`BudgetMeter`].
//! * [`HybridBackend`] — the §V CPU + NBL-coprocessor flow, budgeted the same
//!   way.

use crate::assignment::{prime_implicant_cube, AssignmentExtractor};
use crate::budget::BudgetMeter;
use crate::checker::SatChecker;
use crate::convergence::ConvergenceTrace;
use crate::engine::NblEngine;
use crate::error::{NblSatError, Result};
use crate::hybrid::HybridSolver;
use crate::solve::backend::SatBackend;
use crate::solve::outcome::{SolveOutcome, SolveVerdict, UnknownCause};
use crate::solve::request::SolveRequest;
use crate::transform::NblSatInstance;
use cnf::Assignment;
use sat_solvers::{SearchLimits, SolveResult, Solver};
use std::sync::Arc;
use std::time::Instant;

/// Seed-aware constructor for a trace run of the sampled engine (the only
/// engine that has a convergence trace to offer). The third argument is the
/// remaining noise-sample allowance the trace must stay within (`None` when
/// unlimited).
type TraceFn =
    Box<dyn Fn(u64, &NblSatInstance, Option<u64>) -> Result<ConvergenceTrace> + Send + Sync>;

/// Builds the classical-solver limits for one request: the meter's deadline
/// plus the request's whole cancellation-token chain.
fn search_limits(meter: &BudgetMeter, request: &SolveRequest<'_>) -> SearchLimits {
    let mut limits = match meter.deadline() {
        Some(deadline) => SearchLimits::with_deadline(deadline),
        None => SearchLimits::unlimited(),
    };
    for token in request.cancel_tokens() {
        limits = limits.with_cancel(Arc::clone(token));
    }
    limits
}

/// Attaches the request's cancellation-token chain to a budget meter, so the
/// metered (NBL / hybrid) engines observe cancellation in the same loops that
/// poll the deadline.
fn metered_cancel(mut meter: BudgetMeter, request: &SolveRequest<'_>) -> BudgetMeter {
    for token in request.cancel_tokens() {
        meter = meter.with_cancel(Arc::clone(token));
    }
    meter
}

/// Attaches the artifacts a satisfiable outcome owes the caller, given the
/// model the backend found.
fn attach_artifacts(outcome: &mut SolveOutcome, request: &SolveRequest<'_>, model: Assignment) {
    let artifacts = request.requested_artifacts();
    if artifacts.wants_cube() {
        outcome.cube = Some(prime_implicant_cube(request.formula(), &model));
    }
    if artifacts.wants_model() {
        outcome.model = Some(model);
    }
}

/// Adapter wrapping any classical [`Solver`] as a [`SatBackend`].
///
/// The factory is invoked once per solve with the request's seed, so
/// stochastic solvers are reseeded deterministically per request.
pub struct ClassicalBackend<S> {
    name: &'static str,
    complete: bool,
    var_limit: Option<usize>,
    factory: Box<dyn Fn(u64) -> S + Send + Sync>,
}

impl<S: Solver> ClassicalBackend<S> {
    /// Creates an adapter. `complete` declares whether the solver answers
    /// every in-scope instance definitively given unlimited resources.
    pub fn new(
        name: &'static str,
        complete: bool,
        factory: impl Fn(u64) -> S + Send + Sync + 'static,
    ) -> Self {
        ClassicalBackend {
            name,
            complete,
            var_limit: None,
            factory: Box::new(factory),
        }
    }

    /// Rejects formulas with more variables than `limit` up front (used for
    /// the brute-force oracle, whose enumeration is exponential by design).
    pub fn with_var_limit(mut self, limit: usize) -> Self {
        self.var_limit = Some(limit);
        self
    }
}

impl<S> std::fmt::Debug for ClassicalBackend<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassicalBackend")
            .field("name", &self.name)
            .field("complete", &self.complete)
            .field("var_limit", &self.var_limit)
            .finish_non_exhaustive()
    }
}

impl<S: Solver> SatBackend for ClassicalBackend<S> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn is_complete(&self) -> bool {
        self.complete
    }

    fn solve(&mut self, request: &SolveRequest<'_>) -> Result<SolveOutcome> {
        if !request.requested_assumptions().is_empty() {
            let augmented = request.formula_with_assumptions();
            return self.solve(&request.reborrow(&augmented));
        }
        if let Some(limit) = self.var_limit {
            if request.formula().num_vars() > limit {
                return Err(NblSatError::InstanceTooLarge {
                    limit: format!("{limit} variables ({} backend)", self.name),
                    actual: request.formula().num_vars(),
                });
            }
        }
        let started = Instant::now();
        let meter = BudgetMeter::start(request.requested_budget());
        let limits = search_limits(&meter, request);
        let mut solver = (self.factory)(request.requested_seed());
        let result = solver.solve_limited(request.formula(), &limits);
        let mut outcome = match result {
            SolveResult::Satisfiable(model) => {
                debug_assert!(request.formula().evaluate(&model));
                let mut outcome = SolveOutcome::of_verdict(SolveVerdict::Satisfiable);
                attach_artifacts(&mut outcome, request, model);
                outcome
            }
            SolveResult::Unsatisfiable => SolveOutcome::of_verdict(SolveVerdict::Unsatisfiable),
            SolveResult::Unknown => {
                // Cancellation outranks the deadline: a raised token is a
                // definitive caller intent, while an expired deadline may
                // only have been raced past on the way out.
                let cause = if request.cancelled() {
                    UnknownCause::Cancelled
                } else {
                    match meter.ensure_time() {
                        Err(NblSatError::BudgetExhausted { resource }) => {
                            UnknownCause::BudgetExhausted(resource)
                        }
                        _ => UnknownCause::Incomplete,
                    }
                };
                let mut outcome = SolveOutcome::of_verdict(SolveVerdict::Unknown(cause));
                outcome.exhausted = outcome.verdict.exhausted_resource();
                outcome
            }
        };
        outcome.stats.absorb_solver(&solver.stats());
        outcome.stats.wall_time = started.elapsed();
        Ok(outcome)
    }
}

/// Adapter running Algorithm 1 (and, on demand, Algorithm 2) over an
/// [`NblEngine`] as a [`SatBackend`].
pub struct NblCheckBackend<E> {
    name: &'static str,
    complete: bool,
    factory: Box<dyn Fn(u64) -> E + Send + Sync>,
    trace_fn: Option<TraceFn>,
}

impl<E: NblEngine> NblCheckBackend<E> {
    /// Creates an adapter over a seed-aware engine factory.
    pub fn new(
        name: &'static str,
        complete: bool,
        factory: impl Fn(u64) -> E + Send + Sync + 'static,
    ) -> Self {
        NblCheckBackend {
            name,
            complete,
            factory: Box::new(factory),
            trace_fn: None,
        }
    }

    /// Installs a convergence-trace producer, honoured when a request sets
    /// [`SolveRequest::trace`]. The trace re-runs the simulation with the
    /// request seed; it is a diagnostic artifact, but it still lives inside
    /// the budget: it is skipped entirely once any limit has fired, the
    /// producer receives the remaining sample allowance to clamp its run to,
    /// and the samples it draws are charged to the meter. (A wall-clock
    /// deadline expiring *mid-trace* is only caught at the next sample-cap
    /// boundary, so the overrun is bounded by one clamped trace run.)
    pub fn with_trace_fn(
        mut self,
        trace_fn: impl Fn(u64, &NblSatInstance, Option<u64>) -> Result<ConvergenceTrace>
            + Send
            + Sync
            + 'static,
    ) -> Self {
        self.trace_fn = Some(Box::new(trace_fn));
        self
    }
}

impl<E> std::fmt::Debug for NblCheckBackend<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NblCheckBackend")
            .field("name", &self.name)
            .field("complete", &self.complete)
            .field("has_trace_fn", &self.trace_fn.is_some())
            .finish_non_exhaustive()
    }
}

/// Degenerate formulas the NBL transform cannot encode are answered directly:
/// an empty clause is trivially false; no clauses (or no variables and no
/// clauses) is trivially true. Returns `None` for encodable formulas.
fn degenerate_outcome(request: &SolveRequest<'_>) -> Option<SolveOutcome> {
    let formula = request.formula();
    if formula.has_empty_clause() {
        return Some(SolveOutcome::of_verdict(SolveVerdict::Unsatisfiable));
    }
    if formula.num_clauses() == 0 {
        let mut outcome = SolveOutcome::of_verdict(SolveVerdict::Satisfiable);
        // The prime-implicant shrink drops every variable against a clause-free
        // formula, so the cube artifact comes out as ⊤ without special-casing.
        attach_artifacts(
            &mut outcome,
            request,
            Assignment::all_false(formula.num_vars()),
        );
        return Some(outcome);
    }
    None
}

impl<E: NblEngine> SatBackend for NblCheckBackend<E> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn is_complete(&self) -> bool {
        self.complete
    }

    fn solve(&mut self, request: &SolveRequest<'_>) -> Result<SolveOutcome> {
        if !request.requested_assumptions().is_empty() {
            let augmented = request.formula_with_assumptions();
            return self.solve(&request.reborrow(&augmented));
        }
        let started = Instant::now();
        if let Some(mut outcome) = degenerate_outcome(request) {
            outcome.stats.wall_time = started.elapsed();
            return Ok(outcome);
        }
        let seed = request.requested_seed();
        let mut meter = metered_cancel(BudgetMeter::start(request.requested_budget()), request);
        let mut checker = SatChecker::new((self.factory)(seed));
        let instance = NblSatInstance::new(request.formula())?;
        let bindings = instance.empty_bindings();

        // Algorithm 1: one check operation decides SAT/UNSAT.
        let mut outcome = match checker.estimate_budgeted(&instance, &bindings, &mut meter) {
            Ok(estimate) => {
                let verdict = if checker.decide(&estimate).is_sat() {
                    SolveVerdict::Satisfiable
                } else {
                    SolveVerdict::Unsatisfiable
                };
                let mut outcome = SolveOutcome::of_verdict(verdict);
                outcome.stats.last_estimate = Some(estimate);
                outcome
            }
            Err(NblSatError::BudgetExhausted { resource }) => {
                let mut outcome = SolveOutcome::of_verdict(SolveVerdict::Unknown(
                    UnknownCause::BudgetExhausted(resource),
                ));
                outcome.exhausted = Some(resource);
                outcome
            }
            Err(NblSatError::Cancelled) => {
                SolveOutcome::of_verdict(SolveVerdict::Unknown(UnknownCause::Cancelled))
            }
            Err(e) => return Err(e),
        };

        // Algorithm 2: model (and cube) extraction, budget permitting.
        if outcome.verdict.is_sat() && request.requested_artifacts().wants_model() {
            let mut extractor = AssignmentExtractor::from_checker(checker);
            match extractor.extract_budgeted(&instance, &mut meter) {
                Ok(extraction) => {
                    let model = extraction
                        .assignment
                        .expect("extract always returns a full minterm");
                    attach_artifacts(&mut outcome, request, model);
                }
                Err(NblSatError::BudgetExhausted { resource }) => {
                    // The verdict stands; only the artifact is missing.
                    outcome.exhausted = Some(resource);
                }
                Err(NblSatError::Cancelled) => {
                    // Cancelled mid-extraction: the verdict stands, the
                    // artifact is missing.
                }
                Err(NblSatError::Inconclusive { .. } | NblSatError::InstanceUnsatisfiable) => {
                    // A statistical engine contradicted its own Algorithm-1
                    // verdict during extraction. That is incompleteness, not
                    // a structural failure: downgrade to Unknown per the
                    // SatBackend contract (`Err` is reserved for structural
                    // problems).
                    outcome.verdict = SolveVerdict::Unknown(UnknownCause::Incomplete);
                }
                Err(e) => return Err(e),
            }
            outcome.stats.coprocessor_checks = extractor.checker().checks_performed();
        } else {
            outcome.stats.coprocessor_checks = checker.checks_performed();
        }

        if request.wants_trace() {
            if let Some(trace_fn) = &self.trace_fn {
                if outcome.exhausted.is_some() || meter.cancelled() {
                    // A limit already fired (or the job was cancelled);
                    // starting more uncharged simulation work would defeat
                    // the budget contract.
                } else if let Err(NblSatError::BudgetExhausted { resource }) =
                    meter.ensure_time().and_then(|()| meter.ensure_samples())
                {
                    outcome.exhausted = Some(resource);
                } else {
                    let trace = trace_fn(seed, &instance, meter.remaining_samples())?;
                    if let Some(samples) = trace.final_samples() {
                        meter.charge_samples(samples);
                    }
                    outcome.trace = Some(trace);
                }
            }
        }
        outcome.stats.samples = meter.samples_used();
        outcome.stats.wall_time = started.elapsed();
        Ok(outcome)
    }
}

/// Adapter running the §V hybrid CPU + NBL-coprocessor flow as a
/// [`SatBackend`].
pub struct HybridBackend<E> {
    name: &'static str,
    complete: bool,
    factory: Box<dyn Fn(u64) -> HybridSolver<E> + Send + Sync>,
}

impl<E: NblEngine> HybridBackend<E> {
    /// Creates an adapter over a seed-aware hybrid-solver factory.
    pub fn new(
        name: &'static str,
        complete: bool,
        factory: impl Fn(u64) -> HybridSolver<E> + Send + Sync + 'static,
    ) -> Self {
        HybridBackend {
            name,
            complete,
            factory: Box::new(factory),
        }
    }
}

impl<E> std::fmt::Debug for HybridBackend<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HybridBackend")
            .field("name", &self.name)
            .field("complete", &self.complete)
            .finish_non_exhaustive()
    }
}

impl<E: NblEngine> SatBackend for HybridBackend<E> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn is_complete(&self) -> bool {
        self.complete
    }

    fn solve(&mut self, request: &SolveRequest<'_>) -> Result<SolveOutcome> {
        if !request.requested_assumptions().is_empty() {
            let augmented = request.formula_with_assumptions();
            return self.solve(&request.reborrow(&augmented));
        }
        let started = Instant::now();
        let mut meter = metered_cancel(BudgetMeter::start(request.requested_budget()), request);
        let mut solver = (self.factory)(request.requested_seed());
        let mut outcome = match solver.solve_budgeted(request.formula(), &mut meter) {
            Ok(Some(model)) => {
                let mut outcome = SolveOutcome::of_verdict(SolveVerdict::Satisfiable);
                attach_artifacts(&mut outcome, request, model);
                outcome
            }
            Ok(None) => SolveOutcome::of_verdict(SolveVerdict::Unsatisfiable),
            Err(NblSatError::BudgetExhausted { resource }) => {
                let mut outcome = SolveOutcome::of_verdict(SolveVerdict::Unknown(
                    UnknownCause::BudgetExhausted(resource),
                ));
                outcome.exhausted = Some(resource);
                outcome
            }
            Err(NblSatError::Cancelled) => {
                SolveOutcome::of_verdict(SolveVerdict::Unknown(UnknownCause::Cancelled))
            }
            Err(e) => return Err(e),
        };
        outcome.stats.absorb_hybrid(&solver.stats());
        outcome.stats.samples = meter.samples_used();
        outcome.stats.wall_time = started.elapsed();
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::solve::request::Artifacts;
    use crate::symbolic::SymbolicEngine;
    use cnf::generators;
    use sat_solvers::CdclSolver;
    use std::time::Duration;

    fn cdcl_backend() -> ClassicalBackend<CdclSolver> {
        ClassicalBackend::new("cdcl", true, |_| CdclSolver::new())
    }

    fn symbolic_backend() -> NblCheckBackend<SymbolicEngine> {
        NblCheckBackend::new("nbl-symbolic", true, |_| SymbolicEngine::new())
    }

    #[test]
    fn classical_backend_round_trip_with_artifacts() {
        let f = generators::section4_sat_instance();
        let request = SolveRequest::new(&f).artifacts(Artifacts::PrimeCube);
        let outcome = cdcl_backend().solve(&request).unwrap();
        assert!(outcome.verdict.is_sat());
        assert!(f.evaluate(outcome.model.as_ref().unwrap()));
        assert!(outcome.cube.as_ref().unwrap().is_implicant_of(&f));
        assert_eq!(outcome.exhausted, None);
    }

    #[test]
    fn classical_backend_reports_budget_exhaustion_not_incompleteness() {
        let f = generators::pigeonhole(6, 5);
        let request =
            SolveRequest::new(&f).budget(Budget::unlimited().with_wall_time(Duration::ZERO));
        let outcome = cdcl_backend().solve(&request).unwrap();
        assert_eq!(
            outcome.verdict.exhausted_resource(),
            Some(crate::budget::ExhaustedResource::WallClock)
        );
        assert!(outcome.exhausted.is_some());
    }

    #[test]
    fn nbl_backend_decides_and_extracts() {
        let f = generators::example6_sat();
        let request = SolveRequest::new(&f).artifacts(Artifacts::Model);
        let outcome = symbolic_backend().solve(&request).unwrap();
        assert!(outcome.verdict.is_sat());
        assert!(f.evaluate(outcome.model.as_ref().unwrap()));
        // 1 check for Algorithm 1 + n = 2 for Algorithm 2.
        assert_eq!(outcome.stats.coprocessor_checks, 3);
        assert!(outcome.stats.last_estimate.unwrap().exact);
    }

    #[test]
    fn nbl_backend_keeps_sat_verdict_when_extraction_budget_runs_out() {
        let f = generators::example6_sat();
        let request = SolveRequest::new(&f)
            .artifacts(Artifacts::Model)
            .budget(Budget::unlimited().with_max_checks(2));
        let outcome = symbolic_backend().solve(&request).unwrap();
        assert!(outcome.verdict.is_sat());
        assert!(outcome.model.is_none());
        assert_eq!(
            outcome.exhausted,
            Some(crate::budget::ExhaustedResource::CoprocessorChecks)
        );
    }

    #[test]
    fn nbl_backend_handles_degenerate_formulas() {
        let mut with_empty = cnf::CnfFormula::new(2);
        with_empty.push_clause(cnf::Clause::new());
        let request = SolveRequest::new(&with_empty);
        assert!(symbolic_backend()
            .solve(&request)
            .unwrap()
            .verdict
            .is_unsat());

        let trivial = cnf::CnfFormula::new(3);
        let request = SolveRequest::new(&trivial).artifacts(Artifacts::PrimeCube);
        let outcome = symbolic_backend().solve(&request).unwrap();
        assert!(outcome.verdict.is_sat());
        assert_eq!(outcome.model.as_ref().unwrap().num_vars(), 3);
        assert!(outcome.cube.as_ref().unwrap().is_empty());
    }

    #[test]
    fn hybrid_backend_round_trip_and_budget() {
        let f = generators::section4_sat_instance();
        let mut backend = HybridBackend::new("hybrid-symbolic", true, |_| {
            HybridSolver::with_ideal_coprocessor()
        });
        let request = SolveRequest::new(&f).artifacts(Artifacts::Model);
        let outcome = backend.solve(&request).unwrap();
        assert!(outcome.verdict.is_sat());
        assert!(f.evaluate(outcome.model.as_ref().unwrap()));
        assert!(outcome.stats.coprocessor_checks > 0);

        let hard = generators::pigeonhole(4, 3);
        let request = SolveRequest::new(&hard).budget(Budget::unlimited().with_max_checks(3));
        let outcome = backend.solve(&request).unwrap();
        assert_eq!(
            outcome.verdict.exhausted_resource(),
            Some(crate::budget::ExhaustedResource::CoprocessorChecks)
        );
    }
}
