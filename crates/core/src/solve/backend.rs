//! The backend abstraction of the unified solving API.

use crate::error::Result;
use crate::solve::outcome::SolveOutcome;
use crate::solve::request::SolveRequest;

/// A solving engine usable through the unified [`SolveRequest`] /
/// [`SolveOutcome`] API.
///
/// Implementations wrap the classical solvers of `sat-solvers`, the NBL
/// check/extract pipeline (Algorithms 1 and 2) and the §V hybrid flow behind
/// one interface, the way the paper treats the NBL engine as a coprocessor
/// callable from a conventional solver. The contract:
///
/// * the request's [`Budget`](crate::Budget) must be able to interrupt the
///   solve — a tight budget yields `Unknown(BudgetExhausted)`, never an
///   unbounded run;
/// * the request's seed fully determines any stochastic behaviour;
/// * a returned model always satisfies the formula, a returned cube is always
///   an implicant of it;
/// * `Err` is reserved for structural problems (instance too large for the
///   engine, malformed bindings) — budget exhaustion is an *outcome*, not an
///   error.
pub trait SatBackend: std::fmt::Debug {
    /// The backend's registry name (e.g. `"cdcl"`, `"nbl-symbolic"`).
    fn name(&self) -> &'static str;

    /// `true` if the backend answers every in-scope instance definitively
    /// given an unlimited budget. Stochastic local search, the statistical
    /// sampled engines and the scope-limited 2-SAT solver report `false`.
    fn is_complete(&self) -> bool;

    /// Solves one request.
    ///
    /// # Errors
    ///
    /// Structural failures only (e.g. the instance exceeds an exact engine's
    /// size limit); budget exhaustion is reported through the outcome's
    /// verdict instead.
    fn solve(&mut self, request: &SolveRequest<'_>) -> Result<SolveOutcome>;
}
