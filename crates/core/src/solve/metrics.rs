//! The pipeline's observability surface: lock-light counters, gauges and
//! per-backend latency histograms, snapshotted on demand.
//!
//! Every [`SolvePipeline`](crate::SolvePipeline) owns a [`MetricsRegistry`];
//! the registry is cheaply clonable (it is an `Arc` around atomics) so the
//! service's worker threads, the wire server's `METRICS` handler and the
//! shard coordinator's fleet merge can all observe one instance. A
//! [`MetricsSnapshot`] is a plain value: safe to ship over the wire, fold
//! into `FleetStats`, or print.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Number of log2-microsecond latency buckets per backend: bucket `i` counts
/// solves with `2^i ≤ latency_us < 2^(i+1)` (bucket 0 also absorbs sub-µs
/// solves, the last bucket absorbs everything ≥ ~9 hours).
pub const LATENCY_BUCKETS: usize = 16;

/// Latency distribution of one backend, in log2-µs buckets.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BackendLatency {
    /// Number of dispatches recorded.
    pub count: u64,
    /// Total wall time across dispatches, in microseconds.
    pub total_us: u64,
    /// The slowest dispatch, in microseconds.
    pub max_us: u64,
    /// log2-µs histogram (see [`LATENCY_BUCKETS`]).
    pub buckets: [u64; LATENCY_BUCKETS],
}

impl BackendLatency {
    fn record(&mut self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.count += 1;
        self.total_us = self.total_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
        let bucket = (us.max(1).ilog2() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket] += 1;
    }

    /// Mean latency in microseconds (0 when nothing was recorded).
    pub fn mean_us(&self) -> u64 {
        self.total_us.checked_div(self.count).unwrap_or(0)
    }
}

/// Everything the registry counts.
#[derive(Debug, Default)]
struct MetricsInner {
    dispatches: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    cache_insertions: AtomicU64,
    pre_vars_removed: AtomicU64,
    pre_clauses_removed: AtomicU64,
    pre_solved: AtomicU64,
    budget_samples_spent: AtomicU64,
    budget_checks_spent: AtomicU64,
    clauses_exported: AtomicU64,
    clauses_imported: AtomicU64,
    latencies: Mutex<BTreeMap<String, BackendLatency>>,
}

/// A cheaply clonable registry of pipeline counters and per-backend latency
/// histograms. All mutation is through `&self`; snapshots are consistent
/// enough for observability (counters are read individually, not atomically
/// as a group).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<MetricsInner>,
}

impl MetricsRegistry {
    /// A fresh registry with every counter at zero.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Records one backend dispatch and its wall time.
    pub fn record_dispatch(&self, backend: &str, latency: Duration) {
        self.inner.dispatches.fetch_add(1, Ordering::Relaxed);
        let mut latencies = self
            .inner
            .latencies
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        latencies
            .entry(backend.to_string())
            .or_default()
            .record(latency);
    }

    /// Records a cache hit (a submission answered without dispatch).
    pub fn record_cache_hit(&self) {
        self.inner.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cache miss.
    pub fn record_cache_miss(&self) {
        self.inner.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `evicted` cache evictions and one insertion.
    pub fn record_cache_insertion(&self, evicted: u64) {
        self.inner.cache_insertions.fetch_add(1, Ordering::Relaxed);
        self.inner
            .cache_evictions
            .fetch_add(evicted, Ordering::Relaxed);
    }

    /// Records one preprocessing run: how many variables and clauses it
    /// removed, and whether it solved the instance outright.
    pub fn record_preprocess(&self, vars_removed: u64, clauses_removed: u64, solved: bool) {
        self.inner
            .pre_vars_removed
            .fetch_add(vars_removed, Ordering::Relaxed);
        self.inner
            .pre_clauses_removed
            .fetch_add(clauses_removed, Ordering::Relaxed);
        if solved {
            self.inner.pre_solved.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records budget spend observed on completed dispatches.
    pub fn record_budget_spend(&self, samples: u64, checks: u64) {
        self.inner
            .budget_samples_spent
            .fetch_add(samples, Ordering::Relaxed);
        self.inner
            .budget_checks_spent
            .fetch_add(checks, Ordering::Relaxed);
    }

    /// Records clause-sharing traffic observed on a completed dispatch (the
    /// cooperative portfolio's pool exports and imports).
    pub fn record_sharing(&self, exported: u64, imported: u64) {
        self.inner
            .clauses_exported
            .fetch_add(exported, Ordering::Relaxed);
        self.inner
            .clauses_imported
            .fetch_add(imported, Ordering::Relaxed);
    }

    /// Takes a point-in-time snapshot of every counter and histogram. The
    /// queue gauges are zero here; front ends that own a queue (the solve
    /// service) fill them in.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let latencies = self
            .inner
            .latencies
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        MetricsSnapshot {
            queue_depth: 0,
            backlog_high: 0,
            backlog_normal: 0,
            backlog_low: 0,
            dispatches: self.inner.dispatches.load(Ordering::Relaxed),
            cache_hits: self.inner.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.inner.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.inner.cache_evictions.load(Ordering::Relaxed),
            cache_insertions: self.inner.cache_insertions.load(Ordering::Relaxed),
            cache_entries: 0,
            pre_vars_removed: self.inner.pre_vars_removed.load(Ordering::Relaxed),
            pre_clauses_removed: self.inner.pre_clauses_removed.load(Ordering::Relaxed),
            pre_solved: self.inner.pre_solved.load(Ordering::Relaxed),
            budget_samples_spent: self.inner.budget_samples_spent.load(Ordering::Relaxed),
            budget_checks_spent: self.inner.budget_checks_spent.load(Ordering::Relaxed),
            clauses_exported: self.inner.clauses_exported.load(Ordering::Relaxed),
            clauses_imported: self.inner.clauses_imported.load(Ordering::Relaxed),
            backends: latencies,
        }
    }
}

/// A point-in-time view of pipeline metrics: counters, gauges (filled by the
/// owning front end) and per-backend latency histograms.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Jobs currently waiting in the owning service's queue.
    pub queue_depth: u64,
    /// Waiting jobs at high priority.
    pub backlog_high: u64,
    /// Waiting jobs at normal priority.
    pub backlog_normal: u64,
    /// Waiting jobs at low priority.
    pub backlog_low: u64,
    /// Backend dispatches (solves that actually ran a backend).
    pub dispatches: u64,
    /// Cache hits (submissions answered with zero dispatch).
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Cache entries evicted to make room.
    pub cache_evictions: u64,
    /// Cache insertions accepted.
    pub cache_insertions: u64,
    /// Entries currently resident in the cache.
    pub cache_entries: u64,
    /// Variables removed by preprocessing, summed over submissions.
    pub pre_vars_removed: u64,
    /// Clauses removed by preprocessing, summed over submissions.
    pub pre_clauses_removed: u64,
    /// Submissions preprocessing solved outright (no dispatch, no cache).
    pub pre_solved: u64,
    /// Noise samples charged by completed dispatches.
    pub budget_samples_spent: u64,
    /// Coprocessor checks charged by completed dispatches.
    pub budget_checks_spent: u64,
    /// Clauses exported into cooperative-portfolio pools, summed over
    /// completed dispatches.
    pub clauses_exported: u64,
    /// Clauses imported from cooperative-portfolio pools, summed over
    /// completed dispatches.
    pub clauses_imported: u64,
    /// Per-backend latency histograms, keyed by backend name.
    pub backends: BTreeMap<String, BackendLatency>,
}

impl MetricsSnapshot {
    /// Cache hit rate in [0, 1]; 0 when nothing was looked up.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queue-depth={} backlog-high={} backlog-normal={} backlog-low={} dispatches={} \
             cache-hits={} cache-misses={} cache-evictions={} cache-insertions={} \
             cache-entries={} pre-vars-removed={} pre-clauses-removed={} pre-solved={} \
             budget-samples-spent={} budget-checks-spent={} clauses-exported={} \
             clauses-imported={}",
            self.queue_depth,
            self.backlog_high,
            self.backlog_normal,
            self.backlog_low,
            self.dispatches,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_insertions,
            self.cache_entries,
            self.pre_vars_removed,
            self.pre_clauses_removed,
            self.pre_solved,
            self.budget_samples_spent,
            self.budget_checks_spent,
            self.clauses_exported,
            self.clauses_imported,
        )?;
        for (name, latency) in &self.backends {
            write!(
                f,
                " {name}:count={} mean-us={} max-us={}",
                latency.count,
                latency.mean_us(),
                latency.max_us,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let metrics = MetricsRegistry::new();
        metrics.record_cache_hit();
        metrics.record_cache_miss();
        metrics.record_cache_miss();
        metrics.record_cache_insertion(1);
        metrics.record_preprocess(3, 2, false);
        metrics.record_preprocess(1, 1, true);
        metrics.record_budget_spend(100, 4);
        metrics.record_sharing(12, 5);
        metrics.record_dispatch("cdcl", Duration::from_micros(900));
        metrics.record_dispatch("cdcl", Duration::from_micros(100));
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.cache_hits, 1);
        assert_eq!(snapshot.cache_misses, 2);
        assert_eq!(snapshot.cache_evictions, 1);
        assert_eq!(snapshot.cache_insertions, 1);
        assert_eq!(snapshot.pre_vars_removed, 4);
        assert_eq!(snapshot.pre_clauses_removed, 3);
        assert_eq!(snapshot.pre_solved, 1);
        assert_eq!(snapshot.budget_samples_spent, 100);
        assert_eq!(snapshot.budget_checks_spent, 4);
        assert_eq!(snapshot.clauses_exported, 12);
        assert_eq!(snapshot.clauses_imported, 5);
        assert_eq!(snapshot.dispatches, 2);
        let cdcl = &snapshot.backends["cdcl"];
        assert_eq!(cdcl.count, 2);
        assert_eq!(cdcl.total_us, 1000);
        assert_eq!(cdcl.max_us, 900);
        assert_eq!(cdcl.mean_us(), 500);
        assert_eq!(cdcl.buckets.iter().sum::<u64>(), 2);
        assert!((snapshot.cache_hit_rate() - 1.0 / 3.0).abs() < 1e-9);
        let rendered = snapshot.to_string();
        assert!(rendered.contains("cache-hits=1"));
        assert!(rendered.contains("cdcl:count=2"));
    }

    #[test]
    fn clones_share_one_instance() {
        let metrics = MetricsRegistry::new();
        let clone = metrics.clone();
        clone.record_cache_hit();
        assert_eq!(metrics.snapshot().cache_hits, 1);
    }
}
