//! An asynchronous job-queue front end over the solving backends.
//!
//! [`SolveBatch`](crate::SolveBatch) is one-shot and blocking: the caller
//! collects a whole batch up front, then stalls until every job drains. A
//! long-lived service ingesting a *stream* of requests needs the opposite
//! shape — the paper's pitch is that NBL's multi-wire parallelism turns SAT
//! into a throughput problem, and a throughput problem wants a queue, not an
//! epoch. [`SolveService`] is that front end: a persistent bounded pool of
//! worker threads fed by a priority queue. [`SolveService::submit`] returns
//! immediately with a [`JobHandle`] that supports non-blocking
//! [`JobHandle::poll`], blocking [`JobHandle::wait`] and per-job
//! [`JobHandle::cancel`]; every job is charged against one refillable
//! [`SharedBudget`]; and the service winds down either gracefully
//! ([`SolveService::shutdown`] drains the queue) or immediately
//! ([`SolveService::abort`] cancels everything).
//!
//! # Scheduling
//!
//! Workers pull the highest-[`JobPriority`] job first, FIFO within a
//! priority class, so equal-priority traffic is served in submission order
//! and can never starve itself. A job observed with an exhausted budget pool
//! is answered `Unknown(BudgetExhausted)` without running; a job whose
//! cancellation token is already raised is answered `Unknown(Cancelled)`
//! without running. Cancellation of a *running* job is delivered through the
//! same chained-token machinery the parallel portfolio uses
//! ([`sat_solvers::SearchLimits::with_cancel`]): the per-job token and the
//! service-wide abort token are chained onto the job's request, and every
//! solver family polls them in its innermost loop, so a raised flag stops the
//! search within one poll interval.
//!
//! # Fault isolation
//!
//! A panicking backend is caught at the worker boundary and surfaced as that
//! job's [`NblSatError::BackendPanicked`]; the worker thread survives and the
//! sibling jobs keep their outcomes.
//!
//! # Incremental sessions
//!
//! Next to the one-shot queue, [`SolveService::open_session`] pins a
//! persistent [`SolveSession`] to a dedicated thread and
//! hands back a [`SessionHandle`]: push/pop clause frames and solve under
//! per-call assumptions, with learned clauses surviving between calls. Every
//! session solve is charged against the same [`SharedBudget`] pool as the
//! queued jobs and observes the service-wide abort token, so the service
//! remains the single resource authority. A session thread that sits idle
//! longer than [`ServiceBuilder::session_idle_timeout`] evicts itself
//! (releasing the pinned solver); subsequent operations answer
//! [`NblSatError::SessionClosed`].
//!
//! ```
//! use cnf::cnf_formula;
//! use nbl_sat_core::{BackendRegistry, JobPriority, SolveRequest, SolveService};
//!
//! let registry = BackendRegistry::default();
//! let service = SolveService::builder(&registry).workers(2).start();
//!
//! let sat = cnf_formula![[1, 2], [-1, -2]];
//! let unsat = cnf_formula![[1], [-1]];
//! let first = service.submit("cdcl", &SolveRequest::new(&sat));
//! let second = service.submit_with_priority(
//!     "nbl-symbolic",
//!     &SolveRequest::new(&unsat),
//!     JobPriority::High,
//! );
//!
//! assert!(first.wait().unwrap().verdict.is_sat());
//! assert!(second.wait().unwrap().verdict.is_unsat());
//! service.shutdown();
//! ```

use crate::budget::{Budget, SharedBudget};
use crate::error::{NblSatError, Result};
use crate::solve::metrics::MetricsSnapshot;
use crate::solve::outcome::{SolveOutcome, SolveVerdict, UnknownCause};
use crate::solve::pipeline::{PipelineConfig, PipelineDecision, SolvePipeline};
use crate::solve::registry::BackendRegistry;
use crate::solve::request::{Artifacts, SolveRequest};
use crate::solve::session::{SessionCall, SolveSession};
use cnf::CnfFormula;
use std::any::Any;
use std::collections::BinaryHeap;
use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Scheduling priority of a submitted job. Workers always pull the highest
/// priority available; within one class, jobs run in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum JobPriority {
    /// Background work, run when nothing more urgent is queued.
    Low,
    /// The default service level.
    #[default]
    Normal,
    /// Latency-sensitive work, served before everything else.
    High,
}

/// Where a job currently is in its lifecycle, as seen by
/// [`JobHandle::status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobStatus {
    /// Waiting in the service queue.
    Queued,
    /// Claimed by a worker and currently solving.
    Running,
    /// The outcome is available ([`JobHandle::poll`] answers `Some`).
    Finished,
}

/// Internal lifecycle state of one job. The result is boxed so the common
/// pre-completion states stay pointer-sized.
enum JobState {
    Queued,
    Running,
    Finished(Box<Result<SolveOutcome>>),
    /// The result was moved out by [`JobHandle::wait`].
    Claimed,
}

/// The state one job shares between its handle, the queue entry and the
/// worker that runs it.
struct JobShared {
    id: u64,
    cancel: Arc<AtomicBool>,
    state: Mutex<JobState>,
    finished: Condvar,
}

fn lock_state(shared: &JobShared) -> MutexGuard<'_, JobState> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl JobShared {
    /// Stores the result and wakes every waiter, unless the job already
    /// finished (e.g. it was cancelled while queued). Returns whether this
    /// call finished the job.
    fn try_finish(&self, result: Result<SolveOutcome>) -> bool {
        let mut state = lock_state(self);
        if matches!(*state, JobState::Finished(_) | JobState::Claimed) {
            return false;
        }
        *state = JobState::Finished(Box::new(result));
        self.finished.notify_all();
        true
    }

    /// A worker claims the job for execution. Answers `false` when the job
    /// was already finished (cancelled while still queued), in which case the
    /// worker skips it.
    fn begin_running(&self) -> bool {
        let mut state = lock_state(self);
        if matches!(*state, JobState::Queued) {
            *state = JobState::Running;
            true
        } else {
            false
        }
    }
}

/// The `Unknown(Cancelled)` outcome a cancelled job answers without (or
/// instead of finishing) a run.
fn cancelled_outcome() -> SolveOutcome {
    SolveOutcome::of_verdict(SolveVerdict::Unknown(UnknownCause::Cancelled))
}

/// A ticket for one submitted job.
///
/// The handle is the only way to observe the job: [`JobHandle::status`] and
/// [`JobHandle::poll`] never block, [`JobHandle::wait`] blocks until the
/// outcome lands, and [`JobHandle::cancel`] stops the job — immediately if it
/// is still queued, within one solver poll interval if it is already running.
/// Dropping the handle does not cancel the job.
pub struct JobHandle {
    backend: String,
    priority: JobPriority,
    shared: Arc<JobShared>,
}

impl fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.shared.id)
            .field("backend", &self.backend)
            .field("priority", &self.priority)
            .field("status", &self.status())
            .finish()
    }
}

impl JobHandle {
    /// The service-unique id of this job (also its FIFO rank within its
    /// priority class).
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// The backend name the job was submitted against.
    pub fn backend(&self) -> &str {
        &self.backend
    }

    /// The priority the job was submitted with.
    pub fn priority(&self) -> JobPriority {
        self.priority
    }

    /// Where the job currently is in its lifecycle. Never blocks.
    pub fn status(&self) -> JobStatus {
        match *lock_state(&self.shared) {
            JobState::Queued => JobStatus::Queued,
            JobState::Running => JobStatus::Running,
            JobState::Finished(_) | JobState::Claimed => JobStatus::Finished,
        }
    }

    /// Non-blocking check for the outcome: `None` while the job is queued or
    /// running, `Some` (a clone of the outcome) once it finished.
    pub fn poll(&self) -> Option<Result<SolveOutcome>> {
        match &*lock_state(&self.shared) {
            JobState::Finished(result) => Some(result.as_ref().clone()),
            _ => None,
        }
    }

    /// Blocks until the job finishes and returns a clone of its outcome,
    /// leaving the handle usable. This is the sharing-friendly sibling of
    /// [`JobHandle::wait`]: a front end that must observe one job from
    /// several threads (the wire server's per-job waiter thread next to its
    /// `STATUS`/`CANCEL` dispatch) holds the handle in an `Arc` and waits by
    /// reference.
    pub fn wait_ref(&self) -> Result<SolveOutcome> {
        let mut state = lock_state(&self.shared);
        loop {
            match &*state {
                JobState::Finished(result) => return result.as_ref().clone(),
                // The owned result was already moved out by `wait`; answer
                // like a finished-and-claimed cancellation rather than hang.
                JobState::Claimed => return Ok(cancelled_outcome()),
                JobState::Queued | JobState::Running => {
                    state = self
                        .shared
                        .finished
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Blocks until the job finishes and returns its outcome.
    pub fn wait(self) -> Result<SolveOutcome> {
        let mut state = lock_state(&self.shared);
        loop {
            match &*state {
                JobState::Finished(_) => {
                    let JobState::Finished(result) =
                        std::mem::replace(&mut *state, JobState::Claimed)
                    else {
                        unreachable!("matched Finished above");
                    };
                    return *result;
                }
                JobState::Claimed => {
                    // `wait` consumes the only handle, so the result can only
                    // have been claimed by it; this arm is unreachable through
                    // the public API but must not hang if it ever fires.
                    return Ok(cancelled_outcome());
                }
                JobState::Queued | JobState::Running => {
                    state = self
                        .shared
                        .finished
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Cancels the job. A job still in the queue is answered
    /// `Unknown(Cancelled)` immediately, without waiting for a worker; a
    /// running job observes its raised token at the next poll of its search
    /// loop and stops within one poll interval. Cancelling a finished job is
    /// a no-op.
    pub fn cancel(&self) {
        self.shared.cancel.store(true, Ordering::Relaxed);
        let mut state = lock_state(&self.shared);
        if matches!(*state, JobState::Queued) {
            *state = JobState::Finished(Box::new(Ok(cancelled_outcome())));
            self.shared.finished.notify_all();
        }
    }
}

/// One queue entry: everything a worker needs to run the job, owned so the
/// service outlives the caller's borrows.
struct QueuedJob {
    seq: u64,
    priority: JobPriority,
    backend: String,
    formula: Arc<CnfFormula>,
    artifacts: Artifacts,
    seed: u64,
    budget: Budget,
    trace: bool,
    /// Cancellation tokens the caller had already chained onto the submitted
    /// request; preserved so outer cancellation scopes keep working.
    caller_cancels: Vec<Arc<AtomicBool>>,
    shared: Arc<JobShared>,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl Eq for QueuedJob {}

impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then FIFO (lower seq) within a
        // priority class.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct QueueState {
    heap: BinaryHeap<QueuedJob>,
    /// Once `true` the service accepts no new jobs and workers exit as soon
    /// as the heap is empty.
    closed: bool,
}

/// Everything the worker threads share.
struct ServiceInner {
    registry: BackendRegistry,
    pool: SharedBudget,
    /// The shared pre-dispatch pipeline (preprocessing, optional cache,
    /// metrics) every queued job flows through.
    pipeline: SolvePipeline,
    /// The service-wide abort token, chained onto every job's request.
    abort: Arc<AtomicBool>,
    queue: Mutex<QueueState>,
    work_ready: Condvar,
    /// How long a pinned session thread waits for its next operation before
    /// evicting itself.
    session_idle_timeout: Duration,
}

fn lock_queue(inner: &ServiceInner) -> MutexGuard<'_, QueueState> {
    inner.queue.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a caught panic payload for [`NblSatError::BackendPanicked`].
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The worker loop: pull the highest-priority job, run it, repeat; exit once
/// the queue is closed and drained.
fn worker_loop(inner: &ServiceInner) {
    loop {
        let job = {
            let mut queue = lock_queue(inner);
            loop {
                if let Some(job) = queue.heap.pop() {
                    break job;
                }
                if queue.closed {
                    return;
                }
                queue = inner
                    .work_ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        if !job.shared.begin_running() {
            // Finished while still queued (cancelled); nothing to run.
            continue;
        }
        let result = run_job(inner, &job);
        job.shared.try_finish(result);
    }
}

/// Runs one claimed job: starve it if the pool is spent, answer immediately
/// if it is already cancelled, otherwise solve it under the pool's current
/// slice (with the per-job and service-wide cancellation tokens chained onto
/// the request) and charge the actual spend back. Panics are caught here so
/// a faulty backend costs one job, not a worker thread.
fn run_job(inner: &ServiceInner, job: &QueuedJob) -> Result<SolveOutcome> {
    if inner.abort.load(Ordering::Relaxed)
        || job.shared.cancel.load(Ordering::Relaxed)
        || job
            .caller_cancels
            .iter()
            .any(|flag| flag.load(Ordering::Relaxed))
    {
        return Ok(cancelled_outcome());
    }
    if let Some(resource) = inner.pool.exhausted() {
        let mut outcome = SolveOutcome::of_verdict(SolveVerdict::Unknown(
            UnknownCause::BudgetExhausted(resource),
        ));
        outcome.exhausted = Some(resource);
        return Ok(outcome);
    }
    let slice = inner.pool.slice(&job.budget);
    let mut request = SolveRequest::new(&job.formula)
        .artifacts(job.artifacts)
        .seed(job.seed)
        .budget(slice)
        .trace(job.trace)
        .cancel_token(Arc::clone(&job.shared.cancel))
        .cancel_token(Arc::clone(&inner.abort));
    for token in &job.caller_cancels {
        request = request.cancel_token(Arc::clone(token));
    }
    let prepared = match inner.pipeline.prepare(&request) {
        // Preprocessing or the cache answered: no backend runs, nothing is
        // charged (the pipeline spent no metered resource).
        PipelineDecision::Resolved(outcome) => return Ok(outcome),
        PipelineDecision::Dispatch(prepared) => prepared,
    };
    let started = Instant::now();
    let solved = catch_unwind(AssertUnwindSafe(|| {
        let dispatch = prepared.request(&request);
        inner.registry.create(&job.backend)?.solve(&dispatch)
    }));
    match solved {
        Ok(Ok(outcome)) => {
            inner
                .pool
                .charge(outcome.stats.samples, outcome.stats.coprocessor_checks);
            Ok(inner
                .pipeline
                .complete(prepared, outcome, &job.backend, started.elapsed()))
        }
        Ok(Err(error)) => Err(error),
        Err(payload) => Err(NblSatError::BackendPanicked {
            backend: job.backend.clone(),
            message: panic_message(payload.as_ref()),
        }),
    }
}

/// One operation travelling from a [`SessionHandle`] to its pinned session
/// thread; each carries a one-shot reply channel.
enum SessionOp {
    Push(CnfFormula, Sender<usize>),
    Pop(Sender<bool>),
    Depth(Sender<usize>),
    Solve(Box<SessionCall>, Sender<Result<SolveOutcome>>),
    Close,
}

/// State shared between a session handle and its thread: why the thread
/// exited, once it has.
struct SessionShared {
    closed: Mutex<Option<String>>,
}

impl SessionShared {
    fn mark_closed(&self, reason: &str) {
        let mut closed = self.closed.lock().unwrap_or_else(PoisonError::into_inner);
        if closed.is_none() {
            *closed = Some(reason.to_string());
        }
    }

    fn close_reason(&self) -> String {
        self.closed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
            .unwrap_or_else(|| "the session channel is closed".to_string())
    }

    fn is_open(&self) -> bool {
        self.closed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_none()
    }
}

/// The pinned session thread: serve operations in arrival order until the
/// handle closes, every handle is dropped, the idle timeout fires, or the
/// backend panics mid-solve.
fn session_loop(
    inner: &ServiceInner,
    shared: &SessionShared,
    ops: &Receiver<SessionOp>,
    mut session: SolveSession,
) {
    let reason = loop {
        let op = match ops.recv_timeout(inner.session_idle_timeout) {
            Ok(op) => op,
            Err(RecvTimeoutError::Timeout) => break "evicted after the idle timeout",
            Err(RecvTimeoutError::Disconnected) => break "every handle was dropped",
        };
        match op {
            SessionOp::Push(formula, reply) => {
                let _ = reply.send(session.push(&formula));
            }
            SessionOp::Pop(reply) => {
                let _ = reply.send(session.pop());
            }
            SessionOp::Depth(reply) => {
                let _ = reply.send(session.depth());
            }
            SessionOp::Solve(call, reply) => {
                let (result, panicked) = run_session_call(inner, &mut session, &call);
                let _ = reply.send(result);
                if panicked {
                    // A panicking backend may have left the solver's internal
                    // state inconsistent; the session dies with the call.
                    break "the session backend panicked";
                }
            }
            SessionOp::Close => break "closed",
        }
    };
    shared.mark_closed(reason);
}

/// Runs one session solve under the service's resource authority: answer
/// immediately when the service is aborting or the pool is spent, otherwise
/// solve under the pool's current slice (with the service-wide abort token
/// chained onto the call) and charge the actual spend back. The second
/// element reports whether the backend panicked.
fn run_session_call(
    inner: &ServiceInner,
    session: &mut SolveSession,
    call: &SessionCall,
) -> (Result<SolveOutcome>, bool) {
    if inner.abort.load(Ordering::Relaxed) || call.cancelled() {
        return (Ok(cancelled_outcome()), false);
    }
    if let Some(resource) = inner.pool.exhausted() {
        let mut outcome = SolveOutcome::of_verdict(SolveVerdict::Unknown(
            UnknownCause::BudgetExhausted(resource),
        ));
        outcome.exhausted = Some(resource);
        return (Ok(outcome), false);
    }
    let slice = inner.pool.slice(call.requested_budget());
    let metered = call
        .clone()
        .budget(slice)
        .cancel_token(Arc::clone(&inner.abort));
    let solved = catch_unwind(AssertUnwindSafe(|| session.solve(&metered)));
    match solved {
        Ok(Ok(outcome)) => {
            inner
                .pool
                .charge(outcome.stats.samples, outcome.stats.coprocessor_checks);
            (Ok(outcome), false)
        }
        Ok(Err(error)) => (Err(error), false),
        Err(payload) => (
            Err(NblSatError::BackendPanicked {
                backend: session.backend_name().to_string(),
                message: panic_message(payload.as_ref()),
            }),
            true,
        ),
    }
}

/// A handle on one pinned incremental solving session, obtained from
/// [`SolveService::open_session`].
///
/// Operations are serviced in submission order by the session's dedicated
/// thread; [`SessionHandle::solve`] blocks until the call's outcome lands
/// (chain a cancellation token onto the [`SessionCall`] to interrupt it from
/// another thread). Once the session ends — [`SessionHandle::close`], idle
/// eviction, a backend panic, or dropping the handle — every further
/// operation answers [`NblSatError::SessionClosed`] with the reason.
pub struct SessionHandle {
    backend: String,
    ops: Sender<SessionOp>,
    shared: Arc<SessionShared>,
    thread: Option<JoinHandle<()>>,
}

impl fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionHandle")
            .field("backend", &self.backend)
            .field("open", &self.is_open())
            .finish_non_exhaustive()
    }
}

impl SessionHandle {
    /// The backend name the session was opened against.
    pub fn backend(&self) -> &str {
        &self.backend
    }

    /// Whether the session thread is still alive. A `true` answer can go
    /// stale (the idle timeout may fire right after); a `false` answer is
    /// definitive.
    pub fn is_open(&self) -> bool {
        self.shared.is_open()
    }

    fn closed_error(&self) -> NblSatError {
        NblSatError::SessionClosed {
            reason: self.shared.close_reason(),
        }
    }

    /// Sends one operation and blocks for its reply.
    fn roundtrip<T>(&self, op: SessionOp, reply: Receiver<T>) -> Result<T> {
        self.ops.send(op).map_err(|_| self.closed_error())?;
        reply.recv().map_err(|_| self.closed_error())
    }

    /// Pushes a frame of clauses; returns the new push depth (≥ 1).
    ///
    /// # Errors
    ///
    /// [`NblSatError::SessionClosed`] once the session ended.
    pub fn push(&self, formula: &CnfFormula) -> Result<usize> {
        let (tx, rx) = mpsc::channel();
        self.roundtrip(SessionOp::Push(formula.clone(), tx), rx)
    }

    /// Pops the most recent frame; `false` when no frame is open.
    ///
    /// # Errors
    ///
    /// [`NblSatError::SessionClosed`] once the session ended.
    pub fn pop(&self) -> Result<bool> {
        let (tx, rx) = mpsc::channel();
        self.roundtrip(SessionOp::Pop(tx), rx)
    }

    /// The number of currently open frames.
    ///
    /// # Errors
    ///
    /// [`NblSatError::SessionClosed`] once the session ended.
    pub fn depth(&self) -> Result<usize> {
        let (tx, rx) = mpsc::channel();
        self.roundtrip(SessionOp::Depth(tx), rx)
    }

    /// Solves the pushed clauses under the call's assumptions, blocking until
    /// the outcome lands. The call's budget is sliced against the service's
    /// [`SharedBudget`] pool and the actual spend charged back, exactly like
    /// a queued job.
    ///
    /// # Errors
    ///
    /// [`NblSatError::SessionClosed`] once the session ended;
    /// [`NblSatError::BackendPanicked`] when the solver panicked (which also
    /// closes the session).
    pub fn solve(&self, call: &SessionCall) -> Result<SolveOutcome> {
        self.start_solve(call)?.wait()
    }

    /// Enqueues a solve without blocking on it: the returned
    /// [`SessionSolve`] ticket is redeemed with [`SessionSolve::wait`]
    /// (possibly on another thread). Operations sent after this one queue
    /// behind the solve in submission order.
    ///
    /// # Errors
    ///
    /// [`NblSatError::SessionClosed`] once the session ended.
    pub fn start_solve(&self, call: &SessionCall) -> Result<SessionSolve> {
        let (tx, rx) = mpsc::channel();
        self.ops
            .send(SessionOp::Solve(Box::new(call.clone()), tx))
            .map_err(|_| self.closed_error())?;
        Ok(SessionSolve {
            reply: rx,
            shared: Arc::clone(&self.shared),
        })
    }

    /// Closes the session gracefully and joins its thread. Dropping the
    /// handle closes the session too (the thread notices the disconnected
    /// channel), but without the join.
    pub fn close(mut self) {
        let _ = self.ops.send(SessionOp::Close);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// A pending session solve started with [`SessionHandle::start_solve`];
/// redeem it with [`SessionSolve::wait`].
pub struct SessionSolve {
    reply: Receiver<Result<SolveOutcome>>,
    shared: Arc<SessionShared>,
}

impl fmt::Debug for SessionSolve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionSolve").finish_non_exhaustive()
    }
}

impl SessionSolve {
    /// Blocks until the solve's outcome lands.
    ///
    /// # Errors
    ///
    /// [`NblSatError::SessionClosed`] when the session died before answering
    /// (eviction racing the solve, or the service tearing down); otherwise
    /// exactly what [`SessionHandle::solve`] would have returned.
    pub fn wait(self) -> Result<SolveOutcome> {
        self.reply.recv().map_err(|_| NblSatError::SessionClosed {
            reason: self.shared.close_reason(),
        })?
    }
}

/// Configures and starts a [`SolveService`].
pub struct ServiceBuilder {
    registry: BackendRegistry,
    workers: usize,
    budget: Budget,
    session_idle_timeout: Duration,
    pipeline: PipelineConfig,
}

impl fmt::Debug for ServiceBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceBuilder")
            .field("workers", &self.workers)
            .field("budget", &self.budget)
            .field("session_idle_timeout", &self.session_idle_timeout)
            .field("pipeline", &self.pipeline)
            .finish_non_exhaustive()
    }
}

impl ServiceBuilder {
    /// Sets the worker-pool size (clamped to at least 1). Defaults to one
    /// worker per available CPU.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the shared budget every job is charged against. Each job's own
    /// request budget still applies on top (the tighter limit wins, resource
    /// by resource). Defaults to unlimited.
    pub fn shared_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets how long a session thread opened through
    /// [`SolveService::open_session`] waits for its next operation before
    /// evicting itself and releasing the pinned solver. Defaults to five
    /// minutes.
    pub fn session_idle_timeout(mut self, timeout: Duration) -> Self {
        self.session_idle_timeout = timeout;
        self
    }

    /// Replaces the pre-dispatch pipeline configuration wholesale. Defaults
    /// to preprocessing on, cache off.
    pub fn pipeline(mut self, config: PipelineConfig) -> Self {
        self.pipeline = config;
        self
    }

    /// Enables the canonical-key verdict/model cache with the given entry
    /// capacity: isomorphic resubmissions are then answered with zero backend
    /// dispatch. Off by default.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.pipeline = self.pipeline.with_cache(capacity);
        self
    }

    /// Spawns the worker threads and starts the service. The shared budget's
    /// wall-clock deadline is fixed now.
    pub fn start(self) -> SolveService {
        let inner = Arc::new(ServiceInner {
            registry: self.registry,
            pool: SharedBudget::start(&self.budget),
            pipeline: SolvePipeline::new(self.pipeline),
            abort: Arc::new(AtomicBool::new(false)),
            queue: Mutex::new(QueueState {
                heap: BinaryHeap::new(),
                closed: false,
            }),
            work_ready: Condvar::new(),
            session_idle_timeout: self.session_idle_timeout,
        });
        let workers: Vec<JoinHandle<()>> = (0..self.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        SolveService {
            inner,
            worker_count: workers.len(),
            workers: Mutex::new(workers),
            next_id: AtomicU64::new(0),
        }
    }
}

/// A persistent, queue-fed solving service: a bounded pool of long-lived
/// worker threads draining a condvar-signalled priority queue against one
/// refillable [`SharedBudget`].
///
/// Built with [`SolveService::builder`]; submit jobs from any thread with
/// [`SolveService::submit`] (the service is `Sync`, submission never blocks
/// on solving) and observe them through the returned [`JobHandle`]s. The
/// one-shot [`SolveBatch`](crate::SolveBatch) is a submit-all-then-wait
/// wrapper over this service, so both front ends share one scheduling code
/// path.
///
/// # Winding down
///
/// * [`SolveService::shutdown`] — graceful drain: no new jobs are accepted,
///   every already-accepted job still runs to its outcome, then the workers
///   exit.
/// * [`SolveService::abort`] — immediate stop: queued jobs are answered
///   `Unknown(Cancelled)` without running, running jobs are interrupted
///   through the service-wide abort token within one solver poll interval.
/// * Dropping the service without calling either behaves like
///   [`SolveService::abort`] (a drop must not block on a long drain).
///
/// Both take `&self`, so a service shared across threads (e.g. behind an
/// `Arc`) can be wound down while producers still hold references; their
/// subsequent submissions come back finished with
/// [`NblSatError::ServiceStopped`]. Stopping twice is a no-op.
pub struct SolveService {
    inner: Arc<ServiceInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
    next_id: AtomicU64,
}

impl fmt::Debug for SolveService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolveService")
            .field("workers", &self.worker_count())
            .field("pending_jobs", &self.pending_jobs())
            .field("accepting", &self.is_accepting())
            .finish_non_exhaustive()
    }
}

impl SolveService {
    /// Starts configuring a service over (a cheap clone of) `registry`.
    pub fn builder(registry: &BackendRegistry) -> ServiceBuilder {
        ServiceBuilder {
            registry: registry.clone(),
            workers: thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
            budget: Budget::unlimited(),
            session_idle_timeout: Duration::from_secs(300),
            pipeline: PipelineConfig::default(),
        }
    }

    /// Submits a job at [`JobPriority::Normal`]. Returns immediately; the
    /// formula is cloned out of the request so the caller's borrow ends here.
    pub fn submit(&self, backend: &str, request: &SolveRequest<'_>) -> JobHandle {
        self.submit_with_priority(backend, request, JobPriority::Normal)
    }

    /// Submits a job at an explicit priority. Returns immediately with the
    /// job's [`JobHandle`]; a job submitted after [`SolveService::shutdown`]
    /// or [`SolveService::abort`] comes back already finished with
    /// [`NblSatError::ServiceStopped`].
    pub fn submit_with_priority(
        &self,
        backend: &str,
        request: &SolveRequest<'_>,
        priority: JobPriority,
    ) -> JobHandle {
        self.submit_arc(
            backend,
            Arc::new(request.formula().clone()),
            request,
            priority,
        )
    }

    /// The clone-free submission path: the caller provides the owned formula
    /// (which must be the request's formula), so many jobs over one instance
    /// — the [`SolveBatch`](crate::SolveBatch) shape — share a single
    /// allocation instead of deep-copying it per job.
    pub(crate) fn submit_arc(
        &self,
        backend: &str,
        formula: Arc<CnfFormula>,
        request: &SolveRequest<'_>,
        priority: JobPriority,
    ) -> JobHandle {
        debug_assert_eq!(*formula, *request.formula());
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::new(JobShared {
            id,
            cancel: Arc::new(AtomicBool::new(false)),
            state: Mutex::new(JobState::Queued),
            finished: Condvar::new(),
        });
        let handle = JobHandle {
            backend: backend.to_string(),
            priority,
            shared: Arc::clone(&shared),
        };
        let job = QueuedJob {
            seq: id,
            priority,
            backend: backend.to_string(),
            formula,
            artifacts: request.requested_artifacts(),
            seed: request.requested_seed(),
            budget: *request.requested_budget(),
            trace: request.wants_trace(),
            caller_cancels: request.cancel_tokens().to_vec(),
            shared,
        };
        {
            let mut queue = lock_queue(&self.inner);
            if queue.closed {
                drop(queue);
                handle.shared.try_finish(Err(NblSatError::ServiceStopped));
                return handle;
            }
            queue.heap.push(job);
        }
        self.inner.work_ready.notify_one();
        handle
    }

    /// Opens a persistent incremental solving session against `backend`,
    /// pinned to its own dedicated thread (separate from the one-shot worker
    /// pool, so a long-lived session never starves queued jobs). The session
    /// shares the service's budget pool and abort token; it evicts itself
    /// after [`ServiceBuilder::session_idle_timeout`] without an operation.
    ///
    /// # Errors
    ///
    /// [`NblSatError::UnknownBackend`] when `backend` has no registered
    /// session factory, [`NblSatError::ServiceStopped`] after
    /// [`SolveService::shutdown`] or [`SolveService::abort`].
    pub fn open_session(&self, backend: &str) -> Result<SessionHandle> {
        if !self.is_accepting() {
            return Err(NblSatError::ServiceStopped);
        }
        let session = self.inner.registry.open_session(backend)?;
        let (ops, receiver) = mpsc::channel();
        let shared = Arc::new(SessionShared {
            closed: Mutex::new(None),
        });
        let inner = Arc::clone(&self.inner);
        let thread_shared = Arc::clone(&shared);
        let thread =
            thread::spawn(move || session_loop(&inner, &thread_shared, &receiver, session));
        Ok(SessionHandle {
            backend: backend.to_string(),
            ops,
            shared,
            thread: Some(thread),
        })
    }

    /// Number of worker threads the service was started with.
    pub fn worker_count(&self) -> usize {
        self.worker_count
    }

    /// Number of jobs currently waiting in the queue (not counting running
    /// ones, nor jobs cancelled while queued — those are finished and merely
    /// await a worker's lazy discard of their heap entry).
    pub fn pending_jobs(&self) -> usize {
        lock_queue(&self.inner)
            .heap
            .iter()
            .filter(|job| matches!(*lock_state(&job.shared), JobState::Queued))
            .count()
    }

    /// Waiting jobs broken down by priority class, as
    /// `[high, normal, low]` — the live backlog the wire server's `INFO`
    /// frame and the `METRICS` verb report.
    pub fn pending_by_priority(&self) -> [usize; 3] {
        let mut backlog = [0usize; 3];
        for job in lock_queue(&self.inner).heap.iter() {
            if matches!(*lock_state(&job.shared), JobState::Queued) {
                match job.priority {
                    JobPriority::High => backlog[0] += 1,
                    JobPriority::Normal => backlog[1] += 1,
                    JobPriority::Low => backlog[2] += 1,
                }
            }
        }
        backlog
    }

    /// A point-in-time metrics snapshot: the pipeline's cache/preprocessing/
    /// latency counters with the live queue gauges overlaid.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snapshot = self.inner.pipeline.snapshot();
        let [high, normal, low] = self.pending_by_priority();
        snapshot.backlog_high = high as u64;
        snapshot.backlog_normal = normal as u64;
        snapshot.backlog_low = low as u64;
        snapshot.queue_depth = (high + normal + low) as u64;
        snapshot
    }

    /// Returns `true` while the service accepts new submissions.
    pub fn is_accepting(&self) -> bool {
        !lock_queue(&self.inner).closed
    }

    /// The shared budget pool, for observability (remaining allowances,
    /// deadline).
    pub fn shared_budget(&self) -> &SharedBudget {
        &self.inner.pool
    }

    /// Returns `samples` of spent allowance to the pool (see
    /// [`SharedBudget::refill_samples`]); jobs that would have starved now
    /// run.
    pub fn refill_samples(&self, samples: u64) {
        self.inner.pool.refill_samples(samples);
    }

    /// Returns `checks` of spent allowance to the pool (see
    /// [`SharedBudget::refill_checks`]).
    pub fn refill_checks(&self, checks: u64) {
        self.inner.pool.refill_checks(checks);
    }

    /// Pushes the pool's wall-clock deadline `extra` further out (see
    /// [`SharedBudget::extend_deadline`]).
    pub fn extend_deadline(&self, extra: Duration) {
        self.inner.pool.extend_deadline(extra);
    }

    /// Graceful shutdown: stops accepting jobs, lets the workers drain every
    /// already-accepted job to its outcome, then joins them. Idempotent.
    pub fn shutdown(&self) {
        self.stop(false);
    }

    /// Immediate stop: stops accepting jobs, answers every queued job
    /// `Unknown(Cancelled)` without running it, interrupts running jobs
    /// through the service-wide abort token, and joins the workers.
    /// Idempotent.
    pub fn abort(&self) {
        self.stop(true);
    }

    fn stop(&self, abort: bool) {
        {
            let mut queue = lock_queue(&self.inner);
            queue.closed = true;
            if abort {
                self.inner.abort.store(true, Ordering::Relaxed);
                // Queued jobs are answered directly instead of waiting for a
                // worker to pop and discard them.
                for job in queue.heap.drain() {
                    job.shared.try_finish(Ok(cancelled_outcome()));
                }
            }
        }
        self.inner.work_ready.notify_all();
        let workers: Vec<JoinHandle<()>> = self
            .workers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for worker in workers {
            // Worker panics cannot happen through `run_job` (it catches
            // them); a join error would mean a bug in the loop itself, and
            // the remaining workers should still be joined.
            let _ = worker.join();
        }
    }
}

impl Drop for SolveService {
    fn drop(&mut self) {
        self.stop(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::ExhaustedResource;
    use crate::solve::backend::SatBackend;
    use cnf::generators;
    use std::time::Instant;

    fn service(workers: usize) -> SolveService {
        SolveService::builder(&BackendRegistry::default())
            .workers(workers)
            .start()
    }

    #[test]
    fn submit_returns_immediately_and_wait_answers() {
        let service = service(2);
        let sat = generators::example6_sat();
        let unsat = generators::example7_unsat();
        let a = service.submit("cdcl", &SolveRequest::new(&sat));
        let b = service.submit("dpll", &SolveRequest::new(&unsat));
        assert_eq!(a.id(), 0);
        assert_eq!(b.id(), 1);
        assert_eq!(a.backend(), "cdcl");
        assert_eq!(a.priority(), JobPriority::Normal);
        assert!(a.wait().unwrap().verdict.is_sat());
        assert!(b.wait().unwrap().verdict.is_unsat());
        service.shutdown();
    }

    #[test]
    fn poll_transitions_from_none_to_some() {
        let service = service(1);
        let sat = generators::example6_sat();
        let handle = service.submit("cdcl", &SolveRequest::new(&sat));
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Some(result) = handle.poll() {
                assert!(result.unwrap().verdict.is_sat());
                break;
            }
            assert!(Instant::now() < deadline, "job never finished");
            thread::yield_now();
        }
        assert_eq!(handle.status(), JobStatus::Finished);
        service.shutdown();
    }

    #[test]
    fn wait_ref_blocks_leaves_the_handle_usable_and_repeats() {
        let service = service(2);
        let sat = generators::example6_sat();
        let handle = Arc::new(service.submit("cdcl", &SolveRequest::new(&sat)));
        // Several threads can block on one shared handle concurrently.
        thread::scope(|scope| {
            for _ in 0..3 {
                let handle = Arc::clone(&handle);
                scope.spawn(move || {
                    assert!(handle.wait_ref().unwrap().verdict.is_sat());
                });
            }
        });
        // The handle is still fully usable afterwards.
        assert_eq!(handle.status(), JobStatus::Finished);
        assert!(handle.wait_ref().unwrap().verdict.is_sat());
        assert!(handle.poll().unwrap().unwrap().verdict.is_sat());
        service.shutdown();
    }

    #[test]
    fn unknown_backend_is_a_per_job_error() {
        let service = service(1);
        let f = generators::example6_sat();
        let bad = service.submit("minisat", &SolveRequest::new(&f));
        let good = service.submit("cdcl", &SolveRequest::new(&f));
        assert!(matches!(
            bad.wait().unwrap_err(),
            NblSatError::UnknownBackend(name) if name == "minisat"
        ));
        assert!(good.wait().unwrap().verdict.is_sat());
        service.shutdown();
    }

    #[test]
    fn submit_after_shutdown_answers_service_stopped() {
        let service = service(1);
        let f = generators::example6_sat();
        assert!(service.is_accepting());
        service.shutdown();
        assert!(!service.is_accepting());
        let late = service.submit("cdcl", &SolveRequest::new(&f));
        assert_eq!(late.status(), JobStatus::Finished);
        assert!(matches!(
            late.wait().unwrap_err(),
            NblSatError::ServiceStopped
        ));
        // Stopping again is a no-op.
        service.shutdown();
        service.abort();
    }

    /// A backend that records the seed of every request it answers, and
    /// optionally blocks on a gate first — enough to freeze the single worker
    /// while a test arranges the queue behind it.
    #[derive(Debug)]
    struct Recorder {
        log: Arc<Mutex<Vec<u64>>>,
        gate: Option<Arc<AtomicBool>>,
    }

    impl SatBackend for Recorder {
        fn name(&self) -> &'static str {
            "recorder"
        }
        fn is_complete(&self) -> bool {
            true
        }
        fn solve(&mut self, request: &SolveRequest<'_>) -> Result<SolveOutcome> {
            if let Some(gate) = &self.gate {
                while !gate.load(Ordering::Relaxed) {
                    thread::yield_now();
                }
            }
            self.log
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(request.requested_seed());
            Ok(SolveOutcome::of_verdict(SolveVerdict::Satisfiable))
        }
    }

    fn recording_registry(log: &Arc<Mutex<Vec<u64>>>, gate: &Arc<AtomicBool>) -> BackendRegistry {
        let mut registry = BackendRegistry::empty();
        {
            let log = Arc::clone(log);
            registry.register("recorder", move || {
                Box::new(Recorder {
                    log: Arc::clone(&log),
                    gate: None,
                })
            });
        }
        {
            let log = Arc::clone(log);
            let gate = Arc::clone(gate);
            registry.register("gated-recorder", move || {
                Box::new(Recorder {
                    log: Arc::clone(&log),
                    gate: Some(Arc::clone(&gate)),
                })
            });
        }
        registry
    }

    #[test]
    fn priorities_pop_high_first_fifo_within_class() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let gate = Arc::new(AtomicBool::new(false));
        let registry = recording_registry(&log, &gate);
        let service = SolveService::builder(&registry).workers(1).start();
        let f = generators::example6_sat();
        // Freeze the single worker on a gated job, then queue behind it once
        // the worker has actually claimed it (so nothing can jump ahead).
        let blocker = service.submit("gated-recorder", &SolveRequest::new(&f).seed(99));
        while blocker.status() != JobStatus::Running {
            thread::yield_now();
        }
        let submissions = [
            (0u64, JobPriority::Low),
            (1, JobPriority::Normal),
            (2, JobPriority::High),
            (3, JobPriority::Normal),
            (4, JobPriority::High),
        ];
        let handles: Vec<JobHandle> = submissions
            .iter()
            .map(|&(seed, priority)| {
                service.submit_with_priority(
                    "recorder",
                    &SolveRequest::new(&f).seed(seed),
                    priority,
                )
            })
            .collect();
        gate.store(true, Ordering::Relaxed);
        assert!(blocker.wait().unwrap().verdict.is_sat());
        for handle in handles {
            assert!(handle.wait().unwrap().verdict.is_sat());
        }
        service.shutdown();
        let order = log.lock().unwrap_or_else(PoisonError::into_inner).clone();
        // Gate job first, then High FIFO (2, 4), Normal FIFO (1, 3), Low (0).
        assert_eq!(order, vec![99, 2, 4, 1, 3, 0]);
    }

    #[test]
    fn cancelling_a_queued_job_answers_without_running_it() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let gate = Arc::new(AtomicBool::new(false));
        let registry = recording_registry(&log, &gate);
        let service = SolveService::builder(&registry).workers(1).start();
        let f = generators::example6_sat();
        let blocker = service.submit("gated-recorder", &SolveRequest::new(&f).seed(99));
        while blocker.status() != JobStatus::Running {
            thread::yield_now();
        }
        let doomed = service.submit("recorder", &SolveRequest::new(&f).seed(7));
        assert_eq!(doomed.status(), JobStatus::Queued);
        doomed.cancel();
        // The cancelled job is answered immediately, while the worker is
        // still frozen on the gate.
        assert_eq!(doomed.status(), JobStatus::Finished);
        assert!(doomed.wait().unwrap().verdict.is_cancelled());
        gate.store(true, Ordering::Relaxed);
        assert!(blocker.wait().unwrap().verdict.is_sat());
        service.shutdown();
        // Seed 7 never reached the backend.
        let order = log.lock().unwrap_or_else(PoisonError::into_inner).clone();
        assert_eq!(order, vec![99]);
    }

    #[test]
    fn drop_behaves_like_abort_and_never_hangs() {
        let hard = generators::pigeonhole(8, 7);
        let started = Instant::now();
        let handle;
        {
            let service = service(1);
            handle = service.submit("cdcl", &SolveRequest::new(&hard));
            // Dropped here: running job must be interrupted via the abort
            // token.
        }
        let outcome = handle.wait().unwrap();
        assert!(
            outcome.verdict.is_cancelled() || outcome.verdict.is_definitive(),
            "unexpected {:?}",
            outcome.verdict
        );
        assert!(started.elapsed() < Duration::from_secs(30));
    }

    #[test]
    fn session_coexists_with_the_one_shot_queue() {
        use cnf::{cnf_formula, Literal};
        let lit = |i: i64| Literal::from_dimacs(i).unwrap();
        let service = service(2);
        let session = service.open_session("cdcl").expect("open session");
        assert_eq!(session.backend(), "cdcl");
        assert!(session.is_open());
        assert_eq!(session.push(&cnf_formula![[1, 2], [-1, 2]]).unwrap(), 1);
        assert_eq!(session.depth().unwrap(), 1);

        // A one-shot job runs through the worker pool while the session is
        // pinned to its own thread.
        let sat = generators::example6_sat();
        let job = service.submit("cdcl", &SolveRequest::new(&sat));

        let unsat = session
            .solve(&crate::SessionCall::new().assumptions([lit(-2)]))
            .unwrap();
        assert!(unsat.verdict.is_unsat());
        assert_eq!(
            unsat.failed_assumptions.as_deref(),
            Some([lit(-2)].as_slice())
        );
        let sat_call = session
            .solve(&crate::SessionCall::new().assumptions([lit(1)]))
            .unwrap();
        assert!(sat_call.verdict.is_sat());
        assert!(job.wait().unwrap().verdict.is_sat());

        assert!(session.pop().unwrap());
        assert_eq!(session.depth().unwrap(), 0);
        session.close();
        service.shutdown();
    }

    #[test]
    fn idle_session_is_evicted_and_answers_session_closed() {
        let service = SolveService::builder(&BackendRegistry::default())
            .workers(1)
            .session_idle_timeout(Duration::from_millis(20))
            .start();
        let session = service.open_session("cdcl").expect("open session");
        let deadline = Instant::now() + Duration::from_secs(30);
        while session.is_open() {
            assert!(Instant::now() < deadline, "session never evicted");
            thread::sleep(Duration::from_millis(5));
        }
        let err = session.push(&generators::example6_sat()).unwrap_err();
        assert!(
            matches!(&err, NblSatError::SessionClosed { reason } if reason.contains("idle")),
            "unexpected {err:?}"
        );
        service.shutdown();
    }

    #[test]
    fn open_session_rejects_unknown_backends_and_stopped_services() {
        let service = service(1);
        assert!(matches!(
            service.open_session("walksat").unwrap_err(),
            NblSatError::UnknownBackend(name) if name == "walksat"
        ));
        service.shutdown();
        assert!(matches!(
            service.open_session("cdcl").unwrap_err(),
            NblSatError::ServiceStopped
        ));
    }

    #[test]
    fn abort_interrupts_a_running_session_solve() {
        let service = service(1);
        let session = service.open_session("cdcl").expect("open session");
        session.push(&generators::pigeonhole(8, 7)).unwrap();
        let started = Instant::now();
        thread::scope(|scope| {
            scope.spawn(|| {
                thread::sleep(Duration::from_millis(50));
                service.abort();
            });
            let outcome = session.solve(&crate::SessionCall::new()).unwrap();
            assert!(
                outcome.verdict.is_cancelled() || outcome.verdict.is_definitive(),
                "unexpected {:?}",
                outcome.verdict
            );
        });
        assert!(started.elapsed() < Duration::from_secs(30));
        // After the abort token is raised, further session solves answer
        // cancelled without running.
        let outcome = session.solve(&crate::SessionCall::new()).unwrap();
        assert!(outcome.verdict.is_cancelled());
        session.close();
    }

    #[test]
    fn session_solves_are_charged_against_the_shared_pool() {
        let service = SolveService::builder(&BackendRegistry::default())
            .workers(1)
            .shared_budget(Budget::unlimited().with_wall_time(Duration::ZERO))
            .start();
        let session = service.open_session("cdcl").expect("open session");
        session.push(&generators::example6_sat()).unwrap();
        let outcome = session.solve(&crate::SessionCall::new()).unwrap();
        assert_eq!(
            outcome.verdict.exhausted_resource(),
            Some(ExhaustedResource::WallClock)
        );
        // Refilling the pool revives the session, like a queued job.
        service.extend_deadline(Duration::from_secs(3600));
        assert!(session
            .solve(&crate::SessionCall::new())
            .unwrap()
            .verdict
            .is_sat());
        session.close();
        service.shutdown();
    }

    #[test]
    fn isomorphic_resubmission_is_served_from_the_service_cache() {
        use crate::solve::request::Artifacts;
        use cnf::cnf_formula;
        let service = SolveService::builder(&BackendRegistry::default())
            .workers(2)
            .cache_capacity(16)
            .start();
        // Irreducible under UP/pure literals, so a backend must run once.
        let original = cnf_formula![[1, 2], [-1, -2], [1, -2]];
        let first = service
            .submit(
                "cdcl",
                &SolveRequest::new(&original).artifacts(Artifacts::Model),
            )
            .wait()
            .unwrap();
        assert!(first.verdict.is_sat());
        assert!(original.evaluate(first.model.as_ref().unwrap()));
        // The same instance with x1 <-> x2 renamed and clauses/literals
        // permuted: answered from cache with zero additional dispatch, and
        // the model verifies against *this* formula's variable space.
        let renamed = cnf_formula![[-2, -1], [-1, 2], [1, 2]];
        let second = service
            .submit(
                "cdcl",
                &SolveRequest::new(&renamed).artifacts(Artifacts::Model),
            )
            .wait()
            .unwrap();
        assert!(second.verdict.is_sat());
        assert!(renamed.evaluate(second.model.as_ref().unwrap()));
        assert_eq!(second.stats.cache_hits, 1);
        let snapshot = service.metrics_snapshot();
        assert_eq!(snapshot.dispatches, 1);
        assert_eq!(snapshot.cache_hits, 1);
        assert_eq!(snapshot.queue_depth, 0);
        service.shutdown();
    }

    #[test]
    fn pending_by_priority_reports_the_live_backlog() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let gate = Arc::new(AtomicBool::new(false));
        let registry = recording_registry(&log, &gate);
        let service = SolveService::builder(&registry).workers(1).start();
        let f = generators::example6_sat();
        let blocker = service.submit("gated-recorder", &SolveRequest::new(&f).seed(99));
        while blocker.status() != JobStatus::Running {
            thread::yield_now();
        }
        let handles: Vec<JobHandle> = [
            JobPriority::High,
            JobPriority::Normal,
            JobPriority::Normal,
            JobPriority::Low,
        ]
        .iter()
        .map(|&priority| service.submit_with_priority("recorder", &SolveRequest::new(&f), priority))
        .collect();
        assert_eq!(service.pending_by_priority(), [1, 2, 1]);
        let snapshot = service.metrics_snapshot();
        assert_eq!(snapshot.queue_depth, 4);
        assert_eq!(snapshot.backlog_high, 1);
        assert_eq!(snapshot.backlog_normal, 2);
        assert_eq!(snapshot.backlog_low, 1);
        gate.store(true, Ordering::Relaxed);
        for handle in handles {
            assert!(handle.wait().unwrap().verdict.is_sat());
        }
        assert!(blocker.wait().unwrap().verdict.is_sat());
        service.shutdown();
        assert_eq!(service.pending_by_priority(), [0, 0, 0]);
    }

    #[test]
    fn starved_pool_answers_budget_exhausted() {
        let registry = BackendRegistry::default();
        let service = SolveService::builder(&registry)
            .workers(2)
            .shared_budget(Budget::unlimited().with_wall_time(Duration::ZERO))
            .start();
        let f = generators::example6_sat();
        let handle = service.submit("cdcl", &SolveRequest::new(&f));
        let outcome = handle.wait().unwrap();
        assert_eq!(
            outcome.verdict.exhausted_resource(),
            Some(ExhaustedResource::WallClock)
        );
        assert_eq!(outcome.exhausted, Some(ExhaustedResource::WallClock));
        // Refilling the wall clock revives the service.
        service.extend_deadline(Duration::from_secs(3600));
        let revived = service.submit("cdcl", &SolveRequest::new(&f));
        assert!(revived.wait().unwrap().verdict.is_sat());
        service.shutdown();
    }
}
