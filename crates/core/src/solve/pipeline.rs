//! The shared pre-dispatch pipeline every solve entry point flows through.
//!
//! Production SAT traffic is dominated by re-solves of small variations on
//! formulas the deployment has already answered, and the NBL engines of the
//! paper scale exponentially in *live* variables — so the two highest-value
//! moves happen before a backend ever runs: shrink the instance, and check
//! whether an isomorphic instance was already solved. [`SolvePipeline`]
//! packages both, plus the observability to see them working:
//!
//! 1. **Preprocess** — [`cnf::preprocess`]: normalization (tautology and
//!    duplicate removal, sorted literals), unit propagation and pure-literal
//!    elimination to fixpoint, then canonicalization (dense variable renaming
//!    in a structure-derived order). The [`ReductionTrace`] makes the
//!    reduction invertible: models found on the reduced formula lift back to
//!    the caller's variable space.
//! 2. **Cache** — an optional canonical-key [`VerdictCache`]. Because the key
//!    hashes the *canonicalized* formula, a renamed/permuted isomorphic
//!    resubmission hits and is answered with zero backend dispatch.
//! 3. **Metrics** — a [`MetricsRegistry`] counting dispatches, per-backend
//!    latency, cache traffic, preprocessing reductions and budget spend.
//!
//! The pipeline is two-phase so queueing front ends can keep their own
//! dispatch machinery: [`SolvePipeline::prepare`] either resolves the request
//! outright (preprocessing decided it, or the cache had it) or hands back a
//! [`PreparedRequest`] to dispatch; [`SolvePipeline::complete`] then folds
//! the backend's outcome back into the caller's variable space and feeds the
//! cache and metrics. [`SolvePipeline::solve`] wraps both phases around a
//! registry dispatch for one-shot callers.
//!
//! Requests that need artifacts the reduction cannot lift — convergence
//! traces, prime-implicant cubes (don't-care structure is not preserved by
//! variable elimination) or assumption literals (they name caller-space
//! variables) — bypass preprocessing and the cache entirely; only their
//! dispatch metrics are recorded.

use crate::error::Result;
use crate::solve::cache::{CacheStats, VerdictCache, DEFAULT_CACHE_CAPACITY};
use crate::solve::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::solve::outcome::{SolveOutcome, SolveVerdict};
use crate::solve::registry::BackendRegistry;
use crate::solve::request::SolveRequest;
use cnf::{fingerprint, preprocess, CnfFormula, PreprocessOutcome, ReductionTrace};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a [`SolvePipeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Run the preprocessing stage (normalize, propagate, canonicalize).
    /// When off the pipeline is a pure dispatch-metrics shim.
    pub preprocess: bool,
    /// Capacity of the verdict/model cache; `None` disables caching. The
    /// cache requires preprocessing (keys hash the canonical formula), so it
    /// is inert while `preprocess` is off.
    pub cache_capacity: Option<usize>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            preprocess: true,
            cache_capacity: None,
        }
    }
}

impl PipelineConfig {
    /// Preprocessing on, cache off.
    pub fn new() -> Self {
        PipelineConfig::default()
    }

    /// Enables the verdict/model cache with the given capacity.
    pub fn with_cache(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Enables the verdict/model cache at [`DEFAULT_CACHE_CAPACITY`].
    pub fn with_default_cache(self) -> Self {
        self.with_cache(DEFAULT_CACHE_CAPACITY)
    }

    /// Turns the preprocessing stage on or off.
    pub fn preprocessing(mut self, enabled: bool) -> Self {
        self.preprocess = enabled;
        self
    }
}

/// What [`SolvePipeline::prepare`] decided about a request.
#[derive(Debug)]
pub enum PipelineDecision {
    /// The request is answered without any backend dispatch: preprocessing
    /// decided it outright, or the cache held an isomorphic instance. The
    /// outcome is already in the caller's variable space.
    Resolved(SolveOutcome),
    /// A backend must run. Dispatch against [`PreparedRequest::formula`] and
    /// hand the result to [`SolvePipeline::complete`].
    Dispatch(PreparedRequest),
}

/// A request that passed through [`SolvePipeline::prepare`] and needs a
/// backend dispatch. Holds the (possibly reduced and canonicalized) formula
/// to solve and everything `complete` needs to map the outcome back.
#[derive(Debug)]
pub struct PreparedRequest {
    formula: CnfFormula,
    trace: Option<ReductionTrace>,
    key: Option<u64>,
    vars_removed: u64,
}

impl PreparedRequest {
    /// The formula the backend must solve. In caller space for bypassed
    /// requests, in canonical reduced space otherwise.
    pub fn formula(&self) -> &CnfFormula {
        &self.formula
    }

    /// Whether preprocessing reduced or renamed the formula (in which case
    /// the backend's model is lifted by [`SolvePipeline::complete`]).
    pub fn is_reduced(&self) -> bool {
        self.trace.is_some()
    }

    /// Builds the inner request to dispatch: the prepared formula with the
    /// original request's artifacts, seed, budget and cancellation tokens.
    pub fn request<'a>(&'a self, original: &SolveRequest<'_>) -> SolveRequest<'a> {
        original.reborrow(&self.formula)
    }
}

/// The shared solve pipeline: preprocessing, canonical-key caching and
/// metrics in front of backend dispatch. Cheap to clone; clones share the
/// cache and metrics.
#[derive(Debug, Clone)]
pub struct SolvePipeline {
    config: PipelineConfig,
    cache: Option<Arc<VerdictCache>>,
    metrics: MetricsRegistry,
}

impl Default for SolvePipeline {
    fn default() -> Self {
        SolvePipeline::new(PipelineConfig::default())
    }
}

impl SolvePipeline {
    /// A pipeline with the given configuration and fresh cache/metrics.
    pub fn new(config: PipelineConfig) -> Self {
        SolvePipeline {
            config,
            cache: config
                .cache_capacity
                .map(|capacity| Arc::new(VerdictCache::new(capacity))),
            metrics: MetricsRegistry::new(),
        }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Cache counters, when a cache is configured.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|cache| cache.stats())
    }

    /// A point-in-time metrics snapshot with the cache gauges filled in.
    /// Queue gauges stay zero; front ends that own a queue overlay them.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snapshot = self.metrics.snapshot();
        if let Some(stats) = self.cache_stats() {
            snapshot.cache_hits = stats.hits;
            snapshot.cache_misses = stats.misses;
            snapshot.cache_evictions = stats.evictions;
            snapshot.cache_insertions = stats.insertions;
            snapshot.cache_entries = stats.entries;
        }
        snapshot
    }

    /// Runs the pre-dispatch stages on `request`.
    ///
    /// Returns [`PipelineDecision::Resolved`] when no backend needs to run
    /// (preprocessing proved the verdict, or an isomorphic instance was
    /// cached — the outcome's `stats.cache_hits` is 1 in the latter case),
    /// or [`PipelineDecision::Dispatch`] with the prepared formula.
    pub fn prepare(&self, request: &SolveRequest<'_>) -> PipelineDecision {
        if self.bypasses(request) {
            return PipelineDecision::Dispatch(PreparedRequest {
                formula: request.formula().clone(),
                trace: None,
                key: None,
                vars_removed: 0,
            });
        }
        let prepared = preprocess(request.formula());
        let report = prepared.report;
        let vars_removed = report.vars_removed() as u64;
        let clauses_removed = report.clauses_removed() as u64;
        match prepared.outcome {
            PreprocessOutcome::Satisfiable(model) => {
                self.metrics
                    .record_preprocess(vars_removed, clauses_removed, true);
                let mut outcome = SolveOutcome::of_verdict(SolveVerdict::Satisfiable);
                if request.requested_artifacts().wants_model() {
                    outcome.model = Some(model);
                }
                outcome.stats.preprocessed_vars_removed = vars_removed;
                outcome.stats.winner = Some("preprocess");
                PipelineDecision::Resolved(outcome)
            }
            PreprocessOutcome::Unsatisfiable => {
                self.metrics
                    .record_preprocess(vars_removed, clauses_removed, true);
                let mut outcome = SolveOutcome::of_verdict(SolveVerdict::Unsatisfiable);
                outcome.stats.preprocessed_vars_removed = vars_removed;
                outcome.stats.winner = Some("preprocess");
                PipelineDecision::Resolved(outcome)
            }
            PreprocessOutcome::Reduced { formula, trace } => {
                self.metrics
                    .record_preprocess(vars_removed, clauses_removed, false);
                let key = fingerprint(&formula);
                if let Some(cache) = &self.cache {
                    if let Some(answer) = cache.lookup(key, &formula) {
                        let mut outcome = SolveOutcome::of_verdict(answer.verdict);
                        if request.requested_artifacts().wants_model() {
                            outcome.model = answer.model.map(|model| trace.lift_model(&model));
                        }
                        outcome.stats.cache_hits = 1;
                        outcome.stats.preprocessed_vars_removed = vars_removed;
                        outcome.stats.winner = Some("cache");
                        return PipelineDecision::Resolved(outcome);
                    }
                }
                PipelineDecision::Dispatch(PreparedRequest {
                    formula,
                    trace: Some(trace),
                    key: Some(key),
                    vars_removed,
                })
            }
        }
    }

    /// Folds a backend's `outcome` for a [`PreparedRequest`] back into the
    /// caller's variable space: records dispatch metrics and budget spend,
    /// feeds the cache (definitive verdicts only; satisfiable ones only with
    /// a model, which is verified against the canonical formula on insert),
    /// and lifts the model through the reduction trace.
    pub fn complete(
        &self,
        prepared: PreparedRequest,
        mut outcome: SolveOutcome,
        backend: &str,
        latency: Duration,
    ) -> SolveOutcome {
        self.metrics.record_dispatch(backend, latency);
        self.metrics
            .record_budget_spend(outcome.stats.samples, outcome.stats.coprocessor_checks);
        if outcome.stats.clauses_exported > 0 || outcome.stats.clauses_imported > 0 {
            self.metrics.record_sharing(
                outcome.stats.clauses_exported,
                outcome.stats.clauses_imported,
            );
        }
        let PreparedRequest {
            formula,
            trace,
            key,
            vars_removed,
            ..
        } = prepared;
        if let (Some(cache), Some(key)) = (&self.cache, key) {
            let cacheable = match outcome.verdict {
                SolveVerdict::Satisfiable => outcome.model.is_some(),
                SolveVerdict::Unsatisfiable => true,
                SolveVerdict::Unknown(_) => false,
            };
            if cacheable {
                cache.insert(key, formula, outcome.verdict, outcome.model.clone());
            }
        }
        if let Some(trace) = &trace {
            if let Some(model) = outcome.model.take() {
                outcome.model = Some(trace.lift_model(&model));
            }
            outcome.stats.preprocessed_vars_removed = vars_removed;
        }
        outcome
    }

    /// One-shot convenience: `prepare`, dispatch through `registry` when
    /// needed, `complete`.
    ///
    /// # Errors
    ///
    /// Whatever [`BackendRegistry::create`] or the backend's solve returns.
    pub fn solve(
        &self,
        registry: &BackendRegistry,
        backend: &str,
        request: &SolveRequest<'_>,
    ) -> Result<SolveOutcome> {
        match self.prepare(request) {
            PipelineDecision::Resolved(outcome) => Ok(outcome),
            PipelineDecision::Dispatch(prepared) => {
                let started = Instant::now();
                let outcome = {
                    let inner = prepared.request(request);
                    registry.create(backend)?.solve(&inner)?
                };
                Ok(self.complete(prepared, outcome, backend, started.elapsed()))
            }
        }
    }

    /// Whether this request must skip preprocessing and the cache: it wants
    /// artifacts the reduction cannot lift back (a convergence trace, a
    /// prime-implicant cube) or names caller-space variables (assumptions) —
    /// or the stage is disabled outright.
    fn bypasses(&self, request: &SolveRequest<'_>) -> bool {
        !self.config.preprocess
            || request.wants_trace()
            || request.requested_artifacts().wants_cube()
            || !request.requested_assumptions().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::request::Artifacts;
    use cnf::{cnf_formula, Literal, Variable};

    fn registry() -> BackendRegistry {
        BackendRegistry::default()
    }

    #[test]
    fn preprocessing_resolves_trivial_instances_without_dispatch() {
        let pipeline = SolvePipeline::default();
        // Unit-propagation refutable: no backend should ever run.
        let unsat = cnf_formula![[1], [-1]];
        let request = SolveRequest::new(&unsat);
        match pipeline.prepare(&request) {
            PipelineDecision::Resolved(outcome) => {
                assert!(outcome.verdict.is_unsat());
                assert_eq!(outcome.stats.preprocessed_vars_removed, 1);
            }
            PipelineDecision::Dispatch(_) => panic!("UP-refutable formula dispatched"),
        }
        // Pure-literal satisfiable, model in caller space.
        let sat = cnf_formula![[1, 2], [1, -2]];
        let request = SolveRequest::new(&sat).artifacts(Artifacts::Model);
        match pipeline.prepare(&request) {
            PipelineDecision::Resolved(outcome) => {
                assert!(outcome.verdict.is_sat());
                assert!(sat.evaluate(outcome.model.as_ref().expect("model requested")));
            }
            PipelineDecision::Dispatch(_) => panic!("pure-literal SAT formula dispatched"),
        }
        assert_eq!(pipeline.snapshot().pre_solved, 2);
        assert_eq!(pipeline.snapshot().dispatches, 0);
    }

    #[test]
    fn isomorphic_resubmission_hits_the_cache_with_zero_dispatch() {
        let pipeline = SolvePipeline::new(PipelineConfig::new().with_cache(16));
        let registry = registry();
        // Irreducible under UP/pure literals: both polarities of both
        // variables occur and there are no unit clauses.
        let original = cnf_formula![[1, 2], [-1, -2], [1, -2]];
        let request = SolveRequest::new(&original).artifacts(Artifacts::Model);
        let first = pipeline.solve(&registry, "cdcl", &request).unwrap();
        assert!(first.verdict.is_sat());
        assert!(original.evaluate(first.model.as_ref().unwrap()));
        assert_eq!(first.stats.cache_hits, 0);
        assert_eq!(pipeline.snapshot().dispatches, 1);

        // Rename x1 <-> x2 and permute clause/literal order.
        let renamed = cnf_formula![[-2, -1], [2, 1], [-1, 2]];
        let request = SolveRequest::new(&renamed).artifacts(Artifacts::Model);
        let second = pipeline.solve(&registry, "cdcl", &request).unwrap();
        assert!(second.verdict.is_sat());
        assert!(renamed.evaluate(second.model.as_ref().unwrap()));
        assert_eq!(second.stats.cache_hits, 1);
        // Zero additional dispatch: the cache answered.
        let snapshot = pipeline.snapshot();
        assert_eq!(snapshot.dispatches, 1);
        assert_eq!(snapshot.cache_hits, 1);
        assert_eq!(snapshot.cache_misses, 1);
        assert_eq!(snapshot.cache_entries, 1);
    }

    #[test]
    fn unsat_verdicts_are_cached_without_models() {
        let pipeline = SolvePipeline::new(PipelineConfig::new().with_cache(16));
        let registry = registry();
        // Irreducible UNSAT: all four binary clauses over two variables.
        let original = cnf_formula![[1, 2], [1, -2], [-1, 2], [-1, -2]];
        let outcome = pipeline
            .solve(&registry, "cdcl", &SolveRequest::new(&original))
            .unwrap();
        assert!(outcome.verdict.is_unsat());
        let renamed = cnf_formula![[2, 1], [-2, 1], [2, -1], [-2, -1]];
        let cached = pipeline
            .solve(&registry, "cdcl", &SolveRequest::new(&renamed))
            .unwrap();
        assert!(cached.verdict.is_unsat());
        assert_eq!(cached.stats.cache_hits, 1);
        assert_eq!(pipeline.snapshot().dispatches, 1);
    }

    #[test]
    fn verdict_only_sat_answers_are_not_cached() {
        let pipeline = SolvePipeline::new(PipelineConfig::new().with_cache(16));
        let registry = registry();
        let formula = cnf_formula![[1, 2], [-1, -2], [1, -2]];
        let request = SolveRequest::new(&formula); // Artifacts::Verdict
        pipeline.solve(&registry, "cdcl", &request).unwrap();
        // No model → not cached → the resubmission dispatches again.
        let second = pipeline.solve(&registry, "cdcl", &request).unwrap();
        assert_eq!(second.stats.cache_hits, 0);
        assert_eq!(pipeline.snapshot().dispatches, 2);
    }

    #[test]
    fn special_requests_bypass_preprocessing_and_cache() {
        let pipeline = SolvePipeline::new(PipelineConfig::new().with_cache(16));
        // A UP-refutable formula would normally resolve in prepare; with a
        // trace request, assumptions or a cube it must dispatch untouched.
        let formula = cnf_formula![[1], [-1]];
        let traced = SolveRequest::new(&formula).trace(true);
        let cubed = SolveRequest::new(&formula).artifacts(Artifacts::PrimeCube);
        let assumed =
            SolveRequest::new(&formula).assumptions([Literal::positive(Variable::new(0))]);
        for request in [&traced, &cubed, &assumed] {
            match pipeline.prepare(request) {
                PipelineDecision::Dispatch(prepared) => {
                    assert!(!prepared.is_reduced());
                    assert_eq!(prepared.formula(), &formula);
                }
                PipelineDecision::Resolved(_) => panic!("bypass request was resolved"),
            }
        }
        assert_eq!(pipeline.snapshot().cache_misses, 0);
    }

    #[test]
    fn models_lift_through_variable_elimination() {
        let pipeline = SolvePipeline::default();
        let registry = registry();
        // x3 is forced by the unit clause; x1/x2 survive reduction.
        let formula = cnf_formula![[3], [1, 2], [-1, -2], [-3, 1, 2]];
        let request = SolveRequest::new(&formula).artifacts(Artifacts::Model);
        match pipeline.prepare(&request) {
            PipelineDecision::Dispatch(prepared) => {
                assert!(prepared.is_reduced());
                assert!(prepared.formula().num_vars() < formula.num_vars());
                let outcome = {
                    let inner = prepared.request(&request);
                    registry.create("cdcl").unwrap().solve(&inner).unwrap()
                };
                let lifted = pipeline.complete(prepared, outcome, "cdcl", Duration::from_micros(1));
                assert!(lifted.verdict.is_sat());
                assert!(formula.evaluate(lifted.model.as_ref().unwrap()));
                assert_eq!(lifted.stats.preprocessed_vars_removed, 1);
            }
            PipelineDecision::Resolved(_) => panic!("irreducible core was resolved"),
        }
    }
}
