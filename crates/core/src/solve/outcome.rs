//! The unified solve outcome: verdict, artifacts and merged telemetry.

use crate::budget::ExhaustedResource;
use crate::convergence::ConvergenceTrace;
use crate::engine::MeanEstimate;
use crate::hybrid::HybridStats;
use cnf::{Assignment, Cube, Literal};
use sat_solvers::SolverStats;
use std::fmt;
use std::time::Duration;

/// Why a backend answered [`SolveVerdict::Unknown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnknownCause {
    /// A resource budget ran out before the backend could decide.
    BudgetExhausted(ExhaustedResource),
    /// The solve was cancelled through a cancellation token (a per-job
    /// cancel, a service-wide abort) before the backend could decide.
    Cancelled,
    /// The backend is incomplete (stochastic local search, a scope-limited
    /// special case such as 2-SAT on wide clauses, or a statistical engine)
    /// and gave up within its own internal limits.
    Incomplete,
}

impl fmt::Display for UnknownCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnknownCause::BudgetExhausted(resource) => {
                write!(f, "budget exhausted ({resource})")
            }
            UnknownCause::Cancelled => write!(f, "cancelled"),
            UnknownCause::Incomplete => write!(f, "backend gave up (incomplete)"),
        }
    }
}

/// The unified verdict of a solve.
///
/// Unlike the low-level [`crate::Verdict`] (the binary answer of the NBL
/// check, Algorithm 1) this carries the third outcome a budgeted,
/// backend-agnostic API needs: `Unknown` with its cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveVerdict {
    /// The instance is satisfiable.
    Satisfiable,
    /// The instance is unsatisfiable.
    Unsatisfiable,
    /// The backend could not decide; the cause says why.
    Unknown(UnknownCause),
}

impl SolveVerdict {
    /// Returns `true` for [`SolveVerdict::Satisfiable`].
    pub fn is_sat(self) -> bool {
        self == SolveVerdict::Satisfiable
    }

    /// Returns `true` for [`SolveVerdict::Unsatisfiable`].
    pub fn is_unsat(self) -> bool {
        self == SolveVerdict::Unsatisfiable
    }

    /// Returns `true` for either definitive verdict.
    pub fn is_definitive(self) -> bool {
        !matches!(self, SolveVerdict::Unknown(_))
    }

    /// Returns `true` for an `Unknown` caused by cancellation.
    pub fn is_cancelled(self) -> bool {
        matches!(self, SolveVerdict::Unknown(UnknownCause::Cancelled))
    }

    /// The exhausted resource, when the verdict is an `Unknown` caused by
    /// budget exhaustion.
    pub fn exhausted_resource(self) -> Option<ExhaustedResource> {
        match self {
            SolveVerdict::Unknown(UnknownCause::BudgetExhausted(resource)) => Some(resource),
            _ => None,
        }
    }
}

impl fmt::Display for SolveVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveVerdict::Satisfiable => write!(f, "SAT"),
            SolveVerdict::Unsatisfiable => write!(f, "UNSAT"),
            SolveVerdict::Unknown(cause) => write!(f, "UNKNOWN ({cause})"),
        }
    }
}

/// Merged telemetry of one solve, unifying the classical [`SolverStats`], the
/// hybrid flow's [`HybridStats`] and the NBL engines' [`MeanEstimate`]
/// telemetry under one roof.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SolveStats {
    /// Branching decisions (CPU-side search).
    pub decisions: u64,
    /// Conflicts / backtracks.
    pub conflicts: u64,
    /// Literals fixed by unit propagation.
    pub propagations: u64,
    /// Restarts (CDCL, local search).
    pub restarts: u64,
    /// Learned clauses (CDCL).
    pub learned_clauses: u64,
    /// Complete assignments tried (brute force, local-search restarts).
    pub assignments_tried: u64,
    /// Local-search flips.
    pub flips: u64,
    /// NBL coprocessor check operations (the paper's complexity metric).
    pub coprocessor_checks: u64,
    /// Noise samples drawn by the sampled engine across all checks.
    pub samples: u64,
    /// The final ⟨S_N⟩ estimate of the deciding NBL check, if one was made.
    pub last_estimate: Option<MeanEstimate>,
    /// The member that produced the answer (portfolio-style backends).
    pub winner: Option<&'static str>,
    /// Wall-clock time the solve took.
    pub wall_time: Duration,
    /// Answers served from the pipeline's verdict/model cache (1 for a
    /// single solve answered with zero backend dispatch; summed across jobs
    /// by aggregating front ends).
    pub cache_hits: u64,
    /// Variables the pipeline's preprocessing stage removed before dispatch.
    pub preprocessed_vars_removed: u64,
    /// Learned clauses published into a cooperative portfolio's shared
    /// clause pool, summed over every member.
    pub clauses_exported: u64,
    /// Clauses consumed from a cooperative portfolio's shared clause pool,
    /// summed over every member.
    pub clauses_imported: u64,
}

impl SolveStats {
    /// Folds a classical solver's statistics into the unified view.
    pub fn absorb_solver(&mut self, stats: &SolverStats) {
        self.decisions += stats.decisions;
        self.conflicts += stats.conflicts;
        self.propagations += stats.propagations;
        self.restarts += stats.restarts;
        self.learned_clauses += stats.learned_clauses;
        self.assignments_tried += stats.assignments_tried;
        self.flips += stats.flips;
        self.clauses_exported += stats.clauses_exported;
        self.clauses_imported += stats.clauses_imported;
        if stats.winner.is_some() {
            self.winner = stats.winner;
        }
    }

    /// Folds the hybrid solver's statistics into the unified view.
    pub fn absorb_hybrid(&mut self, stats: &HybridStats) {
        self.decisions += stats.decisions;
        self.conflicts += stats.conflicts;
        self.propagations += stats.propagations;
        self.coprocessor_checks += stats.coprocessor_checks;
    }
}

impl fmt::Display for SolveStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decisions={} conflicts={} propagations={} restarts={} learned={} tried={} flips={} checks={} samples={} wall={:?}",
            self.decisions,
            self.conflicts,
            self.propagations,
            self.restarts,
            self.learned_clauses,
            self.assignments_tried,
            self.flips,
            self.coprocessor_checks,
            self.samples,
            self.wall_time,
        )?;
        if self.cache_hits > 0 {
            write!(f, " cache_hits={}", self.cache_hits)?;
        }
        if self.preprocessed_vars_removed > 0 {
            write!(f, " pre_vars_removed={}", self.preprocessed_vars_removed)?;
        }
        if self.clauses_exported > 0 || self.clauses_imported > 0 {
            write!(
                f,
                " exported={} imported={}",
                self.clauses_exported, self.clauses_imported
            )?;
        }
        if let Some(winner) = self.winner {
            write!(f, " winner={winner}")?;
        }
        if let Some(estimate) = &self.last_estimate {
            write!(f, " last_estimate=[{estimate}]")?;
        }
        Ok(())
    }
}

/// Everything a backend returns for one [`crate::SolveRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOutcome {
    /// The unified verdict.
    pub verdict: SolveVerdict,
    /// A satisfying assignment, when requested, found and affordable.
    pub model: Option<Assignment>,
    /// A satisfying prime-implicant cube, when requested and available.
    pub cube: Option<Cube>,
    /// Merged telemetry of the solve.
    pub stats: SolveStats,
    /// The sampled engine's convergence trace, when requested and available.
    pub trace: Option<ConvergenceTrace>,
    /// Set when a budget limit fired at any point — including artifact
    /// extraction after a definitive verdict, in which case the verdict is
    /// still definitive but the artifact is missing.
    pub exhausted: Option<ExhaustedResource>,
    /// The failed-assumption core of an incremental solve: a subset of the
    /// call's assumption literals already inconsistent with the formula.
    /// `Some` only when an assumption-aware backend answered
    /// [`SolveVerdict::Unsatisfiable`] under assumptions; an empty vector
    /// means the formula is unsatisfiable regardless of the assumptions.
    pub failed_assumptions: Option<Vec<Literal>>,
}

impl SolveOutcome {
    /// A bare outcome with the given verdict and default everything else.
    pub fn of_verdict(verdict: SolveVerdict) -> Self {
        SolveOutcome {
            verdict,
            model: None,
            cube: None,
            stats: SolveStats::default(),
            trace: None,
            exhausted: None,
            failed_assumptions: None,
        }
    }
}

impl fmt::Display for SolveOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.verdict)?;
        if let Some(model) = &self.model {
            write!(f, " model {model}")?;
        }
        if let Some(cube) = &self.cube {
            write!(f, " cube {cube}")?;
        }
        if let Some(core) = &self.failed_assumptions {
            write!(f, " failed-assumptions {{")?;
            for (i, lit) in core.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{lit}")?;
            }
            write!(f, "}}")?;
        }
        write!(f, " [{}]", self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_accessors_and_display() {
        assert!(SolveVerdict::Satisfiable.is_sat());
        assert!(SolveVerdict::Satisfiable.is_definitive());
        assert!(SolveVerdict::Unsatisfiable.is_unsat());
        let unknown =
            SolveVerdict::Unknown(UnknownCause::BudgetExhausted(ExhaustedResource::WallClock));
        assert!(!unknown.is_definitive());
        assert_eq!(
            unknown.exhausted_resource(),
            Some(ExhaustedResource::WallClock)
        );
        assert_eq!(
            SolveVerdict::Unknown(UnknownCause::Incomplete).exhausted_resource(),
            None
        );
        assert_eq!(SolveVerdict::Satisfiable.to_string(), "SAT");
        assert!(unknown.to_string().contains("wall-clock"));
        assert!(SolveVerdict::Unknown(UnknownCause::Incomplete)
            .to_string()
            .contains("incomplete"));
    }

    #[test]
    fn stats_merge_solver_and_hybrid_views() {
        let mut stats = SolveStats::default();
        stats.absorb_solver(&SolverStats {
            decisions: 3,
            flips: 7,
            winner: Some("cdcl"),
            ..SolverStats::default()
        });
        stats.absorb_hybrid(&HybridStats {
            decisions: 2,
            conflicts: 1,
            propagations: 4,
            coprocessor_checks: 9,
        });
        assert_eq!(stats.decisions, 5);
        assert_eq!(stats.conflicts, 1);
        assert_eq!(stats.flips, 7);
        assert_eq!(stats.coprocessor_checks, 9);
        assert_eq!(stats.winner, Some("cdcl"));
        let rendered = stats.to_string();
        assert!(rendered.contains("decisions=5"));
        assert!(rendered.contains("winner=cdcl"));
    }

    #[test]
    fn outcome_display_mentions_artifacts() {
        let mut outcome = SolveOutcome::of_verdict(SolveVerdict::Satisfiable);
        outcome.model = Some(Assignment::all_true(2));
        outcome.cube = Some(Cube::from_dimacs(&[1]).unwrap());
        let rendered = outcome.to_string();
        assert!(rendered.starts_with("SAT"));
        assert!(rendered.contains("model"));
        assert!(rendered.contains("cube"));
    }
}
