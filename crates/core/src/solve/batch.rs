//! Batched solving: many requests, one shared budget, a bounded worker pool.
//!
//! The single-request front door ([`BackendRegistry::solve`]) answers one
//! [`SolveRequest`] at a time. Production front ends rarely have one: they
//! have a *queue* — an ATPG run emitting one miter per fault, an equivalence
//! check per output cone, a portfolio of random instances — and a single
//! resource envelope for the whole queue. [`SolveBatch`] is that entry point:
//! push jobs (backend name + request), set the shared [`Budget`] and the
//! worker count, and [`SolveBatch::run`] fans the jobs out across a bounded
//! pool of OS threads, charges every job against one [`SharedBudget`], and
//! returns per-request outcomes in input order. Jobs that start after the
//! pool is spent are answered `Unknown(BudgetExhausted)` immediately — the
//! batch never hangs on an empty pool.

use crate::budget::{Budget, SharedBudget};
use crate::error::Result;
use crate::solve::outcome::{SolveOutcome, SolveVerdict, UnknownCause};
use crate::solve::registry::BackendRegistry;
use crate::solve::request::SolveRequest;
use std::fmt;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// One job of a batch: a backend name plus the request it should answer.
struct BatchJob<'f> {
    backend: String,
    request: SolveRequest<'f>,
}

impl fmt::Debug for BatchJob<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BatchJob")
            .field("backend", &self.backend)
            .field("request", &self.request)
            .finish()
    }
}

/// A batch of solve jobs sharing one resource [`Budget`] and a bounded
/// worker pool.
///
/// Built fluently against a [`BackendRegistry`]; every worker creates a fresh
/// backend instance per job (backends are stateful), so jobs never share
/// solver state — only the budget pool.
///
/// Outcomes come back in input order regardless of completion order. With a
/// single worker — or without budget contention — each outcome is bit-equal
/// to what the sequential [`BackendRegistry::solve`] would have produced for
/// the same request, because each job still runs on exactly one backend with
/// the request's own deterministic seed. Under contention the *set* of jobs
/// answered `Unknown(BudgetExhausted)` depends on scheduling; the answered
/// ones remain correct.
///
/// ```
/// use cnf::cnf_formula;
/// use nbl_sat_core::{BackendRegistry, Budget, SolveBatch, SolveRequest};
///
/// let registry = BackendRegistry::default();
/// let sat = cnf_formula![[1, 2], [-1, -2]];
/// let unsat = cnf_formula![[1], [-1]];
/// let outcomes = SolveBatch::new(&registry)
///     .job("cdcl", SolveRequest::new(&sat))
///     .job("parallel-portfolio", SolveRequest::new(&unsat))
///     .run();
/// assert!(outcomes[0].as_ref().unwrap().verdict.is_sat());
/// assert!(outcomes[1].as_ref().unwrap().verdict.is_unsat());
/// ```
pub struct SolveBatch<'f, 'r> {
    registry: &'r BackendRegistry,
    jobs: Vec<BatchJob<'f>>,
    shared: Budget,
    workers: usize,
}

impl fmt::Debug for SolveBatch<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolveBatch")
            .field("jobs", &self.jobs.len())
            .field("shared", &self.shared)
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl<'f, 'r> SolveBatch<'f, 'r> {
    /// Creates an empty batch against `registry` with an unlimited shared
    /// budget and one worker per available CPU.
    pub fn new(registry: &'r BackendRegistry) -> Self {
        let workers = thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        SolveBatch {
            registry,
            jobs: Vec::new(),
            shared: Budget::unlimited(),
            workers,
        }
    }

    /// Sets the shared budget the whole batch is charged against. Each job's
    /// own request budget still applies on top (the tighter limit wins,
    /// resource by resource).
    pub fn shared_budget(mut self, budget: Budget) -> Self {
        self.shared = budget;
        self
    }

    /// Sets the worker-pool size (clamped to at least 1; never more workers
    /// than jobs are spawned).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Appends a job: solve `request` with the backend registered under
    /// `backend`. Unknown names surface as a per-job `Err` when the batch
    /// runs.
    pub fn job(mut self, backend: &str, request: SolveRequest<'f>) -> Self {
        self.jobs.push(BatchJob {
            backend: backend.to_string(),
            request,
        });
        self
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Returns `true` if no job is queued.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs the batch and returns one result per job, in input order.
    ///
    /// Workers claim jobs from a shared cursor, so completion order is
    /// scheduling-dependent while the returned order is not. A job observed
    /// *after* the shared budget is spent is answered
    /// `Unknown(BudgetExhausted)` with [`SolveOutcome::exhausted`] set,
    /// without creating a backend — this is what bounds the batch's latency
    /// once the pool runs dry. Per-job `Err`s (unknown backend, instance too
    /// large for the brute-force oracle, …) are isolated to their slot and
    /// never poison sibling jobs.
    pub fn run(self) -> Vec<Result<SolveOutcome>> {
        let SolveBatch {
            registry,
            jobs,
            shared,
            workers,
        } = self;
        if jobs.is_empty() {
            return Vec::new();
        }
        let pool = SharedBudget::start(&shared);
        let worker_count = workers.clamp(1, jobs.len());
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<SolveOutcome>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();

        thread::scope(|scope| {
            for _ in 0..worker_count {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(index) else {
                        break;
                    };
                    let result = run_job(registry, job, &pool);
                    *slots[index].lock().expect("slot lock") = Some(result);
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("every job writes its slot")
            })
            .collect()
    }
}

/// Runs one job against the shared pool: starve it if the pool is already
/// spent, otherwise solve it under the pool's current slice and charge the
/// actual spend back.
fn run_job(
    registry: &BackendRegistry,
    job: &BatchJob<'_>,
    pool: &SharedBudget,
) -> Result<SolveOutcome> {
    if let Some(resource) = pool.exhausted() {
        let mut outcome = SolveOutcome::of_verdict(SolveVerdict::Unknown(
            UnknownCause::BudgetExhausted(resource),
        ));
        outcome.exhausted = Some(resource);
        return Ok(outcome);
    }
    let slice = pool.slice(job.request.requested_budget());
    let request = job.request.clone().budget(slice);
    let mut backend = registry.create(&job.backend)?;
    let outcome = backend.solve(&request)?;
    pool.charge(outcome.stats.samples, outcome.stats.coprocessor_checks);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::ExhaustedResource;
    use cnf::generators;
    use std::time::Duration;

    #[test]
    fn empty_batch_is_a_no_op() {
        let registry = BackendRegistry::default();
        let batch = SolveBatch::new(&registry);
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
        assert!(batch.run().is_empty());
    }

    #[test]
    fn outcomes_come_back_in_input_order() {
        let registry = BackendRegistry::default();
        let sat = generators::example6_sat();
        let unsat = generators::example7_unsat();
        let outcomes = SolveBatch::new(&registry)
            .job("cdcl", SolveRequest::new(&sat))
            .job("dpll", SolveRequest::new(&unsat))
            .job("two-sat", SolveRequest::new(&sat))
            .run();
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].as_ref().unwrap().verdict.is_sat());
        assert!(outcomes[1].as_ref().unwrap().verdict.is_unsat());
        assert!(outcomes[2].as_ref().unwrap().verdict.is_sat());
    }

    #[test]
    fn unknown_backend_errors_are_per_job() {
        let registry = BackendRegistry::default();
        let f = generators::example6_sat();
        let outcomes = SolveBatch::new(&registry)
            .job("minisat", SolveRequest::new(&f))
            .job("cdcl", SolveRequest::new(&f))
            .run();
        assert!(outcomes[0].is_err());
        assert!(outcomes[1].as_ref().unwrap().verdict.is_sat());
    }

    #[test]
    fn spent_wall_pool_starves_jobs_without_hanging() {
        let registry = BackendRegistry::default();
        let hard = generators::pigeonhole(6, 5);
        let jobs: Vec<_> = (0..6).map(|_| SolveRequest::new(&hard)).collect();
        let mut batch = SolveBatch::new(&registry)
            .shared_budget(Budget::unlimited().with_wall_time(Duration::ZERO))
            .workers(3);
        for request in jobs {
            batch = batch.job("cdcl", request);
        }
        for outcome in batch.run() {
            let outcome = outcome.unwrap();
            assert_eq!(
                outcome.verdict.exhausted_resource(),
                Some(ExhaustedResource::WallClock)
            );
            assert_eq!(outcome.exhausted, Some(ExhaustedResource::WallClock));
        }
    }

    #[test]
    fn shared_check_pool_is_charged_across_jobs() {
        let registry = BackendRegistry::default();
        let f = generators::example7_unsat();
        // Each nbl-symbolic verdict costs exactly 1 check; a pool of 2 admits
        // two jobs and starves the rest.
        let outcomes = SolveBatch::new(&registry)
            .shared_budget(Budget::unlimited().with_max_checks(2))
            .workers(1)
            .job("nbl-symbolic", SolveRequest::new(&f))
            .job("nbl-symbolic", SolveRequest::new(&f))
            .job("nbl-symbolic", SolveRequest::new(&f))
            .run();
        let verdicts: Vec<_> = outcomes.into_iter().map(|o| o.unwrap().verdict).collect();
        assert_eq!(verdicts[0], SolveVerdict::Unsatisfiable);
        assert_eq!(verdicts[1], SolveVerdict::Unsatisfiable);
        assert_eq!(
            verdicts[2].exhausted_resource(),
            Some(ExhaustedResource::CoprocessorChecks)
        );
    }

    #[test]
    fn single_worker_matches_sequential_solves() {
        let registry = BackendRegistry::default();
        let battery = vec![
            generators::example6_sat(),
            generators::example7_unsat(),
            generators::section4_sat_instance(),
            generators::pigeonhole(3, 2),
        ];
        let mut batch = SolveBatch::new(&registry).workers(1);
        for formula in &battery {
            batch = batch.job("cdcl", SolveRequest::new(formula).seed(7));
        }
        let batched = batch.run();
        for (formula, outcome) in battery.iter().zip(batched) {
            let sequential = registry
                .solve("cdcl", &SolveRequest::new(formula).seed(7))
                .unwrap();
            assert_eq!(outcome.unwrap().verdict, sequential.verdict);
        }
    }
}
