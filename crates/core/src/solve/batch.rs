//! Batched solving: many requests, one shared budget, a bounded worker pool.
//!
//! The single-request front door ([`BackendRegistry::solve`]) answers one
//! [`SolveRequest`] at a time. Production front ends rarely have one: they
//! have a *queue* — an ATPG run emitting one miter per fault, an equivalence
//! check per output cone, a portfolio of random instances — and a single
//! resource envelope for the whole queue. [`SolveBatch`] is that entry point:
//! push jobs (backend name + request), set the shared [`Budget`] and the
//! worker count, and [`SolveBatch::run`] fans the jobs out across a bounded
//! pool of OS threads, charges every job against one
//! [`SharedBudget`](crate::SharedBudget), and returns per-request outcomes in
//! input order. Jobs that start after the pool is spent are answered
//! `Unknown(BudgetExhausted)` immediately — the batch never hangs on an
//! empty pool. Under the hood the batch is a submit-all-then-wait wrapper
//! over the streaming [`SolveService`], so both front ends share one
//! scheduling code path.

use crate::budget::Budget;
use crate::error::Result;
use crate::solve::outcome::SolveOutcome;
use crate::solve::registry::BackendRegistry;
use crate::solve::request::SolveRequest;
use crate::solve::service::{JobHandle, JobPriority, SolveService};
use cnf::CnfFormula;
use std::collections::HashMap;
use std::fmt;
use std::num::NonZeroUsize;
use std::sync::Arc;
use std::thread;

/// One job of a batch: a backend name plus the request it should answer.
struct BatchJob<'f> {
    backend: String,
    request: SolveRequest<'f>,
}

impl fmt::Debug for BatchJob<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BatchJob")
            .field("backend", &self.backend)
            .field("request", &self.request)
            .finish()
    }
}

/// A batch of solve jobs sharing one resource [`Budget`] and a bounded
/// worker pool.
///
/// Built fluently against a [`BackendRegistry`]; every worker creates a fresh
/// backend instance per job (backends are stateful), so jobs never share
/// solver state — only the budget pool.
///
/// Outcomes come back in input order regardless of completion order. With a
/// single worker — or without budget contention — each outcome is bit-equal
/// to what the sequential [`BackendRegistry::solve`] would have produced for
/// the same request, because each job still runs on exactly one backend with
/// the request's own deterministic seed. Under contention the *set* of jobs
/// answered `Unknown(BudgetExhausted)` depends on scheduling; the answered
/// ones remain correct.
///
/// ```
/// use cnf::cnf_formula;
/// use nbl_sat_core::{BackendRegistry, Budget, SolveBatch, SolveRequest};
///
/// let registry = BackendRegistry::default();
/// let sat = cnf_formula![[1, 2], [-1, -2]];
/// let unsat = cnf_formula![[1], [-1]];
/// let outcomes = SolveBatch::new(&registry)
///     .job("cdcl", SolveRequest::new(&sat))
///     .job("parallel-portfolio", SolveRequest::new(&unsat))
///     .run();
/// assert!(outcomes[0].as_ref().unwrap().verdict.is_sat());
/// assert!(outcomes[1].as_ref().unwrap().verdict.is_unsat());
/// ```
pub struct SolveBatch<'f, 'r> {
    registry: &'r BackendRegistry,
    jobs: Vec<BatchJob<'f>>,
    shared: Budget,
    workers: usize,
}

impl fmt::Debug for SolveBatch<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolveBatch")
            .field("jobs", &self.jobs.len())
            .field("shared", &self.shared)
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl<'f, 'r> SolveBatch<'f, 'r> {
    /// Creates an empty batch against `registry` with an unlimited shared
    /// budget and one worker per available CPU.
    pub fn new(registry: &'r BackendRegistry) -> Self {
        let workers = thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        SolveBatch {
            registry,
            jobs: Vec::new(),
            shared: Budget::unlimited(),
            workers,
        }
    }

    /// Sets the shared budget the whole batch is charged against. Each job's
    /// own request budget still applies on top (the tighter limit wins,
    /// resource by resource).
    pub fn shared_budget(mut self, budget: Budget) -> Self {
        self.shared = budget;
        self
    }

    /// Sets the worker-pool size (clamped to at least 1; never more workers
    /// than jobs are spawned).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Appends a job: solve `request` with the backend registered under
    /// `backend`. Unknown names surface as a per-job `Err` when the batch
    /// runs.
    pub fn job(mut self, backend: &str, request: SolveRequest<'f>) -> Self {
        self.jobs.push(BatchJob {
            backend: backend.to_string(),
            request,
        });
        self
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Returns `true` if no job is queued.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The worker count [`SolveBatch::run`] will actually use: the configured
    /// pool size, clamped to the number of queued jobs (spawning more workers
    /// than jobs would only burn threads that never claim anything).
    pub fn effective_workers(&self) -> usize {
        self.workers.clamp(1, self.jobs.len().max(1))
    }

    /// Runs the batch and returns one result per job, in input order.
    ///
    /// The batch is a submit-all-then-wait wrapper over [`SolveService`] —
    /// the one scheduling code path shared with the streaming front end: a
    /// throwaway service is started with [`SolveBatch::effective_workers`]
    /// workers and the batch's shared budget, every job is submitted at the
    /// default priority (so FIFO order equals input order), and the handles
    /// are awaited in input order. Completion order is scheduling-dependent
    /// while the returned order is not. A job observed *after* the shared
    /// budget is spent is answered `Unknown(BudgetExhausted)` with
    /// [`SolveOutcome::exhausted`] set, without creating a backend — this is
    /// what bounds the batch's latency once the pool runs dry. Per-job `Err`s
    /// (unknown backend, instance too large for the brute-force oracle, a
    /// panicking backend, …) are isolated to their slot and never poison
    /// sibling jobs.
    pub fn run(self) -> Vec<Result<SolveOutcome>> {
        if self.jobs.is_empty() {
            return Vec::new();
        }
        let service = SolveService::builder(self.registry)
            .workers(self.effective_workers())
            .shared_budget(self.shared)
            .start();
        // Batch jobs routinely share one borrowed formula (one instance, many
        // backends); clone it into the service once per distinct formula, not
        // once per job.
        let mut owned: HashMap<*const CnfFormula, Arc<CnfFormula>> = HashMap::new();
        let handles: Vec<JobHandle> = self
            .jobs
            .iter()
            .map(|job| {
                let formula = job.request.formula();
                let shared = owned
                    .entry(std::ptr::from_ref(formula))
                    .or_insert_with(|| Arc::new(formula.clone()));
                service.submit_arc(
                    &job.backend,
                    Arc::clone(shared),
                    &job.request,
                    JobPriority::Normal,
                )
            })
            .collect();
        let outcomes = handles.into_iter().map(JobHandle::wait).collect();
        service.shutdown();
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::ExhaustedResource;
    use crate::solve::outcome::SolveVerdict;
    use cnf::generators;
    use std::time::Duration;

    #[test]
    fn empty_batch_is_a_no_op() {
        let registry = BackendRegistry::default();
        let batch = SolveBatch::new(&registry);
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
        assert!(batch.run().is_empty());
    }

    #[test]
    fn outcomes_come_back_in_input_order() {
        let registry = BackendRegistry::default();
        let sat = generators::example6_sat();
        let unsat = generators::example7_unsat();
        let outcomes = SolveBatch::new(&registry)
            .job("cdcl", SolveRequest::new(&sat))
            .job("dpll", SolveRequest::new(&unsat))
            .job("two-sat", SolveRequest::new(&sat))
            .run();
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].as_ref().unwrap().verdict.is_sat());
        assert!(outcomes[1].as_ref().unwrap().verdict.is_unsat());
        assert!(outcomes[2].as_ref().unwrap().verdict.is_sat());
    }

    #[test]
    fn unknown_backend_errors_are_per_job() {
        let registry = BackendRegistry::default();
        let f = generators::example6_sat();
        let outcomes = SolveBatch::new(&registry)
            .job("minisat", SolveRequest::new(&f))
            .job("cdcl", SolveRequest::new(&f))
            .run();
        assert!(outcomes[0].is_err());
        assert!(outcomes[1].as_ref().unwrap().verdict.is_sat());
    }

    #[test]
    fn spent_wall_pool_starves_jobs_without_hanging() {
        let registry = BackendRegistry::default();
        let hard = generators::pigeonhole(6, 5);
        let jobs: Vec<_> = (0..6).map(|_| SolveRequest::new(&hard)).collect();
        let mut batch = SolveBatch::new(&registry)
            .shared_budget(Budget::unlimited().with_wall_time(Duration::ZERO))
            .workers(3);
        for request in jobs {
            batch = batch.job("cdcl", request);
        }
        for outcome in batch.run() {
            let outcome = outcome.unwrap();
            assert_eq!(
                outcome.verdict.exhausted_resource(),
                Some(ExhaustedResource::WallClock)
            );
            assert_eq!(outcome.exhausted, Some(ExhaustedResource::WallClock));
        }
    }

    #[test]
    fn shared_check_pool_is_charged_across_jobs() {
        let registry = BackendRegistry::default();
        // Irreducible under preprocessing (no units, no pure literals), so
        // every job actually reaches the backend.
        let f = generators::section4_unsat_instance();
        // Each nbl-symbolic verdict costs exactly 1 check; a pool of 2 admits
        // two jobs and starves the rest.
        let outcomes = SolveBatch::new(&registry)
            .shared_budget(Budget::unlimited().with_max_checks(2))
            .workers(1)
            .job("nbl-symbolic", SolveRequest::new(&f))
            .job("nbl-symbolic", SolveRequest::new(&f))
            .job("nbl-symbolic", SolveRequest::new(&f))
            .run();
        let verdicts: Vec<_> = outcomes.into_iter().map(|o| o.unwrap().verdict).collect();
        assert_eq!(verdicts[0], SolveVerdict::Unsatisfiable);
        assert_eq!(verdicts[1], SolveVerdict::Unsatisfiable);
        assert_eq!(
            verdicts[2].exhausted_resource(),
            Some(ExhaustedResource::CoprocessorChecks)
        );
    }

    #[test]
    fn worker_count_is_clamped_to_job_count() {
        let registry = BackendRegistry::default();
        let f = generators::example6_sat();
        let batch = SolveBatch::new(&registry)
            .workers(64)
            .job("cdcl", SolveRequest::new(&f))
            .job("dpll", SolveRequest::new(&f));
        assert_eq!(batch.effective_workers(), 2);
        let single = SolveBatch::new(&registry).workers(0);
        assert_eq!(single.effective_workers(), 1);
        // And the clamped pool still answers correctly.
        let outcomes = batch.run();
        assert!(outcomes
            .iter()
            .all(|o| o.as_ref().unwrap().verdict.is_sat()));
    }

    #[test]
    fn panicking_backend_is_a_per_job_error() {
        use crate::solve::backend::SatBackend;

        #[derive(Debug)]
        struct Panicker;
        impl SatBackend for Panicker {
            fn name(&self) -> &'static str {
                "panicker"
            }
            fn is_complete(&self) -> bool {
                true
            }
            fn solve(&mut self, _request: &SolveRequest<'_>) -> Result<SolveOutcome> {
                panic!("deliberate mock panic");
            }
        }

        let mut registry = BackendRegistry::default();
        registry.register("panicker", || Box::new(Panicker));
        let f = generators::example6_sat();
        // Regression: a panicking worker used to unwind through the batch
        // join and poison every job. It must now surface as that job's own
        // error while the siblings keep their outcomes.
        let outcomes = SolveBatch::new(&registry)
            .workers(2)
            .job("panicker", SolveRequest::new(&f))
            .job("cdcl", SolveRequest::new(&f))
            .job("panicker", SolveRequest::new(&f))
            .job("dpll", SolveRequest::new(&f))
            .run();
        assert!(matches!(
            outcomes[0].as_ref().unwrap_err(),
            crate::error::NblSatError::BackendPanicked { backend, message }
                if backend == "panicker" && message.contains("deliberate")
        ));
        assert!(outcomes[1].as_ref().unwrap().verdict.is_sat());
        assert!(outcomes[2].is_err());
        assert!(outcomes[3].as_ref().unwrap().verdict.is_sat());
    }

    #[test]
    fn single_worker_matches_sequential_solves() {
        let registry = BackendRegistry::default();
        let battery = vec![
            generators::example6_sat(),
            generators::example7_unsat(),
            generators::section4_sat_instance(),
            generators::pigeonhole(3, 2),
        ];
        let mut batch = SolveBatch::new(&registry).workers(1);
        for formula in &battery {
            batch = batch.job("cdcl", SolveRequest::new(formula).seed(7));
        }
        let batched = batch.run();
        for (formula, outcome) in battery.iter().zip(batched) {
            let sequential = registry
                .solve("cdcl", &SolveRequest::new(formula).seed(7))
                .unwrap();
            assert_eq!(outcome.unwrap().verdict, sequential.verdict);
        }
    }
}
