//! The exact (infinite-sample) symbolic engine.

use crate::budget::BudgetMeter;
use crate::engine::{MeanEstimate, NblEngine};
use crate::error::{NblSatError, Result};
use crate::transform::NblSatInstance;
use cnf::{Assignment, PartialAssignment, Variable};
use nbl_logic::MomentModel;

/// How many enumerated assignments the budgeted estimate processes between
/// wall-clock deadline polls.
const DEADLINE_POLL_MASKS: u64 = 1024;

/// Exact evaluation of ⟨S_N⟩ using the orthogonality rules of the noise
/// algebra.
///
/// Expanding `τ_N · Σ_N` and taking expectations, every cross term between
/// different minterms vanishes (some basis source appears with an odd power),
/// and each valid minterm `a` that satisfies the formula survives with weight
///
/// ```text
/// w(a) = Π_j |{literals of clause j satisfied by a}| · Var^{n·m}
/// ```
///
/// because clause `j`'s superposition Z_j contains `a`'s noise minterm once
/// per satisfied literal. The engine therefore computes
/// `⟨S_N⟩ = Var^{n·m} · Σ_{a ⊨ S, a ∈ τ-subspace} Π_j (#literals of c_j satisfied by a)`
/// by direct enumeration of the (bound) assignment space. This is the ideal
/// infinite-sample output of the analog hardware, free of estimation noise.
///
/// The enumeration is exponential in the number of *free* variables — the
/// same fundamental scaling the paper accepts for its software simulation —
/// and is guarded by a configurable variable limit.
#[derive(Debug, Clone, Copy)]
pub struct SymbolicEngine {
    moment_model: MomentModel,
    max_free_vars: usize,
}

impl Default for SymbolicEngine {
    fn default() -> Self {
        SymbolicEngine::new()
    }
}

impl SymbolicEngine {
    /// Creates a symbolic engine with the paper's uniform [-0.5, 0.5] carriers
    /// and a 26-free-variable enumeration limit.
    pub fn new() -> Self {
        SymbolicEngine {
            moment_model: MomentModel::uniform_half(),
            max_free_vars: 26,
        }
    }

    /// Uses a different carrier moment model (changes only the `Var^{nm}`
    /// scale factor, not the SAT/UNSAT sign).
    pub fn with_moment_model(mut self, model: MomentModel) -> Self {
        self.moment_model = model;
        self
    }

    /// Overrides the free-variable enumeration limit.
    pub fn with_max_free_vars(mut self, max_free_vars: usize) -> Self {
        self.max_free_vars = max_free_vars;
        self
    }

    /// The per-minterm self-correlation scale `Var^{n·m}`.
    pub fn minterm_weight(&self, instance: &NblSatInstance) -> f64 {
        self.moment_model.variance().powi(instance.nm() as i32)
    }

    /// Counts satisfying assignments inside the bound τ subspace, both
    /// unweighted (`K`) and weighted by the per-clause literal multiplicity
    /// (the quantity that actually scales ⟨S_N⟩).
    ///
    /// # Errors
    ///
    /// Returns [`NblSatError::InstanceTooLarge`] if the number of free
    /// variables exceeds the engine's enumeration limit, and
    /// [`NblSatError::BindingOutOfRange`] for mismatched bindings.
    pub fn count_models(
        &self,
        instance: &NblSatInstance,
        bindings: &PartialAssignment,
    ) -> Result<(u64, f64)> {
        self.count_models_impl(instance, bindings, None)
    }

    fn count_models_impl(
        &self,
        instance: &NblSatInstance,
        bindings: &PartialAssignment,
        meter: Option<&BudgetMeter>,
    ) -> Result<(u64, f64)> {
        instance.validate_bindings(bindings)?;
        let n = instance.num_vars();
        let free_vars: Vec<Variable> = (0..n)
            .map(Variable::new)
            .filter(|v| bindings.value(*v).is_none())
            .collect();
        if free_vars.len() > self.max_free_vars {
            return Err(NblSatError::InstanceTooLarge {
                limit: format!("{} free variables", self.max_free_vars),
                actual: free_vars.len(),
            });
        }
        let formula = instance.formula();
        let mut count = 0u64;
        let mut weighted = 0.0f64;
        let num_combinations = 1u64 << free_vars.len();
        let mut assignment = bindings.to_complete(false);
        for mask in 0..num_combinations {
            if let Some(meter) = meter {
                if mask.is_multiple_of(DEADLINE_POLL_MASKS) {
                    meter.ensure_time()?;
                }
            }
            for (bit, var) in free_vars.iter().enumerate() {
                assignment.set(*var, (mask >> bit) & 1 == 1);
            }
            if satisfies_with_weight(formula, &assignment) {
                count += 1;
                weighted += clause_multiplicity_weight(formula, &assignment);
            }
        }
        Ok((count, weighted))
    }
}

/// Returns `true` if the assignment satisfies the formula.
fn satisfies_with_weight(formula: &cnf::CnfFormula, assignment: &Assignment) -> bool {
    formula.evaluate(assignment)
}

/// `Π_j (#literals of clause j satisfied by the assignment)`.
fn clause_multiplicity_weight(formula: &cnf::CnfFormula, assignment: &Assignment) -> f64 {
    formula
        .iter()
        .map(|clause| {
            clause
                .iter()
                .filter(|lit| assignment.satisfies(**lit))
                .count() as f64
        })
        .product()
}

impl NblEngine for SymbolicEngine {
    fn estimate(
        &mut self,
        instance: &NblSatInstance,
        bindings: &PartialAssignment,
    ) -> Result<MeanEstimate> {
        let (_count, weighted) = self.count_models(instance, bindings)?;
        Ok(MeanEstimate::exact(self.scaled_mean(instance, weighted)))
    }

    /// Budgeted variant: polls the wall-clock deadline inside the assignment
    /// enumeration so a tight budget interrupts the exponential scan. Exact
    /// engines draw no noise samples, so only the deadline applies.
    fn estimate_budgeted(
        &mut self,
        instance: &NblSatInstance,
        bindings: &PartialAssignment,
        meter: &mut BudgetMeter,
    ) -> Result<MeanEstimate> {
        meter.ensure_time()?;
        let (_count, weighted) = self.count_models_impl(instance, bindings, Some(meter))?;
        Ok(MeanEstimate::exact(self.scaled_mean(instance, weighted)))
    }

    fn name(&self) -> &'static str {
        "symbolic"
    }
}

impl SymbolicEngine {
    /// Converts the weighted model count into ⟨S_N⟩.
    fn scaled_mean(&self, instance: &NblSatInstance, weighted: f64) -> f64 {
        let mean = weighted * self.minterm_weight(instance);
        // `Var^{nm}` underflows to zero once n·m exceeds a few hundred, which
        // would flip a satisfiable verdict to UNSAT even though the exact
        // algebra says the mean is strictly positive. The verdict carries the
        // *sign* of the weighted model count, so preserve it through the
        // underflow with the smallest positive value.
        if weighted > 0.0 && mean == 0.0 {
            f64::MIN_POSITIVE
        } else {
            mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::cnf_formula;
    use cnf::generators;

    fn instance(f: &cnf::CnfFormula) -> NblSatInstance {
        NblSatInstance::new(f).unwrap()
    }

    #[test]
    fn example6_mean_is_two_satisfying_minterms() {
        // (x1+x2)(¬x1+¬x2): two models, each satisfying exactly one literal
        // per clause, so ⟨S_N⟩ = 2 · (1/12)^4.
        let inst = instance(&generators::example6_sat());
        let mut engine = SymbolicEngine::new();
        let est = engine.estimate(&inst, &inst.empty_bindings()).unwrap();
        let expected = 2.0 * (1.0f64 / 12.0).powi(4);
        assert!((est.mean - expected).abs() < 1e-15);
        assert!(est.exact);
        assert!(est.is_positive(3.0));
    }

    #[test]
    fn example7_mean_is_zero() {
        let inst = instance(&generators::example7_unsat());
        let mut engine = SymbolicEngine::new();
        let est = engine.estimate(&inst, &inst.empty_bindings()).unwrap();
        assert_eq!(est.mean, 0.0);
        assert!(!est.is_positive(3.0));
    }

    #[test]
    fn section4_instances() {
        let mut engine = SymbolicEngine::new();
        let sat = instance(&generators::section4_sat_instance());
        let unsat = instance(&generators::section4_unsat_instance());
        let sat_mean = engine.estimate(&sat, &sat.empty_bindings()).unwrap().mean;
        let unsat_mean = engine
            .estimate(&unsat, &unsat.empty_bindings())
            .unwrap()
            .mean;
        assert!(sat_mean > 0.0);
        assert_eq!(unsat_mean, 0.0);
        // The single model <1,1> satisfies both literals of the two (x1+x2)
        // clauses and one literal of each remaining clause: weight 2·2·1·1 = 4.
        let expected = 4.0 * (1.0f64 / 12.0).powi(8);
        assert!((sat_mean - expected).abs() < 1e-18);
    }

    #[test]
    fn verdict_matches_brute_force_on_random_instances() {
        use cnf::generators::RandomKSatConfig;
        let mut engine = SymbolicEngine::new();
        for seed in 0..40 {
            let f =
                generators::random_ksat(&RandomKSatConfig::new(6, 26, 3).with_seed(seed)).unwrap();
            let inst = instance(&f);
            let est = engine.estimate(&inst, &inst.empty_bindings()).unwrap();
            let sat = f.count_satisfying_assignments() > 0;
            assert_eq!(est.mean > 0.0, sat, "seed {seed}");
        }
    }

    #[test]
    fn bindings_restrict_the_count() {
        // Example 8: S = (x1+x2)(¬x1+¬x2); binding x1=1 leaves one model.
        let inst = instance(&generators::example6_sat());
        let engine = SymbolicEngine::new();
        let mut bindings = inst.empty_bindings();
        bindings.assign(Variable::new(0), true);
        let (count, weighted) = engine.count_models(&inst, &bindings).unwrap();
        assert_eq!(count, 1);
        assert_eq!(weighted, 1.0);
        bindings.assign(Variable::new(1), true);
        let (count, _) = engine.count_models(&inst, &bindings).unwrap();
        assert_eq!(count, 0);
    }

    #[test]
    fn weighted_count_reflects_literal_multiplicity() {
        // Single clause (x1 + x2): model (1,1) satisfies both literals.
        let inst = instance(&cnf_formula![[1, 2]]);
        let engine = SymbolicEngine::new();
        let (count, weighted) = engine.count_models(&inst, &inst.empty_bindings()).unwrap();
        assert_eq!(count, 3);
        assert_eq!(weighted, 1.0 + 1.0 + 2.0);
    }

    #[test]
    fn size_limit_is_enforced() {
        let f = generators::random_ksat(
            &cnf::generators::RandomKSatConfig::new(30, 10, 3).with_seed(0),
        )
        .unwrap();
        let inst = instance(&f);
        let mut engine = SymbolicEngine::new().with_max_free_vars(10);
        assert!(matches!(
            engine.estimate(&inst, &inst.empty_bindings()),
            Err(NblSatError::InstanceTooLarge { .. })
        ));
    }

    #[test]
    fn moment_model_scales_but_does_not_flip_sign() {
        let inst = instance(&generators::example6_sat());
        let uniform = SymbolicEngine::new().estimate_helper(&inst);
        let rtw = SymbolicEngine::new()
            .with_moment_model(MomentModel::unit_rtw())
            .estimate_helper(&inst);
        assert!(uniform > 0.0 && rtw > 0.0);
        assert!(rtw > uniform); // RTW variance 1 ≫ 1/12
        assert_eq!(SymbolicEngine::new().name(), "symbolic");
    }

    impl SymbolicEngine {
        fn estimate_helper(mut self, inst: &NblSatInstance) -> f64 {
            self.estimate(inst, &inst.empty_bindings()).unwrap().mean
        }
    }

    #[test]
    fn budgeted_estimate_honours_the_deadline_and_matches_plain() {
        use crate::budget::{Budget, BudgetMeter, ExhaustedResource};
        use std::time::Duration;
        let inst = instance(&generators::section4_sat_instance());
        let mut engine = SymbolicEngine::new();
        let plain = engine.estimate(&inst, &inst.empty_bindings()).unwrap();
        let mut meter = BudgetMeter::start(&Budget::unlimited());
        let budgeted = engine
            .estimate_budgeted(&inst, &inst.empty_bindings(), &mut meter)
            .unwrap();
        assert_eq!(plain, budgeted);
        let mut expired = BudgetMeter::start(&Budget::unlimited().with_wall_time(Duration::ZERO));
        assert!(matches!(
            engine
                .estimate_budgeted(&inst, &inst.empty_bindings(), &mut expired)
                .unwrap_err(),
            NblSatError::BudgetExhausted {
                resource: ExhaustedResource::WallClock
            }
        ));
    }

    #[test]
    fn verdict_sign_survives_var_power_underflow() {
        // n·m large enough that Var^{nm} = (1/12)^{375} underflows f64 to 0,
        // on an instance that is trivially satisfiable (every clause is the
        // same tautology-free satisfiable clause). The exact mean must still
        // be reported strictly positive so Algorithm 1 answers SAT.
        let mut f = cnf::CnfFormula::new(15);
        for _ in 0..25 {
            f.add_clause([
                Variable::new(0).positive(),
                Variable::new(1).positive(),
                Variable::new(2).positive(),
            ]);
        }
        let inst = instance(&f);
        assert!(inst.nm() >= 300);
        let mut engine = SymbolicEngine::new();
        let estimate = engine.estimate(&inst, &inst.empty_bindings()).unwrap();
        assert!(
            estimate.mean > 0.0,
            "satisfiable instance must keep a positive exact mean even when Var^nm underflows"
        );
        assert!(estimate.is_positive(3.0));
    }
}
