//! The §III.F scaling / SNR model and its empirical measurement.

use crate::config::EngineConfig;
use crate::engine::NblEngine;
use crate::error::Result;
use crate::sampled::SampledEngine;
use crate::transform::NblSatInstance;
use nbl_noise::RunningStats;
use std::fmt;

/// The analytic signal-to-noise model of §III.F.
///
/// For 3-SAT instances with `n` variables and `m` clauses, uniform
/// [-0.5, 0.5] carriers and `N` noise samples, the paper derives
///
/// * single-minterm mean `μ̂₁ = (1/12)^{nm}`,
/// * standard deviation of the mean
///   `σ̂ ≈ (1/√(N−1)) · (1/12)^{nm} · 2^{nm}` (the `O(2^{nm})` independent
///   products add their variances), and therefore
/// * `SNR = μ̂₁ / (3·σ̂₀) = √(N−1) / (3·2^{nm})`, multiplied by `K` when the
///   instance has `K` satisfying minterms.
///
/// [`SnrModel`] evaluates those formulas and also measures the corresponding
/// empirical quantities with the [`SampledEngine`], so the two can be compared
/// side by side (experiment E2).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SnrModel;

impl SnrModel {
    /// Creates the model.
    pub fn new() -> Self {
        SnrModel
    }

    /// `μ̂_K = K · (1/12)^{nm}`: the predicted mean with `K` satisfying minterms.
    pub fn predicted_mean(&self, n: usize, m: usize, k: u64) -> f64 {
        k as f64 * (1.0f64 / 12.0).powi((n * m) as i32)
    }

    /// `σ̂ ≈ (1/√(N−1)) · (1/12)^{nm} · 2^{nm}`: the predicted standard
    /// deviation of the running mean after `samples` noise samples.
    pub fn predicted_std_of_mean(&self, n: usize, m: usize, samples: u64) -> f64 {
        if samples < 2 {
            return f64::INFINITY;
        }
        (1.0 / ((samples - 1) as f64).sqrt())
            * (1.0f64 / 12.0).powi((n * m) as i32)
            * 2.0f64.powi((n * m) as i32)
    }

    /// `SNR = K·√(N−1) / (3·2^{nm})`.
    pub fn predicted_snr(&self, n: usize, m: usize, samples: u64, k: u64) -> f64 {
        if samples < 2 {
            return 0.0;
        }
        k as f64 * ((samples - 1) as f64).sqrt() / (3.0 * 2.0f64.powi((n * m) as i32))
    }

    /// The number of samples needed to reach a target SNR for a single
    /// satisfying minterm: `N ≈ (3·target·2^{nm})² + 1`.
    pub fn samples_for_snr(&self, n: usize, m: usize, target_snr: f64) -> u64 {
        let root = 3.0 * target_snr * 2.0f64.powi((n * m) as i32);
        (root * root).ceil() as u64 + 1
    }

    /// Measures the empirical counterpart of the model on a pair of instances
    /// (one satisfiable with `K` known minterms, one unsatisfiable) by running
    /// `trials` independent sampled estimates of `samples` each and forming
    /// the paper's ratio `(μ̂₁ − 3σ̂₁) / (μ̂₀ + 3σ̂₀)`.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn measure(
        &self,
        sat_instance: &NblSatInstance,
        unsat_instance: &NblSatInstance,
        samples: u64,
        trials: u32,
        base_seed: u64,
    ) -> Result<SnrMeasurement> {
        let mut sat_means = RunningStats::new();
        let mut unsat_means = RunningStats::new();
        for t in 0..trials {
            let config = EngineConfig::new()
                .with_seed(base_seed + t as u64)
                .with_max_samples(samples)
                .with_check_interval(samples); // no early stop
            let mut engine = SampledEngine::new(config);
            sat_means.push(
                engine
                    .estimate(sat_instance, &sat_instance.empty_bindings())?
                    .mean,
            );
            unsat_means.push(
                engine
                    .estimate(unsat_instance, &unsat_instance.empty_bindings())?
                    .mean,
            );
        }
        Ok(SnrMeasurement {
            samples,
            trials,
            sat_mean: sat_means.mean(),
            sat_std: sat_means.std_dev(),
            unsat_mean: unsat_means.mean(),
            unsat_std: unsat_means.std_dev(),
        })
    }
}

/// Empirical SNR measurement produced by [`SnrModel::measure`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnrMeasurement {
    /// Noise samples per trial.
    pub samples: u64,
    /// Number of independent trials.
    pub trials: u32,
    /// Mean of the per-trial S_N means on the satisfiable instance.
    pub sat_mean: f64,
    /// Standard deviation of those means.
    pub sat_std: f64,
    /// Mean of the per-trial S_N means on the unsatisfiable instance.
    pub unsat_mean: f64,
    /// Standard deviation of those means.
    pub unsat_std: f64,
}

impl SnrMeasurement {
    /// The paper's SNR figure of merit `(μ̂₁ − 3σ̂₁) / (μ̂₀ + 3σ̂₀)`, using the
    /// absolute UNSAT mean so that a slightly negative estimate does not
    /// produce a negative denominator.
    pub fn snr(&self) -> f64 {
        let denom = self.unsat_mean.abs() + 3.0 * self.unsat_std;
        if denom == 0.0 {
            f64::INFINITY
        } else {
            (self.sat_mean - 3.0 * self.sat_std) / denom
        }
    }

    /// A simpler discrimination metric: the gap between the SAT and UNSAT
    /// means in units of the larger standard deviation.
    pub fn separation_sigmas(&self) -> f64 {
        let sigma = self.sat_std.max(self.unsat_std);
        if sigma == 0.0 {
            f64::INFINITY
        } else {
            (self.sat_mean - self.unsat_mean) / sigma
        }
    }
}

impl fmt::Display for SnrMeasurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N={} trials={} sat={:.3e}±{:.2e} unsat={:.3e}±{:.2e} snr={:.3}",
            self.samples,
            self.trials,
            self.sat_mean,
            self.sat_std,
            self.unsat_mean,
            self.unsat_std,
            self.snr()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::generators;

    #[test]
    fn predicted_mean_matches_symbolic_single_minterm_weight() {
        let model = SnrModel::new();
        // n=2, m=4: (1/12)^8
        let expected = (1.0f64 / 12.0).powi(8);
        assert!((model.predicted_mean(2, 4, 1) - expected).abs() < 1e-24);
        assert!((model.predicted_mean(2, 4, 3) - 3.0 * expected).abs() < 1e-24);
    }

    #[test]
    fn snr_grows_with_sqrt_samples_and_shrinks_exponentially_with_nm() {
        let model = SnrModel::new();
        let a = model.predicted_snr(2, 2, 10_000, 1);
        let b = model.predicted_snr(2, 2, 40_000, 1);
        assert!((b / a - 2.0).abs() < 0.01, "quadrupling N doubles SNR");
        let small = model.predicted_snr(2, 2, 10_000, 1);
        let large = model.predicted_snr(3, 3, 10_000, 1);
        assert!(
            (small / large - 2.0f64.powi(5)).abs() < 1e-6,
            "nm 4 -> 9 costs a factor 2^5"
        );
        assert_eq!(model.predicted_snr(2, 2, 1, 1), 0.0);
        assert_eq!(model.predicted_std_of_mean(2, 2, 1), f64::INFINITY);
    }

    #[test]
    fn samples_for_snr_is_the_inverse_of_predicted_snr() {
        let model = SnrModel::new();
        for (n, m) in [(2usize, 2usize), (2, 3), (3, 3)] {
            let needed = model.samples_for_snr(n, m, 1.0);
            let achieved = model.predicted_snr(n, m, needed, 1);
            assert!(achieved >= 1.0, "n={n} m={m}: {achieved}");
            assert!(model.predicted_snr(n, m, needed / 2, 1) < 1.0);
        }
    }

    #[test]
    fn measured_snr_discriminates_sat_from_unsat_for_matched_nm() {
        // Matched pair with n = 1, m = 2 (nm = 2): SAT = (x1)(x1),
        // UNSAT = (x1)(¬x1). The predicted single-minterm mean is
        // (1/12)² ≈ 6.9·10⁻³ and the predicted SNR at 20k samples is
        // √N/(3·2²) ≈ 11.8, so the measured separation must be large.
        let sat = NblSatInstance::new(&cnf::cnf_formula![[1], [1]]).unwrap();
        let unsat = NblSatInstance::new(&generators::example7_unsat()).unwrap();
        let model = SnrModel::new();
        let measurement = model.measure(&sat, &unsat, 20_000, 5, 101).unwrap();
        assert!(measurement.separation_sigmas() > 3.0, "{measurement}");
        assert!(measurement.sat_mean > 0.0);
        assert!(
            (measurement.sat_mean - model.predicted_mean(1, 2, 1)).abs()
                < 0.3 * model.predicted_mean(1, 2, 1),
            "{measurement}"
        );
        assert!(measurement.unsat_mean.abs() < measurement.sat_mean);
        assert!(measurement.to_string().contains("trials=5"));
    }

    #[test]
    fn snr_handles_degenerate_zero_denominator() {
        let m = SnrMeasurement {
            samples: 10,
            trials: 1,
            sat_mean: 1.0,
            sat_std: 0.0,
            unsat_mean: 0.0,
            unsat_std: 0.0,
        };
        assert_eq!(m.snr(), f64::INFINITY);
        assert_eq!(m.separation_sigmas(), f64::INFINITY);
    }
}
