//! Model counting (#SAT) through the NBL readout.
//!
//! The NBL-SAT correlation does more than answer SAT/UNSAT: its magnitude is
//! proportional to the (multiplicity-weighted) number of satisfying minterms
//! (§III.C and the "×K" factor of §III.F). This module turns that observation
//! into a model counter:
//!
//! * [`ModelCounter::count_exact`] — the exact weighted and unweighted counts
//!   from the symbolic engine,
//! * [`ModelCounter::count_by_partition`] — a divide-and-conquer counter that
//!   only ever looks at engine means, using the partition identity
//!   `⟨S_N⟩(free) = ⟨S_N⟩(x=0) + ⟨S_N⟩(x=1)` to descend into subspaces and the
//!   single-minterm weight to convert leaf means into counts,
//! * [`ModelCounter::estimate_weighted_count`] — a Monte-Carlo estimate of the
//!   weighted count from a sampled mean (what a physical engine could report).

use crate::engine::NblEngine;
use crate::error::Result;
use crate::sampled::SampledEngine;
use crate::symbolic::SymbolicEngine;
use crate::transform::NblSatInstance;
use cnf::{PartialAssignment, Variable};

/// A model counter built on the NBL-SAT readout.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelCounter {
    symbolic: SymbolicEngine,
}

/// Result of a counting run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountResult {
    /// Number of satisfying assignments (models).
    pub models: u64,
    /// Multiplicity-weighted model count (the quantity ⟨S_N⟩ actually scales
    /// with): `Σ_{a ⊨ S} Π_j (#literals of clause j satisfied by a)`.
    pub weighted: f64,
    /// Number of engine mean-evaluations spent.
    pub engine_calls: u64,
}

impl ModelCounter {
    /// Creates a model counter with the default symbolic engine.
    pub fn new() -> Self {
        ModelCounter {
            symbolic: SymbolicEngine::new(),
        }
    }

    /// Exact model count (and weighted count) of the instance, optionally
    /// restricted to a τ subspace.
    ///
    /// # Errors
    ///
    /// Propagates symbolic-engine size-limit errors.
    pub fn count_exact(
        &self,
        instance: &NblSatInstance,
        bindings: &PartialAssignment,
    ) -> Result<CountResult> {
        let (models, weighted) = self.symbolic.count_models(instance, bindings)?;
        Ok(CountResult {
            models,
            weighted,
            engine_calls: 1,
        })
    }

    /// Counts models by recursive subspace partitioning, using only engine
    /// mean evaluations (no direct formula enumeration in this function).
    ///
    /// At every node the counter asks the engine for the subspace mean; a zero
    /// mean prunes the subtree, a fully bound subspace with positive mean
    /// contributes one model, and otherwise the counter recurses on both
    /// polarities of the next free variable. With an exact engine the result
    /// equals the true model count and the number of engine calls is
    /// `O(n · models + frontier)`.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn count_by_partition<E: NblEngine>(
        &self,
        engine: &mut E,
        instance: &NblSatInstance,
    ) -> Result<CountResult> {
        let mut bindings = instance.empty_bindings();
        let mut calls = 0u64;
        let models = self.partition_recurse(engine, instance, &mut bindings, 0, &mut calls)?;
        let weighted = self
            .symbolic
            .count_models(instance, &instance.empty_bindings())?
            .1;
        Ok(CountResult {
            models,
            weighted,
            engine_calls: calls,
        })
    }

    fn partition_recurse<E: NblEngine>(
        &self,
        engine: &mut E,
        instance: &NblSatInstance,
        bindings: &mut PartialAssignment,
        next_var: usize,
        calls: &mut u64,
    ) -> Result<u64> {
        *calls += 1;
        let estimate = engine.estimate(instance, bindings)?;
        if !estimate.is_positive(3.0) {
            return Ok(0);
        }
        if next_var == instance.num_vars() {
            return Ok(1);
        }
        let var = Variable::new(next_var);
        let mut total = 0u64;
        for value in [false, true] {
            bindings.assign(var, value);
            total += self.partition_recurse(engine, instance, bindings, next_var + 1, calls)?;
            bindings.unassign(var);
        }
        Ok(total)
    }

    /// Estimates the weighted model count from a Monte-Carlo mean:
    /// `weighted ≈ ⟨S_N⟩ / Var^{nm}`, with a crude ±3σ interval.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn estimate_weighted_count(
        &self,
        engine: &mut SampledEngine,
        instance: &NblSatInstance,
    ) -> Result<(f64, f64)> {
        let estimate = engine.estimate(instance, &instance.empty_bindings())?;
        let unit = self.symbolic.minterm_weight(instance);
        Ok((estimate.mean / unit, 3.0 * estimate.std_error / unit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use cnf::generators::{self, RandomKSatConfig};

    fn instance(f: &cnf::CnfFormula) -> NblSatInstance {
        NblSatInstance::new(f).unwrap()
    }

    #[test]
    fn exact_count_matches_enumeration() {
        for seed in 0..15 {
            let f =
                generators::random_ksat(&RandomKSatConfig::new(6, 18, 3).with_seed(seed)).unwrap();
            let inst = instance(&f);
            let counter = ModelCounter::new();
            let result = counter.count_exact(&inst, &inst.empty_bindings()).unwrap();
            assert_eq!(
                result.models,
                f.count_satisfying_assignments(),
                "seed {seed}"
            );
            assert!(result.weighted >= result.models as f64);
        }
    }

    #[test]
    fn partition_count_equals_exact_count_with_symbolic_engine() {
        for seed in 0..8 {
            let f =
                generators::random_ksat(&RandomKSatConfig::new(5, 12, 3).with_seed(seed)).unwrap();
            let inst = instance(&f);
            let counter = ModelCounter::new();
            let mut engine = SymbolicEngine::new();
            let result = counter.count_by_partition(&mut engine, &inst).unwrap();
            assert_eq!(
                result.models,
                f.count_satisfying_assignments(),
                "seed {seed}"
            );
            assert!(result.engine_calls >= 1);
            // The engine-call count is bounded by the full binary tree size.
            assert!(result.engine_calls <= 2u64.pow(f.num_vars() as u32 + 1));
        }
    }

    #[test]
    fn partition_count_on_paper_examples() {
        let counter = ModelCounter::new();
        let mut engine = SymbolicEngine::new();
        let sat = instance(&generators::example6_sat());
        assert_eq!(
            counter
                .count_by_partition(&mut engine, &sat)
                .unwrap()
                .models,
            2
        );
        let unsat = instance(&generators::section4_unsat_instance());
        let result = counter.count_by_partition(&mut engine, &unsat).unwrap();
        assert_eq!(result.models, 0);
        // UNSAT prunes at the root: exactly one engine call.
        assert_eq!(result.engine_calls, 1);
    }

    #[test]
    fn sampled_weighted_estimate_brackets_the_truth() {
        let inst = instance(&generators::example6_sat());
        let counter = ModelCounter::new();
        let mut engine = SampledEngine::new(
            EngineConfig::new()
                .with_seed(7)
                .with_max_samples(200_000)
                .with_check_interval(200_000),
        );
        let (estimate, tolerance) = counter.estimate_weighted_count(&mut engine, &inst).unwrap();
        let exact = counter
            .count_exact(&inst, &inst.empty_bindings())
            .unwrap()
            .weighted;
        assert!(
            (estimate - exact).abs() <= tolerance.max(0.5),
            "estimate {estimate} ± {tolerance} vs exact {exact}"
        );
    }
}
