//! Term-level algebraic engine (validation of Theorem 3.1 by full expansion).

use crate::engine::{MeanEstimate, NblEngine};
use crate::error::{NblSatError, Result};
use crate::transform::NblSatInstance;
use cnf::{PartialAssignment, Variable};
use nbl_logic::{MomentModel, Superposition};

/// Exact engine that literally builds the superpositions τ_N and Σ_N with the
/// `nbl-logic` term algebra, multiplies them, and takes the expectation.
///
/// This follows the paper's construction symbol-for-symbol:
///
/// * τ_N per Eq. (2), replacing each literal's basis bit by the product of
///   that literal's per-clause sources,
/// * Σ_N by substituting each literal of clause `j` with its cube subspace
///   `T^j_v` built from clause `j`'s sources only,
///
/// and is therefore the most direct executable statement of Theorem 3.1. The
/// expansion has `O(2^{nm})` terms, so the engine enforces a term budget and
/// is intended for the small validation instances of the paper (it agrees with
/// [`crate::SymbolicEngine`] wherever both apply — see the cross-check tests).
#[derive(Debug, Clone, Copy)]
pub struct AlgebraicEngine {
    moment_model: MomentModel,
    max_terms: usize,
}

impl Default for AlgebraicEngine {
    fn default() -> Self {
        AlgebraicEngine::new()
    }
}

impl AlgebraicEngine {
    /// Creates an algebraic engine with the paper's uniform carriers and a
    /// 200 000-term expansion budget.
    pub fn new() -> Self {
        AlgebraicEngine {
            moment_model: MomentModel::uniform_half(),
            max_terms: 200_000,
        }
    }

    /// Uses a different carrier moment model.
    pub fn with_moment_model(mut self, model: MomentModel) -> Self {
        self.moment_model = model;
        self
    }

    /// Overrides the expansion term budget.
    pub fn with_max_terms(mut self, max_terms: usize) -> Self {
        self.max_terms = max_terms;
        self
    }

    fn check_budget(&self, s: &Superposition) -> Result<()> {
        if s.num_terms() > self.max_terms {
            return Err(NblSatError::InstanceTooLarge {
                limit: format!("{} expansion terms", self.max_terms),
                actual: s.num_terms(),
            });
        }
        Ok(())
    }

    /// Builds the valid-minterm hyperspace τ_N (Eq. 2) under the bindings.
    pub fn build_tau(
        &self,
        instance: &NblSatInstance,
        bindings: &PartialAssignment,
    ) -> Result<Superposition> {
        instance.validate_bindings(bindings)?;
        let m = instance.num_clauses();
        let mut tau = Superposition::one();
        for i in 0..instance.num_vars() {
            let var = Variable::new(i);
            // Product over all clauses of the positive (resp. negative) source.
            let pos_product = nbl_logic::NoiseProduct::from_bases(
                (0..m).map(|j| instance.source(j, var, true).basis_id()),
            );
            let neg_product = nbl_logic::NoiseProduct::from_bases(
                (0..m).map(|j| instance.source(j, var, false).basis_id()),
            );
            let factor = match bindings.value(var) {
                None => Superposition::from_products([pos_product, neg_product]),
                Some(true) => Superposition::from_products([pos_product]),
                Some(false) => Superposition::from_products([neg_product]),
            };
            tau = tau.multiplied_by(&factor);
            self.check_budget(&tau)?;
        }
        Ok(tau)
    }

    /// Builds the NBL-encoded instance Σ_N: the product over clauses of the
    /// superposition of each literal's cube subspace `T^j_v`.
    pub fn build_sigma(&self, instance: &NblSatInstance) -> Result<Superposition> {
        let n = instance.num_vars();
        let mut sigma = Superposition::one();
        for (j, clause) in instance.formula().iter().enumerate() {
            let mut z_j = Superposition::zero();
            for &lit in clause.iter() {
                // T^j_lit = product over all variables of (bound literal source
                // for lit's variable, else the sum of both sources of clause j).
                let mut subspace = Superposition::one();
                for i in 0..n {
                    let var = Variable::new(i);
                    let factor = if var == lit.variable() {
                        Superposition::from_products([nbl_logic::NoiseProduct::from_basis(
                            instance.literal_source(j, lit).basis_id(),
                        )])
                    } else {
                        Superposition::from_products([
                            nbl_logic::NoiseProduct::from_basis(
                                instance.source(j, var, true).basis_id(),
                            ),
                            nbl_logic::NoiseProduct::from_basis(
                                instance.source(j, var, false).basis_id(),
                            ),
                        ])
                    };
                    subspace = subspace.multiplied_by(&factor);
                }
                z_j = z_j.added_to(&subspace);
            }
            sigma = sigma.multiplied_by(&z_j);
            self.check_budget(&sigma)?;
        }
        Ok(sigma)
    }
}

impl NblEngine for AlgebraicEngine {
    fn estimate(
        &mut self,
        instance: &NblSatInstance,
        bindings: &PartialAssignment,
    ) -> Result<MeanEstimate> {
        let tau = self.build_tau(instance, bindings)?;
        let sigma = self.build_sigma(instance)?;
        let product = tau.multiplied_by(&sigma);
        self.check_budget(&product)?;
        Ok(MeanEstimate::exact(product.expectation(&self.moment_model)))
    }

    fn name(&self) -> &'static str {
        "algebraic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::SymbolicEngine;
    use cnf::cnf_formula;
    use cnf::generators;

    fn instance(f: &cnf::CnfFormula) -> NblSatInstance {
        NblSatInstance::new(f).unwrap()
    }

    #[test]
    fn tau_has_2_pow_n_minterms_and_sigma_counts_match_example6() {
        let inst = instance(&generators::example6_sat());
        let engine = AlgebraicEngine::new();
        let tau = engine.build_tau(&inst, &inst.empty_bindings()).unwrap();
        assert_eq!(tau.num_terms(), 4);
        // Each clause (2 literals over 2 vars) expands to 4 minterm terms, of
        // which two coincide (the doubly-satisfying minterm), so 3 distinct.
        let sigma = engine.build_sigma(&inst).unwrap();
        assert_eq!(sigma.num_terms(), 9);
    }

    #[test]
    fn example6_and_7_expectations() {
        let mut engine = AlgebraicEngine::new();
        let sat = instance(&generators::example6_sat());
        let unsat = instance(&generators::example7_unsat());
        let sat_mean = engine.estimate(&sat, &sat.empty_bindings()).unwrap().mean;
        let unsat_mean = engine
            .estimate(&unsat, &unsat.empty_bindings())
            .unwrap()
            .mean;
        assert!((sat_mean - 2.0 * (1.0f64 / 12.0).powi(4)).abs() < 1e-18);
        assert_eq!(unsat_mean, 0.0);
    }

    #[test]
    fn agrees_with_counting_engine_on_small_instances() {
        let formulas = [
            generators::example6_sat(),
            generators::example7_unsat(),
            generators::running_example(),
            cnf_formula![[1, 2], [-2, 3], [-1, -3]],
            cnf_formula![[1], [-1, 2], [-2, 3]],
        ];
        for f in formulas {
            let inst = instance(&f);
            let mut algebraic = AlgebraicEngine::new();
            let mut symbolic = SymbolicEngine::new();
            let a = algebraic.estimate(&inst, &inst.empty_bindings()).unwrap();
            let s = symbolic.estimate(&inst, &inst.empty_bindings()).unwrap();
            assert!(
                (a.mean - s.mean).abs() <= 1e-15 * (1.0 + s.mean.abs()),
                "{f}: algebraic {} vs symbolic {}",
                a.mean,
                s.mean
            );
        }
    }

    #[test]
    fn agrees_with_counting_engine_under_bindings() {
        let inst = instance(&generators::example6_sat());
        let mut bindings = inst.empty_bindings();
        bindings.assign(Variable::new(0), true);
        let a = AlgebraicEngine::new()
            .estimate(&inst, &bindings)
            .unwrap()
            .mean;
        let s = SymbolicEngine::new()
            .estimate(&inst, &bindings)
            .unwrap()
            .mean;
        assert!((a - s).abs() < 1e-18);
        assert!(a > 0.0);

        bindings.assign(Variable::new(1), true);
        let a = AlgebraicEngine::new()
            .estimate(&inst, &bindings)
            .unwrap()
            .mean;
        assert_eq!(a, 0.0);
    }

    #[test]
    fn term_budget_is_enforced() {
        let f =
            generators::random_ksat(&cnf::generators::RandomKSatConfig::new(6, 12, 3).with_seed(1))
                .unwrap();
        let inst = instance(&f);
        let mut engine = AlgebraicEngine::new().with_max_terms(100);
        assert!(matches!(
            engine.estimate(&inst, &inst.empty_bindings()),
            Err(NblSatError::InstanceTooLarge { .. })
        ));
        assert_eq!(engine.name(), "algebraic");
    }
}
