//! NBL-SAT: Boolean satisfiability using noise-based logic.
//!
//! This crate is the reproduction of the primary contribution of
//! *"Boolean Satisfiability using Noise Based Logic"* (Lin, Mandal, Khatri,
//! DAC 2012): a SAT decision procedure that applies the additive superposition
//! of **all `2^n` candidate assignments simultaneously** to a CNF instance
//! encoded in noise-based logic, and reads the SAT/UNSAT answer off the DC
//! component of a single correlation.
//!
//! # The construction
//!
//! For an instance with `n` variables and `m` clauses the transform
//! ([`NblSatInstance`]) allocates `2·m·n` independent basis noise sources —
//! one per (clause, variable, polarity) triple — and forms
//!
//! * `τ_N`, the *valid-minterm hyperspace* (Eq. 2): the superposition of all
//!   `2^n` logically consistent noise minterms, optionally restricted by
//!   variable bindings, and
//! * `Σ_N`, the *NBL-encoded instance*: per clause, the superposition of the
//!   cube subspaces of its literals; clauses are multiplied together.
//!
//! The product `S_N = τ_N · Σ_N` has strictly positive mean iff the instance
//! is satisfiable (Theorem 3.1); [`SatChecker`] implements that single-shot
//! decision (Algorithm 1) and [`AssignmentExtractor`] recovers a model or
//! prime-implicant cube with at most `n` additional checks (Algorithm 2).
//!
//! # Engines
//!
//! Two interchangeable engines evaluate ⟨S_N⟩ behind the [`NblEngine`] trait:
//!
//! * [`SymbolicEngine`] — the infinite-sample ideal-hardware limit, computed
//!   exactly from the orthogonality rules of the noise algebra,
//! * [`SampledEngine`] — a faithful Monte-Carlo simulation of the analog
//!   datapath (the paper's MATLAB experiment), supporting every carrier family
//!   in [`nbl_noise::CarrierKind`], the §IV convergence stopping rule, and
//!   convergence traces for reproducing Figure 1.
//!
//! A third, [`AlgebraicEngine`], fully expands both superpositions with the
//! `nbl-logic` term algebra; it is exponential in `n·m` and exists to validate
//! Theorem 3.1 term-by-term on small instances.
//!
//! The [`SnrModel`] reproduces the §III.F scaling analysis, and
//! [`HybridSolver`] the §V CPU + NBL-coprocessor flow where the NBL mean
//! guides branching of a classical complete solver.
//!
//! # The unified solving API
//!
//! The recommended front door is the request/outcome API in [`solve`]: a
//! [`SolveRequest`] describes the job (formula, desired artifacts — verdict,
//! model or prime-implicant cube —, deterministic seed, resource [`Budget`])
//! and any [`SatBackend`] answers with a [`SolveOutcome`] (three-valued
//! [`SolveVerdict`] including `Unknown(BudgetExhausted)`, the artifacts,
//! merged [`SolveStats`] and an optional convergence trace). The
//! [`BackendRegistry`] names every engine — the classical baselines of
//! `sat-solvers`, the three NBL engines and the hybrid flows — so callers
//! dispatch by configuration string, the way the paper treats the NBL engine
//! as an interchangeable coprocessor.
//!
//! ```
//! use cnf::cnf_formula;
//! use nbl_sat_core::{Artifacts, BackendRegistry, Budget, SolveRequest};
//! use std::time::Duration;
//!
//! // Example 6 of the paper: (x1 + x2)(¬x1 + ¬x2) — satisfiable.
//! let formula = cnf_formula![[1, 2], [-1, -2]];
//! let request = SolveRequest::new(&formula)
//!     .artifacts(Artifacts::Model)
//!     .seed(2012)
//!     .budget(Budget::unlimited().with_wall_time(Duration::from_secs(5)));
//! let outcome = BackendRegistry::default().solve("nbl-symbolic", &request)?;
//! assert!(outcome.verdict.is_sat());
//! assert!(formula.evaluate(outcome.model.as_ref().unwrap()));
//! # Ok::<(), nbl_sat_core::NblSatError>(())
//! ```
//!
//! Budgets ([`Budget`] / [`BudgetMeter`]) meter wall-clock time, noise
//! samples and coprocessor check operations, and are threaded *into* the
//! search and convergence loops, so a tight budget interrupts the work
//! instead of being checked after the fact.
//!
//! # The low-level pipeline
//!
//! The building blocks behind the backends remain public:
//!
//! ```
//! use cnf::cnf_formula;
//! use nbl_sat_core::{NblSatInstance, SatChecker, SymbolicEngine, Verdict};
//!
//! let formula = cnf_formula![[1, 2], [-1, -2]];
//! let instance = NblSatInstance::new(&formula)?;
//! let mut checker = SatChecker::new(SymbolicEngine::new());
//! assert_eq!(checker.check(&instance)?, Verdict::Satisfiable);
//! # Ok::<(), nbl_sat_core::NblSatError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod algebraic;
pub mod assignment;
pub mod budget;
pub mod checker;
pub mod config;
pub mod convergence;
pub mod counting;
pub mod engine;
pub mod error;
pub mod hybrid;
pub mod sampled;
pub mod snr;
pub mod solve;
pub mod symbolic;
pub mod transform;

pub use algebraic::AlgebraicEngine;
pub use assignment::{prime_implicant_cube, AssignmentExtractor, ExtractionOutcome};
pub use budget::{Budget, BudgetMeter, ExhaustedResource, SharedBudget};
pub use checker::{SatChecker, Verdict};
pub use config::EngineConfig;
pub use convergence::{ConvergenceTrace, TracePoint};
pub use counting::{CountResult, ModelCounter};
pub use engine::{MeanEstimate, NblEngine};
pub use error::{NblSatError, Result};
pub use hybrid::{HybridSolver, HybridStats};
pub use sampled::SampledEngine;
pub use snr::SnrModel;
pub use solve::{
    Artifacts, BackendLatency, BackendRegistry, CacheStats, CachedAnswer, CdclSessionBackend,
    ClassicalBackend, HybridBackend, IncrementalBackend, JobHandle, JobPriority, JobStatus,
    MetricsRegistry, MetricsSnapshot, NblCheckBackend, PipelineConfig, PipelineDecision,
    PreparedRequest, SatBackend, ServiceBuilder, SessionCall, SessionHandle, SessionSolve,
    SolveBatch, SolveOutcome, SolvePipeline, SolveRequest, SolveService, SolveSession, SolveStats,
    SolveVerdict, UnknownCause, VerdictCache, DEFAULT_CACHE_CAPACITY, LATENCY_BUCKETS,
};
pub use symbolic::SymbolicEngine;
pub use transform::{NblSatInstance, SourceIndex};
