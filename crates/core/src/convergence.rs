//! Convergence traces: the running mean of S_N as a function of sample count.
//!
//! Figure 1 of the paper plots exactly this quantity for one satisfiable and
//! one unsatisfiable instance; [`ConvergenceTrace`] is the data structure the
//! benchmark harness serializes to regenerate that figure.

use std::fmt;

/// One point of a convergence trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Number of noise samples accumulated so far.
    pub samples: u64,
    /// Running mean of S_N at that point.
    pub mean: f64,
}

/// A recorded running-mean trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConvergenceTrace {
    /// Label of the instance the trace belongs to (e.g. "S_SAT").
    pub label: String,
    /// The recorded points, in increasing sample order.
    pub points: Vec<TracePoint>,
}

impl ConvergenceTrace {
    /// Creates an empty trace with a label.
    pub fn new(label: impl Into<String>) -> Self {
        ConvergenceTrace {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, samples: u64, mean: f64) {
        self.points.push(TracePoint { samples, mean });
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if no points have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The final (largest-sample) recorded mean, if any.
    pub fn final_mean(&self) -> Option<f64> {
        self.points.last().map(|p| p.mean)
    }

    /// The final recorded sample count, if any.
    pub fn final_samples(&self) -> Option<u64> {
        self.points.last().map(|p| p.samples)
    }

    /// Renders the trace as simple tab-separated `samples<TAB>mean` rows,
    /// ready to be plotted or diffed against the paper's Figure 1.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str("samples\tmean\n");
        for p in &self.points {
            out.push_str(&format!("{}\t{:.9e}\n", p.samples, p.mean));
        }
        out
    }
}

impl fmt::Display for ConvergenceTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} points, final mean {:?} at {:?} samples",
            self.label,
            self.len(),
            self.final_mean(),
            self.final_samples()
        )
    }
}

/// Builds logarithmically spaced sample checkpoints between 1 and
/// `max_samples`, with `points_per_decade` points in every decade.
///
/// # Panics
///
/// Panics if `max_samples == 0` or `points_per_decade == 0`.
pub fn log_spaced_checkpoints(max_samples: u64, points_per_decade: u32) -> Vec<u64> {
    assert!(max_samples > 0, "max_samples must be positive");
    assert!(points_per_decade > 0, "points_per_decade must be positive");
    let mut out = Vec::new();
    let decades = (max_samples as f64).log10();
    let total_points = (decades * points_per_decade as f64).ceil() as u64 + 1;
    for i in 0..=total_points {
        let exponent = i as f64 / points_per_decade as f64;
        let value = 10f64.powf(exponent).round() as u64;
        let value = value.min(max_samples).max(1);
        if out.last() != Some(&value) {
            out.push(value);
        }
    }
    if out.last() != Some(&max_samples) {
        out.push(max_samples);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_accumulation_and_accessors() {
        let mut trace = ConvergenceTrace::new("S_SAT");
        assert!(trace.is_empty());
        assert_eq!(trace.final_mean(), None);
        trace.push(10, 0.5);
        trace.push(100, 0.25);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.final_mean(), Some(0.25));
        assert_eq!(trace.final_samples(), Some(100));
        assert!(trace.to_string().contains("S_SAT"));
    }

    #[test]
    fn tsv_rendering() {
        let mut trace = ConvergenceTrace::new("S_UNSAT");
        trace.push(1, 0.0);
        let tsv = trace.to_tsv();
        assert!(tsv.starts_with("samples\tmean\n"));
        assert!(tsv.lines().count() == 2);
    }

    #[test]
    fn checkpoints_are_increasing_and_bounded() {
        let pts = log_spaced_checkpoints(1_000_000, 4);
        assert_eq!(*pts.first().unwrap(), 1);
        assert_eq!(*pts.last().unwrap(), 1_000_000);
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
        // 6 decades * 4 points + endpoints ≈ 25 points
        assert!(pts.len() >= 20 && pts.len() <= 30);
    }

    #[test]
    fn checkpoints_small_max() {
        let pts = log_spaced_checkpoints(5, 3);
        assert_eq!(*pts.last().unwrap(), 5);
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic]
    fn zero_max_rejected() {
        let _ = log_spaced_checkpoints(0, 3);
    }
}
