//! Engine configuration.

use cnf::EvalMode;
use nbl_noise::CarrierKind;

/// Configuration of the Monte-Carlo [`crate::SampledEngine`].
///
/// The defaults mirror the paper's §IV experimental protocol: uniform
/// [-0.5, 0.5] carriers, convergence to the third significant digit checked
/// periodically, and a hard cap on the number of noise samples (the paper
/// uses 10⁸; the default here is 10⁶ so tests and examples stay fast —
/// raise it for higher-fidelity runs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Carrier family used for the basis sources.
    pub carrier: CarrierKind,
    /// PRNG seed; the whole simulation is deterministic given the seed.
    pub seed: u64,
    /// Hard cap on the number of noise samples per estimate.
    pub max_samples: u64,
    /// How often (in samples) the convergence criterion is evaluated.
    pub check_interval: u64,
    /// Number of significant digits the running mean must stabilize to.
    pub significant_digits: u32,
    /// Number of standard errors the mean must exceed for a "positive mean"
    /// (i.e. satisfiable) decision on sampled data.
    pub decision_sigmas: f64,
    /// Evaluation core of the budgeted convergence loop: packed (noise
    /// samples drawn and charged a 64-lane word at a time) or the scalar
    /// reference path. Both produce bit-identical estimates.
    pub eval_mode: EvalMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            carrier: CarrierKind::Uniform,
            seed: 0,
            max_samples: 1_000_000,
            check_interval: 10_000,
            significant_digits: 3,
            decision_sigmas: 3.0,
            eval_mode: EvalMode::default(),
        }
    }
}

impl EngineConfig {
    /// Creates the default configuration (paper defaults, 10⁶-sample cap).
    pub fn new() -> Self {
        EngineConfig::default()
    }

    /// Sets the carrier family.
    pub fn with_carrier(mut self, carrier: CarrierKind) -> Self {
        self.carrier = carrier;
        self
    }

    /// Sets the PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the sample cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_samples == 0`.
    pub fn with_max_samples(mut self, max_samples: u64) -> Self {
        assert!(max_samples > 0, "sample cap must be positive");
        self.max_samples = max_samples;
        self
    }

    /// Sets the convergence check interval.
    ///
    /// # Panics
    ///
    /// Panics if `check_interval == 0`.
    pub fn with_check_interval(mut self, check_interval: u64) -> Self {
        assert!(check_interval > 0, "check interval must be positive");
        self.check_interval = check_interval;
        self
    }

    /// Sets the decision threshold in standard errors.
    pub fn with_decision_sigmas(mut self, sigmas: f64) -> Self {
        self.decision_sigmas = sigmas;
        self
    }

    /// Sets the evaluation core of the convergence loop.
    pub fn with_eval_mode(mut self, eval_mode: EvalMode) -> Self {
        self.eval_mode = eval_mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_protocol() {
        let cfg = EngineConfig::default();
        assert_eq!(cfg.carrier, CarrierKind::Uniform);
        assert_eq!(cfg.significant_digits, 3);
        assert!(cfg.max_samples >= 100_000);
        assert_eq!(EngineConfig::new(), cfg);
    }

    #[test]
    fn builder_methods() {
        let cfg = EngineConfig::new()
            .with_carrier(CarrierKind::Rtw)
            .with_seed(7)
            .with_max_samples(500)
            .with_check_interval(50)
            .with_decision_sigmas(5.0)
            .with_eval_mode(EvalMode::Scalar);
        assert_eq!(cfg.carrier, CarrierKind::Rtw);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.max_samples, 500);
        assert_eq!(cfg.check_interval, 50);
        assert_eq!(cfg.decision_sigmas, 5.0);
        assert_eq!(cfg.eval_mode, EvalMode::Scalar);
    }

    #[test]
    #[should_panic]
    fn zero_sample_cap_rejected() {
        let _ = EngineConfig::new().with_max_samples(0);
    }
}
