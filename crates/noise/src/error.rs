//! Error types for the carrier substrate.

use std::fmt;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NoiseError>;

/// Errors produced while configuring carrier banks or statistics.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NoiseError {
    /// A carrier bank was configured with invalid parameters.
    InvalidCarrierConfig(String),
    /// A sample buffer did not match the bank's source count.
    BufferSizeMismatch {
        /// Size of the buffer supplied by the caller.
        buffer: usize,
        /// Number of sources in the bank.
        sources: usize,
    },
    /// Not enough samples were provided to compute the requested statistic.
    InsufficientSamples {
        /// Samples required.
        required: usize,
        /// Samples available.
        available: usize,
    },
}

impl fmt::Display for NoiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseError::InvalidCarrierConfig(msg) => {
                write!(f, "invalid carrier configuration: {msg}")
            }
            NoiseError::BufferSizeMismatch { buffer, sources } => write!(
                f,
                "sample buffer holds {buffer} values but the bank has {sources} sources"
            ),
            NoiseError::InsufficientSamples {
                required,
                available,
            } => write!(
                f,
                "statistic requires at least {required} samples but only {available} were provided"
            ),
        }
    }
}

impl std::error::Error for NoiseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(NoiseError::InvalidCarrierConfig("bad".into())
            .to_string()
            .contains("bad"));
        assert!(NoiseError::BufferSizeMismatch {
            buffer: 2,
            sources: 4
        }
        .to_string()
        .contains('2'));
        assert!(NoiseError::InsufficientSamples {
            required: 2,
            available: 0
        }
        .to_string()
        .contains("2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NoiseError>();
    }
}
