//! Carrier substrate for noise-based logic.
//!
//! Noise-based logic (NBL) encodes logic values on *reference carriers*:
//! pairwise-independent, zero-mean stochastic processes (the paper's "basis
//! noise bits"), or — in the realizations sketched in §V of the paper —
//! sinusoids of distinct frequencies and random telegraph waves. This crate
//! provides:
//!
//! * deterministic, dependency-light PRNGs ([`rng`]),
//! * carrier banks generating per-time-step samples for any number of basis
//!   sources ([`carrier`], [`uniform`], [`gaussian`], [`rtw`], [`sinusoid`]),
//! * streaming statistics ([`stats`]) including the paper's
//!   "converged to the third significant digit" stopping rule,
//! * correlators ([`correlator`]) and empirical orthogonality checks
//!   ([`orthogonality`]).
//!
//! The NBL-SAT engines in the `nbl-sat-core` crate are built directly on these
//! primitives.
//!
//! # Example
//!
//! ```
//! use nbl_noise::{CarrierKind, RunningStats};
//!
//! // A bank of 4 independent uniform [-0.5, 0.5] carriers (the paper's default).
//! let mut bank = CarrierKind::Uniform.bank(4, 42);
//! let mut buf = [0.0f64; 4];
//! let mut stats = RunningStats::new();
//! for _ in 0..1000 {
//!     bank.next_sample(&mut buf);
//!     stats.push(buf[0] * buf[1]); // independent sources: mean product -> 0
//! }
//! assert!(stats.mean().abs() < 0.05);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod carrier;
pub mod correlator;
pub mod error;
pub mod gaussian;
pub mod orthogonality;
pub mod rng;
pub mod rtw;
pub mod sinusoid;
pub mod spectrum;
pub mod stats;
pub mod uniform;

pub use carrier::{CarrierBank, CarrierKind};
pub use correlator::{correlation, Correlator};
pub use error::{NoiseError, Result};
pub use gaussian::GaussianBank;
pub use orthogonality::{max_cross_correlation, OrthogonalityReport};
pub use rng::{RandomSource, SplitMix64, Xoshiro256StarStar};
pub use rtw::RtwBank;
pub use sinusoid::SinusoidBank;
pub use spectrum::{autocorrelation, dominant_bin, periodogram};
pub use stats::{ConvergenceTracker, RunningStats};
pub use uniform::UniformBank;
