//! Empirical orthogonality checks for carrier banks.
//!
//! NBL's correctness rests on the basis carriers being pairwise orthogonal
//! (⟨N_i·N_j⟩ = δ_ij up to scaling). These helpers measure how close a finite
//! sample of a carrier bank comes to that ideal; they are used by tests and
//! by the carrier-ablation experiment (E7).

use crate::carrier::CarrierBank;
use crate::stats::RunningStats;
use std::fmt;

/// Result of an empirical orthogonality measurement over a carrier bank.
#[derive(Debug, Clone, PartialEq)]
pub struct OrthogonalityReport {
    /// Number of sources examined.
    pub num_sources: usize,
    /// Number of time samples used.
    pub num_samples: u64,
    /// Largest |⟨N_i·N_j⟩| observed over all i ≠ j.
    pub max_cross_correlation: f64,
    /// Smallest ⟨N_i²⟩ observed (should be close to the bank's variance).
    pub min_self_correlation: f64,
    /// Largest |⟨N_i⟩| observed (should be close to zero).
    pub max_mean: f64,
}

impl OrthogonalityReport {
    /// Returns `true` if the bank looks orthogonal at the given tolerance:
    /// every cross-correlation and mean is below `tolerance` and every
    /// self-correlation is above `tolerance`.
    pub fn is_orthogonal(&self, tolerance: f64) -> bool {
        self.max_cross_correlation < tolerance
            && self.max_mean < tolerance
            && self.min_self_correlation > tolerance
    }
}

impl fmt::Display for OrthogonalityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sources={} samples={} max|cross|={:.3e} min self={:.3e} max|mean|={:.3e}",
            self.num_sources,
            self.num_samples,
            self.max_cross_correlation,
            self.min_self_correlation,
            self.max_mean
        )
    }
}

/// Measures pairwise correlations of a carrier bank over `num_samples` steps.
///
/// # Panics
///
/// Panics if the bank has fewer than one source or `num_samples == 0`.
pub fn measure_orthogonality(bank: &mut dyn CarrierBank, num_samples: u64) -> OrthogonalityReport {
    let n = bank.num_sources();
    assert!(n >= 1, "bank must have at least one source");
    assert!(num_samples > 0, "need at least one sample");

    let mut buf = vec![0.0f64; n];
    let mut means = vec![RunningStats::new(); n];
    let mut selfs = vec![RunningStats::new(); n];
    let mut crosses = vec![RunningStats::new(); n * n];

    for _ in 0..num_samples {
        bank.next_sample(&mut buf);
        for i in 0..n {
            means[i].push(buf[i]);
            selfs[i].push(buf[i] * buf[i]);
            for j in (i + 1)..n {
                crosses[i * n + j].push(buf[i] * buf[j]);
            }
        }
    }

    let max_cross = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .map(|(i, j)| crosses[i * n + j].mean().abs())
        .fold(0.0f64, f64::max);
    let min_self = selfs.iter().map(|s| s.mean()).fold(f64::INFINITY, f64::min);
    let max_mean = means.iter().map(|s| s.mean().abs()).fold(0.0f64, f64::max);

    OrthogonalityReport {
        num_sources: n,
        num_samples,
        max_cross_correlation: max_cross,
        min_self_correlation: min_self,
        max_mean,
    }
}

/// Convenience wrapper returning only the largest cross-correlation magnitude.
pub fn max_cross_correlation(bank: &mut dyn CarrierBank, num_samples: u64) -> f64 {
    measure_orthogonality(bank, num_samples).max_cross_correlation
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::carrier::CarrierKind;

    #[test]
    fn every_carrier_family_is_orthogonal() {
        for kind in CarrierKind::all() {
            let mut bank = kind.bank(4, 31);
            let report = measure_orthogonality(bank.as_mut(), 40_000);
            assert!(report.is_orthogonal(0.02), "{kind}: {report}");
        }
    }

    #[test]
    fn report_fields_are_consistent() {
        let mut bank = CarrierKind::Uniform.bank(3, 1);
        let report = measure_orthogonality(bank.as_mut(), 10_000);
        assert_eq!(report.num_sources, 3);
        assert_eq!(report.num_samples, 10_000);
        assert!((report.min_self_correlation - 1.0 / 12.0).abs() < 0.01);
        assert!(report.to_string().contains("sources=3"));
    }

    #[test]
    fn max_cross_correlation_helper() {
        let mut bank = CarrierKind::Rtw.bank(2, 2);
        assert!(max_cross_correlation(bank.as_mut(), 20_000) < 0.03);
    }

    #[test]
    #[should_panic]
    fn zero_samples_panics() {
        let mut bank = CarrierKind::Uniform.bank(2, 0);
        let _ = measure_orthogonality(bank.as_mut(), 0);
    }
}
