//! Spectral and autocorrelation analysis of carrier records.
//!
//! The §V realizations differ in their spectra — wideband noise is flat,
//! random telegraph waves are Lorentzian with a corner set by the switching
//! rate, sinusoids are line spectra — and the low-pass readout filter only
//! needs the DC bin. These helpers compute periodograms and autocorrelation
//! sequences of recorded carrier samples so those properties can be verified
//! and reported (used by the carrier-ablation experiment and by tests).

use std::f64::consts::TAU;

/// Computes the periodogram (squared magnitude of the DFT, normalized by the
/// record length) of a real-valued sample record at `num_bins` equally spaced
/// frequencies in `[0, 0.5)` of the sampling rate.
///
/// This is a direct O(N·bins) evaluation, which is plenty for the record
/// lengths used in the experiments and keeps the crate dependency-free.
///
/// # Panics
///
/// Panics if `samples` is empty or `num_bins == 0`.
pub fn periodogram(samples: &[f64], num_bins: usize) -> Vec<f64> {
    assert!(!samples.is_empty(), "need at least one sample");
    assert!(num_bins > 0, "need at least one frequency bin");
    let n = samples.len() as f64;
    (0..num_bins)
        .map(|bin| {
            let freq = 0.5 * bin as f64 / num_bins as f64;
            let (mut re, mut im) = (0.0f64, 0.0f64);
            for (t, &x) in samples.iter().enumerate() {
                let phase = TAU * freq * t as f64;
                re += x * phase.cos();
                im -= x * phase.sin();
            }
            (re * re + im * im) / n
        })
        .collect()
}

/// Computes the biased autocorrelation sequence `r[k] = (1/N) Σ x[t]·x[t+k]`
/// for lags `0..max_lag`.
///
/// # Panics
///
/// Panics if `samples` is empty or `max_lag >= samples.len()`.
pub fn autocorrelation(samples: &[f64], max_lag: usize) -> Vec<f64> {
    assert!(!samples.is_empty(), "need at least one sample");
    assert!(
        max_lag < samples.len(),
        "max_lag must be smaller than the record length"
    );
    let n = samples.len() as f64;
    (0..=max_lag)
        .map(|lag| {
            samples
                .iter()
                .zip(&samples[lag..])
                .map(|(a, b)| a * b)
                .sum::<f64>()
                / n
        })
        .collect()
}

/// Index of the strongest periodogram bin (ignoring DC when `skip_dc`).
pub fn dominant_bin(power: &[f64], skip_dc: bool) -> usize {
    let start = usize::from(skip_dc);
    power
        .iter()
        .enumerate()
        .skip(start)
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::carrier::{CarrierBank, CarrierKind};
    use crate::rtw::RtwBank;

    fn record(kind: CarrierKind, steps: usize, seed: u64) -> Vec<f64> {
        let mut bank = kind.bank(1, seed);
        let mut buf = [0.0];
        (0..steps)
            .map(|_| {
                bank.next_sample(&mut buf);
                buf[0]
            })
            .collect()
    }

    #[test]
    fn sinusoid_has_a_line_spectrum() {
        let samples = record(CarrierKind::Sinusoid, 4096, 3);
        let power = periodogram(&samples, 64);
        let peak = dominant_bin(&power, true);
        let peak_power = power[peak];
        // Everything at least 8 bins away from the peak is far below it.
        for (i, &p) in power.iter().enumerate() {
            if i >= 1 && i.abs_diff(peak) > 8 {
                assert!(p < peak_power * 0.05, "bin {i}: {p} vs peak {peak_power}");
            }
        }
    }

    #[test]
    fn uniform_noise_spectrum_is_roughly_flat() {
        let samples = record(CarrierKind::Uniform, 8192, 5);
        let power = periodogram(&samples, 32);
        let mean_power: f64 = power[1..].iter().sum::<f64>() / (power.len() - 1) as f64;
        for &p in &power[1..] {
            assert!(
                p < mean_power * 6.0,
                "white spectrum should have no dominant line"
            );
        }
    }

    #[test]
    fn white_noise_autocorrelation_dies_after_lag_zero() {
        let samples = record(CarrierKind::Uniform, 50_000, 7);
        let r = autocorrelation(&samples, 5);
        assert!((r[0] - 1.0 / 12.0).abs() < 0.005);
        for &rk in &r[1..] {
            assert!(rk.abs() < 0.005);
        }
    }

    #[test]
    fn slow_rtw_autocorrelation_decays_geometrically() {
        // With switch probability p, r[k]/r[0] = (1 - 2p)^k.
        let mut bank = RtwBank::with_parameters(1, 11, 1.0, 0.1);
        let mut buf = [0.0];
        let samples: Vec<f64> = (0..200_000)
            .map(|_| {
                bank.next_sample(&mut buf);
                buf[0]
            })
            .collect();
        let r = autocorrelation(&samples, 4);
        for k in 1..=4usize {
            let expected = 0.8f64.powi(k as i32);
            assert!(
                (r[k] / r[0] - expected).abs() < 0.03,
                "lag {k}: {} vs {expected}",
                r[k] / r[0]
            );
        }
    }

    #[test]
    #[should_panic]
    fn empty_record_rejected() {
        let _ = periodogram(&[], 4);
    }

    #[test]
    #[should_panic]
    fn excessive_lag_rejected() {
        let _ = autocorrelation(&[1.0, 2.0], 2);
    }
}
