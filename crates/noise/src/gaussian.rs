//! Gaussian noise carriers.

use crate::carrier::CarrierBank;
use crate::rng::{RandomSource, Xoshiro256StarStar};

/// A bank of independent zero-mean Gaussian carriers.
///
/// Gaussian carriers model thermal (Johnson) noise amplified by the wideband
/// amplifiers the paper proposes as physical noise sources (§V). The NBL
/// algebra only requires zero mean and pairwise independence, so the engines
/// accept Gaussian carriers interchangeably with the uniform default.
#[derive(Debug, Clone)]
pub struct GaussianBank {
    rng: Xoshiro256StarStar,
    seed: u64,
    num_sources: usize,
    sigma: f64,
}

impl GaussianBank {
    /// Creates a bank of `num_sources` unit-variance Gaussian carriers.
    pub fn new(num_sources: usize, seed: u64) -> Self {
        Self::with_sigma(num_sources, seed, 1.0)
    }

    /// Creates a bank with standard deviation `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not strictly positive and finite.
    pub fn with_sigma(num_sources: usize, seed: u64, sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma > 0.0,
            "sigma must be positive and finite"
        );
        GaussianBank {
            rng: Xoshiro256StarStar::new(seed),
            seed,
            num_sources,
            sigma,
        }
    }

    /// The per-source standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl CarrierBank for GaussianBank {
    fn num_sources(&self) -> usize {
        self.num_sources
    }

    fn next_sample(&mut self, out: &mut [f64]) {
        assert_eq!(out.len(), self.num_sources, "buffer size mismatch");
        for slot in out.iter_mut() {
            *slot = self.rng.next_gaussian() * self.sigma;
        }
    }

    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }

    fn reset(&mut self) {
        self.rng = Xoshiro256StarStar::new(self.seed);
    }

    fn family(&self) -> &'static str {
        "gaussian"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RunningStats;

    #[test]
    fn unit_variance_by_default() {
        let bank = GaussianBank::new(1, 0);
        assert_eq!(bank.variance(), 1.0);
        assert_eq!(bank.sigma(), 1.0);
    }

    #[test]
    fn scaled_sigma() {
        let bank = GaussianBank::with_sigma(1, 0, 0.25);
        assert!((bank.variance() - 0.0625).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn non_positive_sigma_rejected() {
        let _ = GaussianBank::with_sigma(1, 0, -1.0);
    }

    #[test]
    fn empirical_moments() {
        let mut bank = GaussianBank::with_sigma(1, 17, 2.0);
        let mut buf = [0.0];
        let mut stats = RunningStats::new();
        for _ in 0..100_000 {
            bank.next_sample(&mut buf);
            stats.push(buf[0]);
        }
        assert!(stats.mean().abs() < 0.03);
        assert!((stats.variance() - 4.0).abs() < 0.15);
    }

    #[test]
    fn independent_sources() {
        let mut bank = GaussianBank::new(2, 21);
        let mut buf = [0.0; 2];
        let mut cross = RunningStats::new();
        for _ in 0..100_000 {
            bank.next_sample(&mut buf);
            cross.push(buf[0] * buf[1]);
        }
        assert!(cross.mean().abs() < 0.02);
    }
}
