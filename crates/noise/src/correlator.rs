//! Correlators: streaming estimation of ⟨X·Y⟩.
//!
//! The NBL-SAT check is a single correlation: the engine multiplies the
//! instance waveform Σ_N with the hyperspace waveform τ_N and looks at the
//! mean (DC component) of the product. This module provides the streaming
//! correlator used by that check and a convenience function over slices.

use crate::stats::RunningStats;

/// Streaming correlator that accumulates the mean and variance of the product
/// of two signals.
///
/// ```
/// use nbl_noise::Correlator;
/// let mut c = Correlator::new();
/// for i in 0..1000 {
///     let x = if i % 2 == 0 { 1.0 } else { -1.0 };
///     c.push(x, x); // perfectly correlated
/// }
/// assert!((c.mean_product() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Correlator {
    product: RunningStats,
}

impl Correlator {
    /// Creates an empty correlator.
    pub fn new() -> Self {
        Correlator::default()
    }

    /// Accumulates one simultaneous observation of the two signals.
    pub fn push(&mut self, x: f64, y: f64) {
        self.product.push(x * y);
    }

    /// Accumulates a pre-computed product sample.
    pub fn push_product(&mut self, xy: f64) {
        self.product.push(xy);
    }

    /// Number of accumulated observations.
    pub fn count(&self) -> u64 {
        self.product.count()
    }

    /// The running mean of the product, ⟨X·Y⟩.
    pub fn mean_product(&self) -> f64 {
        self.product.mean()
    }

    /// Sample standard deviation of the product.
    pub fn std_dev(&self) -> f64 {
        self.product.std_dev()
    }

    /// Standard error of the mean product.
    pub fn std_error(&self) -> f64 {
        self.product.std_error()
    }

    /// Returns the underlying statistics accumulator.
    pub fn stats(&self) -> &RunningStats {
        &self.product
    }

    /// Decides whether the mean product is statistically positive: the mean
    /// must exceed `threshold_sigmas` standard errors.
    ///
    /// This is the decision rule behind Algorithm 1 when run on sampled
    /// (finite-N) data: an UNSAT instance has a mean of exactly zero, so any
    /// statistically significant positive offset indicates satisfiability.
    pub fn is_positive(&self, threshold_sigmas: f64) -> bool {
        if self.count() < 2 {
            return self.mean_product() > 0.0;
        }
        self.mean_product() > threshold_sigmas * self.std_error()
    }
}

/// Computes the correlation ⟨X·Y⟩ of two equally long sample slices.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "signals must have equal length");
    assert!(!xs.is_empty(), "signals must be non-empty");
    xs.iter().zip(ys).map(|(x, y)| x * y).sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{RandomSource, Xoshiro256StarStar};

    #[test]
    fn correlation_of_identical_signals_is_power() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.1).sin()).collect();
        let c = correlation(&xs, &xs);
        let power = xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64;
        assert!((c - power).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_independent_noise_is_small() {
        let mut rng = Xoshiro256StarStar::new(1);
        let xs: Vec<f64> = (0..100_000).map(|_| rng.next_symmetric(0.5)).collect();
        let ys: Vec<f64> = (0..100_000).map(|_| rng.next_symmetric(0.5)).collect();
        assert!(correlation(&xs, &ys).abs() < 2e-3);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = correlation(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn empty_signals_panic() {
        let _ = correlation(&[], &[]);
    }

    #[test]
    fn streaming_matches_batch() {
        let mut rng = Xoshiro256StarStar::new(2);
        let xs: Vec<f64> = (0..1000).map(|_| rng.next_symmetric(1.0)).collect();
        let ys: Vec<f64> = (0..1000).map(|_| rng.next_symmetric(1.0)).collect();
        let mut c = Correlator::new();
        for (x, y) in xs.iter().zip(&ys) {
            c.push(*x, *y);
        }
        assert_eq!(c.count(), 1000);
        assert!((c.mean_product() - correlation(&xs, &ys)).abs() < 1e-12);
    }

    #[test]
    fn positivity_decision() {
        let mut positive = Correlator::new();
        let mut zero = Correlator::new();
        let mut rng = Xoshiro256StarStar::new(3);
        for _ in 0..10_000 {
            let noise = rng.next_symmetric(0.1);
            positive.push_product(1.0 + noise);
            zero.push_product(rng.next_symmetric(0.1));
        }
        assert!(positive.is_positive(3.0));
        assert!(!zero.is_positive(3.0));
    }

    #[test]
    fn is_positive_with_few_samples_falls_back_to_sign() {
        let mut c = Correlator::new();
        c.push_product(0.5);
        assert!(c.is_positive(3.0));
        let mut d = Correlator::new();
        d.push_product(-0.5);
        assert!(!d.is_positive(3.0));
    }
}
