//! Deterministic pseudo-random number generators.
//!
//! The library implements its own small PRNGs (SplitMix64 and
//! xoshiro256**) so that carrier generation is bit-reproducible across
//! platforms and independent of external crate versions. The `rand` crate is
//! still used at API boundaries where callers want to supply their own
//! generators (e.g. the random k-SAT generator in the `cnf` crate).

/// A deterministic source of uniformly distributed random bits and floats.
///
/// All carrier banks draw their randomness through this trait, which makes it
/// easy to substitute a different generator in tests.
pub trait RandomSource {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a float uniformly distributed in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a float uniformly distributed in `[-half_range, half_range)`.
    fn next_symmetric(&mut self, half_range: f64) -> f64 {
        (self.next_f64() - 0.5) * 2.0 * half_range
    }

    /// Returns a standard-normal sample (Box–Muller transform).
    fn next_gaussian(&mut self) -> f64 {
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Returns `true` with probability `p`.
    fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// SplitMix64: a tiny, fast, well-distributed 64-bit generator.
///
/// Mainly used for seeding [`Xoshiro256StarStar`] and for cheap per-source
/// stream splitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RandomSource for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the general-purpose generator used for carrier sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator from a 64-bit seed (expanded with SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // Avoid the all-zero state, which is a fixed point.
        if s.iter().all(|&x| x == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }

    /// Jumps the generator forward by 2^128 steps, producing an independent
    /// stream. Useful for giving each basis noise source its own stream.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let mut s3 = 0u64;
        for &jump in &JUMP {
            for b in 0..64 {
                if (jump >> b) & 1 == 1 {
                    s0 ^= self.s[0];
                    s1 ^= self.s[1];
                    s2 ^= self.s[2];
                    s3 ^= self.s[3];
                }
                let _ = self.next_u64();
            }
        }
        self.s = [s0, s1, s2, s3];
    }
}

impl RandomSource for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256StarStar::new(1);
        let mut b = Xoshiro256StarStar::new(1);
        let mut c = Xoshiro256StarStar::new(2);
        let seq_a: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let seq_c: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn uniform_floats_are_in_range_and_centered() {
        let mut rng = Xoshiro256StarStar::new(3);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn symmetric_floats_cover_requested_range() {
        let mut rng = Xoshiro256StarStar::new(4);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let x = rng.next_symmetric(0.5);
            assert!((-0.5..0.5).contains(&x));
            min = min.min(x);
            max = max.max(x);
        }
        assert!(min < -0.45 && max > 0.45);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Xoshiro256StarStar::new(5);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = rng.next_gaussian();
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn bernoulli_probability() {
        let mut rng = Xoshiro256StarStar::new(6);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.next_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn jump_produces_distinct_stream() {
        let mut a = Xoshiro256StarStar::new(9);
        let mut b = a;
        b.jump();
        let seq_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = Xoshiro256StarStar::new(0);
        let x = rng.next_u64();
        let y = rng.next_u64();
        assert_ne!(x, y);
    }
}
