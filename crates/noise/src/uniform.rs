//! Uniform noise carriers (the paper's default basis sources).

use crate::carrier::CarrierBank;
use crate::rng::{RandomSource, Xoshiro256StarStar};

/// A bank of independent uniform noise carriers on `[-amplitude, amplitude]`.
///
/// The paper's simulations use `amplitude = 0.5`, giving per-source variance
/// `1/12`, which is also the value its SNR model is derived with.
///
/// ```
/// use nbl_noise::{CarrierBank, UniformBank};
/// let mut bank = UniformBank::new(2, 7);
/// assert!((bank.variance() - 1.0 / 12.0).abs() < 1e-12);
/// let mut buf = [0.0; 2];
/// bank.next_sample(&mut buf);
/// assert!(buf.iter().all(|x| (-0.5..0.5).contains(x)));
/// ```
#[derive(Debug, Clone)]
pub struct UniformBank {
    rng: Xoshiro256StarStar,
    seed: u64,
    num_sources: usize,
    amplitude: f64,
}

impl UniformBank {
    /// Creates a bank of `num_sources` uniform [-0.5, 0.5] carriers.
    pub fn new(num_sources: usize, seed: u64) -> Self {
        Self::with_amplitude(num_sources, seed, 0.5)
    }

    /// Creates a bank with a custom amplitude (half-range).
    ///
    /// # Panics
    ///
    /// Panics if `amplitude` is not strictly positive and finite.
    pub fn with_amplitude(num_sources: usize, seed: u64, amplitude: f64) -> Self {
        assert!(
            amplitude.is_finite() && amplitude > 0.0,
            "amplitude must be positive and finite"
        );
        UniformBank {
            rng: Xoshiro256StarStar::new(seed),
            seed,
            num_sources,
            amplitude,
        }
    }

    /// The half-range of the carriers.
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }
}

impl CarrierBank for UniformBank {
    fn num_sources(&self) -> usize {
        self.num_sources
    }

    fn next_sample(&mut self, out: &mut [f64]) {
        assert_eq!(out.len(), self.num_sources, "buffer size mismatch");
        for slot in out.iter_mut() {
            *slot = self.rng.next_symmetric(self.amplitude);
        }
    }

    fn variance(&self) -> f64 {
        // Var(U[-a, a]) = a^2 / 3
        self.amplitude * self.amplitude / 3.0
    }

    fn reset(&mut self) {
        self.rng = Xoshiro256StarStar::new(self.seed);
    }

    fn family(&self) -> &'static str {
        "uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RunningStats;

    #[test]
    fn default_amplitude_matches_paper() {
        let bank = UniformBank::new(4, 0);
        assert_eq!(bank.amplitude(), 0.5);
        assert!((bank.variance() - 1.0 / 12.0).abs() < 1e-15);
    }

    #[test]
    fn custom_amplitude_variance() {
        let bank = UniformBank::with_amplitude(1, 0, 2.0);
        assert!((bank.variance() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_amplitude_rejected() {
        let _ = UniformBank::with_amplitude(1, 0, 0.0);
    }

    #[test]
    #[should_panic]
    fn wrong_buffer_size_panics() {
        let mut bank = UniformBank::new(3, 0);
        let mut buf = [0.0; 2];
        bank.next_sample(&mut buf);
    }

    #[test]
    fn fourth_moment_matches_uniform_distribution() {
        // E[x^4] for U[-0.5,0.5] is (0.5)^4/5 = 1/80.
        let mut bank = UniformBank::new(1, 3);
        let mut buf = [0.0];
        let mut stats = RunningStats::new();
        for _ in 0..100_000 {
            bank.next_sample(&mut buf);
            stats.push(buf[0].powi(4));
        }
        assert!((stats.mean() - 1.0 / 80.0).abs() < 5e-4, "{}", stats.mean());
    }

    #[test]
    fn sources_are_uncorrelated() {
        let mut bank = UniformBank::new(2, 9);
        let mut buf = [0.0; 2];
        let mut stats = RunningStats::new();
        for _ in 0..100_000 {
            bank.next_sample(&mut buf);
            stats.push(buf[0] * buf[1]);
        }
        assert!(stats.mean().abs() < 2e-3);
    }
}
