//! Sinusoidal carriers (sinusoid-based logic, SBL).

use crate::carrier::CarrierBank;
use crate::rng::{RandomSource, SplitMix64};
use std::f64::consts::TAU;

/// A bank of sinusoidal carriers with distinct integer frequencies.
///
/// The paper's §V proposes replacing the noise sources with sinusoids: if the
/// highest realizable frequency is `F` and adjacent carriers are spaced by
/// `f`, an SBL engine supports `F / f` variables. Over a full common period
/// distinct-frequency sinusoids are exactly orthogonal, and `⟨sin²⟩ = 1/2`,
/// so the correlation algebra of NBL carries over unchanged.
///
/// Source `i` is assigned frequency `i + 1` cycles per period; the period is
/// discretized into `samples_per_period` steps (which must exceed twice the
/// highest frequency to respect Nyquist). Each source gets a deterministic
/// pseudo-random phase so that different seeds give different (but still
/// orthogonal) carrier sets.
#[derive(Debug, Clone)]
pub struct SinusoidBank {
    frequencies: Vec<f64>,
    phases: Vec<f64>,
    samples_per_period: usize,
    step: usize,
    amplitude: f64,
}

impl SinusoidBank {
    /// Creates a bank of `num_sources` unit-amplitude sinusoids with an
    /// automatically chosen period of `8 * (num_sources + 1)` samples.
    pub fn new(num_sources: usize, seed: u64) -> Self {
        let samples_per_period = 8 * (num_sources + 1);
        Self::with_period(num_sources, seed, samples_per_period)
    }

    /// Creates a bank with an explicit number of samples per period.
    ///
    /// # Panics
    ///
    /// Panics if the period does not satisfy the Nyquist criterion
    /// (`samples_per_period <= 2 * num_sources`).
    pub fn with_period(num_sources: usize, seed: u64, samples_per_period: usize) -> Self {
        assert!(
            samples_per_period > 2 * num_sources,
            "samples_per_period must exceed twice the highest carrier frequency"
        );
        let mut rng = SplitMix64::new(seed);
        let frequencies = (0..num_sources).map(|i| (i + 1) as f64).collect();
        let phases = (0..num_sources).map(|_| rng.next_f64() * TAU).collect();
        SinusoidBank {
            frequencies,
            phases,
            samples_per_period,
            step: 0,
            amplitude: 1.0,
        }
    }

    /// The number of samples in one full period.
    pub fn samples_per_period(&self) -> usize {
        self.samples_per_period
    }

    /// The frequency (cycles per period) of source `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn frequency(&self, i: usize) -> f64 {
        self.frequencies[i]
    }
}

impl CarrierBank for SinusoidBank {
    fn num_sources(&self) -> usize {
        self.frequencies.len()
    }

    fn next_sample(&mut self, out: &mut [f64]) {
        assert_eq!(out.len(), self.frequencies.len(), "buffer size mismatch");
        let t = self.step as f64 / self.samples_per_period as f64;
        for ((slot, &freq), &phase) in out.iter_mut().zip(&self.frequencies).zip(&self.phases) {
            *slot = self.amplitude * (TAU * freq * t + phase).cos();
        }
        self.step += 1;
    }

    fn variance(&self) -> f64 {
        self.amplitude * self.amplitude / 2.0
    }

    fn reset(&mut self) {
        self.step = 0;
    }

    fn family(&self) -> &'static str {
        "sinusoid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RunningStats;

    #[test]
    fn distinct_frequencies() {
        let bank = SinusoidBank::new(5, 0);
        for i in 0..5 {
            assert_eq!(bank.frequency(i), (i + 1) as f64);
        }
    }

    #[test]
    fn zero_mean_over_full_periods() {
        let mut bank = SinusoidBank::new(3, 1);
        let period = bank.samples_per_period();
        let mut buf = [0.0; 3];
        let mut stats = RunningStats::new();
        for _ in 0..(period * 10) {
            bank.next_sample(&mut buf);
            stats.push(buf[0]);
        }
        assert!(stats.mean().abs() < 1e-10);
        assert!((stats.variance() - 0.5).abs() < 1e-2);
    }

    #[test]
    fn distinct_sinusoids_are_orthogonal_over_a_period() {
        let mut bank = SinusoidBank::new(4, 9);
        let period = bank.samples_per_period();
        let mut buf = [0.0; 4];
        let mut cross = RunningStats::new();
        for _ in 0..(period * 20) {
            bank.next_sample(&mut buf);
            cross.push(buf[1] * buf[3]);
        }
        assert!(cross.mean().abs() < 1e-10, "{}", cross.mean());
    }

    #[test]
    fn squared_sinusoid_has_mean_half() {
        let mut bank = SinusoidBank::new(2, 2);
        let period = bank.samples_per_period();
        let mut buf = [0.0; 2];
        let mut stats = RunningStats::new();
        for _ in 0..(period * 5) {
            bank.next_sample(&mut buf);
            stats.push(buf[0] * buf[0]);
        }
        assert!((stats.mean() - 0.5).abs() < 1e-10);
    }

    #[test]
    fn reset_restarts_the_period() {
        let mut bank = SinusoidBank::new(2, 3);
        let mut a = [0.0; 2];
        let mut b = [0.0; 2];
        bank.next_sample(&mut a);
        bank.reset();
        bank.next_sample(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn nyquist_violation_rejected() {
        let _ = SinusoidBank::with_period(10, 0, 20);
    }
}
