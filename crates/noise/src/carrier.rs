//! The [`CarrierBank`] abstraction and the [`CarrierKind`] selector.

use crate::gaussian::GaussianBank;
use crate::rtw::RtwBank;
use crate::sinusoid::SinusoidBank;
use crate::uniform::UniformBank;
use std::fmt;

/// A bank of pairwise-independent, zero-mean carrier processes.
///
/// A bank owns `num_sources` basis carriers; each call to
/// [`CarrierBank::next_sample`] advances simulated time by one step and
/// writes the instantaneous value of every carrier into the caller's buffer.
///
/// All implementations guarantee (in expectation over time):
///
/// * zero mean per source,
/// * variance [`CarrierBank::variance`] per source,
/// * vanishing cross-correlation between distinct sources,
///
/// which is exactly the algebra the NBL-SAT correlation check relies on.
pub trait CarrierBank: fmt::Debug {
    /// Number of basis sources in the bank.
    fn num_sources(&self) -> usize;

    /// Advances one time step and fills `out[i]` with the value of source `i`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.num_sources()`.
    fn next_sample(&mut self, out: &mut [f64]);

    /// The per-source variance ⟨N_i²⟩ (e.g. `1/12` for uniform [-0.5, 0.5]).
    fn variance(&self) -> f64;

    /// Restarts the bank from its initial state (same seed, time zero).
    fn reset(&mut self);

    /// Human-readable carrier family name (for reports and benches).
    fn family(&self) -> &'static str;
}

/// Selector for the carrier families supported by the simulation engines.
///
/// `Uniform` is the paper's default (§III.F and §IV); the others realize the
/// alternatives discussed in §V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum CarrierKind {
    /// Uniform noise on [-0.5, 0.5] (variance 1/12). The paper's default.
    #[default]
    Uniform,
    /// Zero-mean Gaussian noise with unit variance.
    Gaussian,
    /// Random telegraph waves: ±1 processes with memoryless switching.
    Rtw,
    /// Sinusoids of distinct frequencies (sinusoid-based logic, SBL).
    Sinusoid,
}

impl CarrierKind {
    /// Creates a boxed carrier bank of this family with `num_sources` sources
    /// seeded from `seed`.
    pub fn bank(self, num_sources: usize, seed: u64) -> Box<dyn CarrierBank> {
        match self {
            CarrierKind::Uniform => Box::new(UniformBank::new(num_sources, seed)),
            CarrierKind::Gaussian => Box::new(GaussianBank::new(num_sources, seed)),
            CarrierKind::Rtw => Box::new(RtwBank::new(num_sources, seed)),
            CarrierKind::Sinusoid => Box::new(SinusoidBank::new(num_sources, seed)),
        }
    }

    /// All supported carrier kinds, for ablation sweeps.
    pub fn all() -> [CarrierKind; 4] {
        [
            CarrierKind::Uniform,
            CarrierKind::Gaussian,
            CarrierKind::Rtw,
            CarrierKind::Sinusoid,
        ]
    }
}

impl fmt::Display for CarrierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CarrierKind::Uniform => "uniform",
            CarrierKind::Gaussian => "gaussian",
            CarrierKind::Rtw => "rtw",
            CarrierKind::Sinusoid => "sinusoid",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RunningStats;

    #[test]
    fn factory_builds_every_family() {
        for kind in CarrierKind::all() {
            let mut bank = kind.bank(3, 11);
            assert_eq!(bank.num_sources(), 3);
            assert!(bank.variance() > 0.0);
            let mut buf = [0.0; 3];
            bank.next_sample(&mut buf);
            assert!(!bank.family().is_empty());
            assert!(!kind.to_string().is_empty());
        }
    }

    #[test]
    fn every_family_has_zero_mean_and_declared_variance() {
        for kind in CarrierKind::all() {
            let mut bank = kind.bank(2, 123);
            let mut buf = [0.0; 2];
            let mut stats = RunningStats::new();
            let steps = 50_000;
            for _ in 0..steps {
                bank.next_sample(&mut buf);
                stats.push(buf[0]);
            }
            assert!(stats.mean().abs() < 0.02, "{kind}: mean {}", stats.mean());
            let declared = bank.variance();
            assert!(
                (stats.variance() - declared).abs() / declared < 0.1,
                "{kind}: variance {} vs declared {declared}",
                stats.variance()
            );
        }
    }

    #[test]
    fn reset_reproduces_the_same_stream() {
        for kind in CarrierKind::all() {
            let mut bank = kind.bank(2, 5);
            let mut buf = [0.0; 2];
            let mut first = Vec::new();
            for _ in 0..16 {
                bank.next_sample(&mut buf);
                first.push(buf);
            }
            bank.reset();
            for step in first {
                bank.next_sample(&mut buf);
                assert_eq!(buf, step, "{kind}");
            }
        }
    }

    #[test]
    fn default_kind_is_uniform() {
        assert_eq!(CarrierKind::default(), CarrierKind::Uniform);
    }
}
