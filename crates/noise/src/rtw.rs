//! Random telegraph wave (RTW) carriers.

use crate::carrier::CarrierBank;
use crate::rng::{RandomSource, Xoshiro256StarStar};

/// A bank of independent random telegraph waves.
///
/// An RTW takes values ±amplitude and, at every time step, independently
/// decides (with probability `switch_probability`) whether to flip sign.
/// RTWs are the carrier family of "instantaneous noise-based logic"
/// (paper §V and reference \[17\]); they are zero-mean and pairwise
/// independent, and products of independent RTWs are again RTWs, which keeps
/// the NBL product algebra exact even for a single sample — in the ±1 case
/// every squared source is identically 1.
#[derive(Debug, Clone)]
pub struct RtwBank {
    rng: Xoshiro256StarStar,
    seed: u64,
    states: Vec<f64>,
    amplitude: f64,
    switch_probability: f64,
}

impl RtwBank {
    /// Creates a bank of ±1 telegraph waves with switch probability 0.5
    /// (a fresh independent sign every step).
    pub fn new(num_sources: usize, seed: u64) -> Self {
        Self::with_parameters(num_sources, seed, 1.0, 0.5)
    }

    /// Creates a bank with a custom amplitude and per-step switch probability.
    ///
    /// # Panics
    ///
    /// Panics if `amplitude <= 0`, or `switch_probability` is outside `(0, 1]`.
    pub fn with_parameters(
        num_sources: usize,
        seed: u64,
        amplitude: f64,
        switch_probability: f64,
    ) -> Self {
        assert!(
            amplitude.is_finite() && amplitude > 0.0,
            "amplitude must be positive and finite"
        );
        assert!(
            switch_probability > 0.0 && switch_probability <= 1.0,
            "switch probability must be in (0, 1]"
        );
        let mut bank = RtwBank {
            rng: Xoshiro256StarStar::new(seed),
            seed,
            states: Vec::new(),
            amplitude,
            switch_probability,
        };
        bank.init_states(num_sources);
        bank
    }

    fn init_states(&mut self, num_sources: usize) {
        self.states = (0..num_sources)
            .map(|_| {
                if self.rng.next_bool(0.5) {
                    self.amplitude
                } else {
                    -self.amplitude
                }
            })
            .collect();
    }

    /// The wave amplitude.
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// The per-step switching probability.
    pub fn switch_probability(&self) -> f64 {
        self.switch_probability
    }
}

impl CarrierBank for RtwBank {
    fn num_sources(&self) -> usize {
        self.states.len()
    }

    fn next_sample(&mut self, out: &mut [f64]) {
        assert_eq!(out.len(), self.states.len(), "buffer size mismatch");
        for (slot, state) in out.iter_mut().zip(self.states.iter_mut()) {
            if self.rng.next_bool(self.switch_probability) {
                *state = -*state;
            }
            *slot = *state;
        }
    }

    fn variance(&self) -> f64 {
        self.amplitude * self.amplitude
    }

    fn reset(&mut self) {
        let n = self.states.len();
        self.rng = Xoshiro256StarStar::new(self.seed);
        self.init_states(n);
    }

    fn family(&self) -> &'static str {
        "rtw"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RunningStats;

    #[test]
    fn values_are_plus_minus_amplitude() {
        let mut bank = RtwBank::with_parameters(3, 1, 2.5, 0.3);
        let mut buf = [0.0; 3];
        for _ in 0..100 {
            bank.next_sample(&mut buf);
            for &x in &buf {
                assert!(x == 2.5 || x == -2.5);
            }
        }
    }

    #[test]
    fn zero_mean_and_unit_variance() {
        let mut bank = RtwBank::new(1, 5);
        let mut buf = [0.0];
        let mut stats = RunningStats::new();
        for _ in 0..50_000 {
            bank.next_sample(&mut buf);
            stats.push(buf[0]);
        }
        assert!(stats.mean().abs() < 0.02);
        assert!((stats.variance() - 1.0).abs() < 0.01);
    }

    #[test]
    fn product_of_independent_rtws_is_zero_mean() {
        let mut bank = RtwBank::new(2, 8);
        let mut buf = [0.0; 2];
        let mut stats = RunningStats::new();
        for _ in 0..50_000 {
            bank.next_sample(&mut buf);
            stats.push(buf[0] * buf[1]);
        }
        assert!(stats.mean().abs() < 0.02);
    }

    #[test]
    fn squared_rtw_is_identically_one() {
        let mut bank = RtwBank::new(1, 3);
        let mut buf = [0.0];
        for _ in 0..100 {
            bank.next_sample(&mut buf);
            assert!((buf[0] * buf[0] - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn low_switch_probability_produces_correlated_steps() {
        let mut bank = RtwBank::with_parameters(1, 4, 1.0, 0.05);
        let mut buf = [0.0];
        bank.next_sample(&mut buf);
        let mut flips = 0;
        let mut prev = buf[0];
        let steps = 10_000;
        for _ in 0..steps {
            bank.next_sample(&mut buf);
            if buf[0] != prev {
                flips += 1;
            }
            prev = buf[0];
        }
        let rate = flips as f64 / steps as f64;
        assert!((rate - 0.05).abs() < 0.01, "flip rate {rate}");
    }

    #[test]
    #[should_panic]
    fn invalid_switch_probability_rejected() {
        let _ = RtwBank::with_parameters(1, 0, 1.0, 0.0);
    }
}
