//! Streaming statistics: Welford running moments and the paper's
//! "converged to the third significant digit" stopping rule.

use std::fmt;

/// Numerically stable streaming mean/variance accumulator (Welford's method).
///
/// ```
/// use nbl_noise::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12); // sample variance
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.6e} sd={:.6e}",
            self.count,
            self.mean(),
            self.std_dev()
        )
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = RunningStats::new();
        s.extend(iter);
        s
    }
}

/// Implements the paper's §IV stopping rule: "each instance is simulated
/// until the mean value of S_N has converged to the third significant digit
/// or until the sample cap is reached".
///
/// The tracker periodically snapshots the running mean and declares
/// convergence once `required_stable_checks` consecutive snapshots agree to
/// `significant_digits` significant digits (values indistinguishable from
/// zero at `zero_epsilon` are treated as converged-to-zero).
#[derive(Debug, Clone)]
pub struct ConvergenceTracker {
    significant_digits: u32,
    check_interval: u64,
    required_stable_checks: u32,
    zero_epsilon: f64,
    last_rounded: Option<f64>,
    stable_checks: u32,
    converged_at: Option<u64>,
}

impl ConvergenceTracker {
    /// Creates a tracker that checks every `check_interval` samples whether
    /// the mean is stable to `significant_digits` significant digits.
    ///
    /// # Panics
    ///
    /// Panics if `significant_digits == 0` or `check_interval == 0`.
    pub fn new(significant_digits: u32, check_interval: u64) -> Self {
        assert!(
            significant_digits > 0,
            "need at least one significant digit"
        );
        assert!(check_interval > 0, "check interval must be positive");
        ConvergenceTracker {
            significant_digits,
            check_interval,
            required_stable_checks: 3,
            zero_epsilon: 1e-12,
            last_rounded: None,
            stable_checks: 0,
            converged_at: None,
        }
    }

    /// Sets how many consecutive agreeing snapshots are required (default 3).
    pub fn with_required_stable_checks(mut self, checks: u32) -> Self {
        self.required_stable_checks = checks.max(1);
        self
    }

    /// Sets the magnitude below which a mean is considered exactly zero.
    pub fn with_zero_epsilon(mut self, epsilon: f64) -> Self {
        self.zero_epsilon = epsilon.abs();
        self
    }

    /// Rounds `x` to the tracker's number of significant digits.
    pub fn round_significant(&self, x: f64) -> f64 {
        round_to_significant_digits(x, self.significant_digits)
    }

    /// Feeds the current sample count and running mean; returns `true` once
    /// convergence has been declared (and keeps returning `true` thereafter).
    pub fn observe(&mut self, samples: u64, mean: f64) -> bool {
        if self.converged_at.is_some() {
            return true;
        }
        if samples == 0 || !samples.is_multiple_of(self.check_interval) {
            return false;
        }
        let rounded = if mean.abs() < self.zero_epsilon {
            0.0
        } else {
            self.round_significant(mean)
        };
        match self.last_rounded {
            Some(prev) if prev == rounded => {
                self.stable_checks += 1;
                if self.stable_checks >= self.required_stable_checks {
                    self.converged_at = Some(samples);
                    return true;
                }
            }
            _ => {
                self.stable_checks = 0;
            }
        }
        self.last_rounded = Some(rounded);
        false
    }

    /// The sample count at which convergence was declared, if it has been.
    pub fn converged_at(&self) -> Option<u64> {
        self.converged_at
    }
}

/// Rounds `x` to `digits` significant digits.
pub fn round_to_significant_digits(x: f64, digits: u32) -> f64 {
    if x == 0.0 || !x.is_finite() {
        return x;
    }
    let magnitude = x.abs().log10().floor();
    let factor = 10f64.powf(digits as f64 - 1.0 - magnitude);
    (x * factor).round() / factor
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_computation() {
        let data = [0.3, -1.2, 4.5, 2.2, -0.7, 0.0, 3.3];
        let stats: RunningStats = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((stats.mean() - mean).abs() < 1e-12);
        assert!((stats.variance() - var).abs() < 1e-12);
        assert!((stats.std_dev() - var.sqrt()).abs() < 1e-12);
        assert!(stats.std_error() > 0.0);
    }

    #[test]
    fn empty_and_single_sample_edge_cases() {
        let mut s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        s.push(5.0);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for (i, &x) in data.iter().enumerate() {
            if i < 40 {
                left.push(x);
            } else {
                right.push(x);
            }
        }
        let mut merged = left;
        merged.merge(&right);
        let direct: RunningStats = data.iter().copied().collect();
        assert_eq!(merged.count(), direct.count());
        assert!((merged.mean() - direct.mean()).abs() < 1e-12);
        assert!((merged.variance() - direct.variance()).abs() < 1e-12);

        let mut empty = RunningStats::new();
        empty.merge(&direct);
        assert_eq!(empty.count(), direct.count());
        let mut also = direct;
        also.merge(&RunningStats::new());
        assert_eq!(also.count(), direct.count());
    }

    #[test]
    fn significant_digit_rounding() {
        assert_eq!(round_to_significant_digits(0.0012345, 3), 0.00123);
        assert_eq!(round_to_significant_digits(12345.0, 3), 12300.0);
        assert_eq!(round_to_significant_digits(-0.0987, 2), -0.099);
        assert_eq!(round_to_significant_digits(0.0, 3), 0.0);
    }

    #[test]
    fn convergence_tracker_stabilizes() {
        let mut tracker = ConvergenceTracker::new(3, 100);
        // Mean wobbles initially, then stabilizes at 0.0451.
        let mut converged = None;
        for step in 1..=2000u64 {
            let mean = if step < 500 {
                0.05 + 0.01 * (step as f64 * 0.1).sin()
            } else {
                0.0451
            };
            if tracker.observe(step, mean) {
                converged = Some(step);
                break;
            }
        }
        let at = converged.expect("should converge");
        assert!(at >= 500);
        assert_eq!(tracker.converged_at(), Some(at));
        // Once converged, stays converged.
        assert!(tracker.observe(at + 100, 99.0));
    }

    #[test]
    fn convergence_tracker_zero_mean() {
        let mut tracker = ConvergenceTracker::new(3, 10).with_zero_epsilon(1e-6);
        let mut converged = false;
        for step in 1..=200u64 {
            if tracker.observe(step, 1e-9) {
                converged = true;
                break;
            }
        }
        assert!(converged);
    }

    #[test]
    fn tracker_only_checks_on_interval() {
        let mut tracker = ConvergenceTracker::new(3, 1000);
        assert!(!tracker.observe(1, 1.0));
        assert!(!tracker.observe(999, 1.0));
    }

    #[test]
    fn display_contains_count() {
        let s: RunningStats = [1.0, 2.0].iter().copied().collect();
        assert!(s.to_string().contains("n=2"));
    }
}
