//! The fleet coordinator: farms cube-restricted subproblems to `nbl-satd`
//! servers and merges their answers into one verdict.
//!
//! [`ShardCoordinator::solve`] splits the formula into a covering,
//! pairwise-contradictory cube set (see [`crate::splitter`]), then runs one
//! pump thread per connected shard. Each pump pops cubes from a shared work
//! queue, restricts the original formula to the cube and ships the residual
//! as a `SOLVE` frame. The first *verified* satisfying model wins: the
//! coordinator checks every returned model against the original formula
//! before declaring SAT and cancelling the rest of the fleet over the wire.
//! `UNSATISFIABLE` is claimed only when every cube of the partition has been
//! refuted and no sub-solve was left undecided.
//!
//! The work queue is resilient: pumps steal cubes that have sat on a slow
//! shard past [`ShardConfig::steal_after`] and re-split them adaptively into
//! finer cubes; a shard connection dying mid-solve requeues its cube for the
//! survivors; and when the whole fleet is gone the coordinator degrades to
//! solving the leftover cubes locally through its [`BackendRegistry`].
//!
//! Shards that answer the `HELLO` probe with `CAPS sessions=true` are driven
//! through the incremental `SESSION` extension instead of per-cube `SOLVE`
//! frames: the pump pushes the full formula once at startup and each cube
//! then ships as a [`Cube::to_assumptions`] list on a `SESSION ASSUME`
//! frame, so the shard's solver keeps its learned clauses (and its clause
//! database) across the whole cube stream. Legacy shards keep the original
//! restrict-and-re-encode dispatch.

use crate::splitter::{split_cube, SplitConfig};
use cnf::{
    dimacs, preprocess, Assignment, CnfFormula, Cube, CubeRestriction, PreprocessOutcome,
    RestrictionOutcome, Variable,
};
use nbl_net::{
    ClientConfig, NblSatClient, NetError, RemoteJob, RemoteSession, SolveFrame, WireCause,
    WireVerdict,
};
use nbl_sat_core::{
    Artifacts, BackendRegistry, Budget, ExhaustedResource, SolveRequest, SolveStats, SolveVerdict,
    UnknownCause,
};
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long a pump sleeps between checks of the shared state while idle or
/// while polling an in-flight remote job.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Errors surfaced while building a coordinator.
#[derive(Debug)]
pub enum ShardError {
    /// Shard addresses were given but not a single one could be reached.
    NoShards {
        /// The connection error for each address, in input order.
        errors: Vec<(String, std::io::Error)>,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::NoShards { errors } => {
                write!(f, "no shard reachable:")?;
                for (addr, e) in errors {
                    write!(f, " [{addr}: {e}]")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// Configuration of a [`ShardCoordinator`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Registry name of the backend the shards (and the local fallback) run.
    pub backend: String,
    /// Base seed; cube `i` solves with seed `seed + i` so stochastic
    /// backends stay deterministic per cube.
    pub seed: u64,
    /// Cube-count target for the initial split. Defaults to four cubes per
    /// connected shard (minimum eight) so the queue stays ahead of the fleet.
    pub target_cubes: Option<usize>,
    /// Depth cap on split cubes (branch literals per cube).
    pub max_depth: usize,
    /// Per-cube wall-clock budget shipped in each `SOLVE` frame, if any.
    pub cube_wall_ms: Option<u64>,
    /// Per-shard TCP connect deadline.
    pub connect_timeout: Duration,
    /// Give up on a shard entirely once one of its jobs has been in flight
    /// this long: cancel, requeue the cube elsewhere, drop the connection.
    pub solve_timeout: Option<Duration>,
    /// An idle pump steals and re-splits a cube another shard has held in
    /// flight longer than this.
    pub steal_after: Duration,
    /// Solve leftover cubes in-process when the fleet dies or is empty.
    pub local_fallback: bool,
    /// Backends for the local fallback path.
    pub registry: BackendRegistry,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            backend: "cdcl".to_owned(),
            seed: 0,
            target_cubes: None,
            max_depth: 24,
            cube_wall_ms: None,
            connect_timeout: Duration::from_secs(5),
            solve_timeout: None,
            steal_after: Duration::from_secs(2),
            local_fallback: true,
            registry: BackendRegistry::default(),
        }
    }
}

impl ShardConfig {
    /// The default config with the given backend name.
    pub fn new(backend: impl Into<String>) -> Self {
        ShardConfig {
            backend: backend.into(),
            ..ShardConfig::default()
        }
    }
}

/// Fleet-level counters, merged across every pump of a [`ShardCoordinator::solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetStats {
    /// Shards connected when the solve started.
    pub shards: usize,
    /// Cubes the initial split produced (open + refuted).
    pub cubes_split: usize,
    /// Cubes refuted by unit propagation during splitting (initial + steals).
    pub splitter_refuted: usize,
    /// Remote `s SATISFIABLE` results received.
    pub remote_sat: usize,
    /// Remote `s UNSATISFIABLE` results received.
    pub remote_unsat: usize,
    /// Remote `s UNKNOWN` results received.
    pub remote_unknown: usize,
    /// Cubes whose restriction satisfied the formula without any solving.
    pub trivial_sat: usize,
    /// Cubes whose restriction was refuted without any solving.
    pub trivial_unsat: usize,
    /// Cubes solved in-process by the local fallback.
    pub local_solves: usize,
    /// Cubes put back on the queue (shard death, faulty model, retry).
    pub requeues: usize,
    /// Cubes stolen from slow shards.
    pub steals: usize,
    /// Adaptive re-splits performed on stolen cubes.
    pub resplits: usize,
    /// Cubes dispatched as `SESSION ASSUME` assumption lists instead of
    /// re-encoded `SOLVE` frames.
    pub assumption_dispatches: usize,
    /// Shard connections lost mid-solve.
    pub shard_deaths: usize,
    /// `CANCEL` frames sent to abandon moot in-flight jobs.
    pub cancellations_sent: usize,
    /// Pipeline cache hits reported by remote shards and the local fallback.
    pub cache_hits: u64,
    /// Variables eliminated by preprocessing: the coordinator's own
    /// front-of-fleet pass plus any reported by sub-solves.
    pub pre_vars_removed: u64,
    /// Clauses exported into cooperative-portfolio pools, summed over every
    /// remote shard and local fallback solve.
    pub clauses_exported: u64,
    /// Clauses imported from cooperative-portfolio pools, summed over every
    /// remote shard and local fallback solve.
    pub clauses_imported: u64,
}

impl fmt::Display for FleetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shards={} cubes={} splitter-refuted={} remote sat/unsat/unknown={}/{}/{} \
             trivial sat/unsat={}/{} local={} requeues={} steals={} resplits={} \
             assume-dispatches={} deaths={} cancels={} cache-hits={} pre-vars-removed={} \
             clauses-exported={} clauses-imported={}",
            self.shards,
            self.cubes_split,
            self.splitter_refuted,
            self.remote_sat,
            self.remote_unsat,
            self.remote_unknown,
            self.trivial_sat,
            self.trivial_unsat,
            self.local_solves,
            self.requeues,
            self.steals,
            self.resplits,
            self.assumption_dispatches,
            self.shard_deaths,
            self.cancellations_sent,
            self.cache_hits,
            self.pre_vars_removed,
            self.clauses_exported,
            self.clauses_imported,
        )
    }
}

/// The merged outcome of a fleet solve.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// The fleet verdict. `Satisfiable` is always backed by a verified
    /// `model`; `Unsatisfiable` means every cube of the partition was
    /// refuted; `Unknown` carries the first blocking cause.
    pub verdict: SolveVerdict,
    /// A satisfying assignment over the original formula's variables,
    /// verified by the coordinator itself.
    pub model: Option<Assignment>,
    /// Per-shard [`SolveStats`] summed over every sub-solve.
    pub stats: SolveStats,
    /// Fleet-level counters.
    pub fleet: FleetStats,
}

impl FleetOutcome {
    /// SAT-competition exit code: 10 satisfiable, 20 unsatisfiable, 0 unknown.
    pub fn exit_code(&self) -> i32 {
        match self.verdict {
            SolveVerdict::Satisfiable => 10,
            SolveVerdict::Unsatisfiable => 20,
            SolveVerdict::Unknown(_) => 0,
        }
    }
}

/// One connected shard.
struct ShardConnection {
    addr: String,
    client: NblSatClient,
    /// `true` when the shard answered the `HELLO` probe with
    /// `CAPS sessions=true`; its pump then dispatches cubes as assumptions.
    sessions: bool,
}

impl fmt::Debug for ShardConnection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardConnection")
            .field("addr", &self.addr)
            .field("sessions", &self.sessions)
            .finish_non_exhaustive()
    }
}

/// A cube-and-conquer coordinator over a fleet of `nbl-satd` servers.
///
/// Connect with [`ShardCoordinator::connect`]; an empty address list yields a
/// fleet-less coordinator that solves everything through the local fallback.
#[derive(Debug)]
pub struct ShardCoordinator {
    config: ShardConfig,
    shards: Vec<ShardConnection>,
}

/// One unit of work: a cube of the partition. Tasks form a forest — stealing
/// re-splits a task into children covering its subspace exactly, so a task
/// is refuted when its own sub-solve says UNSAT *or* all children are.
struct Task {
    cube: Cube,
    parent: Option<usize>,
    children: Vec<usize>,
    resolved: bool,
    /// `(shard index, dispatch instant)` while a remote job runs this cube.
    inflight: Option<(usize, Instant)>,
    /// Set once stolen so a cube is re-split at most once.
    stolen: bool,
    /// Dispatch count; an undecided cube is retried once before its
    /// uncertainty becomes a sticky blemish.
    attempts: u32,
}

/// State shared by every pump, behind one mutex.
struct FleetState {
    tasks: Vec<Task>,
    pending: VecDeque<usize>,
    /// Root tasks not yet resolved. Zero means the whole space is covered by
    /// refutations (or blemished resolutions) and pumps may stop.
    open_roots: usize,
    /// The winning verified model, if any pump found one.
    sat: Option<Assignment>,
    /// First cause that forbids claiming UNSAT (an undecided cube).
    blemish: Option<UnknownCause>,
    /// Set on SAT or when `open_roots` hits zero; stops every pump.
    done: bool,
    stats: SolveStats,
    fleet: FleetStats,
}

impl FleetState {
    /// Resolves `id` (refuted or blemish-resolved), marks its descendants
    /// moot, and propagates resolution up the forest. Decrements
    /// `open_roots` when a root becomes resolved.
    fn resolve(&mut self, id: usize) {
        if self.tasks[id].resolved {
            return;
        }
        self.tasks[id].resolved = true;
        self.mark_descendants(id);
        let mut current = id;
        loop {
            match self.tasks[current].parent {
                None => {
                    self.open_roots -= 1;
                    break;
                }
                Some(parent) => {
                    if self.tasks[parent].resolved {
                        break;
                    }
                    let children = self.tasks[parent].children.clone();
                    if children.iter().all(|&c| self.tasks[c].resolved) {
                        self.tasks[parent].resolved = true;
                        self.mark_descendants(parent);
                        current = parent;
                    } else {
                        break;
                    }
                }
            }
        }
        if self.open_roots == 0 {
            self.done = true;
        }
    }

    fn mark_descendants(&mut self, id: usize) {
        let mut stack = self.tasks[id].children.clone();
        while let Some(child) = stack.pop() {
            if !self.tasks[child].resolved {
                self.tasks[child].resolved = true;
                stack.extend(self.tasks[child].children.iter().copied());
            }
        }
    }

    /// Records a verified satisfying model and stops the fleet.
    fn record_sat(&mut self, model: Assignment) {
        if self.sat.is_none() {
            self.sat = Some(model);
        }
        self.done = true;
    }

    /// Pops the next unresolved pending task and marks it in flight.
    fn claim_pending(&mut self, shard: usize) -> Option<usize> {
        while let Some(id) = self.pending.pop_front() {
            if self.tasks[id].resolved {
                continue;
            }
            self.tasks[id].inflight = Some((shard, Instant::now()));
            self.tasks[id].attempts += 1;
            return Some(id);
        }
        None
    }

    /// Finds a cube worth stealing: unresolved, un-stolen, childless, and in
    /// flight on some shard longer than `steal_after`. Marks it stolen.
    fn claim_steal(&mut self, steal_after: Duration) -> Option<(usize, Cube)> {
        for (id, task) in self.tasks.iter_mut().enumerate() {
            if task.resolved || task.stolen || !task.children.is_empty() {
                continue;
            }
            if let Some((_, since)) = task.inflight {
                if since.elapsed() >= steal_after {
                    task.stolen = true;
                    return Some((id, task.cube.clone()));
                }
            }
        }
        None
    }

    /// Puts a task back on the queue after its shard failed it.
    fn requeue(&mut self, id: usize) {
        self.tasks[id].inflight = None;
        if !self.tasks[id].resolved {
            self.pending.push_front(id);
            self.fleet.requeues += 1;
        }
    }

    /// Installs the children of a re-split: refuted cubes resolve
    /// immediately, open cubes join the queue.
    fn install_resplit(&mut self, parent: usize, open: Vec<Cube>, refuted: Vec<Cube>) {
        let mut refuted_ids = Vec::with_capacity(refuted.len());
        for (cube, is_refuted) in open
            .into_iter()
            .map(|c| (c, false))
            .chain(refuted.into_iter().map(|c| (c, true)))
        {
            let id = self.tasks.len();
            self.tasks.push(Task {
                cube,
                parent: Some(parent),
                children: Vec::new(),
                resolved: false,
                inflight: None,
                stolen: false,
                attempts: 0,
            });
            self.tasks[parent].children.push(id);
            if is_refuted {
                refuted_ids.push(id);
            } else {
                self.pending.push_back(id);
            }
        }
        self.fleet.steals += 1;
        self.fleet.resplits += 1;
        self.fleet.splitter_refuted += refuted_ids.len();
        for id in refuted_ids {
            self.resolve(id);
        }
    }

    fn note_blemish(&mut self, cause: UnknownCause) {
        if self.blemish.is_none() {
            self.blemish = Some(cause);
        }
    }
}

/// Adds every counter of `part` (and its wall time) into `total`.
fn absorb_stats(total: &mut SolveStats, part: &SolveStats) {
    total.decisions += part.decisions;
    total.conflicts += part.conflicts;
    total.propagations += part.propagations;
    total.restarts += part.restarts;
    total.learned_clauses += part.learned_clauses;
    total.assignments_tried += part.assignments_tried;
    total.flips += part.flips;
    total.coprocessor_checks += part.coprocessor_checks;
    total.samples += part.samples;
    total.cache_hits += part.cache_hits;
    total.preprocessed_vars_removed += part.preprocessed_vars_removed;
    total.clauses_exported += part.clauses_exported;
    total.clauses_imported += part.clauses_imported;
    total.wall_time += part.wall_time;
}

fn cause_from_wire(cause: WireCause) -> UnknownCause {
    match cause {
        WireCause::Cancelled => UnknownCause::Cancelled,
        WireCause::Incomplete => UnknownCause::Incomplete,
        WireCause::BudgetWallClock => UnknownCause::BudgetExhausted(ExhaustedResource::WallClock),
        WireCause::BudgetSamples => UnknownCause::BudgetExhausted(ExhaustedResource::Samples),
        WireCause::BudgetChecks => {
            UnknownCause::BudgetExhausted(ExhaustedResource::CoprocessorChecks)
        }
    }
}

/// Lifts a remote `v`-line (DIMACS-signed literals) into an assignment
/// spanning at least `num_vars` variables; unmentioned variables are false.
fn assignment_from_lits(lits: &[i64], num_vars: usize) -> Assignment {
    let span = lits
        .iter()
        .map(|&l| l.unsigned_abs() as usize)
        .max()
        .unwrap_or(0)
        .max(num_vars);
    let mut model = Assignment::all_false(span);
    for &lit in lits {
        if lit != 0 {
            model.set(Variable::new(lit.unsigned_abs() as usize - 1), lit > 0);
        }
    }
    model
}

/// [`assignment_from_lits`] followed by overwriting the cube's fixed
/// literals. The residual never mentions fixed variables, so the remote
/// solver's choices for them (absent or arbitrary) must be corrected here.
fn model_from_lits(lits: &[i64], restriction: &CubeRestriction, num_vars: usize) -> Assignment {
    restriction.extend_model(&assignment_from_lits(lits, num_vars))
}

impl ShardCoordinator {
    /// Connects to every address of the fleet. Unreachable shards are
    /// dropped; the call fails only when addresses were given and *none*
    /// could be reached. An empty `addrs` is fine — the coordinator then
    /// solves everything through the local fallback.
    pub fn connect(addrs: &[String], config: ShardConfig) -> Result<Self, ShardError> {
        // The read timeout bounds the request acks (the `HELLO` capability
        // probe in particular, which a wedged or frozen server may never
        // answer); in-flight solves poll with their own explicit timeouts.
        let client_config = ClientConfig::new()
            .with_connect_timeout(config.connect_timeout)
            .with_read_timeout(config.connect_timeout);
        let mut shards = Vec::new();
        let mut errors = Vec::new();
        for addr in addrs {
            match NblSatClient::connect_with_retries_and_config(
                addr.as_str(),
                config.connect_timeout,
                client_config,
            ) {
                Ok(client) => {
                    // Legacy servers answer the probe with an error line,
                    // which `hello` already maps to `Ok(false)`.
                    let sessions = client.hello().unwrap_or(false);
                    shards.push(ShardConnection {
                        addr: addr.clone(),
                        client,
                        sessions,
                    });
                }
                Err(e) => errors.push((addr.clone(), e)),
            }
        }
        if shards.is_empty() && !addrs.is_empty() {
            return Err(ShardError::NoShards { errors });
        }
        Ok(ShardCoordinator { config, shards })
    }

    /// The addresses of the shards actually connected.
    pub fn shard_addrs(&self) -> Vec<&str> {
        self.shards.iter().map(|s| s.addr.as_str()).collect()
    }

    /// Number of connected shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Solves `formula` across the fleet. See the module docs for the
    /// protocol; this never panics on fleet failure — it degrades to local
    /// solving (when enabled) and reports `Unknown` rather than guessing.
    ///
    /// The formula runs through the shared preprocessing pass before any
    /// cube is split: unit propagation and pure-literal elimination may
    /// settle the verdict outright (no shard sees a frame), and otherwise
    /// the fleet conquers the *reduced* formula while the winning model is
    /// lifted back through the [`cnf::ReductionTrace`] and verified against
    /// the original before it is reported.
    pub fn solve(&self, formula: &CnfFormula) -> FleetOutcome {
        let pre = preprocess(formula);
        let vars_removed = pre.report.vars_removed() as u64;
        let immediate = |verdict, model: Option<Assignment>| FleetOutcome {
            verdict,
            model,
            stats: SolveStats {
                preprocessed_vars_removed: vars_removed,
                ..SolveStats::default()
            },
            fleet: FleetStats {
                shards: self.shards.len(),
                pre_vars_removed: vars_removed,
                ..FleetStats::default()
            },
        };
        match pre.outcome {
            PreprocessOutcome::Satisfiable(model) => {
                debug_assert!(formula.evaluate(&model));
                if formula.evaluate(&model) {
                    immediate(SolveVerdict::Satisfiable, Some(model))
                } else {
                    // Defensive: a preprocessor bug must not fabricate SAT.
                    immediate(SolveVerdict::Unknown(UnknownCause::Incomplete), None)
                }
            }
            PreprocessOutcome::Unsatisfiable => immediate(SolveVerdict::Unsatisfiable, None),
            PreprocessOutcome::Reduced {
                formula: reduced,
                trace,
            } => {
                let mut outcome = self.solve_fleet(&reduced);
                outcome.stats.preprocessed_vars_removed += vars_removed;
                outcome.fleet.pre_vars_removed += vars_removed;
                if let Some(model) = outcome.model.take() {
                    let lifted = trace.lift_model(&model);
                    if formula.evaluate(&lifted) {
                        outcome.model = Some(lifted);
                    } else {
                        // Defensive: never report a model that fails the
                        // original formula, even if the reduced solve's
                        // model checked out downstream.
                        debug_assert!(false, "lifted model failed original formula");
                        outcome.verdict = SolveVerdict::Unknown(UnknownCause::Incomplete);
                    }
                }
                outcome
            }
        }
    }

    /// Splits, dispatches and merges: the cube-and-conquer engine proper,
    /// running on the (already preprocessed) formula it is handed.
    fn solve_fleet(&self, formula: &CnfFormula) -> FleetOutcome {
        let target = self
            .config
            .target_cubes
            .unwrap_or_else(|| (4 * self.shards.len()).max(8));
        let split_config = SplitConfig {
            target_cubes: target,
            max_depth: self.config.max_depth,
        };
        let partition = split_cube(formula, &Cube::new(), &split_config);

        let mut state = FleetState {
            tasks: Vec::new(),
            pending: VecDeque::new(),
            open_roots: 0,
            sat: None,
            blemish: None,
            done: false,
            stats: SolveStats::default(),
            fleet: FleetStats {
                shards: self.shards.len(),
                cubes_split: partition.num_cubes(),
                splitter_refuted: partition.refuted.len(),
                ..FleetStats::default()
            },
        };
        for cube in partition.open {
            let id = state.tasks.len();
            state.tasks.push(Task {
                cube,
                parent: None,
                children: Vec::new(),
                resolved: false,
                inflight: None,
                stolen: false,
                attempts: 0,
            });
            state.pending.push_back(id);
            state.open_roots += 1;
        }
        state.done = state.open_roots == 0;
        let shared = Shared {
            state: Mutex::new(state),
            wake: Condvar::new(),
        };

        std::thread::scope(|scope| {
            for (index, shard) in self.shards.iter().enumerate() {
                let shared = &shared;
                let config = &self.config;
                scope.spawn(move || {
                    pump(
                        index,
                        &shard.client,
                        shard.sessions,
                        formula,
                        config,
                        shared,
                    )
                });
            }
        });

        let mut state = shared.state.into_inner().unwrap_or_else(|e| e.into_inner());
        if state.sat.is_none() && state.open_roots > 0 {
            self.local_fallback(formula, &mut state);
        }
        let verdict = if let Some(model) = &state.sat {
            debug_assert!(formula.evaluate(model));
            SolveVerdict::Satisfiable
        } else if let Some(cause) = state.blemish {
            SolveVerdict::Unknown(cause)
        } else if state.open_roots == 0 {
            SolveVerdict::Unsatisfiable
        } else {
            SolveVerdict::Unknown(UnknownCause::Incomplete)
        };
        FleetOutcome {
            verdict,
            model: state.sat,
            stats: state.stats,
            fleet: state.fleet,
        }
    }

    /// Solves every unresolved leaf cube in-process, in task order.
    fn local_fallback(&self, formula: &CnfFormula, state: &mut FleetState) {
        if !self.config.local_fallback {
            state.note_blemish(UnknownCause::Incomplete);
            return;
        }
        let mut id = 0;
        while id < state.tasks.len() {
            if state.sat.is_some() {
                return;
            }
            if state.tasks[id].resolved || !state.tasks[id].children.is_empty() {
                id += 1;
                continue;
            }
            let cube = state.tasks[id].cube.clone();
            let restriction = formula.restrict(&cube);
            state.fleet.local_solves += 1;
            match restriction.outcome {
                RestrictionOutcome::TriviallyUnsat => {
                    state.fleet.trivial_unsat += 1;
                    state.resolve(id);
                }
                RestrictionOutcome::TriviallySat => {
                    state.fleet.trivial_sat += 1;
                    let model = restriction.trivial_model(formula.num_vars());
                    if formula.evaluate(&model) {
                        state.record_sat(model);
                    } else {
                        state.note_blemish(UnknownCause::Incomplete);
                        state.resolve(id);
                    }
                }
                RestrictionOutcome::Reduced => {
                    let mut budget = Budget::unlimited();
                    if let Some(ms) = self.config.cube_wall_ms {
                        budget = budget.with_wall_time(Duration::from_millis(ms));
                    }
                    let request = SolveRequest::new(&restriction.formula)
                        .artifacts(Artifacts::Model)
                        .seed(self.config.seed.wrapping_add(id as u64))
                        .budget(budget);
                    match self.config.registry.solve(&self.config.backend, &request) {
                        Ok(outcome) => {
                            absorb_stats(&mut state.stats, &outcome.stats);
                            state.fleet.cache_hits += outcome.stats.cache_hits;
                            state.fleet.pre_vars_removed += outcome.stats.preprocessed_vars_removed;
                            state.fleet.clauses_exported += outcome.stats.clauses_exported;
                            state.fleet.clauses_imported += outcome.stats.clauses_imported;
                            match outcome.verdict {
                                SolveVerdict::Satisfiable => {
                                    let model = outcome
                                        .model
                                        .map(|m| restriction.extend_model(&m))
                                        .filter(|m| formula.evaluate(m));
                                    match model {
                                        Some(model) => state.record_sat(model),
                                        None => {
                                            state.note_blemish(UnknownCause::Incomplete);
                                            state.resolve(id);
                                        }
                                    }
                                }
                                SolveVerdict::Unsatisfiable => state.resolve(id),
                                SolveVerdict::Unknown(cause) => {
                                    state.note_blemish(cause);
                                    state.resolve(id);
                                }
                            }
                        }
                        Err(_) => {
                            state.note_blemish(UnknownCause::Incomplete);
                            state.resolve(id);
                        }
                    }
                }
            }
            id += 1;
        }
    }
}

struct Shared {
    state: Mutex<FleetState>,
    wake: Condvar,
}

/// What a pump should do next, decided under the lock.
enum PumpStep {
    Solve(usize, Cube),
    Resplit(usize, Cube),
    Stop,
}

fn next_step(shard: usize, config: &ShardConfig, shared: &Shared) -> PumpStep {
    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if state.done {
            shared.wake.notify_all();
            return PumpStep::Stop;
        }
        if let Some(id) = state.claim_pending(shard) {
            let cube = state.tasks[id].cube.clone();
            return PumpStep::Solve(id, cube);
        }
        if let Some((id, cube)) = state.claim_steal(config.steal_after) {
            return PumpStep::Resplit(id, cube);
        }
        let (next, _) = shared
            .wake
            .wait_timeout(state, POLL_INTERVAL)
            .unwrap_or_else(|e| e.into_inner());
        state = next;
    }
}

/// One shard's pump: claims cubes, ships them, handles the answers. Exits
/// when the fleet is done or this shard's connection dies.
///
/// Session-capable shards get the formula pushed once up front; every cube
/// then dispatches as a `SESSION ASSUME` over the cube's literals, keeping
/// the remote solver's learned clauses across the whole stream. When the
/// session cannot be established the pump silently falls back to the
/// restrict-and-re-encode `SOLVE` path.
fn pump(
    shard: usize,
    client: &NblSatClient,
    use_sessions: bool,
    formula: &CnfFormula,
    config: &ShardConfig,
    shared: &Shared,
) {
    let session = if use_sessions {
        open_shard_session(client, formula, config)
    } else {
        None
    };
    loop {
        let (id, cube) = match next_step(shard, config, shared) {
            PumpStep::Stop => return,
            PumpStep::Resplit(id, cube) => {
                resplit(id, &cube, formula, config, shared);
                continue;
            }
            PumpStep::Solve(id, cube) => (id, cube),
        };
        if let Some(session) = &session {
            if !solve_session(id, &cube, session, shard, formula, config, shared) {
                return; // the connection is gone; the cube was requeued
            }
            continue;
        }
        let restriction = formula.restrict(&cube);
        match restriction.outcome {
            RestrictionOutcome::TriviallyUnsat => {
                let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                state.fleet.trivial_unsat += 1;
                state.tasks[id].inflight = None;
                state.resolve(id);
                shared.wake.notify_all();
            }
            RestrictionOutcome::TriviallySat => {
                let model = restriction.trivial_model(formula.num_vars());
                let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                state.fleet.trivial_sat += 1;
                state.tasks[id].inflight = None;
                if formula.evaluate(&model) {
                    state.record_sat(model);
                } else {
                    state.note_blemish(UnknownCause::Incomplete);
                    state.resolve(id);
                }
                shared.wake.notify_all();
            }
            RestrictionOutcome::Reduced => {
                if !solve_remote(id, &restriction, shard, client, formula, config, shared) {
                    return; // the connection is gone; the cube was requeued
                }
            }
        }
    }
}

/// Re-splits a stolen cube outside the lock, then installs the children.
fn resplit(id: usize, cube: &Cube, formula: &CnfFormula, config: &ShardConfig, shared: &Shared) {
    let finer = split_cube(
        formula,
        cube,
        &SplitConfig {
            target_cubes: 4,
            max_depth: config.max_depth,
        },
    );
    // A degenerate re-split (the cube came back whole) adds no work.
    let progress = finer.num_cubes() > 1 || !finer.refuted.is_empty();
    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    if !state.tasks[id].resolved && progress {
        state.install_resplit(id, finer.open, finer.refuted);
        shared.wake.notify_all();
    }
}

/// Opens one incremental session on a shard and pushes the whole formula as
/// its base clause frame. `None` (fall back to one-shot dispatch) when any
/// step fails.
fn open_shard_session<'a>(
    client: &'a NblSatClient,
    formula: &CnfFormula,
    config: &ShardConfig,
) -> Option<RemoteSession<'a>> {
    let session = client.open_session(&config.backend).ok()?;
    session.add_clauses(&dimacs::to_string(formula)).ok()?;
    Some(session)
}

/// Ships one cube as an assumption list on the shard's standing session and
/// handles the answer. Returns `false` when the connection died and the pump
/// must exit.
fn solve_session(
    id: usize,
    cube: &Cube,
    session: &RemoteSession<'_>,
    shard: usize,
    formula: &CnfFormula,
    config: &ShardConfig,
    shared: &Shared,
) -> bool {
    let assumptions: Vec<i64> = cube
        .to_assumptions()
        .iter()
        .map(|l| l.to_dimacs())
        .collect();
    let job = match session.assume_with_budget(&assumptions, config.cube_wall_ms, None, None) {
        Ok(job) => job,
        Err(e) => return shard_died(id, shard, e, shared),
    };
    {
        let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.fleet.assumption_dispatches += 1;
    }
    // The session solver saw the full formula, so its model already covers
    // the cube's variables — no restriction lift needed.
    await_remote(id, job, shard, formula, config, shared, |lits| {
        assignment_from_lits(lits, formula.num_vars())
    })
}

/// Ships one cube-restricted residual to the shard and handles the answer.
/// Returns `false` when the connection died and the pump must exit.
fn solve_remote(
    id: usize,
    restriction: &CubeRestriction,
    shard: usize,
    client: &NblSatClient,
    formula: &CnfFormula,
    config: &ShardConfig,
    shared: &Shared,
) -> bool {
    let mut frame = SolveFrame::new(&config.backend, &dimacs::to_string(&restriction.formula));
    frame.seed = config.seed.wrapping_add(id as u64);
    frame.stats = true;
    frame.wall_ms = config.cube_wall_ms;
    let job = match client.submit(frame) {
        Ok(job) => job,
        Err(e) => return shard_died(id, shard, e, shared),
    };
    await_remote(id, job, shard, formula, config, shared, |lits| {
        model_from_lits(lits, restriction, formula.num_vars())
    })
}

/// Polls one in-flight remote job (one-shot or session) to completion and
/// merges its answer into the fleet state. `lift` turns the remote `v`-line
/// into a full assignment over the original formula's variables. Returns
/// `false` when the connection died and the pump must exit.
fn await_remote(
    id: usize,
    job: RemoteJob<'_>,
    shard: usize,
    formula: &CnfFormula,
    config: &ShardConfig,
    shared: &Shared,
    lift: impl Fn(&[i64]) -> Assignment,
) -> bool {
    let dispatched = Instant::now();
    loop {
        match job.wait_timeout(POLL_INTERVAL) {
            Ok(outcome) => {
                let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(stats) = outcome.stats {
                    let stats = stats.to_solve_stats();
                    absorb_stats(&mut state.stats, &stats);
                    state.fleet.cache_hits += stats.cache_hits;
                    state.fleet.pre_vars_removed += stats.preprocessed_vars_removed;
                    state.fleet.clauses_exported += stats.clauses_exported;
                    state.fleet.clauses_imported += stats.clauses_imported;
                }
                state.tasks[id].inflight = None;
                if state.tasks[id].resolved || state.done {
                    // Moot: another path (steal children, SAT elsewhere)
                    // settled this cube while the shard worked on it.
                    shared.wake.notify_all();
                    return true;
                }
                match outcome.verdict {
                    WireVerdict::Satisfiable => {
                        state.fleet.remote_sat += 1;
                        let lits = outcome.model.unwrap_or_default();
                        let model = lift(&lits);
                        if formula.evaluate(&model) {
                            state.record_sat(model);
                        } else {
                            // A model that fails verification marks a faulty
                            // shard; retry the cube like an Unknown.
                            retry_or_blemish(&mut state, id, UnknownCause::Incomplete);
                        }
                    }
                    WireVerdict::Unsatisfiable => {
                        state.fleet.remote_unsat += 1;
                        state.resolve(id);
                    }
                    WireVerdict::Unknown(cause) => {
                        state.fleet.remote_unknown += 1;
                        retry_or_blemish(&mut state, id, cause_from_wire(cause));
                    }
                }
                shared.wake.notify_all();
                return true;
            }
            Err(NetError::TimedOut) => {
                let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                if state.done || state.tasks[id].resolved {
                    state.tasks[id].inflight = None;
                    state.fleet.cancellations_sent += 1;
                    drop(state);
                    let _ = job.cancel();
                    return true;
                }
                if let Some(limit) = config.solve_timeout {
                    if dispatched.elapsed() >= limit {
                        // The shard is wedged: abandon the whole connection.
                        state.requeue(id);
                        state.fleet.shard_deaths += 1;
                        drop(state);
                        let _ = job.cancel();
                        shared.wake.notify_all();
                        return false;
                    }
                }
            }
            Err(e) => return shard_died(id, shard, e, shared),
        }
    }
}

/// An undecided cube gets one retry; after that its uncertainty is recorded
/// as a sticky blemish and the cube is resolved so the fleet can terminate.
fn retry_or_blemish(state: &mut FleetState, id: usize, cause: UnknownCause) {
    if state.tasks[id].attempts < 2 {
        state.requeue(id);
    } else {
        state.note_blemish(cause);
        state.resolve(id);
    }
}

/// Requeues the dying shard's cube and retires the pump.
fn shard_died(id: usize, _shard: usize, _error: NetError, shared: &Shared) -> bool {
    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    state.requeue(id);
    state.fleet.shard_deaths += 1;
    shared.wake.notify_all();
    false
}
