//! The cube splitter: partitions a formula's search space into a covering,
//! pairwise-contradictory set of [`Cube`]s.
//!
//! The splitter grows a branch tree breadth-first from the empty cube. At
//! each expansion it restricts the formula to the frontier cube (reusing
//! [`CnfFormula::restrict`]'s unit propagation), ranks the residual's
//! variables by weighted occurrence counts (a cheap lookahead: short clauses
//! weigh exponentially more, as splitting them fires the most propagation),
//! and branches on the best variable. Branches that unit propagation refutes
//! are pruned into [`CubeSplit::refuted`] instead of being farmed out.
//!
//! The construction is fully deterministic — the ranking breaks ties toward
//! the lowest variable index — so the same formula and config always produce
//! the same split, which keeps distributed runs reproducible.

use cnf::{CnfFormula, Cube, RestrictionOutcome, Variable};
use std::collections::VecDeque;

/// Configuration of a [`split`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitConfig {
    /// Stop splitting once this many cubes (open + refuted) exist. The
    /// splitter may finish under the target when the branch tree bottoms out
    /// and slightly over it when the final expansion adds two children.
    pub target_cubes: usize,
    /// Maximum number of branch literals per cube. Deeper frontier cubes are
    /// emitted as-is instead of being expanded further.
    pub max_depth: usize,
}

impl SplitConfig {
    /// A config targeting `target_cubes` cubes with the default depth cap.
    pub fn new(target_cubes: usize) -> Self {
        SplitConfig {
            target_cubes,
            ..SplitConfig::default()
        }
    }
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            target_cubes: 16,
            max_depth: 24,
        }
    }
}

/// The result of a [`split`]: a covering, pairwise-contradictory cube set.
///
/// Every minterm of the search space lies in exactly one cube of
/// `open ∪ refuted`: any two distinct cubes disagree on the branch variable
/// of their deepest common ancestor in the branch tree, and siblings cover
/// their parent's subspace exactly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CubeSplit {
    /// Cubes whose subproblems still need solving.
    pub open: Vec<Cube>,
    /// Cubes already refuted by unit propagation during splitting: the
    /// formula is unsatisfiable everywhere inside them.
    pub refuted: Vec<Cube>,
}

impl CubeSplit {
    /// All cubes of the partition, open first.
    pub fn all_cubes(&self) -> impl Iterator<Item = &Cube> {
        self.open.iter().chain(self.refuted.iter())
    }

    /// Total number of cubes in the partition.
    pub fn num_cubes(&self) -> usize {
        self.open.len() + self.refuted.len()
    }
}

/// Ranks the residual formula's variables and returns the best branch
/// variable: the one with the highest weighted occurrence count (each
/// occurrence in a clause of length `k` counts `2^-k`, so short clauses
/// dominate), ties broken toward the lowest index. `None` when the formula
/// mentions no variables.
pub fn branch_variable(formula: &CnfFormula) -> Option<Variable> {
    let mut scores = vec![0.0f64; formula.num_vars()];
    let mut seen = vec![false; formula.num_vars()];
    for clause in formula.iter() {
        // Clauses longer than ~64 literals contribute ~0 either way.
        let weight = 2.0f64.powi(-(clause.len().min(64) as i32));
        for &lit in clause.iter() {
            let index = lit.variable().index();
            scores[index] += weight;
            seen[index] = true;
        }
    }
    let mut best: Option<(usize, f64)> = None;
    for (index, &score) in scores.iter().enumerate() {
        if !seen[index] {
            continue;
        }
        match best {
            // Strict comparison keeps the lowest index on ties.
            Some((_, best_score)) if score <= best_score => {}
            _ => best = Some((index, score)),
        }
    }
    best.map(|(index, _)| Variable::new(index))
}

/// Splits the full search space of `formula` into a covering,
/// pairwise-contradictory set of cubes.
pub fn split(formula: &CnfFormula, config: &SplitConfig) -> CubeSplit {
    split_cube(formula, &Cube::new(), config)
}

/// Splits the subspace of `base` the same way [`split`] splits the full
/// space: the returned cubes all extend `base` (its literals are their
/// prefix), cover its subspace exactly, and are pairwise contradictory.
///
/// This is the adaptive re-split primitive: a coordinator stealing a slow
/// shard's cube calls this with a small `target_cubes` to break the cube
/// into finer work items.
pub fn split_cube(formula: &CnfFormula, base: &Cube, config: &SplitConfig) -> CubeSplit {
    let target = config.target_cubes.max(1);
    let mut result = CubeSplit::default();

    // Each frontier entry carries its cube and the formula restricted to it,
    // so ranking and pruning work incrementally instead of re-propagating
    // from scratch at every depth.
    let root = formula.restrict(base);
    match root.outcome {
        RestrictionOutcome::TriviallyUnsat => {
            result.refuted.push(base.clone());
            return result;
        }
        RestrictionOutcome::TriviallySat | RestrictionOutcome::Reduced => {}
    }
    let mut frontier: VecDeque<(Cube, CnfFormula)> = VecDeque::new();
    frontier.push_back((base.clone(), root.formula));

    while let Some((cube, residual)) = frontier.pop_front() {
        let done = result.num_cubes() + frontier.len() + 1 >= target;
        let branch = if done || cube.len() >= base.len() + config.max_depth {
            None
        } else {
            branch_variable(&residual)
        };
        let var = match branch {
            Some(var) => var,
            None => {
                result.open.push(cube);
                continue;
            }
        };
        for phase in [true, false] {
            let mut child = cube.clone();
            child.push(var.literal(phase));
            // Restrict incrementally against the parent's residual: the
            // residual plus the parent's fixed literals is equisatisfiable
            // with the original formula inside the parent cube, so a conflict
            // here refutes the child subspace of the *original* formula too.
            let restriction = residual.restrict(&Cube::from_literals([var.literal(phase)]));
            match restriction.outcome {
                RestrictionOutcome::TriviallyUnsat => result.refuted.push(child),
                RestrictionOutcome::TriviallySat => result.open.push(child),
                RestrictionOutcome::Reduced => frontier.push_back((child, restriction.formula)),
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::generators::{self, RandomKSatConfig};
    use cnf::{cnf_formula, Assignment};

    fn assert_partition(formula: &CnfFormula, split: &CubeSplit) {
        let n = formula.num_vars();
        // Exact cover: every minterm lies in exactly one cube.
        let total: u64 = split.all_cubes().map(|c| c.num_minterms(n)).sum();
        assert_eq!(total, 1u64 << n, "minterms must sum to 2^n");
        for a in Assignment::enumerate_all(n) {
            let hits = split.all_cubes().filter(|c| c.evaluate(&a)).count();
            assert_eq!(hits, 1, "assignment {a:?} covered {hits} times");
        }
    }

    #[test]
    fn split_partitions_the_space() {
        let f = cnf_formula![[1, 2, 3], [-1, -2], [2, -3], [-1, 3], [1, -2, -3]];
        let split = split(&f, &SplitConfig::new(6));
        assert!(split.num_cubes() >= 2);
        assert_partition(&f, &split);
    }

    #[test]
    fn refuted_cubes_really_are_unsat() {
        let f = generators::example7_unsat();
        let split = split(&f, &SplitConfig::new(8));
        assert_partition(&f, &split);
        let n = f.num_vars();
        for cube in &split.refuted {
            for a in Assignment::enumerate_all(n).filter(|a| cube.evaluate(a)) {
                assert!(!f.evaluate(&a), "refuted cube {cube} contains a model");
            }
        }
    }

    #[test]
    fn split_cube_extends_the_base() {
        let f =
            generators::random_ksat(&RandomKSatConfig::from_ratio(8, 3.5, 3).with_seed(7)).unwrap();
        let whole = split(&f, &SplitConfig::new(4));
        let base = whole.open.first().expect("an open cube").clone();
        let finer = split_cube(&f, &base, &SplitConfig::new(4));
        assert!(finer.num_cubes() >= 1);
        let n = f.num_vars();
        let base_size = base.num_minterms(n);
        let total: u64 = finer.all_cubes().map(|c| c.num_minterms(n)).sum();
        assert_eq!(total, base_size, "re-split must cover the base exactly");
        for cube in finer.all_cubes() {
            assert_eq!(&cube.literals()[..base.len()], base.literals());
        }
    }

    #[test]
    fn trivial_formulas_split_to_a_single_cube() {
        let empty = CnfFormula::new(3);
        let split_empty = split(&empty, &SplitConfig::new(8));
        assert_eq!(split_empty.open, vec![Cube::new()]);
        assert!(split_empty.refuted.is_empty());

        let mut contradiction = CnfFormula::new(2);
        contradiction.add_clause(Vec::<cnf::Literal>::new());
        let split_unsat = split(&contradiction, &SplitConfig::new(8));
        assert!(split_unsat.open.is_empty());
        assert_eq!(split_unsat.refuted, vec![Cube::new()]);
    }

    #[test]
    fn splitter_is_deterministic() {
        let f = generators::random_ksat(&RandomKSatConfig::from_ratio(12, 4.0, 3).with_seed(42))
            .unwrap();
        let config = SplitConfig::new(10);
        assert_eq!(split(&f, &config), split(&f, &config));
    }

    #[test]
    fn branch_variable_prefers_short_clauses() {
        // x3 occurs twice in 3-clauses; x1/x2 once in a 2-clause each. The
        // 2-clause weight (2^-2 each) beats one 3-clause (2^-3) but not two.
        let f = cnf_formula![[1, 2], [3, 4, 5], [3, -4, -5]];
        // x1: 0.25, x2: 0.25, x3: 0.25 — tie broken to lowest index.
        assert_eq!(branch_variable(&f), Some(Variable::new(0)));
        let g = cnf_formula![[1, 2, 4], [3, 4], [5, 6, -4]];
        // x4: 2^-3 + 2^-2 + 2^-3 = 0.5, the clear winner.
        assert_eq!(branch_variable(&g), Some(Variable::new(3)));
    }
}
