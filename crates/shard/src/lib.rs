//! `nbl-shard`: distributed cube-and-conquer over a fleet of `nbl-satd`
//! servers.
//!
//! The paper's NBL engine is a per-instance coprocessor; this crate scales it
//! *out* instead of up. A [`splitter`] partitions a formula's search space
//! into a covering, pairwise-contradictory set of cubes (occurrence-ranked
//! branching, unit-propagation pruning via [`cnf::CnfFormula::restrict`]),
//! and a [`ShardCoordinator`] farms the cube-restricted residuals to N
//! `nbl-satd` servers over the wire protocol of [`nbl_net`]:
//!
//! * the first remote model that *verifies against the original formula*
//!   decides SAT and cancels the rest of the fleet over the wire;
//! * UNSAT is claimed only when every cube of the partition is refuted;
//! * slow shards get their cubes stolen and adaptively re-split, dead
//!   connections get their cubes requeued, and an empty fleet degrades to
//!   solving locally through a [`nbl_sat_core::BackendRegistry`].
//!
//! The `nbl-sat-shard` binary in `src/bin/` wraps the coordinator into a
//! command-line tool following the SAT-competition exit-code convention.
//!
//! ```no_run
//! use nbl_shard::{ShardConfig, ShardCoordinator};
//!
//! let formula = cnf::dimacs::parse_str("p cnf 2 2\n1 2 0\n-1 -2 0\n")?;
//! let fleet = ShardCoordinator::connect(
//!     &["127.0.0.1:7040".into(), "127.0.0.1:7041".into()],
//!     ShardConfig::default(),
//! )?;
//! let outcome = fleet.solve(&formula);
//! assert!(outcome.verdict.is_sat());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod coordinator;
pub mod splitter;

pub use coordinator::{FleetOutcome, FleetStats, ShardConfig, ShardCoordinator, ShardError};
pub use splitter::{branch_variable, split, split_cube, CubeSplit, SplitConfig};
