//! `nbl-sat-shard` — cube-and-conquer a DIMACS `.cnf` file across a fleet of
//! `nbl-satd` servers.
//!
//! ```text
//! nbl-sat-shard --shard HOST:PORT [--shard HOST:PORT ...]
//!               [--backend NAME] [--seed N] [--cubes N] [--max-depth N]
//!               [--wall-ms N] [--solve-timeout-ms N] [--steal-after-ms N]
//!               [--no-local-fallback] FILE.cnf
//! ```
//!
//! Splits the instance into a covering, pairwise-contradictory cube set,
//! farms the cube-restricted residuals to the shards, cancels the fleet on
//! the first verified model and claims UNSAT only when every cube is
//! refuted. Prints conventional DIMACS solver output (`c`/`s`/`v` lines) and
//! exits with the SAT-competition code: 10 SATISFIABLE, 20 UNSATISFIABLE,
//! 0 UNKNOWN. With no `--shard` at all the instance is solved locally.

use nbl_sat_core::SolveVerdict;
use nbl_shard::{ShardConfig, ShardCoordinator};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: nbl-sat-shard --shard HOST:PORT [--shard HOST:PORT ...] [--backend NAME] \
         [--seed N] [--cubes N] [--max-depth N] [--wall-ms N] [--solve-timeout-ms N] \
         [--steal-after-ms N] [--no-local-fallback] FILE.cnf"
    );
    std::process::exit(2);
}

fn parse_u64_arg(value: Option<String>) -> u64 {
    match value.and_then(|v| v.parse().ok()) {
        Some(n) => n,
        None => usage(),
    }
}

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut shards: Vec<String> = Vec::new();
    let mut config = ShardConfig::default();
    let mut file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shard" => match args.next() {
                Some(value) => shards.push(value),
                None => usage(),
            },
            "--backend" => match args.next() {
                Some(value) => config.backend = value,
                None => usage(),
            },
            "--seed" => config.seed = parse_u64_arg(args.next()),
            "--cubes" => config.target_cubes = Some(parse_u64_arg(args.next()) as usize),
            "--max-depth" => config.max_depth = parse_u64_arg(args.next()) as usize,
            "--wall-ms" => config.cube_wall_ms = Some(parse_u64_arg(args.next())),
            "--solve-timeout-ms" => {
                config.solve_timeout = Some(Duration::from_millis(parse_u64_arg(args.next())));
            }
            "--steal-after-ms" => {
                config.steal_after = Duration::from_millis(parse_u64_arg(args.next()));
            }
            "--no-local-fallback" => config.local_fallback = false,
            "--help" | "-h" => usage(),
            _ if file.is_none() && !arg.starts_with('-') => file = Some(arg),
            _ => usage(),
        }
    }
    let path = match file {
        Some(path) => path,
        None => usage(),
    };
    let dimacs = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("nbl-sat-shard: cannot read {path}: {e}");
            return 1;
        }
    };
    let formula = match cnf::dimacs::parse_str(&dimacs) {
        Ok(formula) => formula,
        Err(e) => {
            eprintln!("nbl-sat-shard: cannot parse {path}: {e}");
            return 1;
        }
    };

    let backend = config.backend.clone();
    let coordinator = match ShardCoordinator::connect(&shards, config) {
        Ok(coordinator) => coordinator,
        Err(e) => {
            eprintln!("nbl-sat-shard: {e}");
            return 1;
        }
    };
    println!(
        "c sharding {path} over {} server(s) with backend {backend}",
        coordinator.num_shards()
    );
    for addr in coordinator.shard_addrs() {
        println!("c shard {addr}");
    }

    let outcome = coordinator.solve(&formula);
    println!("c fleet: {}", outcome.fleet);
    match outcome.verdict {
        SolveVerdict::Satisfiable => println!("s SATISFIABLE"),
        SolveVerdict::Unsatisfiable => println!("s UNSATISFIABLE"),
        SolveVerdict::Unknown(cause) => {
            println!("c verdict cause: {cause:?}");
            println!("s UNKNOWN");
        }
    }
    if let Some(model) = &outcome.model {
        print!("v");
        for (var, value) in model.iter().take(formula.num_vars()) {
            let lit = var.index() as i64 + 1;
            print!(" {}", if value { lit } else { -lit });
        }
        println!(" 0");
    }
    outcome.exit_code()
}
