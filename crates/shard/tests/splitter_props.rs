//! Property tests for the cube splitter: over random formulas and split
//! targets, the produced cube set is pairwise contradictory, covers the
//! whole space exactly (minterms sum to 2^n), every refuted cube really is
//! unsatisfiable, and the construction is deterministic per input.

use cnf::{Assignment, CnfFormula, Literal, Variable};
use nbl_shard::{split, split_cube, SplitConfig};
use proptest::prelude::*;

/// Strategy: a random CNF formula with `1..=max_vars` variables and
/// `1..=max_clauses` clauses of 1–3 literals each.
fn arb_formula(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = CnfFormula> {
    (1..=max_vars).prop_flat_map(move |n| {
        let clause = proptest::collection::vec((0..n, proptest::bool::ANY), 1..=3);
        proptest::collection::vec(clause, 1..=max_clauses).prop_map(move |clauses| {
            let mut formula = CnfFormula::new(n);
            for lits in clauses {
                formula.add_clause(
                    lits.into_iter()
                        .map(|(v, phase)| Literal::with_phase(Variable::new(v), phase)),
                );
            }
            formula
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any two distinct cubes of a split contradict each other: they assign
    /// opposite phases to some shared variable, so their subspaces are
    /// disjoint.
    #[test]
    fn cubes_are_pairwise_contradictory((formula, target) in (arb_formula(8, 12), 2usize..24)) {
        let split = split(&formula, &SplitConfig::new(target));
        let cubes: Vec<_> = split.all_cubes().collect();
        for (i, a) in cubes.iter().enumerate() {
            for b in cubes.iter().skip(i + 1) {
                let clash = a.iter().any(|&lit| b.phase_of(lit.variable()) == Some(!lit.phase()));
                prop_assert!(clash, "cubes {a} and {b} overlap");
            }
        }
    }

    /// The split is a partition: minterm counts over open ∪ refuted sum to
    /// exactly 2^n, so together with pairwise disjointness the cubes cover
    /// the whole space.
    #[test]
    fn minterms_sum_to_two_to_the_n((formula, target) in (arb_formula(10, 14), 1usize..32)) {
        let split = split(&formula, &SplitConfig::new(target));
        let n = formula.num_vars();
        let total: u64 = split.all_cubes().map(|c| c.num_minterms(n)).sum();
        prop_assert_eq!(total, 1u64 << n);
    }

    /// Refuted cubes contain no model of the formula: pruning a branch can
    /// never lose a satisfying assignment.
    #[test]
    fn refuted_cubes_contain_no_model((formula, target) in (arb_formula(7, 10), 2usize..16)) {
        let split = split(&formula, &SplitConfig::new(target));
        for a in Assignment::enumerate_all(formula.num_vars()) {
            if formula.evaluate(&a) {
                prop_assert!(
                    !split.refuted.iter().any(|c| c.evaluate(&a)),
                    "model {:?} sits inside a refuted cube", a
                );
            }
        }
    }

    /// The splitter is a pure function of (formula, config): running it
    /// twice — and re-splitting one of its own cubes — gives identical
    /// results both times.
    #[test]
    fn splitting_is_deterministic((formula, target) in (arb_formula(9, 12), 1usize..24)) {
        let config = SplitConfig::new(target);
        let first = split(&formula, &config);
        prop_assert_eq!(&first, &split(&formula, &config));
        if let Some(base) = first.open.first() {
            let finer = SplitConfig::new(4);
            prop_assert_eq!(
                split_cube(&formula, base, &finer),
                split_cube(&formula, base, &finer)
            );
        }
    }
}
