//! Reader and writer for the ISCAS-style `.bench` netlist format.
//!
//! The `.bench` format is the de-facto interchange format for the ISCAS-85
//! combinational benchmark circuits:
//!
//! ```text
//! # a 2-input AND with registered name
//! INPUT(a)
//! INPUT(b)
//! OUTPUT(y)
//! y = AND(a, b)
//! ```
//!
//! This module supports the combinational subset (no `DFF`), every
//! [`GateKind`] name plus the common aliases `BUFF` and
//! `INV`, and — as a documented extension — the tokens `CONST0`/`CONST1` for
//! constant drivers so that every [`Circuit`] in this crate round-trips.

use crate::error::{CircuitError, Result};
use crate::gate::GateKind;
use crate::netlist::{Circuit, NodeId, NodeKind};
use std::collections::HashMap;

/// Parses a `.bench` netlist into a [`Circuit`].
///
/// # Errors
///
/// Returns [`CircuitError::ParseBench`] for malformed lines,
/// [`CircuitError::DuplicateSignal`] / [`CircuitError::UnknownSignal`] for
/// inconsistent signal usage, and [`CircuitError::CombinationalLoop`] if the
/// parsed netlist is cyclic.
///
/// ```
/// use nbl_circuit::{parse_bench, Simulator};
///
/// let text = "
/// INPUT(a)
/// INPUT(b)
/// INPUT(c)
/// OUTPUT(maj)
/// ab = AND(a, b)
/// ac = AND(a, c)
/// bc = AND(b, c)
/// maj = OR(ab, ac, bc)
/// ";
/// let circuit = parse_bench(text)?;
/// let sim = Simulator::new(&circuit)?;
/// assert_eq!(sim.run(&[true, true, false])?, vec![true]);
/// # Ok::<(), nbl_circuit::CircuitError>(())
/// ```
pub fn parse_bench(text: &str) -> Result<Circuit> {
    #[derive(Debug)]
    struct GateDef {
        line: usize,
        lhs: String,
        kind_token: String,
        args: Vec<String>,
    }

    let mut inputs: Vec<(usize, String)> = Vec::new();
    let mut outputs: Vec<(usize, String)> = Vec::new();
    let mut gates: Vec<GateDef> = Vec::new();

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw_line.find('#') {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = strip_directive(line, "INPUT") {
            inputs.push((line_no, parse_single_name(rest, line_no)?));
        } else if let Some(rest) = strip_directive(line, "OUTPUT") {
            outputs.push((line_no, parse_single_name(rest, line_no)?));
        } else if let Some(eq_pos) = line.find('=') {
            let lhs = line[..eq_pos].trim();
            let rhs = line[eq_pos + 1..].trim();
            if lhs.is_empty() {
                return Err(CircuitError::ParseBench {
                    line: line_no,
                    message: "missing signal name before `=`".to_string(),
                });
            }
            let open = rhs.find('(');
            let close = rhs.rfind(')');
            let (kind_token, args): (String, Vec<String>) = match (open, close) {
                (Some(o), Some(c)) if o < c => {
                    let kind = rhs[..o].trim().to_string();
                    let args = rhs[o + 1..c]
                        .split(',')
                        .map(|a| a.trim().to_string())
                        .filter(|a| !a.is_empty())
                        .collect();
                    (kind, args)
                }
                _ => {
                    // Allow argument-free tokens (the CONST0/CONST1 extension).
                    (rhs.trim().to_string(), Vec::new())
                }
            };
            gates.push(GateDef {
                line: line_no,
                lhs: lhs.to_string(),
                kind_token,
                args,
            });
        } else {
            return Err(CircuitError::ParseBench {
                line: line_no,
                message: format!("unrecognised statement `{line}`"),
            });
        }
    }

    let mut circuit = Circuit::new("bench");
    for (line_no, name) in &inputs {
        circuit.add_input(name.clone()).map_err(|e| match e {
            CircuitError::DuplicateSignal(s) => CircuitError::ParseBench {
                line: *line_no,
                message: format!("input `{s}` declared twice"),
            },
            other => other,
        })?;
    }
    // Declare every gate output first so forward references resolve.
    for def in &gates {
        if circuit.find(&def.lhs).is_some() {
            return Err(CircuitError::ParseBench {
                line: def.line,
                message: format!("signal `{}` is defined more than once", def.lhs),
            });
        }
        circuit.declare_signal(def.lhs.clone())?;
    }
    // Wire the gates up.
    for def in &gates {
        let lhs = circuit.require(&def.lhs)?;
        let upper = def.kind_token.to_ascii_uppercase();
        if upper == "CONST0" || upper == "CONST1" {
            if !def.args.is_empty() {
                return Err(CircuitError::ParseBench {
                    line: def.line,
                    message: format!("{upper} takes no arguments"),
                });
            }
            circuit.set_constant_driver(lhs, upper == "CONST1")?;
            continue;
        }
        let kind: GateKind = def
            .kind_token
            .parse()
            .map_err(|_| CircuitError::ParseBench {
                line: def.line,
                message: format!("unknown gate kind `{}`", def.kind_token),
            })?;
        let fanin: Vec<NodeId> = def
            .args
            .iter()
            .map(|arg| {
                circuit.find(arg).ok_or_else(|| CircuitError::ParseBench {
                    line: def.line,
                    message: format!("unknown signal `{arg}`"),
                })
            })
            .collect::<Result<_>>()?;
        circuit.set_driver(lhs, kind, &fanin).map_err(|e| match e {
            CircuitError::InvalidFanin {
                kind,
                got,
                expected,
            } => CircuitError::ParseBench {
                line: def.line,
                message: format!("{kind} gate cannot take {got} inputs (expected {expected})"),
            },
            other => other,
        })?;
    }
    for (line_no, name) in &outputs {
        let id = circuit.find(name).ok_or(CircuitError::ParseBench {
            line: *line_no,
            message: format!("output `{name}` is never defined"),
        })?;
        circuit.mark_output(id).map_err(|e| match e {
            CircuitError::DuplicateOutput(s) => CircuitError::ParseBench {
                line: *line_no,
                message: format!("output `{s}` declared twice"),
            },
            other => other,
        })?;
    }
    // Reject cyclic netlists eagerly so downstream users get a parse-time error.
    circuit.topological_order()?;
    Ok(circuit)
}

fn strip_directive<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let upper = line.to_ascii_uppercase();
    if !upper.starts_with(keyword) {
        return None;
    }
    let rest = line[keyword.len()..].trim_start();
    // Only treat this as a directive when it is followed by `(...)`; this keeps
    // signal names that merely start with INPUT/OUTPUT usable on the left-hand
    // side of gate definitions.
    if rest.starts_with('(') || rest.is_empty() {
        Some(rest)
    } else {
        None
    }
}

fn parse_single_name(rest: &str, line: usize) -> Result<String> {
    let rest = rest.trim();
    if let Some(inner) = rest.strip_prefix('(').and_then(|r| r.strip_suffix(')')) {
        let name = inner.trim();
        if name.is_empty() || name.contains(|c: char| c.is_whitespace() || c == ',') {
            return Err(CircuitError::ParseBench {
                line,
                message: format!("malformed signal name `{inner}`"),
            });
        }
        Ok(name.to_string())
    } else {
        Err(CircuitError::ParseBench {
            line,
            message: "expected `(signal)` after directive".to_string(),
        })
    }
}

/// Writes a circuit in `.bench` format.
///
/// Constant drivers use the `CONST0`/`CONST1` extension tokens; everything
/// else is standard ISCAS `.bench` output that [`parse_bench`] (and other
/// tools) read back.
pub fn write_bench(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", circuit.name()));
    let stats = circuit.stats();
    out.push_str(&format!(
        "# {} inputs, {} outputs, {} gates\n",
        stats.inputs, stats.outputs, stats.gates
    ));
    let name_of: HashMap<NodeId, &str> = circuit.iter().map(|(id, n)| (id, n.name())).collect();
    for &input in circuit.inputs() {
        out.push_str(&format!("INPUT({})\n", name_of[&input]));
    }
    for &output in circuit.outputs() {
        out.push_str(&format!("OUTPUT({})\n", name_of[&output]));
    }
    for (id, node) in circuit.iter() {
        match node.kind() {
            NodeKind::Input => {}
            NodeKind::Constant(v) => {
                out.push_str(&format!("{} = CONST{}\n", name_of[&id], v as u8));
            }
            NodeKind::Gate(kind) => {
                let args: Vec<&str> = node.fanin().iter().map(|f| name_of[f]).collect();
                out.push_str(&format!(
                    "{} = {}({})\n",
                    name_of[&id],
                    kind.name(),
                    args.join(", ")
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use crate::sim::exhaustive_counterexample;

    #[test]
    fn parses_simple_netlist() {
        let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
        let c = parse_bench(text).unwrap();
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_outputs(), 1);
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn forward_references_are_supported() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(z)\nz = BUF(a)\n";
        let c = parse_bench(text).unwrap();
        assert_eq!(c.num_gates(), 2);
        let sim = crate::Simulator::new(&c).unwrap();
        assert_eq!(sim.run(&[true]).unwrap(), vec![false]);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# header comment\nINPUT(a)  # trailing comment\nOUTPUT(y)\ny = BUF(a)\n\n";
        let c = parse_bench(text).unwrap();
        assert_eq!(c.num_inputs(), 1);
    }

    #[test]
    fn library_circuits_round_trip() {
        for (name, circuit) in library::standard_suite() {
            let text = write_bench(&circuit);
            let reparsed = parse_bench(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(
                exhaustive_counterexample(&circuit, &reparsed).unwrap(),
                None,
                "{name} must round-trip functionally"
            );
        }
    }

    #[test]
    fn constants_round_trip() {
        let mut c = Circuit::new("with_const");
        let a = c.add_input("a").unwrap();
        let one = c.add_constant("one", true).unwrap();
        let y = c.add_gate("y", GateKind::And, &[a, one]).unwrap();
        c.mark_output(y).unwrap();
        let text = write_bench(&c);
        assert!(text.contains("one = CONST1"));
        let reparsed = parse_bench(&text).unwrap();
        assert_eq!(exhaustive_counterexample(&c, &reparsed).unwrap(), None);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let cases = [
            ("INPUT a\n", 1),
            ("INPUT(a)\nfoo bar\n", 2),
            ("INPUT(a)\ny = MAJ(a, a)\n", 2),
            ("INPUT(a)\ny = NOT(b)\n", 2),
            ("INPUT(a)\nOUTPUT(z)\ny = NOT(a)\n", 2),
            ("INPUT(a)\nINPUT(a)\n", 2),
            ("INPUT(a)\ny = NOT(a)\ny = BUF(a)\n", 3),
            ("INPUT(a)\ny = CONST1(a)\n", 2),
            ("INPUT(a)\ny = NOT(a, a)\n", 2),
        ];
        for (text, expected_line) in cases {
            match parse_bench(text) {
                Err(CircuitError::ParseBench { line, .. }) => {
                    assert_eq!(line, expected_line, "wrong line for {text:?}")
                }
                other => panic!("expected parse error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn cyclic_netlist_is_rejected() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = BUF(y)\n";
        assert!(matches!(
            parse_bench(text).unwrap_err(),
            CircuitError::CombinationalLoop(_)
        ));
    }

    #[test]
    fn duplicate_output_is_rejected() {
        let text = "INPUT(a)\nOUTPUT(y)\nOUTPUT(y)\ny = BUF(a)\n";
        assert!(matches!(
            parse_bench(text).unwrap_err(),
            CircuitError::ParseBench { line: 3, .. }
        ));
    }
}
