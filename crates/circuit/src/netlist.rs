//! The gate-level netlist intermediate representation.

use crate::error::{CircuitError, Result};
use crate::gate::GateKind;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a node inside a [`Circuit`].
///
/// Node ids are dense indices assigned in insertion order; they are only
/// meaningful with respect to the circuit that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Returns the dense 0-based index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn new(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The role a node plays in the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A primary input.
    Input,
    /// A constant driver with the given value.
    Constant(bool),
    /// A logic gate of the given kind.
    Gate(GateKind),
}

/// A single node of the netlist: a named signal together with its driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    name: String,
    kind: NodeKind,
    fanin: Vec<NodeId>,
}

impl Node {
    /// The signal name of this node.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The driver kind of this node.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// The fan-in nodes (empty for inputs and constants).
    pub fn fanin(&self) -> &[NodeId] {
        &self.fanin
    }

    /// Returns `true` if this node is a primary input.
    pub fn is_input(&self) -> bool {
        matches!(self.kind, NodeKind::Input)
    }

    /// Returns `true` if this node is a logic gate.
    pub fn is_gate(&self) -> bool {
        matches!(self.kind, NodeKind::Gate(_))
    }
}

/// Aggregate structural statistics of a circuit (see [`Circuit::stats`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CircuitStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of logic gates (excludes inputs and constants).
    pub gates: usize,
    /// Number of constant drivers.
    pub constants: usize,
    /// Longest input-to-output path measured in gates (0 for gate-free circuits).
    pub depth: usize,
    /// Gate count per kind, keyed by [`GateKind::name`].
    pub gate_counts: Vec<(GateKind, usize)>,
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "inputs={} outputs={} gates={} constants={} depth={}",
            self.inputs, self.outputs, self.gates, self.constants, self.depth
        )
    }
}

/// A combinational gate-level circuit.
///
/// A circuit is a named directed acyclic graph of [`Node`]s: primary inputs,
/// constant drivers and logic gates, with a designated subset of nodes marked
/// as primary outputs. It is the structural netlist the paper's introduction
/// implicitly assumes when motivating SAT through logic synthesis, formal
/// verification and circuit testing.
///
/// ```
/// use nbl_circuit::{Circuit, GateKind};
///
/// // out = (a AND b) XOR c
/// let mut c = Circuit::new("demo");
/// let a = c.add_input("a")?;
/// let b = c.add_input("b")?;
/// let ci = c.add_input("c")?;
/// let ab = c.add_gate("ab", GateKind::And, &[a, b])?;
/// let out = c.add_gate("out", GateKind::Xor, &[ab, ci])?;
/// c.mark_output(out)?;
///
/// assert_eq!(c.num_inputs(), 3);
/// assert_eq!(c.num_gates(), 2);
/// assert_eq!(c.stats().depth, 2);
/// # Ok::<(), nbl_circuit::CircuitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    index: HashMap<String, NodeId>,
}

impl Circuit {
    /// Creates an empty circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Circuit {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    fn insert_node(&mut self, node: Node) -> Result<NodeId> {
        if self.index.contains_key(&node.name) {
            return Err(CircuitError::DuplicateSignal(node.name));
        }
        let id = NodeId::new(self.nodes.len());
        self.index.insert(node.name.clone(), id);
        self.nodes.push(node);
        Ok(id)
    }

    /// Adds a primary input with the given signal name.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DuplicateSignal`] if the name is already used.
    pub fn add_input(&mut self, name: impl Into<String>) -> Result<NodeId> {
        let id = self.insert_node(Node {
            name: name.into(),
            kind: NodeKind::Input,
            fanin: Vec::new(),
        })?;
        self.inputs.push(id);
        Ok(id)
    }

    /// Adds a constant driver with the given signal name and value.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DuplicateSignal`] if the name is already used.
    pub fn add_constant(&mut self, name: impl Into<String>, value: bool) -> Result<NodeId> {
        self.insert_node(Node {
            name: name.into(),
            kind: NodeKind::Constant(value),
            fanin: Vec::new(),
        })
    }

    /// Adds a logic gate driving the named signal.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::DuplicateSignal`] if the name is already used.
    /// * [`CircuitError::UnknownNode`] if any fan-in id does not exist.
    /// * [`CircuitError::InvalidFanin`] if the fan-in count is unsupported
    ///   for the gate kind.
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        fanin: &[NodeId],
    ) -> Result<NodeId> {
        kind.check_fanin(fanin.len())?;
        for &f in fanin {
            if f.index() >= self.nodes.len() {
                return Err(CircuitError::UnknownNode(f.index()));
            }
        }
        self.insert_node(Node {
            name: name.into(),
            kind: NodeKind::Gate(kind),
            fanin: fanin.to_vec(),
        })
    }

    /// Declares a named signal whose driver will be supplied later with
    /// [`Circuit::set_driver`]. Used by netlist parsers that must handle
    /// forward references; the node is undriven (but is *not* listed as a
    /// primary input) until a driver is set.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DuplicateSignal`] if the name is already used.
    pub fn declare_signal(&mut self, name: impl Into<String>) -> Result<NodeId> {
        self.insert_node(Node {
            name: name.into(),
            kind: NodeKind::Input,
            fanin: Vec::new(),
        })
    }

    /// Sets (or replaces) the driver of an existing node.
    ///
    /// The node keeps its name and id; fan-out references elsewhere in the
    /// circuit are unaffected. This is the primitive used by the `.bench`
    /// parser (forward references) and by stuck-at fault injection.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::UnknownNode`] if `id` or any fan-in id does not exist.
    /// * [`CircuitError::InvalidFanin`] if the fan-in count is unsupported
    ///   for the gate kind.
    pub fn set_driver(&mut self, id: NodeId, kind: GateKind, fanin: &[NodeId]) -> Result<()> {
        if id.index() >= self.nodes.len() {
            return Err(CircuitError::UnknownNode(id.index()));
        }
        kind.check_fanin(fanin.len())?;
        for &f in fanin {
            if f.index() >= self.nodes.len() {
                return Err(CircuitError::UnknownNode(f.index()));
            }
        }
        // If this node used to be a primary input, it no longer is.
        self.inputs.retain(|&i| i != id);
        let node = &mut self.nodes[id.index()];
        node.kind = NodeKind::Gate(kind);
        node.fanin = fanin.to_vec();
        Ok(())
    }

    /// Replaces a node's driver with a constant, severing its fan-in.
    ///
    /// This is the structural operation behind stuck-at fault injection.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] if `id` does not exist.
    pub fn set_constant_driver(&mut self, id: NodeId, value: bool) -> Result<()> {
        if id.index() >= self.nodes.len() {
            return Err(CircuitError::UnknownNode(id.index()));
        }
        self.inputs.retain(|&i| i != id);
        let node = &mut self.nodes[id.index()];
        node.kind = NodeKind::Constant(value);
        node.fanin = Vec::new();
        Ok(())
    }

    /// Redirects every reference to `from` (gate fan-ins and primary-output
    /// markings) to `to`, leaving the `from` node itself in place.
    ///
    /// This is the structural primitive behind stuck-at fault injection on a
    /// signal line: the faulty value source replaces the original signal in
    /// all of its fan-out while the original driver (and, importantly, the
    /// primary-input list) stays intact.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] if either node does not exist.
    pub fn redirect(&mut self, from: NodeId, to: NodeId) -> Result<()> {
        if from.index() >= self.nodes.len() {
            return Err(CircuitError::UnknownNode(from.index()));
        }
        if to.index() >= self.nodes.len() {
            return Err(CircuitError::UnknownNode(to.index()));
        }
        for node in &mut self.nodes {
            for f in &mut node.fanin {
                if *f == from {
                    *f = to;
                }
            }
        }
        for o in &mut self.outputs {
            if *o == from {
                *o = to;
            }
        }
        Ok(())
    }

    /// Like [`Circuit::redirect`], but only rewires gate fan-in references and
    /// leaves primary-output markings untouched.
    ///
    /// Stuck-at fault injection on a primary input uses this variant so the
    /// circuit interface (input *and* output names) is preserved.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] if either node does not exist.
    pub fn redirect_fanin(&mut self, from: NodeId, to: NodeId) -> Result<()> {
        if from.index() >= self.nodes.len() {
            return Err(CircuitError::UnknownNode(from.index()));
        }
        if to.index() >= self.nodes.len() {
            return Err(CircuitError::UnknownNode(to.index()));
        }
        for node in &mut self.nodes {
            for f in &mut node.fanin {
                if *f == from {
                    *f = to;
                }
            }
        }
        Ok(())
    }

    /// Marks a node as a primary output.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::UnknownNode`] if `id` does not exist.
    /// * [`CircuitError::DuplicateOutput`] if the node is already an output.
    pub fn mark_output(&mut self, id: NodeId) -> Result<()> {
        if id.index() >= self.nodes.len() {
            return Err(CircuitError::UnknownNode(id.index()));
        }
        if self.outputs.contains(&id) {
            return Err(CircuitError::DuplicateOutput(
                self.nodes[id.index()].name.clone(),
            ));
        }
        self.outputs.push(id);
        Ok(())
    }

    /// Returns the node with the given id, if it exists.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index())
    }

    /// Looks up a node id by signal name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.index.get(name).copied()
    }

    /// Looks up a node id by signal name, reporting an error if absent.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownSignal`] if no node has that name.
    pub fn require(&self, name: &str) -> Result<NodeId> {
        self.find(name)
            .ok_or_else(|| CircuitError::UnknownSignal(name.to_string()))
    }

    /// Total number of nodes (inputs + constants + gates).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of logic gates.
    pub fn num_gates(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_gate()).count()
    }

    /// The primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// The primary outputs, in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Names of the primary inputs, in declaration order.
    pub fn input_names(&self) -> Vec<&str> {
        self.inputs
            .iter()
            .map(|&id| self.nodes[id.index()].name.as_str())
            .collect()
    }

    /// Names of the primary outputs, in declaration order.
    pub fn output_names(&self) -> Vec<&str> {
        self.outputs
            .iter()
            .map(|&id| self.nodes[id.index()].name.as_str())
            .collect()
    }

    /// Iterates over all node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId::new)
    }

    /// Iterates over all nodes together with their ids, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::new(i), n))
    }

    /// Computes the number of fan-out references of every node
    /// (primary-output markings count as one reference each).
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            for &f in &node.fanin {
                counts[f.index()] += 1;
            }
        }
        for &o in &self.outputs {
            counts[o.index()] += 1;
        }
        counts
    }

    /// Returns the node ids in a topological order (fan-in before fan-out).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::CombinationalLoop`] if the netlist contains a
    /// cycle (possible after [`Circuit::set_driver`] misuse or a malformed
    /// `.bench` file).
    pub fn topological_order(&self) -> Result<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            indegree[i] = node.fanin.len();
            for &f in &node.fanin {
                fanout[f.index()].push(i);
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(NodeId::new(i));
            for &succ in &fanout[i] {
                indegree[succ] -= 1;
                if indegree[succ] == 0 {
                    ready.push(succ);
                }
            }
        }
        if order.len() != n {
            let stuck = indegree
                .iter()
                .position(|&d| d > 0)
                .map(|i| self.nodes[i].name.clone())
                .unwrap_or_default();
            return Err(CircuitError::CombinationalLoop(stuck));
        }
        Ok(order)
    }

    /// Computes the logic level (longest gate path from any input) of every node.
    ///
    /// Inputs and constants are level 0; a gate's level is one more than the
    /// maximum level of its fan-in.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::CombinationalLoop`] if the netlist is cyclic.
    pub fn levelize(&self) -> Result<Vec<usize>> {
        let order = self.topological_order()?;
        let mut levels = vec![0usize; self.nodes.len()];
        for id in order {
            let node = &self.nodes[id.index()];
            if node.is_gate() {
                levels[id.index()] = node
                    .fanin
                    .iter()
                    .map(|f| levels[f.index()])
                    .max()
                    .unwrap_or(0)
                    + 1;
            }
        }
        Ok(levels)
    }

    /// Validates the circuit: checks that it has at least one output and
    /// that the netlist is acyclic.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NoOutputs`] or [`CircuitError::CombinationalLoop`].
    pub fn validate(&self) -> Result<()> {
        if self.outputs.is_empty() {
            return Err(CircuitError::NoOutputs);
        }
        self.topological_order().map(|_| ())
    }

    /// Computes aggregate structural statistics.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::CombinationalLoop`] if the netlist is cyclic.
    pub fn stats(&self) -> CircuitStats {
        let levels = self.levelize().unwrap_or_default();
        let mut gate_counts: HashMap<GateKind, usize> = HashMap::new();
        let mut constants = 0;
        for node in &self.nodes {
            match node.kind {
                NodeKind::Gate(kind) => *gate_counts.entry(kind).or_default() += 1,
                NodeKind::Constant(_) => constants += 1,
                NodeKind::Input => {}
            }
        }
        let mut gate_counts: Vec<(GateKind, usize)> = gate_counts.into_iter().collect();
        gate_counts.sort();
        CircuitStats {
            inputs: self.inputs.len(),
            outputs: self.outputs.len(),
            gates: self.num_gates(),
            constants,
            depth: levels.iter().copied().max().unwrap_or(0),
            gate_counts,
        }
    }

    /// Imports another circuit into this one.
    ///
    /// The other circuit's primary inputs are connected to this circuit's
    /// nodes through `input_map` (keyed by the other circuit's input names);
    /// its gates and constants are copied with `prefix` prepended to their
    /// names. Returns a map from the other circuit's output names to the
    /// imported node ids.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::InterfaceMismatch`] if an input of `other` has no
    ///   entry in `input_map`.
    /// * [`CircuitError::DuplicateSignal`] if a prefixed name collides.
    /// * [`CircuitError::CombinationalLoop`] if `other` is cyclic.
    pub fn import(
        &mut self,
        other: &Circuit,
        prefix: &str,
        input_map: &HashMap<String, NodeId>,
    ) -> Result<HashMap<String, NodeId>> {
        let order = other.topological_order()?;
        let mut translated: HashMap<NodeId, NodeId> = HashMap::new();
        for id in order {
            let node = &other.nodes[id.index()];
            let new_id = match node.kind {
                NodeKind::Input => *input_map.get(&node.name).ok_or_else(|| {
                    CircuitError::InterfaceMismatch(format!(
                        "input `{}` of circuit `{}` has no mapping",
                        node.name, other.name
                    ))
                })?,
                NodeKind::Constant(v) => self.add_constant(format!("{prefix}{}", node.name), v)?,
                NodeKind::Gate(kind) => {
                    let fanin: Vec<NodeId> = node.fanin.iter().map(|f| translated[f]).collect();
                    self.add_gate(format!("{prefix}{}", node.name), kind, &fanin)?
                }
            };
            translated.insert(id, new_id);
        }
        Ok(other
            .outputs
            .iter()
            .map(|&o| (other.nodes[o.index()].name.clone(), translated[&o]))
            .collect())
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "circuit `{}`: {} inputs, {} outputs, {} gates",
            self.name,
            self.num_inputs(),
            self.num_outputs(),
            self.num_gates()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and_xor_circuit() -> Circuit {
        let mut c = Circuit::new("demo");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let ci = c.add_input("c").unwrap();
        let ab = c.add_gate("ab", GateKind::And, &[a, b]).unwrap();
        let out = c.add_gate("out", GateKind::Xor, &[ab, ci]).unwrap();
        c.mark_output(out).unwrap();
        c
    }

    #[test]
    fn construction_and_lookup() {
        let c = and_xor_circuit();
        assert_eq!(c.num_nodes(), 5);
        assert_eq!(c.num_inputs(), 3);
        assert_eq!(c.num_gates(), 2);
        assert_eq!(c.num_outputs(), 1);
        assert_eq!(c.input_names(), vec!["a", "b", "c"]);
        assert_eq!(c.output_names(), vec!["out"]);
        let ab = c.find("ab").unwrap();
        assert_eq!(c.node(ab).unwrap().kind(), NodeKind::Gate(GateKind::And));
        assert_eq!(c.node(ab).unwrap().fanin().len(), 2);
        assert!(c.find("missing").is_none());
        assert!(c.require("missing").is_err());
        assert!(c.to_string().contains("demo"));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = Circuit::new("d");
        c.add_input("a").unwrap();
        assert_eq!(
            c.add_input("a").unwrap_err(),
            CircuitError::DuplicateSignal("a".into())
        );
        assert!(matches!(
            c.add_constant("a", true).unwrap_err(),
            CircuitError::DuplicateSignal(_)
        ));
    }

    #[test]
    fn invalid_fanin_rejected() {
        let mut c = Circuit::new("d");
        let a = c.add_input("a").unwrap();
        assert!(matches!(
            c.add_gate("g", GateKind::Not, &[a, a]).unwrap_err(),
            CircuitError::InvalidFanin { .. }
        ));
        assert!(matches!(
            c.add_gate("g", GateKind::And, &[a]).unwrap_err(),
            CircuitError::InvalidFanin { .. }
        ));
        assert!(matches!(
            c.add_gate("g", GateKind::And, &[a, NodeId::new(99)])
                .unwrap_err(),
            CircuitError::UnknownNode(99)
        ));
    }

    #[test]
    fn topological_order_and_levels() {
        let c = and_xor_circuit();
        let order = c.topological_order().unwrap();
        assert_eq!(order.len(), 5);
        let pos: HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for (id, node) in c.iter() {
            for &f in node.fanin() {
                assert!(pos[&f] < pos[&id], "fan-in must precede fan-out");
            }
        }
        let levels = c.levelize().unwrap();
        assert_eq!(levels[c.find("a").unwrap().index()], 0);
        assert_eq!(levels[c.find("ab").unwrap().index()], 1);
        assert_eq!(levels[c.find("out").unwrap().index()], 2);
        assert_eq!(c.stats().depth, 2);
    }

    #[test]
    fn combinational_loop_detected() {
        let mut c = Circuit::new("loopy");
        let a = c.declare_signal("a").unwrap();
        let b = c.declare_signal("b").unwrap();
        c.set_driver(a, GateKind::Buf, &[b]).unwrap();
        c.set_driver(b, GateKind::Buf, &[a]).unwrap();
        assert!(matches!(
            c.topological_order().unwrap_err(),
            CircuitError::CombinationalLoop(_)
        ));
    }

    #[test]
    fn set_driver_converts_placeholder_inputs() {
        let mut c = Circuit::new("fwd");
        let g = c.declare_signal("g").unwrap();
        let a = c.add_input("a").unwrap();
        assert_eq!(c.num_inputs(), 1); // the placeholder is not a primary input
        assert!(c.node(g).unwrap().is_input()); // ... but is undriven for now
        c.set_driver(g, GateKind::Not, &[a]).unwrap();
        assert_eq!(c.num_inputs(), 1);
        assert_eq!(c.num_gates(), 1);
        assert!(c.node(g).unwrap().is_gate());
    }

    #[test]
    fn constant_driver_injection() {
        let mut c = and_xor_circuit();
        let ab = c.find("ab").unwrap();
        c.set_constant_driver(ab, true).unwrap();
        assert_eq!(c.node(ab).unwrap().kind(), NodeKind::Constant(true));
        assert!(c.node(ab).unwrap().fanin().is_empty());
        assert_eq!(c.stats().constants, 1);
    }

    #[test]
    fn output_marking_rules() {
        let mut c = and_xor_circuit();
        let out = c.find("out").unwrap();
        assert!(matches!(
            c.mark_output(out).unwrap_err(),
            CircuitError::DuplicateOutput(_)
        ));
        assert!(c.validate().is_ok());
        let empty = Circuit::new("empty");
        assert_eq!(empty.validate().unwrap_err(), CircuitError::NoOutputs);
    }

    #[test]
    fn fanout_counts_include_outputs() {
        let c = and_xor_circuit();
        let counts = c.fanout_counts();
        assert_eq!(counts[c.find("a").unwrap().index()], 1);
        assert_eq!(counts[c.find("ab").unwrap().index()], 1);
        assert_eq!(counts[c.find("out").unwrap().index()], 1); // output marking
    }

    #[test]
    fn import_copies_logic_with_prefix() {
        let inner = and_xor_circuit();
        let mut outer = Circuit::new("outer");
        let x = outer.add_input("x").unwrap();
        let y = outer.add_input("y").unwrap();
        let z = outer.add_input("z").unwrap();
        let map: HashMap<String, NodeId> = [
            ("a".to_string(), x),
            ("b".to_string(), y),
            ("c".to_string(), z),
        ]
        .into_iter()
        .collect();
        let outs = outer.import(&inner, "u0_", &map).unwrap();
        let out = outs["out"];
        outer.mark_output(out).unwrap();
        assert_eq!(outer.num_gates(), 2);
        assert!(outer.find("u0_ab").is_some());
        assert!(outer.validate().is_ok());

        // Missing input mapping is an interface error.
        let mut bad = Circuit::new("bad");
        let only = bad.add_input("x").unwrap();
        let short_map: HashMap<String, NodeId> = [("a".to_string(), only)].into_iter().collect();
        assert!(matches!(
            bad.import(&inner, "u1_", &short_map).unwrap_err(),
            CircuitError::InterfaceMismatch(_)
        ));
    }

    #[test]
    fn redirect_rewires_fanout_and_outputs() {
        let mut c = and_xor_circuit();
        let ab = c.find("ab").unwrap();
        let zero = c.add_constant("zero", false).unwrap();
        c.redirect(ab, zero).unwrap();
        // `out` now reads from the constant instead of the AND gate.
        let out = c.find("out").unwrap();
        assert!(c.node(out).unwrap().fanin().contains(&zero));
        assert!(!c.node(out).unwrap().fanin().contains(&ab));
        // Inputs are untouched.
        assert_eq!(c.num_inputs(), 3);
        // Redirecting an output node updates the output list too.
        c.redirect(out, zero).unwrap();
        assert_eq!(c.outputs(), &[zero]);
        assert!(matches!(
            c.redirect(NodeId::new(99), zero).unwrap_err(),
            CircuitError::UnknownNode(99)
        ));
    }

    #[test]
    fn stats_gate_counts() {
        let c = and_xor_circuit();
        let stats = c.stats();
        assert_eq!(stats.gates, 2);
        assert!(stats
            .gate_counts
            .iter()
            .any(|&(k, n)| k == GateKind::And && n == 1));
        assert!(stats.to_string().contains("gates=2"));
    }
}
