//! Ergonomic circuit construction.

use crate::error::Result;
use crate::gate::GateKind;
use crate::netlist::{Circuit, NodeId};

/// A fluent builder that constructs a [`Circuit`] while generating names for
/// intermediate signals automatically.
///
/// The builder is a thin convenience layer: every method maps to one or a few
/// [`Circuit`] primitives. Handles returned by the builder are plain
/// [`NodeId`]s, so builder-made and hand-made nodes mix freely.
///
/// ```
/// use nbl_circuit::{CircuitBuilder, Simulator};
///
/// let mut b = CircuitBuilder::new("mux");
/// let sel = b.input("sel")?;
/// let d0 = b.input("d0")?;
/// let d1 = b.input("d1")?;
/// let out = b.mux(sel, d1, d0)?;      // sel ? d1 : d0
/// b.output("out", out)?;
/// let circuit = b.finish();
///
/// let sim = Simulator::new(&circuit)?;
/// assert_eq!(sim.run(&[false, false, true])?, vec![false]); // sel=0 -> d0
/// assert_eq!(sim.run(&[true, false, true])?, vec![true]);   // sel=1 -> d1
/// # Ok::<(), nbl_circuit::CircuitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    circuit: Circuit,
    next_tmp: usize,
}

impl CircuitBuilder {
    /// Creates a builder for a circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder {
            circuit: Circuit::new(name),
            next_tmp: 0,
        }
    }

    /// Wraps an existing circuit so more logic can be appended to it.
    pub fn from_circuit(circuit: Circuit) -> Self {
        CircuitBuilder {
            circuit,
            next_tmp: 0,
        }
    }

    fn tmp_name(&mut self, stem: &str) -> String {
        loop {
            let name = format!("_{stem}{}", self.next_tmp);
            self.next_tmp += 1;
            if self.circuit.find(&name).is_none() {
                return name;
            }
        }
    }

    /// Adds a named primary input.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::CircuitError::DuplicateSignal`].
    pub fn input(&mut self, name: impl Into<String>) -> Result<NodeId> {
        self.circuit.add_input(name)
    }

    /// Adds a bus of `width` primary inputs named `stem0`, `stem1`, ...
    ///
    /// # Errors
    ///
    /// Propagates [`crate::CircuitError::DuplicateSignal`].
    pub fn input_bus(&mut self, stem: &str, width: usize) -> Result<Vec<NodeId>> {
        (0..width)
            .map(|i| self.input(format!("{stem}{i}")))
            .collect()
    }

    /// Adds a constant driver with an auto-generated name.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::CircuitError::DuplicateSignal`].
    pub fn constant(&mut self, value: bool) -> Result<NodeId> {
        let name = self.tmp_name(if value { "one" } else { "zero" });
        self.circuit.add_constant(name, value)
    }

    /// Adds a gate with an auto-generated name.
    ///
    /// # Errors
    ///
    /// Propagates fan-in validation errors from [`Circuit::add_gate`].
    pub fn gate(&mut self, kind: GateKind, fanin: &[NodeId]) -> Result<NodeId> {
        let name = self.tmp_name(&kind.name().to_ascii_lowercase());
        self.circuit.add_gate(name, kind, fanin)
    }

    /// Adds a gate driving an explicitly named signal.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Circuit::add_gate`].
    pub fn named_gate(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        fanin: &[NodeId],
    ) -> Result<NodeId> {
        self.circuit.add_gate(name, kind, fanin)
    }

    /// Two-input AND.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Circuit::add_gate`].
    pub fn and2(&mut self, a: NodeId, b: NodeId) -> Result<NodeId> {
        self.gate(GateKind::And, &[a, b])
    }

    /// Two-input OR.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Circuit::add_gate`].
    pub fn or2(&mut self, a: NodeId, b: NodeId) -> Result<NodeId> {
        self.gate(GateKind::Or, &[a, b])
    }

    /// Two-input XOR.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Circuit::add_gate`].
    pub fn xor2(&mut self, a: NodeId, b: NodeId) -> Result<NodeId> {
        self.gate(GateKind::Xor, &[a, b])
    }

    /// Inverter.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Circuit::add_gate`].
    pub fn not(&mut self, a: NodeId) -> Result<NodeId> {
        self.gate(GateKind::Not, &[a])
    }

    /// 2-to-1 multiplexer: `sel ? hi : lo`, built from AND/OR/NOT gates.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Circuit::add_gate`].
    pub fn mux(&mut self, sel: NodeId, hi: NodeId, lo: NodeId) -> Result<NodeId> {
        let nsel = self.not(sel)?;
        let take_hi = self.and2(sel, hi)?;
        let take_lo = self.and2(nsel, lo)?;
        self.or2(take_hi, take_lo)
    }

    /// Half adder: returns `(sum, carry)`.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Circuit::add_gate`].
    pub fn half_adder(&mut self, a: NodeId, b: NodeId) -> Result<(NodeId, NodeId)> {
        Ok((self.xor2(a, b)?, self.and2(a, b)?))
    }

    /// Full adder: returns `(sum, carry_out)`.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Circuit::add_gate`].
    pub fn full_adder(&mut self, a: NodeId, b: NodeId, cin: NodeId) -> Result<(NodeId, NodeId)> {
        let (s1, c1) = self.half_adder(a, b)?;
        let (sum, c2) = self.half_adder(s1, cin)?;
        let cout = self.or2(c1, c2)?;
        Ok((sum, cout))
    }

    /// Balanced reduction of a list of signals with the given associative gate.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Circuit::add_gate`].
    ///
    /// # Panics
    ///
    /// Panics if `signals` is empty.
    pub fn reduce(&mut self, kind: GateKind, signals: &[NodeId]) -> Result<NodeId> {
        assert!(!signals.is_empty(), "cannot reduce an empty signal list");
        let mut layer = signals.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.gate(kind, pair)?);
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        Ok(layer[0])
    }

    /// Exposes a node as a primary output under the given name.
    ///
    /// If the node already carries the requested name the node itself is
    /// marked; otherwise a buffer with the output name is inserted.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Circuit::add_gate`] and [`Circuit::mark_output`].
    pub fn output(&mut self, name: impl Into<String>, node: NodeId) -> Result<NodeId> {
        let name = name.into();
        let out = if self
            .circuit
            .node(node)
            .map(|n| n.name() == name)
            .unwrap_or(false)
        {
            node
        } else {
            self.circuit.add_gate(name, GateKind::Buf, &[node])?
        };
        self.circuit.mark_output(out)?;
        Ok(out)
    }

    /// Read-only access to the circuit under construction.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Finishes construction and returns the circuit.
    pub fn finish(self) -> Circuit {
        self.circuit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{truth_table, Simulator};

    #[test]
    fn full_adder_truth_table() {
        let mut b = CircuitBuilder::new("fa");
        let a = b.input("a").unwrap();
        let bb = b.input("b").unwrap();
        let cin = b.input("cin").unwrap();
        let (sum, cout) = b.full_adder(a, bb, cin).unwrap();
        b.output("sum", sum).unwrap();
        b.output("cout", cout).unwrap();
        let circuit = b.finish();
        let sim = Simulator::new(&circuit).unwrap();
        for pattern in 0..8u32 {
            let bits = [pattern & 1 == 1, pattern & 2 == 2, pattern & 4 == 4];
            let total = bits.iter().filter(|&&x| x).count();
            let out = sim.run(&bits).unwrap();
            assert_eq!(out[0], total % 2 == 1, "sum for {bits:?}");
            assert_eq!(out[1], total >= 2, "carry for {bits:?}");
        }
    }

    #[test]
    fn mux_selects_correct_branch() {
        let mut b = CircuitBuilder::new("mux");
        let sel = b.input("sel").unwrap();
        let d0 = b.input("d0").unwrap();
        let d1 = b.input("d1").unwrap();
        let out = b.mux(sel, d1, d0).unwrap();
        b.output("out", out).unwrap();
        let circuit = b.finish();
        let table = truth_table(&circuit).unwrap();
        for row in table {
            let sel = row.pattern & 1 == 1;
            let d0 = row.pattern & 2 == 2;
            let d1 = row.pattern & 4 == 4;
            assert_eq!(row.outputs[0], if sel { d1 } else { d0 });
        }
    }

    #[test]
    fn reduce_builds_balanced_tree() {
        let mut b = CircuitBuilder::new("tree");
        let bus = b.input_bus("x", 5).unwrap();
        let all = b.reduce(GateKind::And, &bus).unwrap();
        b.output("all", all).unwrap();
        let circuit = b.finish();
        let sim = Simulator::new(&circuit).unwrap();
        assert_eq!(sim.run(&[true; 5]).unwrap(), vec![true]);
        assert_eq!(
            sim.run(&[true, true, false, true, true]).unwrap(),
            vec![false]
        );
        // A balanced reduction of 5 leaves uses 4 binary gates and depth 3.
        assert_eq!(circuit.num_gates(), 4 + 1); // + output buffer
        assert!(circuit.stats().depth <= 4);
    }

    #[test]
    fn output_reuses_existing_name() {
        let mut b = CircuitBuilder::new("named");
        let a = b.input("a").unwrap();
        let g = b.named_gate("y", GateKind::Not, &[a]).unwrap();
        let out = b.output("y", g).unwrap();
        assert_eq!(out, g, "no buffer inserted when names already match");
        let circuit = b.finish();
        assert_eq!(circuit.num_gates(), 1);
    }

    #[test]
    fn constants_and_tmp_names_do_not_collide() {
        let mut b = CircuitBuilder::new("consts");
        let one = b.constant(true).unwrap();
        let zero = b.constant(false).unwrap();
        let or = b.or2(one, zero).unwrap();
        b.output("out", or).unwrap();
        let circuit = b.finish();
        let sim = Simulator::new(&circuit).unwrap();
        assert_eq!(sim.run(&[]).unwrap(), vec![true]);
    }
}
