//! Tseitin transformation: circuits to equisatisfiable CNF.
//!
//! The Tseitin encoding introduces one CNF variable per circuit signal and a
//! handful of clauses per gate, so the CNF size is linear in the circuit size.
//! The primary inputs are always encoded as the *first* `n` CNF variables (in
//! input declaration order), which is the convention every NBL-SAT engine in
//! this workspace assumes: a model of the CNF restricted to those variables is
//! an input pattern of the circuit.

use crate::error::Result;
use crate::gate::GateKind;
use crate::netlist::{Circuit, NodeId, NodeKind};
use cnf::{CnfFormula, Literal, Variable};

/// The result of Tseitin-encoding a circuit.
///
/// ```
/// use nbl_circuit::{library, TseitinEncoder};
/// use cnf::Assignment;
///
/// let parity = library::parity_tree(3);
/// let enc = TseitinEncoder::new().encode(&parity)?;
/// // Force the output to 1 and check that a known odd-parity pattern is a model.
/// let mut formula = enc.formula().clone();
/// formula.add_clause([enc.output_literal(0)]);
/// assert!(enc.num_input_vars() <= formula.num_vars());
/// # Ok::<(), nbl_circuit::CircuitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CnfEncoding {
    formula: CnfFormula,
    input_vars: Vec<Variable>,
    node_literals: Vec<Literal>,
    output_literals: Vec<Literal>,
    input_names: Vec<String>,
    output_names: Vec<String>,
}

impl CnfEncoding {
    /// The Tseitin CNF (satisfiable for every circuit; constraints on outputs
    /// must be added by the caller, e.g. via [`CnfEncoding::assert_output`]).
    pub fn formula(&self) -> &CnfFormula {
        &self.formula
    }

    /// Consumes the encoding and returns the CNF.
    pub fn into_formula(self) -> CnfFormula {
        self.formula
    }

    /// Number of primary-input CNF variables (they are variables `0..n`).
    pub fn num_input_vars(&self) -> usize {
        self.input_vars.len()
    }

    /// The CNF variable of the `i`-th primary input (input declaration order).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn input_var(&self, i: usize) -> Variable {
        self.input_vars[i]
    }

    /// All primary-input CNF variables, in input declaration order.
    pub fn input_vars(&self) -> &[Variable] {
        &self.input_vars
    }

    /// The CNF literal equivalent to the value of the given circuit node.
    ///
    /// # Panics
    ///
    /// Panics if the node id does not belong to the encoded circuit.
    pub fn literal_of(&self, node: NodeId) -> Literal {
        self.node_literals[node.index()]
    }

    /// The CNF literal of the `i`-th primary output (output declaration order).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn output_literal(&self, i: usize) -> Literal {
        self.output_literals[i]
    }

    /// All primary-output CNF literals, in output declaration order.
    pub fn output_literals(&self) -> &[Literal] {
        &self.output_literals
    }

    /// Names of the primary inputs, aligned with [`CnfEncoding::input_vars`].
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Names of the primary outputs, aligned with [`CnfEncoding::output_literals`].
    pub fn output_names(&self) -> &[String] {
        &self.output_names
    }

    /// Adds a unit clause forcing the `i`-th primary output to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn assert_output(&mut self, i: usize, value: bool) {
        let lit = self.output_literals[i];
        self.formula.add_clause([if value { lit } else { !lit }]);
    }

    /// Adds a unit clause forcing the `i`-th primary input to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn assert_input(&mut self, i: usize, value: bool) {
        let var = self.input_vars[i];
        self.formula.add_clause([var.literal(value)]);
    }

    /// Decodes a CNF model into the circuit's input pattern
    /// (one value per primary input, in input declaration order).
    pub fn decode_inputs(&self, model: &cnf::Assignment) -> Vec<bool> {
        self.input_vars.iter().map(|&v| model.value(v)).collect()
    }
}

/// Encoder for the Tseitin transformation.
///
/// The encoder is configuration-free today; it is a struct (rather than a free
/// function) so that encoding options — e.g. plaisted–greenbaum polarity
/// optimization — can be added without breaking the API.
#[derive(Debug, Clone, Default)]
pub struct TseitinEncoder {
    _private: (),
}

impl TseitinEncoder {
    /// Creates an encoder with default settings.
    pub fn new() -> Self {
        TseitinEncoder { _private: () }
    }

    /// Encodes a circuit into CNF.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CircuitError::CombinationalLoop`] if the circuit is
    /// cyclic.
    pub fn encode(&self, circuit: &Circuit) -> Result<CnfEncoding> {
        let order = circuit.topological_order()?;
        let mut formula = CnfFormula::new(0);
        let mut input_vars = Vec::with_capacity(circuit.num_inputs());
        // Primary inputs first, so they occupy CNF variables 0..n.
        for _ in 0..circuit.num_inputs() {
            let var = formula.new_variable();
            debug_assert_eq!(var.index(), input_vars.len());
            input_vars.push(var);
        }
        let mut node_literals = vec![Literal::positive(Variable::new(0)); circuit.num_nodes()];
        for (i, &input) in circuit.inputs().iter().enumerate() {
            node_literals[input.index()] = Literal::positive(input_vars[i]);
        }
        for id in order {
            let node = circuit.node(id).expect("order refers to valid nodes");
            match node.kind() {
                NodeKind::Input => {}
                NodeKind::Constant(v) => {
                    let var = formula.new_variable();
                    formula.add_clause([var.literal(v)]);
                    node_literals[id.index()] = Literal::positive(var);
                }
                NodeKind::Gate(kind) => {
                    let fanin: Vec<Literal> = node
                        .fanin()
                        .iter()
                        .map(|f| node_literals[f.index()])
                        .collect();
                    node_literals[id.index()] = encode_gate(&mut formula, kind, &fanin);
                }
            }
        }
        let output_literals = circuit
            .outputs()
            .iter()
            .map(|&o| node_literals[o.index()])
            .collect();
        Ok(CnfEncoding {
            formula,
            input_vars,
            node_literals,
            output_literals,
            input_names: circuit
                .input_names()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            output_names: circuit
                .output_names()
                .iter()
                .map(|s| s.to_string())
                .collect(),
        })
    }
}

/// Encodes one gate, returning the literal equivalent to its output.
fn encode_gate(formula: &mut CnfFormula, kind: GateKind, fanin: &[Literal]) -> Literal {
    match kind {
        // Buffers and inverters need no variables or clauses at all.
        GateKind::Buf => fanin[0],
        GateKind::Not => !fanin[0],
        GateKind::And | GateKind::Nand => {
            let out = encode_and(formula, fanin);
            if kind == GateKind::Nand {
                !out
            } else {
                out
            }
        }
        GateKind::Or | GateKind::Nor => {
            let out = encode_or(formula, fanin);
            if kind == GateKind::Nor {
                !out
            } else {
                out
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let out = encode_xor_chain(formula, fanin);
            if kind == GateKind::Xnor {
                !out
            } else {
                out
            }
        }
    }
}

/// `y <-> AND(fanin)`.
fn encode_and(formula: &mut CnfFormula, fanin: &[Literal]) -> Literal {
    let y = Literal::positive(formula.new_variable());
    for &f in fanin {
        formula.add_clause([!y, f]);
    }
    let mut long: Vec<Literal> = fanin.iter().map(|&f| !f).collect();
    long.push(y);
    formula.add_clause(long);
    y
}

/// `y <-> OR(fanin)`.
fn encode_or(formula: &mut CnfFormula, fanin: &[Literal]) -> Literal {
    let y = Literal::positive(formula.new_variable());
    for &f in fanin {
        formula.add_clause([y, !f]);
    }
    let mut long: Vec<Literal> = fanin.to_vec();
    long.push(!y);
    formula.add_clause(long);
    y
}

/// `y <-> a XOR b` (fresh `y`).
fn encode_xor2(formula: &mut CnfFormula, a: Literal, b: Literal) -> Literal {
    let y = Literal::positive(formula.new_variable());
    formula.add_clause([!a, !b, !y]);
    formula.add_clause([a, b, !y]);
    formula.add_clause([a, !b, y]);
    formula.add_clause([!a, b, y]);
    y
}

/// n-ary XOR as a left-to-right chain of 2-input XORs.
fn encode_xor_chain(formula: &mut CnfFormula, fanin: &[Literal]) -> Literal {
    let mut acc = fanin[0];
    for &f in &fanin[1..] {
        acc = encode_xor2(formula, acc, f);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use crate::sim::Simulator;
    use sat_solvers::{DpllSolver, SolveResult, Solver};

    /// For every input pattern of `circuit`, the Tseitin CNF with the inputs
    /// pinned and an output asserted must be SAT exactly when the simulator
    /// produces that output value.
    fn check_encoding_against_simulation(circuit: &crate::Circuit) {
        let sim = Simulator::new(circuit).unwrap();
        let base = TseitinEncoder::new().encode(circuit).unwrap();
        let n = circuit.num_inputs();
        assert!(n <= 12, "test helper is exhaustive");
        for pattern in 0u64..(1 << n) {
            let inputs: Vec<bool> = (0..n).map(|i| pattern >> i & 1 == 1).collect();
            let expected = sim.run(&inputs).unwrap();
            for (out_idx, &expected_value) in expected.iter().enumerate() {
                for asserted in [true, false] {
                    let mut enc = base.clone();
                    for (i, &v) in inputs.iter().enumerate() {
                        enc.assert_input(i, v);
                    }
                    enc.assert_output(out_idx, asserted);
                    let mut solver = DpllSolver::new();
                    let result = solver.solve(enc.formula());
                    if asserted == expected_value {
                        assert!(
                            result.is_sat(),
                            "pattern {pattern:b}, output {out_idx} = {asserted} must be SAT"
                        );
                    } else {
                        assert!(
                            result.is_unsat(),
                            "pattern {pattern:b}, output {out_idx} = {asserted} must be UNSAT"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn inputs_are_first_cnf_variables() {
        let adder = library::ripple_carry_adder(2);
        let enc = TseitinEncoder::new().encode(&adder).unwrap();
        assert_eq!(enc.num_input_vars(), 5);
        for (i, var) in enc.input_vars().iter().enumerate() {
            assert_eq!(var.index(), i);
        }
        assert_eq!(enc.input_names().len(), 5);
        assert_eq!(enc.output_names(), &["s0", "s1", "cout"]);
    }

    #[test]
    fn buffers_and_inverters_are_free() {
        let mut c = crate::Circuit::new("bufnot");
        let a = c.add_input("a").unwrap();
        let n1 = c.add_gate("n1", GateKind::Not, &[a]).unwrap();
        let b1 = c.add_gate("b1", GateKind::Buf, &[n1]).unwrap();
        c.mark_output(b1).unwrap();
        let enc = TseitinEncoder::new().encode(&c).unwrap();
        // Only the input variable exists, no clauses are needed.
        assert_eq!(enc.formula().num_vars(), 1);
        assert_eq!(enc.formula().num_clauses(), 0);
        assert_eq!(enc.output_literal(0), !Literal::positive(Variable::new(0)));
    }

    #[test]
    fn parity_tree_encoding_matches_simulation() {
        check_encoding_against_simulation(&library::parity_tree(4));
    }

    #[test]
    fn adder_encoding_matches_simulation() {
        check_encoding_against_simulation(&library::ripple_carry_adder(2));
    }

    #[test]
    fn comparator_encoding_matches_simulation() {
        check_encoding_against_simulation(&library::greater_than_comparator(3));
    }

    #[test]
    fn multiplexer_encoding_matches_simulation() {
        check_encoding_against_simulation(&library::multiplexer(2));
    }

    #[test]
    fn constants_are_constrained() {
        let mut c = crate::Circuit::new("const");
        let a = c.add_input("a").unwrap();
        let one = c.add_constant("one", true).unwrap();
        let out = c.add_gate("out", GateKind::And, &[a, one]).unwrap();
        c.mark_output(out).unwrap();
        check_encoding_against_simulation(&c);
    }

    #[test]
    fn decode_inputs_recovers_pattern() {
        let parity = library::parity_tree(3);
        let mut enc = TseitinEncoder::new().encode(&parity).unwrap();
        enc.assert_output(0, true);
        let mut solver = DpllSolver::new();
        match solver.solve(enc.formula()) {
            SolveResult::Satisfiable(model) => {
                let inputs = enc.decode_inputs(&model);
                assert_eq!(inputs.len(), 3);
                let ones = inputs.iter().filter(|&&b| b).count();
                assert_eq!(ones % 2, 1, "decoded pattern must have odd parity");
            }
            other => panic!("expected SAT, got {other}"),
        }
    }
}
