//! Stuck-at fault modelling, fault simulation and ATPG encoding.
//!
//! Circuit testing — generating input patterns that distinguish a fabricated
//! die with a manufacturing defect from the intended design — is the third SAT
//! application the paper's introduction motivates. Under the single stuck-at
//! fault model a defect pins one signal line to a constant 0 or 1; a *test* for
//! the fault is an input pattern on which the good and faulty circuits produce
//! different outputs. Finding such a pattern is exactly a miter SAT problem,
//! so any engine in this workspace (CDCL, DPLL, or the NBL-SAT checker) can
//! serve as the ATPG back end.

use crate::error::Result;
use crate::miter::{equivalence_check, EquivalenceCheck};
use crate::netlist::{Circuit, NodeId};
use crate::sim::Simulator;
use crate::tseitin::{CnfEncoding, TseitinEncoder};
use cnf::{Assignment, CnfFormula, Literal};
use std::fmt;

/// A single stuck-at fault on the output line of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StuckAtFault {
    /// The node whose output line is faulty.
    pub node: NodeId,
    /// The value the line is stuck at (`false` = stuck-at-0, `true` = stuck-at-1).
    pub stuck_at: bool,
}

impl StuckAtFault {
    /// Creates a stuck-at-0 fault on the given node.
    pub fn stuck_at_0(node: NodeId) -> Self {
        StuckAtFault {
            node,
            stuck_at: false,
        }
    }

    /// Creates a stuck-at-1 fault on the given node.
    pub fn stuck_at_1(node: NodeId) -> Self {
        StuckAtFault {
            node,
            stuck_at: true,
        }
    }

    /// Human-readable description of the fault within the given circuit.
    pub fn describe(&self, circuit: &Circuit) -> String {
        let name = circuit
            .node(self.node)
            .map(|n| n.name().to_string())
            .unwrap_or_else(|| self.node.to_string());
        format!("{name} s-a-{}", self.stuck_at as u8)
    }
}

impl fmt::Display for StuckAtFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} s-a-{}", self.node, self.stuck_at as u8)
    }
}

/// Enumerates the full single stuck-at fault list of a circuit: two faults
/// (stuck-at-0, stuck-at-1) per node, excluding the miter-irrelevant faults on
/// constant drivers.
pub fn fault_list(circuit: &Circuit) -> Vec<StuckAtFault> {
    let mut faults = Vec::with_capacity(2 * circuit.num_nodes());
    for (id, node) in circuit.iter() {
        if matches!(node.kind(), crate::netlist::NodeKind::Constant(_)) {
            continue;
        }
        faults.push(StuckAtFault::stuck_at_0(id));
        faults.push(StuckAtFault::stuck_at_1(id));
    }
    faults
}

/// Returns a copy of the circuit with the fault injected.
///
/// For a fault on a gate (or constant) output the node's driver is replaced by
/// the stuck value; for a fault on a primary input a constant node is added
/// and every gate that reads the input is rewired to it. Either way the
/// circuit interface (input and output names) is preserved, so the faulty
/// circuit can be mitered against the good one.
///
/// A primary input that is *directly* marked as a primary output does not
/// observe its own stuck-at fault at that output (the fault sits on the
/// input's fan-out branches); such faults are only detectable through other
/// outputs, matching the usual fan-out-branch fault model.
///
/// # Errors
///
/// Returns [`crate::CircuitError::UnknownNode`] if the fault references a node
/// that does not exist, or [`crate::CircuitError::DuplicateSignal`] if the
/// generated constant name collides.
pub fn inject(circuit: &Circuit, fault: StuckAtFault) -> Result<Circuit> {
    let mut faulty = circuit.clone();
    let node = circuit
        .node(fault.node)
        .ok_or(crate::CircuitError::UnknownNode(fault.node.index()))?;
    if node.is_input() {
        let name = format!("{}_sa{}", node.name(), fault.stuck_at as u8);
        let constant = faulty.add_constant(name, fault.stuck_at)?;
        faulty.redirect_fanin(fault.node, constant)?;
    } else {
        faulty.set_constant_driver(fault.node, fault.stuck_at)?;
    }
    faulty.set_name(format!("{}#{}", circuit.name(), fault));
    Ok(faulty)
}

/// Builds the ATPG SAT instance for one fault: the equivalence check between
/// the good circuit and the faulty circuit.
///
/// The resulting CNF is **satisfiable iff the fault is testable**, and every
/// model decodes (via [`EquivalenceCheck::counterexample`]) to a test pattern
/// that detects the fault.
///
/// # Errors
///
/// Propagates injection and miter construction errors.
pub fn atpg_check(circuit: &Circuit, fault: StuckAtFault) -> Result<EquivalenceCheck> {
    let faulty = inject(circuit, fault)?;
    equivalence_check(circuit, &faulty)
}

/// The instrumented CNF for an *incremental* ATPG sweep: one good copy, one
/// fault-instrumented shadow copy, one selector input per fault.
///
/// Instead of importing a separate faulty circuit per fault (which would make
/// the clause database — and so every incremental call — grow linearly with
/// the fault list), the shadow copy interposes a mux on each faulted line:
/// stuck-at-1 becomes `OR(line, sel_i)`, stuck-at-0 becomes
/// `AND(line, NOT sel_i)`, so the shadow equals the good circuit when every
/// selector is off and equals the fault-`i` mutant when exactly `sel_i` is
/// on. Pairwise at-most-one clauses over the selectors pin the single-fault
/// model, and the good-vs-shadow miter output is asserted to 1. The formula
/// therefore stays `O(circuit + faults)` instead of `O(circuit × faults)`.
///
/// Fault `i` is testable iff the shared [`AtpgSweep::formula`] is satisfiable
/// under the single assumption [`AtpgSweep::fault_literal`]`(i)` (the
/// selector literal), and the model decodes (via
/// [`AtpgSweep::test_pattern`]) to a detecting input pattern. Compared with
/// calling [`atpg_check`] per fault, nothing is re-encoded and every learned
/// clause about the good circuit carries over from fault to fault — the
/// IPASIR-style workload the paper's §V coprocessor deployment story implies.
#[derive(Debug, Clone)]
pub struct AtpgSweep {
    formula: CnfFormula,
    encoding: CnfEncoding,
    selectors: Vec<Literal>,
    faults: Vec<StuckAtFault>,
    circuit_inputs: usize,
}

impl AtpgSweep {
    /// The shared CNF; per-fault questions are asked via assumptions.
    /// (Without any assumption it is satisfiable iff *some* listed fault is
    /// testable: the asserted miter output forces one selector on.)
    pub fn formula(&self) -> &CnfFormula {
        &self.formula
    }

    /// The fault list, aligned with the assumption literals.
    pub fn faults(&self) -> &[StuckAtFault] {
        &self.faults
    }

    /// Number of faults in the sweep.
    pub fn num_faults(&self) -> usize {
        self.faults.len()
    }

    /// The assumption literal asking "is fault `i` testable": the positive
    /// literal of fault `i`'s selector input.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn fault_literal(&self, i: usize) -> Literal {
        self.selectors[i]
    }

    /// Decodes the model of a satisfiable fault check into the detecting
    /// input pattern, in input declaration order (selector inputs excluded).
    pub fn test_pattern(&self, model: &Assignment) -> Vec<bool> {
        let mut inputs = self.encoding.decode_inputs(model);
        inputs.truncate(self.circuit_inputs);
        inputs
    }

    /// The raw Tseitin encoding of the instrumented miter (original inputs
    /// first, then one `sel_f<i>` input per fault).
    pub fn encoding(&self) -> &CnfEncoding {
        &self.encoding
    }
}

/// Builds the [`AtpgSweep`] instance for a circuit and fault list: the good
/// circuit is imported once, a single shadow copy gets a selector-controlled
/// mux per fault, and the good-vs-shadow miter output is asserted.
///
/// # Errors
///
/// * [`crate::CircuitError::NoOutputs`] for an empty fault list or a circuit
///   without outputs.
/// * [`crate::CircuitError::UnknownNode`] if a fault references a node that
///   does not exist.
/// * Propagates construction and encoding errors (e.g. name collisions with
///   the generated `sel_f<i>` / `fx_*` signals).
pub fn atpg_sweep(circuit: &Circuit, faults: &[StuckAtFault]) -> Result<AtpgSweep> {
    use crate::gate::GateKind;
    use crate::netlist::NodeKind;
    use std::collections::HashMap;

    if faults.is_empty() || circuit.num_outputs() == 0 {
        return Err(crate::CircuitError::NoOutputs);
    }
    for fault in faults {
        circuit
            .node(fault.node)
            .ok_or(crate::CircuitError::UnknownNode(fault.node.index()))?;
    }

    let mut m = Circuit::new(format!("atpg-sweep({})", circuit.name()));
    let mut input_map = HashMap::new();
    for name in circuit.input_names() {
        let id = m.add_input(name)?;
        input_map.insert(name.to_string(), id);
    }
    let selectors: Vec<NodeId> = (0..faults.len())
        .map(|j| m.add_input(format!("sel_f{j}")))
        .collect::<Result<_>>()?;
    let good_out = m.import(circuit, "good_", &input_map)?;

    // The shadow copy: every faulted line gets one mux per fault on it, and
    // gates read the *muxed* versions of their fanins so an activated fault
    // propagates exactly like the injected mutant.
    let mut on_node: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for (j, fault) in faults.iter().enumerate() {
        on_node.entry(fault.node).or_default().push(j);
    }
    let mut shadow: HashMap<NodeId, NodeId> = HashMap::new();
    for id in circuit.topological_order()? {
        let node = circuit.node(id).expect("topological order yields live ids");
        let mut signal = match node.kind() {
            NodeKind::Input => input_map[node.name()],
            NodeKind::Constant(value) => m.add_constant(format!("fx_{}", node.name()), value)?,
            NodeKind::Gate(kind) => {
                let fanin: Vec<NodeId> = node.fanin().iter().map(|f| shadow[f]).collect();
                m.add_gate(format!("fx_{}", node.name()), kind, &fanin)?
            }
        };
        if let Some(indices) = on_node.get(&id) {
            for &j in indices {
                signal = if faults[j].stuck_at {
                    m.add_gate(format!("fx_sa1_{j}"), GateKind::Or, &[signal, selectors[j]])?
                } else {
                    let off = m.add_gate(format!("fx_off_{j}"), GateKind::Not, &[selectors[j]])?;
                    m.add_gate(format!("fx_sa0_{j}"), GateKind::And, &[signal, off])?
                };
            }
        }
        shadow.insert(id, signal);
    }

    // Good-vs-shadow miter. A primary input marked directly as an output does
    // not observe its own stuck-at fault at that output (the fault sits on
    // the fan-out branches), matching [`inject`].
    let mut diffs = Vec::with_capacity(circuit.num_outputs());
    for &output in circuit.outputs() {
        let node = circuit.node(output).expect("outputs are live ids");
        let faulty_side = if node.is_input() {
            input_map[node.name()]
        } else {
            shadow[&output]
        };
        diffs.push(m.add_gate(
            format!("diff_{}", node.name()),
            GateKind::Xor,
            &[good_out[node.name()], faulty_side],
        )?);
    }
    let differs = if diffs.len() == 1 {
        m.add_gate("differs", GateKind::Buf, &[diffs[0]])?
    } else {
        m.add_gate("differs", GateKind::Or, &diffs)?
    };
    m.mark_output(differs)?;

    let mut encoding = TseitinEncoder::new().encode(&m)?;
    encoding.assert_output(0, true);
    let circuit_inputs = circuit.num_inputs();
    let selector_lits: Vec<Literal> = (0..faults.len())
        .map(|j| encoding.input_var(circuit_inputs + j).positive())
        .collect();
    let mut formula = encoding.formula().clone();
    // Pairwise at-most-one over the selectors: assuming `sel_i` immediately
    // propagates every other selector to false, so each call decides the
    // single-fault question.
    for (a, &first) in selector_lits.iter().enumerate() {
        for &second in &selector_lits[a + 1..] {
            formula.add_clause([!first, !second]);
        }
    }
    Ok(AtpgSweep {
        formula,
        encoding,
        selectors: selector_lits,
        faults: faults.to_vec(),
        circuit_inputs,
    })
}

/// Result of fault-simulating a set of test patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSimReport {
    /// Faults detected by at least one pattern.
    pub detected: Vec<StuckAtFault>,
    /// Faults not detected by any pattern.
    pub undetected: Vec<StuckAtFault>,
}

impl FaultSimReport {
    /// Total number of faults simulated.
    pub fn total(&self) -> usize {
        self.detected.len() + self.undetected.len()
    }

    /// Fault coverage in `[0, 1]` (1.0 when the fault list is empty).
    pub fn coverage(&self) -> f64 {
        if self.total() == 0 {
            1.0
        } else {
            self.detected.len() as f64 / self.total() as f64
        }
    }
}

impl fmt::Display for FaultSimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} faults detected ({:.1}% coverage)",
            self.detected.len(),
            self.total(),
            100.0 * self.coverage()
        )
    }
}

/// Fault-simulates a pattern set against a fault list using 64-way
/// bit-parallel simulation.
///
/// A fault is *detected* if at least one pattern makes any primary output of
/// the faulty circuit differ from the good circuit.
///
/// # Errors
///
/// * [`crate::CircuitError::InputCountMismatch`] if any pattern has the wrong
///   arity.
/// * Propagates injection and simulation errors.
pub fn fault_simulate(
    circuit: &Circuit,
    faults: &[StuckAtFault],
    patterns: &[Vec<bool>],
) -> Result<FaultSimReport> {
    let good_sim = Simulator::new(circuit)?;
    let n = circuit.num_inputs();
    // Pack patterns into 64-wide words per input.
    let chunks: Vec<Vec<u64>> = patterns
        .chunks(64)
        .map(|chunk| {
            let mut words = vec![0u64; n];
            for (bit, pattern) in chunk.iter().enumerate() {
                if pattern.len() != n {
                    return Err(crate::CircuitError::InputCountMismatch {
                        expected: n,
                        got: pattern.len(),
                    });
                }
                for (i, &value) in pattern.iter().enumerate() {
                    if value {
                        words[i] |= 1u64 << bit;
                    }
                }
            }
            Ok(words)
        })
        .collect::<Result<_>>()?;
    let good_outputs: Vec<Vec<u64>> = chunks
        .iter()
        .map(|words| good_sim.run_words(words))
        .collect::<Result<_>>()?;

    let mut detected = Vec::new();
    let mut undetected = Vec::new();
    for &fault in faults {
        let faulty = inject(circuit, fault)?;
        let faulty_sim = Simulator::new(&faulty)?;
        let mut found = false;
        for (chunk_idx, words) in chunks.iter().enumerate() {
            let faulty_out = faulty_sim.run_words(words)?;
            let valid_bits = {
                let remaining = patterns.len() - chunk_idx * 64;
                if remaining >= 64 {
                    u64::MAX
                } else {
                    (1u64 << remaining) - 1
                }
            };
            if good_outputs[chunk_idx]
                .iter()
                .zip(&faulty_out)
                .any(|(g, f)| (g ^ f) & valid_bits != 0)
            {
                found = true;
                break;
            }
        }
        if found {
            detected.push(fault);
        } else {
            undetected.push(fault);
        }
    }
    Ok(FaultSimReport {
        detected,
        undetected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use sat_solvers::{CdclSolver, SolveResult, Solver};

    #[test]
    fn fault_list_covers_every_non_constant_node() {
        let c = library::majority3();
        let faults = fault_list(&c);
        assert_eq!(faults.len(), 2 * c.num_nodes());
        assert!(faults.iter().any(|f| !f.stuck_at));
        assert!(faults.iter().any(|f| f.stuck_at));
    }

    #[test]
    fn injection_preserves_interface() {
        let c = library::ripple_carry_adder(2);
        let fault = StuckAtFault::stuck_at_1(c.find("a0").unwrap());
        let faulty = inject(&c, fault).unwrap();
        assert_eq!(faulty.num_inputs(), c.num_inputs());
        assert_eq!(faulty.input_names(), c.input_names());
        assert_eq!(faulty.output_names(), c.output_names());
        assert!(faulty.validate().is_ok());
        // With a0 stuck at 1, the pattern a=0,b=0,cin=0 must now produce s0=1.
        let sim = Simulator::new(&faulty).unwrap();
        let out = sim.run(&[false, false, false, false, false]).unwrap();
        assert!(out[0]);
    }

    #[test]
    fn describes_fault_with_signal_name() {
        let c = library::majority3();
        let fault = StuckAtFault::stuck_at_0(c.find("x1").unwrap());
        assert_eq!(fault.describe(&c), "x1 s-a-0");
        assert!(fault.to_string().contains("s-a-0"));
    }

    #[test]
    fn atpg_finds_a_test_for_a_testable_fault() {
        let c = library::majority3();
        let fault = StuckAtFault::stuck_at_0(c.find("x0").unwrap());
        let check = atpg_check(&c, fault).unwrap();
        let mut solver = CdclSolver::new();
        match solver.solve(check.formula()) {
            SolveResult::Satisfiable(model) => {
                let pattern: Vec<bool> = check
                    .counterexample(&model)
                    .into_iter()
                    .map(|(_, v)| v)
                    .collect();
                // The pattern must actually detect the fault.
                let report = fault_simulate(&c, &[fault], &[pattern]).unwrap();
                assert_eq!(report.detected.len(), 1);
            }
            other => panic!("fault must be testable, got {other}"),
        }
    }

    #[test]
    fn untestable_fault_yields_unsat() {
        // out = x OR NOT x is constantly 1: a stuck-at-1 on the output is untestable.
        let mut c = Circuit::new("tautology");
        let x = c.add_input("x").unwrap();
        let nx = c.add_gate("nx", crate::GateKind::Not, &[x]).unwrap();
        let out = c.add_gate("out", crate::GateKind::Or, &[x, nx]).unwrap();
        c.mark_output(out).unwrap();
        let fault = StuckAtFault::stuck_at_1(out);
        let check = atpg_check(&c, fault).unwrap();
        let mut solver = CdclSolver::new();
        assert!(solver.solve(check.formula()).is_unsat());
    }

    #[test]
    fn exhaustive_patterns_reach_full_coverage_of_testable_faults() {
        let c = library::parity_tree(3);
        let faults = fault_list(&c);
        let patterns: Vec<Vec<bool>> = (0..8u64)
            .map(|p| (0..3).map(|i| p >> i & 1 == 1).collect())
            .collect();
        let report = fault_simulate(&c, &faults, &patterns).unwrap();
        // Every stuck-at fault in a parity tree is testable, so exhaustive
        // patterns must detect all of them.
        assert_eq!(report.undetected.len(), 0, "{report}");
        assert!((report.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn atpg_sweep_agrees_with_the_per_fault_oracle() {
        use sat_solvers::{IncrementalResult, SearchLimits};
        let c = library::majority3();
        let faults = fault_list(&c);
        let sweep = atpg_sweep(&c, &faults).unwrap();
        assert_eq!(sweep.num_faults(), faults.len());

        // One solver, one push, the whole fault list under assumptions.
        let limits = SearchLimits::unlimited();
        let mut incremental = CdclSolver::new();
        incremental.push(sweep.formula());
        for (i, &fault) in faults.iter().enumerate() {
            // The from-scratch oracle: a fresh miter per fault.
            let oracle = {
                let check = atpg_check(&c, fault).unwrap();
                let mut solver = CdclSolver::new();
                solver.solve(check.formula()).is_sat()
            };
            match incremental.solve_under_assumptions(&[sweep.fault_literal(i)], &limits) {
                IncrementalResult::Satisfiable(model) => {
                    assert!(oracle, "sweep says testable, oracle says not: {fault}");
                    let pattern = sweep.test_pattern(&model);
                    let report = fault_simulate(&c, &[fault], &[pattern]).unwrap();
                    assert_eq!(report.detected.len(), 1, "pattern must detect {fault}");
                }
                IncrementalResult::Unsatisfiable(_) => {
                    assert!(!oracle, "sweep says untestable, oracle disagrees: {fault}");
                }
                other => panic!("unlimited search cannot be indeterminate: {other:?}"),
            }
        }
    }

    #[test]
    fn atpg_sweep_rejects_an_empty_fault_list() {
        let c = library::majority3();
        assert!(matches!(
            atpg_sweep(&c, &[]).unwrap_err(),
            crate::CircuitError::NoOutputs
        ));
    }

    #[test]
    fn empty_pattern_set_detects_nothing() {
        let c = library::majority3();
        let faults = fault_list(&c);
        let report = fault_simulate(&c, &faults, &[]).unwrap();
        assert!(report.detected.is_empty());
        assert_eq!(report.total(), faults.len());
    }

    #[test]
    fn malformed_pattern_is_rejected() {
        let c = library::majority3();
        let faults = fault_list(&c);
        let err = fault_simulate(&c, &faults, &[vec![true; 2]]).unwrap_err();
        assert!(matches!(
            err,
            crate::CircuitError::InputCountMismatch {
                expected: 3,
                got: 2
            }
        ));
    }
}
