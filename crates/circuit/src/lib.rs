//! Combinational-circuit substrate for the NBL-SAT reproduction.
//!
//! The NBL-SAT paper (Lin, Mandal, Khatri, DAC 2012) motivates Boolean
//! satisfiability through its EDA applications — logic synthesis, formal
//! verification and circuit testing. This crate provides the gate-level
//! machinery those applications need, so the workspace's SAT engines (both
//! the classical baselines and the NBL-SAT engines) can be exercised on
//! realistic circuit-derived workloads:
//!
//! * [`Circuit`] — a named gate-level netlist with validation, levelization
//!   and structural statistics; [`CircuitBuilder`] for ergonomic construction
//!   and [`library`] for ready-made datapath/control benchmark circuits.
//! * [`Simulator`] — single-pattern and 64-way bit-parallel functional
//!   simulation, truth tables and exhaustive equivalence checks.
//! * [`TseitinEncoder`] — the circuit-to-CNF transformation (primary inputs
//!   become the first CNF variables, as the NBL-SAT transform expects).
//! * [`miter()`] / [`equivalence_check`] — combinational equivalence checking.
//! * [`fault`] — single stuck-at fault modelling, bit-parallel fault
//!   simulation and SAT-based ATPG instance generation.
//! * [`parse_bench`] / [`write_bench`] — ISCAS-style `.bench` netlist I/O.
//! * [`NblCircuitEvaluator`] — the paper's "apply all `2^n` inputs at once"
//!   view of a circuit, computed with the [`nbl_logic`] hyperspace algebra.
//!
//! # Example: equivalence checking end to end
//!
//! ```
//! use nbl_circuit::{library, equivalence_check};
//!
//! let golden = library::ripple_carry_adder(3);
//! let revised = library::buggy_ripple_carry_adder(3, 1);
//! let check = equivalence_check(&golden, &revised)?;
//! // The CNF is satisfiable exactly because the revision is buggy; hand
//! // `check.formula()` to any SAT engine in the workspace to get the
//! // distinguishing input pattern.
//! assert!(check.formula().num_clauses() > 0);
//! # Ok::<(), nbl_circuit::CircuitError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod bench_format;
pub mod builder;
pub mod error;
pub mod fault;
pub mod gate;
pub mod library;
pub mod miter;
pub mod nbl_eval;
pub mod netlist;
pub mod sim;
pub mod tseitin;

pub use bench_format::{parse_bench, write_bench};
pub use builder::CircuitBuilder;
pub use error::{CircuitError, Result};
pub use fault::{
    atpg_check, atpg_sweep, fault_list, fault_simulate, inject, AtpgSweep, FaultSimReport,
    StuckAtFault,
};
pub use gate::{GateKind, ParseGateKindError};
pub use library::standard_suite;
pub use miter::{equivalence_check, miter, miter_sweep, EquivalenceCheck, MiterSweep};
pub use nbl_eval::{NblCircuitEvaluation, NblCircuitEvaluator, NBL_EVAL_INPUT_LIMIT};
pub use netlist::{Circuit, CircuitStats, Node, NodeId, NodeKind};
pub use sim::{
    exhaustive_counterexample, truth_table, Simulator, TruthTableRow, EXHAUSTIVE_INPUT_LIMIT,
};
pub use tseitin::{CnfEncoding, TseitinEncoder};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_api_round_trip() {
        let adder = library::ripple_carry_adder(2);
        let text = write_bench(&adder);
        let reparsed = parse_bench(&text).unwrap();
        assert_eq!(exhaustive_counterexample(&adder, &reparsed).unwrap(), None);
        let encoding = TseitinEncoder::new().encode(&adder).unwrap();
        assert_eq!(encoding.num_input_vars(), adder.num_inputs());
    }
}
