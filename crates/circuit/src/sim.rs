//! Boolean and bit-parallel simulation of circuits.

use crate::error::{CircuitError, Result};
use crate::netlist::{Circuit, NodeKind};

/// Largest number of primary inputs for which exhaustive operations
/// (truth tables, exhaustive equivalence) are allowed.
pub const EXHAUSTIVE_INPUT_LIMIT: usize = 24;

/// A single-pattern functional simulator.
///
/// ```
/// use nbl_circuit::{library, Simulator};
///
/// let adder = library::ripple_carry_adder(2);
/// let sim = Simulator::new(&adder)?;
/// // 3 + 1 = 4: a = 11, b = 01, cin = 0 -> sum = 00, cout = 1
/// let out = sim.run(&[true, true, true, false, false])?;
/// assert_eq!(out, vec![false, false, true]);
/// # Ok::<(), nbl_circuit::CircuitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    circuit: &'a Circuit,
    order: Vec<crate::netlist::NodeId>,
}

impl<'a> Simulator<'a> {
    /// Prepares a simulator for the circuit (computes a topological order).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::CombinationalLoop`] if the circuit is cyclic.
    pub fn new(circuit: &'a Circuit) -> Result<Self> {
        let order = circuit.topological_order()?;
        Ok(Simulator { circuit, order })
    }

    /// The circuit being simulated.
    pub fn circuit(&self) -> &Circuit {
        self.circuit
    }

    /// Evaluates every node for one input pattern, returning the node values
    /// indexed by node id.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InputCountMismatch`] if `inputs` does not
    /// supply exactly one value per primary input (in declaration order).
    pub fn run_nodes(&self, inputs: &[bool]) -> Result<Vec<bool>> {
        if inputs.len() != self.circuit.num_inputs() {
            return Err(CircuitError::InputCountMismatch {
                expected: self.circuit.num_inputs(),
                got: inputs.len(),
            });
        }
        let mut values = vec![false; self.circuit.num_nodes()];
        for (i, &id) in self.circuit.inputs().iter().enumerate() {
            values[id.index()] = inputs[i];
        }
        let mut scratch = Vec::new();
        for &id in &self.order {
            let node = self.circuit.node(id).expect("order refers to valid nodes");
            match node.kind() {
                NodeKind::Input => {}
                NodeKind::Constant(v) => values[id.index()] = v,
                NodeKind::Gate(kind) => {
                    scratch.clear();
                    scratch.extend(node.fanin().iter().map(|f| values[f.index()]));
                    values[id.index()] = kind.eval(&scratch);
                }
            }
        }
        Ok(values)
    }

    /// Evaluates the circuit for one input pattern, returning the primary
    /// output values in declaration order.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InputCountMismatch`] on an input-arity mismatch.
    pub fn run(&self, inputs: &[bool]) -> Result<Vec<bool>> {
        let values = self.run_nodes(inputs)?;
        Ok(self
            .circuit
            .outputs()
            .iter()
            .map(|&o| values[o.index()])
            .collect())
    }

    /// Evaluates 64 input patterns at once (one pattern per bit position).
    ///
    /// `inputs[i]` carries the 64 values of the `i`-th primary input; the
    /// returned words carry the 64 values of each primary output.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InputCountMismatch`] on an input-arity mismatch.
    pub fn run_words(&self, inputs: &[u64]) -> Result<Vec<u64>> {
        let values = self.run_node_words(inputs)?;
        Ok(self
            .circuit
            .outputs()
            .iter()
            .map(|&o| values[o.index()])
            .collect())
    }

    /// Bit-parallel variant of [`Simulator::run_nodes`]: evaluates every node
    /// for 64 patterns at once.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InputCountMismatch`] on an input-arity mismatch.
    pub fn run_node_words(&self, inputs: &[u64]) -> Result<Vec<u64>> {
        if inputs.len() != self.circuit.num_inputs() {
            return Err(CircuitError::InputCountMismatch {
                expected: self.circuit.num_inputs(),
                got: inputs.len(),
            });
        }
        let mut values = vec![0u64; self.circuit.num_nodes()];
        for (i, &id) in self.circuit.inputs().iter().enumerate() {
            values[id.index()] = inputs[i];
        }
        let mut scratch = Vec::new();
        for &id in &self.order {
            let node = self.circuit.node(id).expect("order refers to valid nodes");
            match node.kind() {
                NodeKind::Input => {}
                NodeKind::Constant(v) => values[id.index()] = if v { u64::MAX } else { 0 },
                NodeKind::Gate(kind) => {
                    scratch.clear();
                    scratch.extend(node.fanin().iter().map(|f| values[f.index()]));
                    values[id.index()] = kind.eval_word(&scratch);
                }
            }
        }
        Ok(values)
    }
}

/// One row of a circuit truth table: the input pattern (variable `i` is bit
/// `i`) and the resulting output values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthTableRow {
    /// Input pattern; bit `i` is the value of the `i`-th primary input.
    pub pattern: u64,
    /// Output values in output declaration order.
    pub outputs: Vec<bool>,
}

/// Computes the full truth table of a circuit by exhaustive simulation.
///
/// # Errors
///
/// * [`CircuitError::TooManyInputs`] if the circuit has more than
///   [`EXHAUSTIVE_INPUT_LIMIT`] primary inputs.
/// * [`CircuitError::CombinationalLoop`] if the circuit is cyclic.
pub fn truth_table(circuit: &Circuit) -> Result<Vec<TruthTableRow>> {
    let n = circuit.num_inputs();
    if n > EXHAUSTIVE_INPUT_LIMIT {
        return Err(CircuitError::TooManyInputs {
            inputs: n,
            limit: EXHAUSTIVE_INPUT_LIMIT,
        });
    }
    let sim = Simulator::new(circuit)?;
    let mut rows = Vec::with_capacity(1 << n);
    for pattern in 0u64..(1u64 << n) {
        let inputs: Vec<bool> = (0..n).map(|i| pattern >> i & 1 == 1).collect();
        rows.push(TruthTableRow {
            pattern,
            outputs: sim.run(&inputs)?,
        });
    }
    Ok(rows)
}

/// Exhaustively checks whether two circuits with identical interfaces compute
/// the same function (inputs and outputs are matched by name).
///
/// Returns `Ok(None)` if they are equivalent, or `Ok(Some(pattern))` with a
/// distinguishing input pattern otherwise.
///
/// # Errors
///
/// * [`CircuitError::InterfaceMismatch`] if the input or output names differ.
/// * [`CircuitError::TooManyInputs`] if there are more than
///   [`EXHAUSTIVE_INPUT_LIMIT`] inputs.
/// * [`CircuitError::CombinationalLoop`] if either circuit is cyclic.
pub fn exhaustive_counterexample(a: &Circuit, b: &Circuit) -> Result<Option<u64>> {
    let mut a_inputs = a.input_names();
    let mut b_inputs = b.input_names();
    a_inputs.sort_unstable();
    b_inputs.sort_unstable();
    if a_inputs != b_inputs {
        return Err(CircuitError::InterfaceMismatch(format!(
            "input names differ: {:?} vs {:?}",
            a_inputs, b_inputs
        )));
    }
    let mut a_outputs = a.output_names();
    let mut b_outputs = b.output_names();
    a_outputs.sort_unstable();
    b_outputs.sort_unstable();
    if a_outputs != b_outputs {
        return Err(CircuitError::InterfaceMismatch(format!(
            "output names differ: {:?} vs {:?}",
            a_outputs, b_outputs
        )));
    }
    let n = a.num_inputs();
    if n > EXHAUSTIVE_INPUT_LIMIT {
        return Err(CircuitError::TooManyInputs {
            inputs: n,
            limit: EXHAUSTIVE_INPUT_LIMIT,
        });
    }
    let sim_a = Simulator::new(a)?;
    let sim_b = Simulator::new(b)?;
    // b's inputs may be declared in a different order; build the permutation.
    let b_input_order: Vec<usize> = a
        .input_names()
        .iter()
        .map(|name| {
            b.input_names()
                .iter()
                .position(|other| other == name)
                .expect("checked above that input name sets match")
        })
        .collect();
    let b_output_order: Vec<usize> = a
        .output_names()
        .iter()
        .map(|name| {
            b.output_names()
                .iter()
                .position(|other| other == name)
                .expect("checked above that output name sets match")
        })
        .collect();
    for pattern in 0u64..(1u64 << n) {
        let inputs_a: Vec<bool> = (0..n).map(|i| pattern >> i & 1 == 1).collect();
        let mut inputs_b = vec![false; n];
        for (ai, &bi) in b_input_order.iter().enumerate() {
            inputs_b[bi] = inputs_a[ai];
        }
        let out_a = sim_a.run(&inputs_a)?;
        let out_b = sim_b.run(&inputs_b)?;
        let reordered_b: Vec<bool> = b_output_order.iter().map(|&i| out_b[i]).collect();
        if out_a != reordered_b {
            return Ok(Some(pattern));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    fn xor_of_and() -> Circuit {
        let mut c = Circuit::new("demo");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let ci = c.add_input("c").unwrap();
        let ab = c.add_gate("ab", GateKind::And, &[a, b]).unwrap();
        let out = c.add_gate("out", GateKind::Xor, &[ab, ci]).unwrap();
        c.mark_output(out).unwrap();
        c
    }

    #[test]
    fn scalar_simulation() {
        let c = xor_of_and();
        let sim = Simulator::new(&c).unwrap();
        // out = (a & b) ^ c
        for pattern in 0..8u32 {
            let a = pattern & 1 == 1;
            let b = pattern & 2 == 2;
            let ci = pattern & 4 == 4;
            let out = sim.run(&[a, b, ci]).unwrap();
            assert_eq!(out, vec![(a && b) ^ ci]);
        }
    }

    #[test]
    fn input_arity_is_checked() {
        let c = xor_of_and();
        let sim = Simulator::new(&c).unwrap();
        assert!(matches!(
            sim.run(&[true, false]).unwrap_err(),
            CircuitError::InputCountMismatch {
                expected: 3,
                got: 2
            }
        ));
        assert!(matches!(
            sim.run_words(&[0]).unwrap_err(),
            CircuitError::InputCountMismatch { .. }
        ));
    }

    #[test]
    fn word_simulation_matches_scalar() {
        let c = xor_of_and();
        let sim = Simulator::new(&c).unwrap();
        // Put all 8 patterns into one word.
        let mut words = vec![0u64; 3];
        for pattern in 0..8u64 {
            for (i, w) in words.iter_mut().enumerate() {
                if pattern >> i & 1 == 1 {
                    *w |= 1 << pattern;
                }
            }
        }
        let out = sim.run_words(&words).unwrap();
        for pattern in 0..8u64 {
            let inputs: Vec<bool> = (0..3).map(|i| pattern >> i & 1 == 1).collect();
            let scalar = sim.run(&inputs).unwrap();
            assert_eq!(out[0] >> pattern & 1 == 1, scalar[0]);
        }
    }

    #[test]
    fn constants_simulate_correctly() {
        let mut c = Circuit::new("const");
        let a = c.add_input("a").unwrap();
        let one = c.add_constant("one", true).unwrap();
        let out = c.add_gate("out", GateKind::And, &[a, one]).unwrap();
        c.mark_output(out).unwrap();
        let sim = Simulator::new(&c).unwrap();
        assert_eq!(sim.run(&[true]).unwrap(), vec![true]);
        assert_eq!(sim.run(&[false]).unwrap(), vec![false]);
        assert_eq!(sim.run_words(&[u64::MAX]).unwrap(), vec![u64::MAX]);
    }

    #[test]
    fn truth_table_enumerates_all_patterns() {
        let c = xor_of_and();
        let table = truth_table(&c).unwrap();
        assert_eq!(table.len(), 8);
        for row in &table {
            let a = row.pattern & 1 == 1;
            let b = row.pattern & 2 == 2;
            let ci = row.pattern & 4 == 4;
            assert_eq!(row.outputs, vec![(a && b) ^ ci]);
        }
    }

    #[test]
    fn exhaustive_equivalence_and_counterexample() {
        let c1 = xor_of_and();
        let c2 = xor_of_and();
        assert_eq!(exhaustive_counterexample(&c1, &c2).unwrap(), None);

        // A circuit that differs when a=b=1, c=0.
        let mut c3 = Circuit::new("other");
        let a = c3.add_input("a").unwrap();
        let b = c3.add_input("b").unwrap();
        let ci = c3.add_input("c").unwrap();
        let ab = c3.add_gate("ab", GateKind::Or, &[a, b]).unwrap();
        let out = c3.add_gate("out", GateKind::Xor, &[ab, ci]).unwrap();
        c3.mark_output(out).unwrap();
        let cex = exhaustive_counterexample(&c1, &c3).unwrap();
        assert!(cex.is_some());
        let pattern = cex.unwrap();
        let sim1 = Simulator::new(&c1).unwrap();
        let sim3 = Simulator::new(&c3).unwrap();
        let inputs: Vec<bool> = (0..3).map(|i| pattern >> i & 1 == 1).collect();
        assert_ne!(sim1.run(&inputs).unwrap(), sim3.run(&inputs).unwrap());
    }

    #[test]
    fn interface_mismatch_is_reported() {
        let c1 = xor_of_and();
        let mut c2 = Circuit::new("different");
        let x = c2.add_input("x").unwrap();
        let out = c2.add_gate("out", GateKind::Not, &[x]).unwrap();
        c2.mark_output(out).unwrap();
        assert!(matches!(
            exhaustive_counterexample(&c1, &c2).unwrap_err(),
            CircuitError::InterfaceMismatch(_)
        ));
    }
}
