//! Noise-based-logic evaluation of circuits: all `2^n` inputs at once.
//!
//! The paper's introduction highlights that an NBL circuit can be driven by
//! the additive superposition `(N_xi + N_x̄i)` on every input, which applies
//! all `2^n` input vectors simultaneously; each internal wire then carries the
//! superposition of the noise minterms on which it evaluates to 1 (its
//! *on-set*). This module performs exactly that evaluation on a gate-level
//! [`Circuit`], using the hyperspace set algebra of [`nbl_logic`]: AND gates
//! intersect on-sets, OR gates unite them, inverters complement them.
//!
//! The result is the single-wire NBL encoding of every output — the same
//! object the NBL-SAT transform builds clause-by-clause — so tautology,
//! satisfiability and equivalence questions about the circuit reduce to
//! cardinality questions about the computed [`MintermSet`]s.

use crate::error::{CircuitError, Result};
use crate::gate::GateKind;
use crate::netlist::{Circuit, NodeId, NodeKind};
use nbl_logic::{HyperspaceBuilder, MintermSet, Superposition};

/// Inputs beyond this bound would make the explicit hyperspace representation
/// (2^n minterms) unreasonably large.
pub const NBL_EVAL_INPUT_LIMIT: usize = 20;

/// The result of evaluating a circuit under the all-minterm NBL superposition.
///
/// ```
/// use nbl_circuit::{library, NblCircuitEvaluator};
///
/// let parity = library::parity_tree(3);
/// let eval = NblCircuitEvaluator::new().evaluate(&parity)?;
/// // The parity function is 1 on exactly half of the 2^3 minterms.
/// assert_eq!(eval.output_onset("parity")?.len(), 4);
/// assert!(eval.is_satisfiable("parity")?);
/// assert!(!eval.is_tautology("parity")?);
/// # Ok::<(), nbl_circuit::CircuitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NblCircuitEvaluation {
    builder: HyperspaceBuilder,
    onsets: Vec<MintermSet>,
    output_names: Vec<String>,
    outputs: Vec<NodeId>,
    num_inputs: usize,
}

impl NblCircuitEvaluation {
    /// The hyperspace builder spanning the circuit's primary inputs
    /// (input `i` of the circuit is variable `i` of the hyperspace).
    pub fn hyperspace(&self) -> &HyperspaceBuilder {
        &self.builder
    }

    /// Number of primary inputs of the evaluated circuit.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The on-set of an arbitrary node.
    ///
    /// # Panics
    ///
    /// Panics if the node id does not belong to the evaluated circuit.
    pub fn onset(&self, node: NodeId) -> &MintermSet {
        &self.onsets[node.index()]
    }

    /// The on-set of the named primary output.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownSignal`] if no output has that name.
    pub fn output_onset(&self, output: &str) -> Result<&MintermSet> {
        self.output_index(output)
            .map(|i| &self.onsets[self.outputs[i].index()])
    }

    /// The single-wire NBL superposition carried by the named output: the sum
    /// of the noise minterms of its on-set.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownSignal`] if no output has that name.
    pub fn output_superposition(&self, output: &str) -> Result<Superposition> {
        Ok(self.output_onset(output)?.to_superposition())
    }

    /// Returns `true` if the named output is 1 for at least one input vector.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownSignal`] if no output has that name.
    pub fn is_satisfiable(&self, output: &str) -> Result<bool> {
        Ok(!self.output_onset(output)?.is_empty())
    }

    /// Returns `true` if the named output is 1 for every input vector.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownSignal`] if no output has that name.
    pub fn is_tautology(&self, output: &str) -> Result<bool> {
        Ok(self.output_onset(output)?.len() as u128 == 1u128 << self.num_inputs)
    }

    /// Returns `true` if two outputs compute the same Boolean function.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownSignal`] if either output is unknown.
    pub fn outputs_equivalent(&self, a: &str, b: &str) -> Result<bool> {
        Ok(self
            .output_onset(a)?
            .symmetric_difference(self.output_onset(b)?)
            .is_empty())
    }

    /// Names of the primary outputs, in declaration order.
    pub fn output_names(&self) -> &[String] {
        &self.output_names
    }

    fn output_index(&self, output: &str) -> Result<usize> {
        self.output_names
            .iter()
            .position(|n| n == output)
            .ok_or_else(|| CircuitError::UnknownSignal(output.to_string()))
    }
}

/// Evaluator that propagates the all-minterm superposition through a circuit.
#[derive(Debug, Clone, Default)]
pub struct NblCircuitEvaluator {
    _private: (),
}

impl NblCircuitEvaluator {
    /// Creates an evaluator with default settings.
    pub fn new() -> Self {
        NblCircuitEvaluator { _private: () }
    }

    /// Evaluates the circuit under the superposition of all `2^n` input
    /// minterms.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::TooManyInputs`] if the circuit has more than
    ///   [`NBL_EVAL_INPUT_LIMIT`] primary inputs.
    /// * [`CircuitError::CombinationalLoop`] if the circuit is cyclic.
    pub fn evaluate(&self, circuit: &Circuit) -> Result<NblCircuitEvaluation> {
        let n = circuit.num_inputs();
        if n > NBL_EVAL_INPUT_LIMIT {
            return Err(CircuitError::TooManyInputs {
                inputs: n,
                limit: NBL_EVAL_INPUT_LIMIT,
            });
        }
        let order = circuit.topological_order()?;
        let builder = HyperspaceBuilder::new(n.max(1));
        let empty = MintermSet::empty(&builder);
        let mut onsets = vec![empty; circuit.num_nodes()];
        // Input i is 1 on exactly the minterms whose i-th bit is set.
        for (i, &input) in circuit.inputs().iter().enumerate() {
            let masks = (0u64..(1u64 << n)).filter(|m| m >> i & 1 == 1);
            onsets[input.index()] = MintermSet::from_masks(&builder, masks);
        }
        for id in order {
            let node = circuit.node(id).expect("order refers to valid nodes");
            match node.kind() {
                NodeKind::Input => {}
                NodeKind::Constant(v) => {
                    onsets[id.index()] = if v {
                        MintermSet::from_masks(&builder, 0..(1u64 << n))
                    } else {
                        MintermSet::empty(&builder)
                    };
                }
                NodeKind::Gate(kind) => {
                    let fanin: Vec<&MintermSet> =
                        node.fanin().iter().map(|f| &onsets[f.index()]).collect();
                    onsets[id.index()] = eval_gate(&builder, kind, &fanin, n);
                }
            }
        }
        Ok(NblCircuitEvaluation {
            builder,
            onsets,
            output_names: circuit
                .output_names()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            outputs: circuit.outputs().to_vec(),
            num_inputs: n,
        })
    }
}

fn full_set(builder: &HyperspaceBuilder, n: usize) -> MintermSet {
    MintermSet::from_masks(builder, 0..(1u64 << n))
}

fn eval_gate(
    builder: &HyperspaceBuilder,
    kind: GateKind,
    fanin: &[&MintermSet],
    n: usize,
) -> MintermSet {
    let base = match kind.base() {
        GateKind::Buf => fanin[0].clone(),
        GateKind::And => fanin[1..]
            .iter()
            .fold(fanin[0].clone(), |acc, s| acc.intersection(s)),
        GateKind::Or => fanin[1..]
            .iter()
            .fold(fanin[0].clone(), |acc, s| acc.union(s)),
        GateKind::Xor => fanin[1..]
            .iter()
            .fold(fanin[0].clone(), |acc, s| acc.symmetric_difference(s)),
        other => unreachable!("{other} is not a base gate kind"),
    };
    if kind.is_inverting() {
        full_set(builder, n).difference(&base)
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use crate::sim::truth_table;

    /// The NBL on-set of every output must equal the set of truth-table rows
    /// on which the simulator says the output is 1.
    fn check_against_truth_table(circuit: &Circuit) {
        let eval = NblCircuitEvaluator::new().evaluate(circuit).unwrap();
        let table = truth_table(circuit).unwrap();
        for (out_idx, name) in circuit.output_names().iter().enumerate() {
            let onset = eval.output_onset(name).unwrap();
            for row in &table {
                assert_eq!(
                    onset.contains(row.pattern),
                    row.outputs[out_idx],
                    "output {name}, pattern {:b}",
                    row.pattern
                );
            }
        }
    }

    #[test]
    fn library_circuits_match_truth_tables() {
        for (_name, circuit) in library::standard_suite() {
            check_against_truth_table(&circuit);
        }
    }

    #[test]
    fn tautology_and_satisfiability_checks() {
        // out = x OR NOT x is a tautology; out2 = x AND NOT x is unsatisfiable.
        let mut c = Circuit::new("taut");
        let x = c.add_input("x").unwrap();
        let nx = c.add_gate("nx", GateKind::Not, &[x]).unwrap();
        let t = c.add_gate("t", GateKind::Or, &[x, nx]).unwrap();
        let f = c.add_gate("f", GateKind::And, &[x, nx]).unwrap();
        c.mark_output(t).unwrap();
        c.mark_output(f).unwrap();
        let eval = NblCircuitEvaluator::new().evaluate(&c).unwrap();
        assert!(eval.is_tautology("t").unwrap());
        assert!(eval.is_satisfiable("t").unwrap());
        assert!(!eval.is_satisfiable("f").unwrap());
        assert!(!eval.is_tautology("f").unwrap());
        assert!(eval.output_onset("missing").is_err());
    }

    #[test]
    fn equivalent_outputs_detected() {
        // De Morgan: NOT(a AND b) == (NOT a) OR (NOT b).
        let mut c = Circuit::new("demorgan");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let lhs = c.add_gate("lhs", GateKind::Nand, &[a, b]).unwrap();
        let na = c.add_gate("na", GateKind::Not, &[a]).unwrap();
        let nb = c.add_gate("nb", GateKind::Not, &[b]).unwrap();
        let rhs = c.add_gate("rhs", GateKind::Or, &[na, nb]).unwrap();
        let other = c.add_gate("other", GateKind::And, &[a, b]).unwrap();
        c.mark_output(lhs).unwrap();
        c.mark_output(rhs).unwrap();
        c.mark_output(other).unwrap();
        let eval = NblCircuitEvaluator::new().evaluate(&c).unwrap();
        assert!(eval.outputs_equivalent("lhs", "rhs").unwrap());
        assert!(!eval.outputs_equivalent("lhs", "other").unwrap());
    }

    #[test]
    fn superposition_has_one_term_per_onset_minterm() {
        let maj = library::majority3();
        let eval = NblCircuitEvaluator::new().evaluate(&maj).unwrap();
        let onset = eval.output_onset("maj").unwrap();
        assert_eq!(onset.len(), 4); // majority of 3 is true on 4 minterms
        let superposition = eval.output_superposition("maj").unwrap();
        assert_eq!(superposition.num_terms(), 4);
    }

    #[test]
    fn constants_produce_empty_or_full_onsets() {
        let mut c = Circuit::new("consts");
        let x = c.add_input("x").unwrap();
        let one = c.add_constant("one", true).unwrap();
        let zero = c.add_constant("zero", false).unwrap();
        let o1 = c.add_gate("o1", GateKind::Or, &[x, one]).unwrap();
        let o2 = c.add_gate("o2", GateKind::And, &[x, zero]).unwrap();
        c.mark_output(o1).unwrap();
        c.mark_output(o2).unwrap();
        let eval = NblCircuitEvaluator::new().evaluate(&c).unwrap();
        assert!(eval.is_tautology("o1").unwrap());
        assert!(!eval.is_satisfiable("o2").unwrap());
    }

    #[test]
    fn input_limit_is_enforced() {
        let parity = library::parity_tree(NBL_EVAL_INPUT_LIMIT + 1);
        assert!(matches!(
            NblCircuitEvaluator::new().evaluate(&parity).unwrap_err(),
            CircuitError::TooManyInputs { .. }
        ));
    }
}
