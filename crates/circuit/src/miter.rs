//! Miter construction for combinational equivalence checking.
//!
//! Two circuits with the same interface are functionally equivalent iff their
//! *miter* — the OR of the pairwise XORs of their outputs, with the inputs
//! shared — can never output 1, i.e. iff the CNF that asserts the miter output
//! is unsatisfiable. Equivalence checking is one of the headline SAT
//! applications in the paper's introduction, and the resulting formulas are a
//! natural workload for the NBL-SAT engines.

use crate::error::{CircuitError, Result};
use crate::gate::GateKind;
use crate::netlist::Circuit;
use crate::tseitin::{CnfEncoding, TseitinEncoder};
use cnf::{Assignment, CnfFormula};
use std::collections::HashMap;

/// Builds the miter circuit of two circuits with matching interfaces.
///
/// Inputs are matched by name and shared; for every output name the two
/// implementations are XORed, and all XORs are ORed into the single output
/// `miter`. The miter outputs 1 exactly on the input patterns where the two
/// circuits disagree.
///
/// # Errors
///
/// * [`CircuitError::InterfaceMismatch`] if the input or output name sets differ.
/// * [`CircuitError::CombinationalLoop`] if either circuit is cyclic.
///
/// ```
/// use nbl_circuit::{library, miter};
///
/// let golden = library::ripple_carry_adder(3);
/// let revised = library::buggy_ripple_carry_adder(3, 1);
/// let m = miter(&golden, &revised)?;
/// assert_eq!(m.num_outputs(), 1);
/// assert_eq!(m.num_inputs(), golden.num_inputs());
/// # Ok::<(), nbl_circuit::CircuitError>(())
/// ```
pub fn miter(a: &Circuit, b: &Circuit) -> Result<Circuit> {
    let mut a_inputs = a.input_names();
    let mut b_inputs = b.input_names();
    a_inputs.sort_unstable();
    b_inputs.sort_unstable();
    if a_inputs != b_inputs {
        return Err(CircuitError::InterfaceMismatch(format!(
            "input names differ: {a_inputs:?} vs {b_inputs:?}"
        )));
    }
    let mut a_outputs = a.output_names();
    let mut b_outputs = b.output_names();
    a_outputs.sort_unstable();
    b_outputs.sort_unstable();
    if a_outputs != b_outputs {
        return Err(CircuitError::InterfaceMismatch(format!(
            "output names differ: {a_outputs:?} vs {b_outputs:?}"
        )));
    }
    if a_outputs.is_empty() {
        return Err(CircuitError::NoOutputs);
    }

    let mut m = Circuit::new(format!("miter({},{})", a.name(), b.name()));
    let mut input_map = HashMap::new();
    for name in a.input_names() {
        let id = m.add_input(name)?;
        input_map.insert(name.to_string(), id);
    }
    let a_out = m.import(a, "a_", &input_map)?;
    let b_out = m.import(b, "b_", &input_map)?;

    let mut diffs = Vec::with_capacity(a_outputs.len());
    for name in &a_outputs {
        let xa = a_out[*name];
        let xb = b_out[*name];
        diffs.push(m.add_gate(format!("diff_{name}"), GateKind::Xor, &[xa, xb])?);
    }
    let miter_out = if diffs.len() == 1 {
        m.add_gate("miter", GateKind::Buf, &[diffs[0]])?
    } else {
        m.add_gate("miter", GateKind::Or, &diffs)?
    };
    m.mark_output(miter_out)?;
    Ok(m)
}

/// The CNF form of an equivalence check, ready to hand to any SAT engine.
#[derive(Debug, Clone)]
pub struct EquivalenceCheck {
    formula: CnfFormula,
    encoding: CnfEncoding,
}

impl EquivalenceCheck {
    /// The CNF whose satisfiability decides the check: **UNSAT ⇔ equivalent**,
    /// and every model is a counterexample input pattern.
    pub fn formula(&self) -> &CnfFormula {
        &self.formula
    }

    /// The Tseitin encoding of the underlying miter (exposes the input
    /// variable mapping).
    pub fn encoding(&self) -> &CnfEncoding {
        &self.encoding
    }

    /// Decodes a model of [`EquivalenceCheck::formula`] into named input
    /// values that distinguish the two circuits.
    pub fn counterexample(&self, model: &Assignment) -> Vec<(String, bool)> {
        self.encoding
            .input_names()
            .iter()
            .cloned()
            .zip(self.encoding.decode_inputs(model))
            .collect()
    }
}

/// Builds the CNF equivalence check for two circuits: the Tseitin encoding of
/// their miter with the miter output asserted to 1.
///
/// # Errors
///
/// Propagates the errors of [`miter`].
pub fn equivalence_check(a: &Circuit, b: &Circuit) -> Result<EquivalenceCheck> {
    let m = miter(a, b)?;
    let mut encoding = TseitinEncoder::new().encode(&m)?;
    encoding.assert_output(0, true);
    let formula = encoding.formula().clone();
    Ok(EquivalenceCheck { formula, encoding })
}

/// A *batch* of equivalence checks sharing one CNF: the base circuit is
/// imported (and Tseitin-encoded) once, and every alternative contributes one
/// miter output.
///
/// Unlike [`equivalence_check`], no output is asserted — check `i` is decided
/// by solving the shared formula under the single assumption
/// [`MiterSweep::check_literal`]`(i)`: **SAT ⇔ alternative `i` differs** from
/// the base, and the model decodes to a distinguishing input pattern. This is
/// the shape an IPASIR-style incremental solver wants: one clause database,
/// one solve call per check, every learned clause shared across the batch.
#[derive(Debug, Clone)]
pub struct MiterSweep {
    encoding: CnfEncoding,
}

impl MiterSweep {
    /// The shared CNF. Satisfiable on its own (no output is asserted); the
    /// per-check question is asked via assumptions.
    pub fn formula(&self) -> &CnfFormula {
        self.encoding.formula()
    }

    /// The underlying Tseitin encoding of the batch miter circuit.
    pub fn encoding(&self) -> &CnfEncoding {
        &self.encoding
    }

    /// How many alternatives the sweep compares against the base.
    pub fn num_checks(&self) -> usize {
        self.encoding.output_literals().len()
    }

    /// The assumption literal that activates check `i`: assuming it asserts
    /// "the `i`-th alternative disagrees with the base on some input".
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn check_literal(&self, i: usize) -> cnf::Literal {
        self.encoding.output_literal(i)
    }

    /// Decodes a model of a satisfiable check into named input values on
    /// which the alternative disagrees with the base.
    pub fn counterexample(&self, model: &Assignment) -> Vec<(String, bool)> {
        self.encoding
            .input_names()
            .iter()
            .cloned()
            .zip(self.encoding.decode_inputs(model))
            .collect()
    }
}

/// Builds the shared miter of `base` against every circuit in `alternatives`:
/// inputs are shared by name, the base is imported once as `base_*`, each
/// alternative as `alt<i>_*`, and each alternative's pairwise output XORs are
/// ORed into its own `miter_<i>` output.
///
/// # Errors
///
/// * [`CircuitError::InterfaceMismatch`] if any alternative's input or output
///   name sets differ from the base's.
/// * [`CircuitError::NoOutputs`] if the base has no outputs or `alternatives`
///   is empty.
/// * [`CircuitError::CombinationalLoop`] if any circuit is cyclic.
pub fn miter_sweep(base: &Circuit, alternatives: &[Circuit]) -> Result<MiterSweep> {
    if alternatives.is_empty() {
        return Err(CircuitError::NoOutputs);
    }
    let mut base_inputs = base.input_names();
    base_inputs.sort_unstable();
    let mut base_outputs = base.output_names();
    base_outputs.sort_unstable();
    if base_outputs.is_empty() {
        return Err(CircuitError::NoOutputs);
    }
    for alternative in alternatives {
        let mut inputs = alternative.input_names();
        inputs.sort_unstable();
        if inputs != base_inputs {
            return Err(CircuitError::InterfaceMismatch(format!(
                "input names differ: {base_inputs:?} vs {inputs:?}"
            )));
        }
        let mut outputs = alternative.output_names();
        outputs.sort_unstable();
        if outputs != base_outputs {
            return Err(CircuitError::InterfaceMismatch(format!(
                "output names differ: {base_outputs:?} vs {outputs:?}"
            )));
        }
    }

    let mut m = Circuit::new(format!("miter-sweep({})", base.name()));
    let mut input_map = HashMap::new();
    for name in base.input_names() {
        let id = m.add_input(name)?;
        input_map.insert(name.to_string(), id);
    }
    let base_out = m.import(base, "base_", &input_map)?;
    for (i, alternative) in alternatives.iter().enumerate() {
        let alt_out = m.import(alternative, &format!("alt{i}_"), &input_map)?;
        let mut diffs = Vec::with_capacity(base_outputs.len());
        for name in &base_outputs {
            let xa = base_out[*name];
            let xb = alt_out[*name];
            diffs.push(m.add_gate(format!("diff{i}_{name}"), GateKind::Xor, &[xa, xb])?);
        }
        let miter_out = if diffs.len() == 1 {
            m.add_gate(format!("miter_{i}"), GateKind::Buf, &[diffs[0]])?
        } else {
            m.add_gate(format!("miter_{i}"), GateKind::Or, &diffs)?
        };
        m.mark_output(miter_out)?;
    }
    let encoding = TseitinEncoder::new().encode(&m)?;
    Ok(MiterSweep { encoding })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use crate::sim::Simulator;
    use sat_solvers::{CdclSolver, DpllSolver, SolveResult, Solver};

    #[test]
    fn miter_of_identical_circuits_is_unsat() {
        let a = library::ripple_carry_adder(2);
        let b = library::ripple_carry_adder(2);
        let check = equivalence_check(&a, &b).unwrap();
        let mut solver = DpllSolver::new();
        assert!(solver.solve(check.formula()).is_unsat());
    }

    #[test]
    fn miter_of_buggy_circuit_yields_counterexample() {
        let golden = library::ripple_carry_adder(3);
        let revised = library::buggy_ripple_carry_adder(3, 2);
        let check = equivalence_check(&golden, &revised).unwrap();
        let mut solver = CdclSolver::new();
        match solver.solve(check.formula()) {
            SolveResult::Satisfiable(model) => {
                let cex = check.counterexample(&model);
                assert_eq!(cex.len(), golden.num_inputs());
                // Replay the counterexample on both circuits; they must differ.
                let order: Vec<bool> = golden
                    .input_names()
                    .iter()
                    .map(|name| {
                        cex.iter()
                            .find(|(n, _)| n == name)
                            .map(|&(_, v)| v)
                            .unwrap()
                    })
                    .collect();
                let golden_out = Simulator::new(&golden).unwrap().run(&order).unwrap();
                let revised_out = Simulator::new(&revised).unwrap().run(&order).unwrap();
                assert_ne!(golden_out, revised_out);
            }
            other => panic!("expected a counterexample, got {other}"),
        }
    }

    #[test]
    fn miter_structure() {
        let a = library::parity_tree(4);
        let b = library::parity_tree(4);
        let m = miter(&a, &b).unwrap();
        assert_eq!(m.num_inputs(), 4);
        assert_eq!(m.num_outputs(), 1);
        assert_eq!(m.output_names(), vec!["miter"]);
        assert!(m.validate().is_ok());
        // Simulating the miter on equal circuits always gives 0.
        let sim = Simulator::new(&m).unwrap();
        for pattern in 0..16u64 {
            let inputs: Vec<bool> = (0..4).map(|i| pattern >> i & 1 == 1).collect();
            assert_eq!(sim.run(&inputs).unwrap(), vec![false]);
        }
    }

    #[test]
    fn miter_sweep_distinguishes_buggy_from_faithful_revisions() {
        use sat_solvers::{CdclSolver, IncrementalResult, SearchLimits};
        let golden = library::ripple_carry_adder(3);
        let alternatives = vec![
            library::ripple_carry_adder(3),          // faithful
            library::buggy_ripple_carry_adder(3, 1), // differs
            library::buggy_ripple_carry_adder(3, 2), // differs
        ];
        let sweep = miter_sweep(&golden, &alternatives).unwrap();
        assert_eq!(sweep.num_checks(), 3);

        let limits = SearchLimits::unlimited();
        let mut solver = CdclSolver::new();
        solver.push(sweep.formula());
        let expect_differs = [false, true, true];
        for (i, &differs) in expect_differs.iter().enumerate() {
            match solver.solve_under_assumptions(&[sweep.check_literal(i)], &limits) {
                IncrementalResult::Satisfiable(model) => {
                    assert!(
                        differs,
                        "alternative {i} is equivalent yet the sweep differs"
                    );
                    // The counterexample must actually distinguish the pair.
                    let cex = sweep.counterexample(&model);
                    let order: Vec<bool> = golden
                        .input_names()
                        .iter()
                        .map(|name| {
                            cex.iter()
                                .find(|(n, _)| n == name)
                                .map(|&(_, v)| v)
                                .unwrap()
                        })
                        .collect();
                    let golden_out = Simulator::new(&golden).unwrap().run(&order).unwrap();
                    let alt_out = Simulator::new(&alternatives[i])
                        .unwrap()
                        .run(&order)
                        .unwrap();
                    assert_ne!(golden_out, alt_out, "alternative {i}");
                }
                IncrementalResult::Unsatisfiable(core) => {
                    assert!(!differs, "alternative {i} differs yet the sweep says UNSAT");
                    // The core can only mention this check's assumption.
                    assert!(core.iter().all(|&lit| lit == sweep.check_literal(i)));
                }
                other => panic!("unlimited search cannot be indeterminate: {other:?}"),
            }
        }
    }

    #[test]
    fn miter_sweep_rejects_empty_and_mismatched_batches() {
        let golden = library::parity_tree(4);
        assert!(matches!(
            miter_sweep(&golden, &[]).unwrap_err(),
            CircuitError::NoOutputs
        ));
        assert!(matches!(
            miter_sweep(&golden, &[library::parity_tree(5)]).unwrap_err(),
            CircuitError::InterfaceMismatch(_)
        ));
    }

    #[test]
    fn interface_mismatches_are_rejected() {
        let a = library::parity_tree(4);
        let b = library::parity_tree(5);
        assert!(matches!(
            miter(&a, &b).unwrap_err(),
            CircuitError::InterfaceMismatch(_)
        ));
        let c = library::ripple_carry_adder(2); // same input count, different names
        assert!(matches!(
            miter(&a, &c).unwrap_err(),
            CircuitError::InterfaceMismatch(_)
        ));
    }

    #[test]
    fn single_output_miter_uses_buffer() {
        let a = library::majority3();
        let b = library::majority3();
        let m = miter(&a, &b).unwrap();
        // One XOR plus one BUF; no OR stage for a single output pair.
        assert!(m.find("miter").is_some());
        assert!(m.find("diff_maj").is_some());
    }
}
