//! A library of generated benchmark circuits.
//!
//! These are the combinational workloads the examples, tests and benches use:
//! datapath blocks (adders, multipliers, comparators), control blocks
//! (multiplexers, parity trees) and deliberately buggy variants for
//! equivalence-checking and ATPG demonstrations — the application domains the
//! paper's introduction motivates SAT with.

use crate::builder::CircuitBuilder;
use crate::gate::GateKind;
use crate::netlist::{Circuit, NodeId};

/// A `width`-bit ripple-carry adder.
///
/// Inputs (in declaration order): `a0..a{width-1}`, `b0..b{width-1}`, `cin`.
/// Outputs: `s0..s{width-1}`, `cout`.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn ripple_carry_adder(width: usize) -> Circuit {
    assert!(width > 0, "adder width must be positive");
    let mut b = CircuitBuilder::new(format!("rca{width}"));
    let a_bus = b.input_bus("a", width).expect("fresh names");
    let b_bus = b.input_bus("b", width).expect("fresh names");
    let mut carry = b.input("cin").expect("fresh names");
    for i in 0..width {
        let (sum, cout) = b
            .full_adder(a_bus[i], b_bus[i], carry)
            .expect("valid gates");
        b.output(format!("s{i}"), sum).expect("fresh outputs");
        carry = cout;
    }
    b.output("cout", carry).expect("fresh outputs");
    b.finish()
}

/// A `width`-bit ripple-carry adder with an injected design bug: the carry
/// into stage `bug_stage` is dropped (replaced by constant 0).
///
/// Useful as the "revised, buggy" circuit in equivalence-checking demos: the
/// miter against [`ripple_carry_adder`] is satisfiable and every satisfying
/// assignment is a counterexample pattern.
///
/// # Panics
///
/// Panics if `width == 0` or `bug_stage == 0` or `bug_stage >= width`
/// (stage 0 takes the external carry-in, which is kept intact).
pub fn buggy_ripple_carry_adder(width: usize, bug_stage: usize) -> Circuit {
    assert!(width > 0, "adder width must be positive");
    assert!(
        bug_stage > 0 && bug_stage < width,
        "bug_stage must be in 1..width"
    );
    let mut b = CircuitBuilder::new(format!("rca{width}_bug{bug_stage}"));
    let a_bus = b.input_bus("a", width).expect("fresh names");
    let b_bus = b.input_bus("b", width).expect("fresh names");
    let mut carry = b.input("cin").expect("fresh names");
    for i in 0..width {
        if i == bug_stage {
            carry = b.constant(false).expect("fresh names");
        }
        let (sum, cout) = b
            .full_adder(a_bus[i], b_bus[i], carry)
            .expect("valid gates");
        b.output(format!("s{i}"), sum).expect("fresh outputs");
        carry = cout;
    }
    b.output("cout", carry).expect("fresh outputs");
    b.finish()
}

/// A `width`-bit equality comparator: output `eq` is 1 iff `a == b`.
///
/// Inputs: `a0..`, `b0..`; output: `eq`.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn equality_comparator(width: usize) -> Circuit {
    assert!(width > 0, "comparator width must be positive");
    let mut b = CircuitBuilder::new(format!("eq{width}"));
    let a_bus = b.input_bus("a", width).expect("fresh names");
    let b_bus = b.input_bus("b", width).expect("fresh names");
    let mut bit_eq = Vec::with_capacity(width);
    for i in 0..width {
        bit_eq.push(
            b.gate(GateKind::Xnor, &[a_bus[i], b_bus[i]])
                .expect("valid gates"),
        );
    }
    let eq = b.reduce(GateKind::And, &bit_eq).expect("non-empty bus");
    b.output("eq", eq).expect("fresh outputs");
    b.finish()
}

/// A `width`-bit unsigned magnitude comparator: output `gt` is 1 iff `a > b`.
///
/// Inputs: `a0..`, `b0..` (bit 0 is the LSB); output: `gt`.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn greater_than_comparator(width: usize) -> Circuit {
    assert!(width > 0, "comparator width must be positive");
    let mut b = CircuitBuilder::new(format!("gt{width}"));
    let a_bus = b.input_bus("a", width).expect("fresh names");
    let b_bus = b.input_bus("b", width).expect("fresh names");
    // gt_i = a_i & !b_i | eq_i & gt_{i-1}, scanning from LSB to MSB.
    let mut gt = b.constant(false).expect("fresh names");
    for i in 0..width {
        let nb = b.not(b_bus[i]).expect("valid gates");
        let here = b.and2(a_bus[i], nb).expect("valid gates");
        let eq = b
            .gate(GateKind::Xnor, &[a_bus[i], b_bus[i]])
            .expect("valid gates");
        let carry = b.and2(eq, gt).expect("valid gates");
        gt = b.or2(here, carry).expect("valid gates");
    }
    b.output("gt", gt).expect("fresh outputs");
    b.finish()
}

/// A `width`-input parity (XOR) tree with output `parity`.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn parity_tree(width: usize) -> Circuit {
    assert!(width > 0, "parity width must be positive");
    let mut b = CircuitBuilder::new(format!("parity{width}"));
    let bus = b.input_bus("x", width).expect("fresh names");
    let p = b.reduce(GateKind::Xor, &bus).expect("non-empty bus");
    b.output("parity", p).expect("fresh outputs");
    b.finish()
}

/// A `2^select_bits`-to-1 multiplexer.
///
/// Inputs: `s0..s{select_bits-1}` (select), `d0..d{2^select_bits-1}` (data);
/// output: `y`.
///
/// # Panics
///
/// Panics if `select_bits == 0` or `select_bits > 6`.
pub fn multiplexer(select_bits: usize) -> Circuit {
    assert!(
        (1..=6).contains(&select_bits),
        "select_bits must be in 1..=6"
    );
    let data_count = 1usize << select_bits;
    let mut b = CircuitBuilder::new(format!("mux{data_count}"));
    let sel = b.input_bus("s", select_bits).expect("fresh names");
    let data = b.input_bus("d", data_count).expect("fresh names");
    let mut layer = data;
    for &s in &sel {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            next.push(b.mux(s, pair[1], pair[0]).expect("valid gates"));
        }
        layer = next;
    }
    b.output("y", layer[0]).expect("fresh outputs");
    b.finish()
}

/// A 3-input majority voter with output `maj`.
pub fn majority3() -> Circuit {
    let mut b = CircuitBuilder::new("maj3");
    let x = b.input_bus("x", 3).expect("fresh names");
    let ab = b.and2(x[0], x[1]).expect("valid gates");
    let ac = b.and2(x[0], x[2]).expect("valid gates");
    let bc = b.and2(x[1], x[2]).expect("valid gates");
    let maj = b.reduce(GateKind::Or, &[ab, ac, bc]).expect("non-empty");
    b.output("maj", maj).expect("fresh outputs");
    b.finish()
}

/// A `width`×`width` unsigned array multiplier (product is `2·width` bits).
///
/// Inputs: `a0..`, `b0..`; outputs: `p0..p{2*width-1}`.
///
/// # Panics
///
/// Panics if `width == 0` or `width > 8` (the array grows quadratically).
pub fn array_multiplier(width: usize) -> Circuit {
    assert!(
        (1..=8).contains(&width),
        "multiplier width must be in 1..=8"
    );
    let mut b = CircuitBuilder::new(format!("mul{width}"));
    let a_bus = b.input_bus("a", width).expect("fresh names");
    let b_bus = b.input_bus("b", width).expect("fresh names");
    // Partial products pp[i][j] = a_i & b_j contributes to column i + j.
    let mut columns: Vec<Vec<NodeId>> = vec![Vec::new(); 2 * width];
    for i in 0..width {
        for j in 0..width {
            let pp = b.and2(a_bus[i], b_bus[j]).expect("valid gates");
            columns[i + j].push(pp);
        }
    }
    // Carry-save style reduction: repeatedly add bits within a column with
    // full/half adders, pushing carries to the next column.
    let mut outputs = Vec::with_capacity(2 * width);
    for col in 0..2 * width {
        while columns[col].len() > 1 {
            if columns[col].len() >= 3 {
                let x = columns[col].pop().expect("len >= 3");
                let y = columns[col].pop().expect("len >= 2");
                let z = columns[col].pop().expect("len >= 1");
                let (sum, carry) = b.full_adder(x, y, z).expect("valid gates");
                columns[col].push(sum);
                if col + 1 < 2 * width {
                    columns[col + 1].push(carry);
                }
            } else {
                let x = columns[col].pop().expect("len == 2");
                let y = columns[col].pop().expect("len == 1");
                let (sum, carry) = b.half_adder(x, y).expect("valid gates");
                columns[col].push(sum);
                if col + 1 < 2 * width {
                    columns[col + 1].push(carry);
                }
            }
        }
        let bit = columns[col]
            .pop()
            .unwrap_or_else(|| b.constant(false).expect("fresh names"));
        outputs.push(bit);
    }
    for (i, bit) in outputs.into_iter().enumerate() {
        b.output(format!("p{i}"), bit).expect("fresh outputs");
    }
    b.finish()
}

/// Every circuit in the library at small, test-friendly sizes, with its name.
///
/// Used by benches and integration tests that sweep over representative
/// workloads.
pub fn standard_suite() -> Vec<(&'static str, Circuit)> {
    vec![
        ("rca4", ripple_carry_adder(4)),
        ("eq4", equality_comparator(4)),
        ("gt4", greater_than_comparator(4)),
        ("parity8", parity_tree(8)),
        ("mux8", multiplexer(3)),
        ("maj3", majority3()),
        ("mul3", array_multiplier(3)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    fn bits(value: u64, width: usize) -> Vec<bool> {
        (0..width).map(|i| value >> i & 1 == 1).collect()
    }

    fn word(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | ((b as u64) << i))
    }

    #[test]
    fn ripple_carry_adder_adds() {
        for width in [1usize, 3, 4] {
            let adder = ripple_carry_adder(width);
            let sim = Simulator::new(&adder).unwrap();
            for a in 0..(1u64 << width) {
                for b in 0..(1u64 << width) {
                    for cin in 0..2u64 {
                        let mut inputs = bits(a, width);
                        inputs.extend(bits(b, width));
                        inputs.push(cin == 1);
                        let out = sim.run(&inputs).unwrap();
                        let sum = word(&out[..width]) + ((out[width] as u64) << width);
                        assert_eq!(sum, a + b + cin, "{a}+{b}+{cin} at width {width}");
                    }
                }
            }
        }
    }

    #[test]
    fn buggy_adder_differs_from_reference() {
        let good = ripple_carry_adder(3);
        let bad = buggy_ripple_carry_adder(3, 1);
        let cex = crate::sim::exhaustive_counterexample(&good, &bad).unwrap();
        assert!(cex.is_some(), "the injected bug must be observable");
    }

    #[test]
    fn comparators_match_integer_semantics() {
        let width = 3;
        let eq = equality_comparator(width);
        let gt = greater_than_comparator(width);
        let sim_eq = Simulator::new(&eq).unwrap();
        let sim_gt = Simulator::new(&gt).unwrap();
        for a in 0..(1u64 << width) {
            for b in 0..(1u64 << width) {
                let mut inputs = bits(a, width);
                inputs.extend(bits(b, width));
                assert_eq!(sim_eq.run(&inputs).unwrap()[0], a == b);
                assert_eq!(sim_gt.run(&inputs).unwrap()[0], a > b, "{a} > {b}");
            }
        }
    }

    #[test]
    fn parity_tree_computes_parity() {
        let width = 6;
        let parity = parity_tree(width);
        let sim = Simulator::new(&parity).unwrap();
        for pattern in 0..(1u64 << width) {
            let expected = pattern.count_ones() % 2 == 1;
            assert_eq!(sim.run(&bits(pattern, width)).unwrap()[0], expected);
        }
    }

    #[test]
    fn multiplexer_selects_data_input() {
        let mux = multiplexer(2);
        let sim = Simulator::new(&mux).unwrap();
        for sel in 0..4u64 {
            for data in 0..16u64 {
                let mut inputs = bits(sel, 2);
                inputs.extend(bits(data, 4));
                let out = sim.run(&inputs).unwrap();
                assert_eq!(out[0], data >> sel & 1 == 1, "sel={sel} data={data:04b}");
            }
        }
    }

    #[test]
    fn majority_votes() {
        let maj = majority3();
        let sim = Simulator::new(&maj).unwrap();
        for pattern in 0..8u64 {
            let expected = pattern.count_ones() >= 2;
            assert_eq!(sim.run(&bits(pattern, 3)).unwrap()[0], expected);
        }
    }

    #[test]
    fn array_multiplier_multiplies() {
        for width in [1usize, 2, 3] {
            let mul = array_multiplier(width);
            let sim = Simulator::new(&mul).unwrap();
            for a in 0..(1u64 << width) {
                for b in 0..(1u64 << width) {
                    let mut inputs = bits(a, width);
                    inputs.extend(bits(b, width));
                    let out = sim.run(&inputs).unwrap();
                    assert_eq!(word(&out), a * b, "{a}*{b} at width {width}");
                }
            }
        }
    }

    #[test]
    fn standard_suite_is_well_formed() {
        for (name, circuit) in standard_suite() {
            assert!(circuit.validate().is_ok(), "{name} must validate");
            assert!(circuit.num_gates() > 0, "{name} must contain gates");
        }
    }
}
