//! Error type for circuit construction, parsing and encoding.

use std::fmt;

/// Errors produced by the `nbl-circuit` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A signal name was declared more than once.
    DuplicateSignal(String),
    /// A referenced signal name does not exist in the circuit.
    UnknownSignal(String),
    /// A referenced node id does not exist in the circuit.
    UnknownNode(usize),
    /// A gate was given a fan-in count its kind does not support.
    InvalidFanin {
        /// The gate kind in question.
        kind: &'static str,
        /// The fan-in count that was supplied.
        got: usize,
        /// Human-readable description of the supported fan-in counts.
        expected: &'static str,
    },
    /// The netlist contains a combinational cycle.
    CombinationalLoop(String),
    /// An output name was marked more than once.
    DuplicateOutput(String),
    /// The circuit has no primary outputs where at least one is required.
    NoOutputs,
    /// Two circuits could not be combined because their interfaces differ.
    InterfaceMismatch(String),
    /// The number of supplied input values does not match the circuit.
    InputCountMismatch {
        /// Number of primary inputs the circuit has.
        expected: usize,
        /// Number of values supplied by the caller.
        got: usize,
    },
    /// The circuit has too many primary inputs for an exhaustive operation.
    TooManyInputs {
        /// Number of primary inputs the circuit has.
        inputs: usize,
        /// Largest supported number of inputs for the requested operation.
        limit: usize,
    },
    /// A `.bench` netlist failed to parse.
    ParseBench {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::DuplicateSignal(name) => {
                write!(f, "signal `{name}` is declared more than once")
            }
            CircuitError::UnknownSignal(name) => write!(f, "unknown signal `{name}`"),
            CircuitError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            CircuitError::InvalidFanin {
                kind,
                got,
                expected,
            } => write!(
                f,
                "{kind} gate cannot take {got} inputs (expected {expected})"
            ),
            CircuitError::CombinationalLoop(name) => {
                write!(f, "combinational loop through signal `{name}`")
            }
            CircuitError::DuplicateOutput(name) => {
                write!(f, "output `{name}` is declared more than once")
            }
            CircuitError::NoOutputs => write!(f, "circuit has no primary outputs"),
            CircuitError::InterfaceMismatch(msg) => write!(f, "interface mismatch: {msg}"),
            CircuitError::InputCountMismatch { expected, got } => write!(
                f,
                "circuit has {expected} primary inputs but {got} values were supplied"
            ),
            CircuitError::TooManyInputs { inputs, limit } => write!(
                f,
                "circuit has {inputs} primary inputs, more than the supported limit of {limit}"
            ),
            CircuitError::ParseBench { line, message } => {
                write!(f, "bench parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CircuitError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(CircuitError, &str)> = vec![
            (CircuitError::DuplicateSignal("a".into()), "a"),
            (CircuitError::UnknownSignal("b".into()), "b"),
            (CircuitError::UnknownNode(7), "7"),
            (
                CircuitError::InvalidFanin {
                    kind: "NOT",
                    got: 2,
                    expected: "exactly 1",
                },
                "NOT",
            ),
            (CircuitError::CombinationalLoop("loop".into()), "loop"),
            (CircuitError::DuplicateOutput("o".into()), "o"),
            (CircuitError::NoOutputs, "no primary outputs"),
            (CircuitError::InterfaceMismatch("x vs y".into()), "x vs y"),
            (
                CircuitError::InputCountMismatch {
                    expected: 3,
                    got: 2,
                },
                "3",
            ),
            (
                CircuitError::TooManyInputs {
                    inputs: 80,
                    limit: 24,
                },
                "80",
            ),
            (
                CircuitError::ParseBench {
                    line: 4,
                    message: "bad token".into(),
                },
                "line 4",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle}"
            );
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<CircuitError>();
    }
}
