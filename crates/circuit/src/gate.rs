//! Gate kinds and their Boolean semantics.

use crate::error::{CircuitError, Result};
use std::fmt;
use std::str::FromStr;

/// The logic function computed by a gate.
///
/// `Buf` and `Not` are strictly unary; every other kind accepts two or more
/// inputs and is evaluated as the natural n-ary extension (e.g. an n-ary
/// `Xor` is the parity of its inputs, an n-ary `Nand` is the negation of the
/// conjunction of all inputs).
///
/// ```
/// use nbl_circuit::GateKind;
/// assert!(GateKind::And.eval(&[true, true, true]));
/// assert!(!GateKind::And.eval(&[true, false, true]));
/// assert!(GateKind::Xor.eval(&[true, true, true]));   // odd parity
/// assert_eq!(GateKind::Not.eval(&[true]), false);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Identity of a single input.
    Buf,
    /// Negation of a single input.
    Not,
    /// Conjunction of all inputs.
    And,
    /// Negated conjunction of all inputs.
    Nand,
    /// Disjunction of all inputs.
    Or,
    /// Negated disjunction of all inputs.
    Nor,
    /// Parity (odd number of true inputs).
    Xor,
    /// Negated parity (even number of true inputs).
    Xnor,
}

impl GateKind {
    /// All gate kinds, in a stable order.
    pub const ALL: [GateKind; 8] = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];

    /// Returns `true` for the unary kinds (`Buf`, `Not`).
    pub fn is_unary(self) -> bool {
        matches!(self, GateKind::Buf | GateKind::Not)
    }

    /// Returns `true` for kinds whose output is the negation of the
    /// corresponding non-inverting kind (`Not`, `Nand`, `Nor`, `Xnor`).
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Not | GateKind::Nand | GateKind::Nor | GateKind::Xnor
        )
    }

    /// Returns the non-inverting counterpart of this kind
    /// (`Nand → And`, `Xnor → Xor`, ...); non-inverting kinds return themselves.
    pub fn base(self) -> GateKind {
        match self {
            GateKind::Not => GateKind::Buf,
            GateKind::Nand => GateKind::And,
            GateKind::Nor => GateKind::Or,
            GateKind::Xnor => GateKind::Xor,
            other => other,
        }
    }

    /// Validates a fan-in count for this gate kind.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidFanin`] if the count is not supported:
    /// unary kinds require exactly one input, all other kinds require at
    /// least two.
    pub fn check_fanin(self, count: usize) -> Result<()> {
        if self.is_unary() {
            if count != 1 {
                return Err(CircuitError::InvalidFanin {
                    kind: self.name(),
                    got: count,
                    expected: "exactly 1",
                });
            }
        } else if count < 2 {
            return Err(CircuitError::InvalidFanin {
                kind: self.name(),
                got: count,
                expected: "at least 2",
            });
        }
        Ok(())
    }

    /// Evaluates the gate on the given input values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert!(
            !inputs.is_empty(),
            "gate evaluation needs at least one input"
        );
        match self {
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
        }
    }

    /// Evaluates the gate bit-parallel on 64-wide words (one simulation
    /// pattern per bit position).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn eval_word(self, inputs: &[u64]) -> u64 {
        assert!(
            !inputs.is_empty(),
            "gate evaluation needs at least one input"
        );
        match self {
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().fold(u64::MAX, |acc, &w| acc & w),
            GateKind::Nand => !inputs.iter().fold(u64::MAX, |acc, &w| acc & w),
            GateKind::Or => inputs.iter().fold(0, |acc, &w| acc | w),
            GateKind::Nor => !inputs.iter().fold(0, |acc, &w| acc | w),
            GateKind::Xor => inputs.iter().fold(0, |acc, &w| acc ^ w),
            GateKind::Xnor => !inputs.iter().fold(0, |acc, &w| acc ^ w),
        }
    }

    /// Canonical upper-case name of the kind, as used by the `.bench` format.
    pub fn name(self) -> &'static str {
        match self {
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown gate-kind name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGateKindError(pub String);

impl fmt::Display for ParseGateKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate kind `{}`", self.0)
    }
}

impl std::error::Error for ParseGateKindError {}

impl FromStr for GateKind {
    type Err = ParseGateKindError;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "BUF" | "BUFF" => Ok(GateKind::Buf),
            "NOT" | "INV" => Ok(GateKind::Not),
            "AND" => Ok(GateKind::And),
            "NAND" => Ok(GateKind::Nand),
            "OR" => Ok(GateKind::Or),
            "NOR" => Ok(GateKind::Nor),
            "XOR" => Ok(GateKind::Xor),
            "XNOR" => Ok(GateKind::Xnor),
            other => Err(ParseGateKindError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_truth_tables() {
        let cases = [
            (GateKind::And, [false, false, false, true]),
            (GateKind::Nand, [true, true, true, false]),
            (GateKind::Or, [false, true, true, true]),
            (GateKind::Nor, [true, false, false, false]),
            (GateKind::Xor, [false, true, true, false]),
            (GateKind::Xnor, [true, false, false, true]),
        ];
        for (kind, expected) in cases {
            for (i, &want) in expected.iter().enumerate() {
                let a = i & 1 == 1;
                let b = i & 2 == 2;
                assert_eq!(kind.eval(&[a, b]), want, "{kind} on ({a},{b})");
            }
        }
    }

    #[test]
    fn unary_kinds() {
        assert!(GateKind::Buf.eval(&[true]));
        assert!(!GateKind::Buf.eval(&[false]));
        assert!(!GateKind::Not.eval(&[true]));
        assert!(GateKind::Not.eval(&[false]));
    }

    #[test]
    fn nary_extensions() {
        assert!(GateKind::And.eval(&[true; 5]));
        assert!(!GateKind::And.eval(&[true, true, false, true]));
        assert!(GateKind::Or.eval(&[false, false, true]));
        assert!(GateKind::Xor.eval(&[true, true, true])); // odd parity
        assert!(!GateKind::Xor.eval(&[true, true, true, true]));
        assert!(GateKind::Xnor.eval(&[true, true, false, false]));
    }

    #[test]
    fn word_eval_matches_scalar_eval() {
        for kind in GateKind::ALL {
            let arity = if kind.is_unary() { 1 } else { 3 };
            // Patterns 0..2^arity in the low bits of each word.
            let mut words = vec![0u64; arity];
            for pattern in 0..(1u32 << arity) {
                for (i, word) in words.iter_mut().enumerate() {
                    if pattern >> i & 1 == 1 {
                        *word |= 1 << pattern;
                    }
                }
            }
            let out = kind.eval_word(&words);
            for pattern in 0..(1u32 << arity) {
                let scalar_inputs: Vec<bool> = (0..arity).map(|i| pattern >> i & 1 == 1).collect();
                assert_eq!(
                    out >> pattern & 1 == 1,
                    kind.eval(&scalar_inputs),
                    "{kind} pattern {pattern:b}"
                );
            }
        }
    }

    #[test]
    fn fanin_validation() {
        assert!(GateKind::Not.check_fanin(1).is_ok());
        assert!(GateKind::Not.check_fanin(2).is_err());
        assert!(GateKind::And.check_fanin(2).is_ok());
        assert!(GateKind::And.check_fanin(5).is_ok());
        assert!(GateKind::And.check_fanin(1).is_err());
    }

    #[test]
    fn names_round_trip_through_from_str() {
        for kind in GateKind::ALL {
            assert_eq!(kind.name().parse::<GateKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!("inv".parse::<GateKind>().unwrap(), GateKind::Not);
        assert_eq!("buff".parse::<GateKind>().unwrap(), GateKind::Buf);
        assert!("MAJ".parse::<GateKind>().is_err());
    }

    #[test]
    fn inverting_and_base_relationships() {
        assert!(GateKind::Nand.is_inverting());
        assert!(!GateKind::And.is_inverting());
        assert_eq!(GateKind::Nand.base(), GateKind::And);
        assert_eq!(GateKind::Xnor.base(), GateKind::Xor);
        assert_eq!(GateKind::Not.base(), GateKind::Buf);
        assert_eq!(GateKind::Or.base(), GateKind::Or);
    }
}
