//! Focused tests for the Tseitin encoding and miter / equivalence-checking
//! path, including malformed-input error cases (builder misuse, interface
//! mismatches, and `.bench` parse errors).

use nbl_circuit::{
    equivalence_check, miter, parse_bench, Circuit, CircuitBuilder, CircuitError, GateKind,
    Simulator, TseitinEncoder,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sat_solvers::{DpllSolver, SolveResult, Solver};

/// Builds a random fan-in-2 combinational circuit over `num_inputs` inputs
/// from a seeded generator.
fn random_circuit(seed: u64, num_inputs: usize, num_gates: usize) -> Circuit {
    let kinds = [
        GateKind::And,
        GateKind::Or,
        GateKind::Xor,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xnor,
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = CircuitBuilder::new("random");
    let mut signals: Vec<_> = (0..num_inputs)
        .map(|i| builder.input(format!("x{i}")).unwrap())
        .collect();
    for _ in 0..num_gates {
        let kind = kinds[rng.gen_range(0..kinds.len())];
        let a = signals[rng.gen_range(0..signals.len())];
        let b = signals[rng.gen_range(0..signals.len())];
        signals.push(builder.gate(kind, &[a, b]).unwrap());
    }
    let last = *signals.last().unwrap();
    builder.output("y", last).unwrap();
    builder.finish()
}

#[test]
fn tseitin_encoding_of_random_circuits_matches_simulation() {
    for seed in 0..8u64 {
        let circuit = random_circuit(seed, 4, 12);
        let sim = Simulator::new(&circuit).unwrap();
        let base = TseitinEncoder::new().encode(&circuit).unwrap();
        for pattern in 0..1u64 << 4 {
            let inputs: Vec<bool> = (0..4).map(|i| pattern >> i & 1 == 1).collect();
            let expected = sim.run(&inputs).unwrap()[0];
            // CNF with inputs pinned and the output asserted to `expected`
            // must be SAT; asserted to `!expected` must be UNSAT.
            for claim in [expected, !expected] {
                let mut enc = base.clone();
                for (i, &v) in inputs.iter().enumerate() {
                    enc.assert_input(i, v);
                }
                enc.assert_output(0, claim);
                let result = DpllSolver::new().solve(enc.formula());
                assert_eq!(
                    result.is_sat(),
                    claim == expected,
                    "seed {seed}, pattern {pattern:04b}, claim {claim}"
                );
            }
        }
    }
}

#[test]
fn miter_of_equivalent_random_circuits_is_unsat() {
    // The same seed yields the same circuit; a miter of a circuit against
    // itself must be unsatisfiable.
    let a = random_circuit(1, 3, 10);
    let b = random_circuit(1, 3, 10);
    let m = miter(&a, &b).unwrap();
    let enc = TseitinEncoder::new().encode(&m).unwrap();
    let mut formula = enc.formula().clone();
    formula.add_clause([enc.output_literal(0)]);
    assert!(matches!(
        DpllSolver::new().solve(&formula),
        SolveResult::Unsatisfiable
    ));
}

#[test]
fn equivalence_check_finds_real_counterexamples() {
    // AND vs OR differ exactly on patterns where the inputs disagree.
    let mut a = CircuitBuilder::new("and");
    let x = a.input("x").unwrap();
    let y = a.input("y").unwrap();
    let g = a.and2(x, y).unwrap();
    a.output("out", g).unwrap();
    let a = a.finish();

    let mut b = CircuitBuilder::new("or");
    let x = b.input("x").unwrap();
    let y = b.input("y").unwrap();
    let g = b.or2(x, y).unwrap();
    b.output("out", g).unwrap();
    let b = b.finish();

    let check = equivalence_check(&a, &b).unwrap();
    let result = DpllSolver::new().solve(check.formula());
    let model = match result {
        SolveResult::Satisfiable(m) => m,
        other => panic!("expected a counterexample, got {other:?}"),
    };
    let cex = check.counterexample(&model);
    assert_eq!(cex.len(), 2);
    // The counterexample must actually distinguish the two circuits.
    let inputs: Vec<bool> = cex.iter().map(|(_, v)| *v).collect();
    let out_a = Simulator::new(&a).unwrap().run(&inputs).unwrap()[0];
    let out_b = Simulator::new(&b).unwrap().run(&inputs).unwrap()[0];
    assert_ne!(out_a, out_b);
}

#[test]
fn builder_rejects_malformed_circuits() {
    let mut builder = CircuitBuilder::new("bad");
    builder.input("a").unwrap();
    assert!(matches!(
        builder.input("a"),
        Err(CircuitError::DuplicateSignal(_))
    ));

    let mut builder = CircuitBuilder::new("bad");
    let a = builder.input("a").unwrap();
    assert!(matches!(
        builder.gate(GateKind::Not, &[a, a]),
        Err(CircuitError::InvalidFanin { .. })
    ));

    // A second output under a fresh name would create a duplicate buffer
    // signal; re-marking the same named node is a duplicate output.
    let mut builder = CircuitBuilder::new("bad");
    let a = builder.input("a").unwrap();
    builder.output("y", a).unwrap();
    assert!(matches!(
        builder.output("y", a),
        Err(CircuitError::DuplicateSignal(_))
    ));

    let mut builder = CircuitBuilder::new("bad");
    let a = builder.input("a").unwrap();
    builder.output("a", a).unwrap();
    assert!(matches!(
        builder.output("a", a),
        Err(CircuitError::DuplicateOutput(_))
    ));
}

#[test]
fn miter_rejects_interface_mismatches() {
    let one_input = {
        let mut b = CircuitBuilder::new("one");
        let x = b.input("x").unwrap();
        let g = b.not(x).unwrap();
        b.output("y", g).unwrap();
        b.finish()
    };
    let two_inputs = random_circuit(0, 2, 4);
    assert!(matches!(
        miter(&one_input, &two_inputs),
        Err(CircuitError::InterfaceMismatch(_))
    ));
    assert!(matches!(
        equivalence_check(&two_inputs, &one_input),
        Err(CircuitError::InterfaceMismatch(_))
    ));
}

#[test]
fn bench_parser_reports_malformed_lines() {
    // Unknown gate type.
    let err = parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n").unwrap_err();
    assert!(matches!(err, CircuitError::ParseBench { line: 3, .. }));

    // Structurally invalid line.
    let err = parse_bench("INPUT(a)\nOUTPUT(y)\nthis is not bench\n").unwrap_err();
    assert!(matches!(err, CircuitError::ParseBench { .. }));

    // Output signal never defined.
    assert!(parse_bench("INPUT(a)\nOUTPUT(y)\n").is_err());
}

#[test]
fn miter_rejects_circuits_without_outputs() {
    let mut builder = CircuitBuilder::new("no_outputs");
    builder.input("a").unwrap();
    let circuit = builder.finish();
    assert!(matches!(
        miter(&circuit, &circuit),
        Err(CircuitError::NoOutputs)
    ));
}
