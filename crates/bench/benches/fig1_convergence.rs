//! Criterion bench for E1 (Figure 1): cost of producing the S_N running-mean
//! trace for the paper's §IV instances at increasing sample budgets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nbl_sat_core::{EngineConfig, NblSatInstance, SampledEngine};

fn fig1_trace(c: &mut Criterion) {
    let sat = NblSatInstance::new(&cnf::generators::section4_sat_instance()).unwrap();
    let unsat = NblSatInstance::new(&cnf::generators::section4_unsat_instance()).unwrap();
    let mut group = c.benchmark_group("fig1_convergence");
    group.sample_size(20);
    for &samples in &[1_000u64, 10_000, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("sat_trace", samples),
            &samples,
            |b, &samples| {
                b.iter(|| {
                    let mut engine = SampledEngine::new(
                        EngineConfig::new().with_seed(1).with_max_samples(samples),
                    );
                    engine
                        .trace_logspaced(&sat, &sat.empty_bindings(), "S_SAT", 3)
                        .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("unsat_trace", samples),
            &samples,
            |b, &samples| {
                b.iter(|| {
                    let mut engine = SampledEngine::new(
                        EngineConfig::new().with_seed(1).with_max_samples(samples),
                    );
                    engine
                        .trace_logspaced(&unsat, &unsat.empty_bindings(), "S_UNSAT", 3)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig1_trace);
criterion_main!(benches);
