//! Criterion bench for the cube-and-conquer coordinator: wall-clock of one
//! fleet solve of a fixed unsatisfiable instance over 1, 2 and 4 loopback
//! `nbl-satd` servers. UNSAT makes every cube of the partition run to
//! refutation, so the fleet size actually shows up in the trajectory (SAT
//! instances early-exit on the first model and flatten the curve). All the
//! servers live on this host, so the curve drops with fleet size only when
//! spare cores exist; on a single-core host it measures coordination
//! overhead instead — both are the numbers a deployment planner needs.

use cnf::generators;
use criterion::{criterion_group, criterion_main, Criterion};
use nbl_net::{NblSatServer, ServerConfig};
use nbl_shard::{ShardConfig, ShardCoordinator};

fn shard_scaling(c: &mut Criterion) {
    // PHP(8,7): hard enough that a monolithic CDCL run takes over a second
    // and every cube costs real search, and — unlike small random 3-SAT —
    // its cubes are not refutable by unit propagation alone, so all 16
    // really go to the fleet.
    let formula = generators::pigeonhole(8, 7);
    let mut group = c.benchmark_group("shard_scaling");
    group.sample_size(3);
    for shards in [1usize, 2, 4] {
        let servers: Vec<NblSatServer> = (0..shards)
            .map(|_| {
                NblSatServer::bind("127.0.0.1:0", ServerConfig::new().workers(1))
                    .expect("bind loopback server")
            })
            .collect();
        let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
        // The same partition for every fleet size, so only the farm-out
        // parallelism varies between the curves.
        let config = ShardConfig {
            target_cubes: Some(16),
            ..ShardConfig::default()
        };
        let coordinator = ShardCoordinator::connect(&addrs, config).expect("connect fleet");
        group.bench_function(format!("shards_{shards}"), |b| {
            b.iter(|| {
                let outcome = coordinator.solve(&formula);
                assert!(outcome.verdict.is_definitive());
                outcome.fleet.remote_unsat
            })
        });
        for server in &servers {
            server.stop();
        }
    }
    group.finish();
}

criterion_group!(benches, shard_scaling);
criterion_main!(benches);
