//! Criterion bench for the bit-packed evaluation cores: the scalar-vs-packed
//! staircase on clause evaluation (64 assignments per word) and on WalkSAT /
//! GSAT flip scoring. The four targets form a ladder the CI quick-mode bench
//! job asserts on: each `*_packed` mean must beat its `*_scalar` twin.

use cnf::generators::{self, RandomKSatConfig};
use cnf::{Assignment, AssignmentBlock, CnfFormula, PackedFormula, Variable};
use criterion::{criterion_group, criterion_main, Criterion};
use sat_solvers::score;
use sat_solvers::FlipScorer;

/// The shared workload: one random 3-SAT instance near the hard ratio plus a
/// word's worth of random assignments.
fn workload() -> (CnfFormula, Vec<Assignment>) {
    let formula = generators::random_ksat(&RandomKSatConfig::new(192, 800, 3).with_seed(42))
        .expect("valid generator config");
    // A deterministic but irregular batch of 64 full-width assignments.
    let assignments = (0..64u64)
        .map(|lane| {
            Assignment::from_bools(
                (0..192)
                    .map(|v| (lane.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> (v % 63)) & 1 == 1)
                    .collect(),
            )
        })
        .collect();
    (formula, assignments)
}

fn clause_eval(c: &mut Criterion) {
    let (formula, assignments) = workload();
    let packed = PackedFormula::new(&formula);
    let block = AssignmentBlock::from_assignments(&assignments);
    c.bench_function("clause_eval_scalar", |b| {
        b.iter(|| {
            let mut satisfied = 0u32;
            for a in &assignments {
                satisfied += u32::from(formula.evaluate(a));
            }
            satisfied
        })
    });
    c.bench_function("clause_eval_packed", |b| {
        b.iter(|| packed.eval_block(&block).popcount())
    });
}

fn flip_score(c: &mut Criterion) {
    let (formula, assignments) = workload();
    let assignment = assignments[0].clone();
    let mut scorer = FlipScorer::new(&formula);
    c.bench_function("flip_score_scalar", |b| {
        b.iter(|| {
            let mut total = 0i64;
            for v in 0..formula.num_vars() {
                total += score::flip_gain(&formula, &assignment, Variable::new(v));
            }
            total
        })
    });
    c.bench_function("flip_score_packed", |b| {
        b.iter(|| scorer.gains(&assignment).iter().sum::<i64>())
    });
}

criterion_group!(benches, clause_eval, flip_score);
criterion_main!(benches);
