//! Criterion bench for E7: per-sample cost of each carrier family, and of the
//! full sampled SAT check under each family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nbl_noise::CarrierKind;
use nbl_sat_core::{EngineConfig, NblEngine, NblSatInstance, SampledEngine};

fn carrier_sample_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("carrier_sample_generation");
    for kind in CarrierKind::all() {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            let mut bank = kind.bank(16, 3);
            let mut buf = [0.0f64; 16];
            b.iter(|| {
                bank.next_sample(&mut buf);
                buf[0]
            })
        });
    }
    group.finish();
}

fn sampled_check_by_carrier(c: &mut Criterion) {
    let instance = NblSatInstance::new(&cnf::generators::example6_sat()).unwrap();
    let mut group = c.benchmark_group("sampled_check_by_carrier");
    group.sample_size(30);
    for kind in CarrierKind::all() {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| {
                SampledEngine::new(
                    EngineConfig::new()
                        .with_carrier(kind)
                        .with_seed(9)
                        .with_max_samples(10_000)
                        .with_check_interval(10_000),
                )
                .estimate(&instance, &instance.empty_bindings())
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, carrier_sample_generation, sampled_check_by_carrier);
criterion_main!(benches);
