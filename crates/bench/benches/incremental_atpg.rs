//! Criterion bench for ISSUE 8: incremental ATPG under assumptions vs the
//! from-scratch per-fault flow.
//!
//! Both sides sweep the complete single-stuck-at fault list of a ripple-carry
//! adder and measure the **whole** flow. The incremental side Tseitin-encodes
//! one shared multi-miter CNF, pushes it into a single [`CdclSolver`] and
//! decides each fault with `solve_under_assumptions([fault_literal])`, so
//! learned clauses persist across faults. The from-scratch side builds a
//! fresh per-fault miter CNF and a fresh solver every time — the flow
//! `examples/atpg.rs` demonstrates. CI's quick-mode bench job asserts the
//! incremental mean lands strictly below the from-scratch mean.

use criterion::{criterion_group, criterion_main, Criterion};
use nbl_circuit::{atpg_check, atpg_sweep, fault_list, library};
use sat_solvers::{CdclSolver, SearchLimits, Solver};

fn incremental_vs_from_scratch(c: &mut Criterion) {
    let adder = library::ripple_carry_adder(4);
    let faults = fault_list(&adder);
    let limits = SearchLimits::unlimited();
    let mut group = c.benchmark_group("incremental_atpg");
    group.sample_size(20);
    group.bench_function("assumption_sweep_rca4", |b| {
        b.iter(|| {
            let sweep = atpg_sweep(&adder, &faults).unwrap();
            let mut solver = CdclSolver::new();
            solver.push(sweep.formula());
            (0..sweep.num_faults())
                .filter(|&index| {
                    solver
                        .solve_under_assumptions(&[sweep.fault_literal(index)], &limits)
                        .is_sat()
                })
                .count()
        })
    });
    group.bench_function("from_scratch_rca4", |b| {
        b.iter(|| {
            faults
                .iter()
                .filter(|&&fault| {
                    let check = atpg_check(&adder, fault).unwrap();
                    CdclSolver::new().solve(check.formula()).is_sat()
                })
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, incremental_vs_from_scratch);
criterion_main!(benches);
