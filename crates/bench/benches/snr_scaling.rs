//! Criterion bench for E2 (§III.F): cost of a fixed-budget sampled mean
//! estimate as the instance size (n·m) grows — the denominator of the SNR
//! trade-off.

use cnf::generators::{random_ksat, RandomKSatConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nbl_sat_core::{EngineConfig, NblEngine, NblSatInstance, SampledEngine};

fn sampled_estimate_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("snr_scaling_sampled_estimate");
    group.sample_size(30);
    for &(n, m) in &[(2usize, 4usize), (3, 6), (4, 8), (6, 12), (8, 16)] {
        let formula = random_ksat(&RandomKSatConfig::new(n, m, 3.min(n)).with_seed(7)).unwrap();
        let instance = NblSatInstance::new(&formula).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &instance,
            |b, instance| {
                b.iter(|| {
                    let mut engine = SampledEngine::new(
                        EngineConfig::new()
                            .with_seed(3)
                            .with_max_samples(5_000)
                            .with_check_interval(5_000),
                    );
                    engine
                        .estimate(instance, &instance.empty_bindings())
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, sampled_estimate_by_size);
criterion_main!(benches);
