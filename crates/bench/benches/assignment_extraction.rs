//! Criterion bench for E4 (Algorithm 2): cost of extracting a satisfying
//! assignment as the variable count grows (the paper's bound is n checks).

use cnf::generators::{random_ksat, RandomKSatConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nbl_sat_core::{AssignmentExtractor, NblSatInstance, SymbolicEngine};

fn extraction_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment_extraction");
    group.sample_size(20);
    for &n in &[4usize, 6, 8, 10, 12] {
        // Under-constrained instances stay satisfiable with overwhelming probability.
        let formula = (0..)
            .map(|s| random_ksat(&RandomKSatConfig::from_ratio(n, 2.0, 3).with_seed(s)).unwrap())
            .find(|f| f.count_satisfying_assignments() > 0)
            .unwrap();
        let instance = NblSatInstance::new(&formula).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &instance, |b, instance| {
            b.iter(|| {
                AssignmentExtractor::new(SymbolicEngine::new())
                    .extract(instance)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, extraction_by_size);
criterion_main!(benches);
