//! Criterion bench for E11: stochastic local search (WalkSAT, GSAT,
//! Schöning) against the complete baselines on satisfiable random 3-SAT, plus
//! the polynomial 2-SAT solver on 2-CNF.

use cnf::generators::{self, RandomKSatConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use sat_solvers::{CdclSolver, Gsat, Portfolio, Schoening, Solver, TwoSatSolver, WalkSat};

fn local_search_on_easy_3sat(c: &mut Criterion) {
    // Below the phase transition (m/n = 3), satisfiable with high probability
    // and easy for local search.
    let formula =
        generators::random_ksat(&RandomKSatConfig::from_ratio(20, 3.0, 3).with_seed(11)).unwrap();
    let mut group = c.benchmark_group("local_search_random3sat_n20_r3");
    group.sample_size(20);
    group.bench_function("walksat", |b| b.iter(|| WalkSat::new().solve(&formula)));
    group.bench_function("gsat", |b| b.iter(|| Gsat::new().solve(&formula)));
    group.bench_function("schoening", |b| b.iter(|| Schoening::new().solve(&formula)));
    group.bench_function("cdcl", |b| b.iter(|| CdclSolver::new().solve(&formula)));
    group.bench_function("portfolio", |b| b.iter(|| Portfolio::new().solve(&formula)));
    group.finish();
}

fn two_sat_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_sat_implication_graph");
    for n in [50usize, 200, 800] {
        let formula =
            generators::random_ksat(&RandomKSatConfig::new(n, 2 * n, 2).with_seed(n as u64))
                .unwrap();
        group.bench_function(format!("n{n}_m{}", 2 * n), |b| {
            b.iter(|| TwoSatSolver::new().solve(&formula))
        });
    }
    group.finish();
}

criterion_group!(benches, local_search_on_easy_3sat, two_sat_scaling);
criterion_main!(benches);
