//! Criterion bench for the `SolveService` job-queue front end: streaming
//! submit-then-wait throughput against the one-shot `SolveBatch` wrapper on
//! the same workload, across worker-pool sizes — the cost of the persistent
//! queue (condvar wakeups, per-job heap ops, formula clones) relative to the
//! raw fan-out it schedules.

use cnf::generators::{self, RandomKSatConfig};
use cnf::CnfFormula;
use criterion::{criterion_group, criterion_main, Criterion};
use nbl_sat_core::{
    Artifacts, BackendRegistry, JobPriority, SolveBatch, SolveRequest, SolveService,
};

/// A mixed 16-instance workload around the 3-SAT phase transition.
fn workload() -> Vec<CnfFormula> {
    (0..16)
        .map(|seed| {
            generators::random_ksat(&RandomKSatConfig::from_ratio(10, 4.2, 3).with_seed(seed))
                .unwrap()
        })
        .collect()
}

fn service_vs_batch_throughput(c: &mut Criterion) {
    let registry = BackendRegistry::default();
    let instances = workload();
    for workers in [1usize, 4] {
        let mut group = c.benchmark_group(format!("service_throughput_w{workers}"));
        group.sample_size(10);
        group.bench_function("service_stream", |b| {
            b.iter(|| {
                let service = SolveService::builder(&registry).workers(workers).start();
                let handles: Vec<_> = instances
                    .iter()
                    .map(|f| service.submit("cdcl", &SolveRequest::new(f).seed(7)))
                    .collect();
                let definitive = handles
                    .into_iter()
                    .map(|h| h.wait().unwrap())
                    .filter(|o| o.verdict.is_definitive())
                    .count();
                service.shutdown();
                definitive
            })
        });
        group.bench_function("batch_oneshot", |b| {
            b.iter(|| {
                let mut batch = SolveBatch::new(&registry).workers(workers);
                for f in &instances {
                    batch = batch.job("cdcl", SolveRequest::new(f).seed(7));
                }
                batch
                    .run()
                    .into_iter()
                    .filter(|o| o.as_ref().unwrap().verdict.is_definitive())
                    .count()
            })
        });
        group.finish();
    }
}

fn service_cache_hit_vs_miss(c: &mut Criterion) {
    let registry = BackendRegistry::default();
    // One over-constrained UNSAT instance resubmitted over and over: with
    // the verdict cache every submission after the first answers straight
    // from the canonical-key lookup, without the cache each one pays the
    // full cdcl refutation. The ladder (4 and 16 repeats) shows the gap
    // widening with re-solve traffic. A *random* instance matters here:
    // its automorphism group is trivial, so the per-lookup canonical form
    // is cheap — symmetric families like pigeonhole spend as long
    // canonicalizing as solving and would bury the cache win.
    let formula =
        generators::random_ksat(&RandomKSatConfig::from_ratio(60, 5.0, 3).with_seed(1)).unwrap();
    let mut group = c.benchmark_group("service_throughput_cache");
    group.sample_size(10);
    for repeats in [4usize, 16] {
        for (suffix, cached) in [("miss", false), ("hit", true)] {
            group.bench_function(format!("repeat{repeats}_{suffix}"), |b| {
                b.iter(|| {
                    let mut builder = SolveService::builder(&registry).workers(2);
                    if cached {
                        builder = builder.cache_capacity(64);
                    }
                    let service = builder.start();
                    // `Artifacts::Model` keeps SAT outcomes cacheable too
                    // (the cache only stores SAT answers whose model it
                    // could verify), so the workload generalizes.
                    let handles: Vec<_> = (0..repeats)
                        .map(|_| {
                            service.submit(
                                "cdcl",
                                &SolveRequest::new(&formula)
                                    .seed(7)
                                    .artifacts(Artifacts::Model),
                            )
                        })
                        .collect();
                    let definitive = handles
                        .into_iter()
                        .map(|h| h.wait().unwrap())
                        .filter(|o| o.verdict.is_definitive())
                        .count();
                    let hits = service.metrics_snapshot().cache_hits;
                    service.shutdown();
                    (definitive, hits)
                })
            });
        }
    }
    group.finish();
}

fn service_priority_scheduling_overhead(c: &mut Criterion) {
    let registry = BackendRegistry::default();
    let instances = workload();
    let mut group = c.benchmark_group("service_throughput_priorities");
    group.sample_size(10);
    group.bench_function("mixed_priorities_w4", |b| {
        b.iter(|| {
            let service = SolveService::builder(&registry).workers(4).start();
            let handles: Vec<_> = instances
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    let priority = match i % 3 {
                        0 => JobPriority::High,
                        1 => JobPriority::Normal,
                        _ => JobPriority::Low,
                    };
                    service.submit_with_priority("cdcl", &SolveRequest::new(f).seed(7), priority)
                })
                .collect();
            let done = handles
                .into_iter()
                .map(|h| h.wait().unwrap())
                .filter(|o| o.verdict.is_definitive())
                .count();
            service.shutdown();
            done
        })
    });
    group.finish();
}

criterion_group!(
    service_throughput,
    service_vs_batch_throughput,
    service_cache_hit_vs_miss,
    service_priority_scheduling_overhead
);
criterion_main!(service_throughput);
