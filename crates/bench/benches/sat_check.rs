//! Criterion bench for E3/E8: the single-operation SAT check under each
//! engine (exact counting, algebraic expansion, Monte-Carlo sampling) on the
//! paper's worked examples.

use criterion::{criterion_group, criterion_main, Criterion};
use nbl_sat_core::{
    AlgebraicEngine, EngineConfig, NblEngine, NblSatInstance, SampledEngine, SymbolicEngine,
};

fn engines_on_worked_examples(c: &mut Criterion) {
    let cases = [
        ("example6_sat", cnf::generators::example6_sat()),
        ("example7_unsat", cnf::generators::example7_unsat()),
        ("section4_sat", cnf::generators::section4_sat_instance()),
        ("section4_unsat", cnf::generators::section4_unsat_instance()),
    ];
    let mut group = c.benchmark_group("sat_check");
    for (name, formula) in cases {
        let instance = NblSatInstance::new(&formula).unwrap();
        group.bench_function(format!("symbolic/{name}"), |b| {
            b.iter(|| {
                SymbolicEngine::new()
                    .estimate(&instance, &instance.empty_bindings())
                    .unwrap()
            })
        });
        group.bench_function(format!("algebraic/{name}"), |b| {
            b.iter(|| {
                AlgebraicEngine::new()
                    .estimate(&instance, &instance.empty_bindings())
                    .unwrap()
            })
        });
        group.bench_function(format!("sampled_20k/{name}"), |b| {
            b.iter(|| {
                SampledEngine::new(
                    EngineConfig::new()
                        .with_seed(5)
                        .with_max_samples(20_000)
                        .with_check_interval(20_000),
                )
                .estimate(&instance, &instance.empty_bindings())
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, engines_on_worked_examples);
criterion_main!(benches);
