//! Criterion bench for E6: the NBL-guided hybrid solver against the
//! classical baselines (DPLL, CDCL, WalkSAT) on random 3-SAT and structured
//! instances — all dispatched through the unified request/outcome API, so the
//! numbers include the (small) cost of the backend abstraction the production
//! front ends pay.

use cnf::generators::{self, RandomKSatConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use nbl_sat_core::{BackendRegistry, SolveRequest};

const BACKENDS: [&str; 4] = ["hybrid-symbolic", "dpll", "cdcl", "walksat"];

fn solvers_on_random_3sat(c: &mut Criterion) {
    let registry = BackendRegistry::default();
    let formula =
        generators::random_ksat(&RandomKSatConfig::from_ratio(10, 4.0, 3).with_seed(17)).unwrap();
    let mut group = c.benchmark_group("baseline_random3sat_n10");
    // The NBL-guided solver issues thousands of exact coprocessor checks per
    // solve; a reduced sample count keeps the whole suite fast.
    group.sample_size(10);
    for backend in BACKENDS {
        group.bench_function(backend, |b| {
            b.iter(|| {
                registry
                    .solve(backend, &SolveRequest::new(&formula))
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// Sequential vs. thread-racing portfolio on a workload where racing pays:
/// a satisfiable instance local search wins quickly, and an UNSAT refutation
/// only CDCL can finish. The sequential portfolio pays for every member that
/// bows out before the winner; the parallel one pays only the winner's
/// wall-clock (plus one poll interval for the losers).
fn sequential_vs_parallel_portfolio(c: &mut Criterion) {
    let registry = BackendRegistry::default();
    let sat =
        generators::random_ksat(&RandomKSatConfig::from_ratio(14, 3.0, 3).with_seed(7)).unwrap();
    let unsat = generators::pigeonhole(5, 4);
    for (label, formula) in [("sat_n14", &sat), ("unsat_php5_4", &unsat)] {
        let mut group = c.benchmark_group(format!("portfolio_race_{label}"));
        group.sample_size(10);
        for backend in ["portfolio", "parallel-portfolio"] {
            group.bench_function(backend, |b| {
                b.iter(|| {
                    registry
                        .solve(backend, &SolveRequest::new(formula).seed(2012))
                        .unwrap()
                })
            });
        }
        group.finish();
    }
}

fn solvers_on_pigeonhole(c: &mut Criterion) {
    let registry = BackendRegistry::default();
    let formula = generators::pigeonhole(4, 3);
    let mut group = c.benchmark_group("baseline_pigeonhole_4_3");
    group.sample_size(10);
    // WalkSAT cannot refute the UNSAT pigeonhole instance; benching it here
    // would only time its give-up path, so the complete backends suffice.
    for backend in ["hybrid-symbolic", "dpll", "cdcl"] {
        group.bench_function(backend, |b| {
            b.iter(|| {
                registry
                    .solve(backend, &SolveRequest::new(&formula))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    solvers_on_random_3sat,
    solvers_on_pigeonhole,
    sequential_vs_parallel_portfolio
);
criterion_main!(benches);
