//! Criterion bench for E6: the NBL-guided hybrid solver against the
//! classical baselines (DPLL, CDCL, WalkSAT) on random 3-SAT and structured
//! instances — all dispatched through the unified request/outcome API, so the
//! numbers include the (small) cost of the backend abstraction the production
//! front ends pay.

use cnf::generators::{self, RandomKSatConfig};
use cnf::{EvalMode, Literal};
use criterion::{criterion_group, criterion_main, Criterion};
use nbl_sat_core::{BackendRegistry, SolveRequest};
use sat_solvers::{ShareHandle, SharedClausePool, SharingConfig};
use std::sync::Arc;

const BACKENDS: [&str; 4] = ["hybrid-symbolic", "dpll", "cdcl", "walksat"];

fn solvers_on_random_3sat(c: &mut Criterion) {
    let registry = BackendRegistry::default();
    let formula =
        generators::random_ksat(&RandomKSatConfig::from_ratio(10, 4.0, 3).with_seed(17)).unwrap();
    let mut group = c.benchmark_group("baseline_random3sat_n10");
    // The NBL-guided solver issues thousands of exact coprocessor checks per
    // solve; a reduced sample count keeps the whole suite fast.
    group.sample_size(10);
    for backend in BACKENDS {
        group.bench_function(backend, |b| {
            b.iter(|| {
                registry
                    .solve(backend, &SolveRequest::new(&formula))
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// Sequential vs. thread-racing vs. cooperative portfolio on a workload
/// where racing pays: a satisfiable instance local search wins quickly, and
/// an UNSAT refutation only CDCL can finish. The sequential portfolio pays
/// for every member that bows out before the winner; the parallel ones pay
/// only the winner's wall-clock (plus one poll interval for the losers).
/// The `parallel-shared` / `parallel-racing` pair measures what the clause
/// pool costs on top of the pure race — CI requires both records and checks
/// their ratio.
fn sequential_vs_parallel_portfolio(c: &mut Criterion) {
    let sequential = BackendRegistry::default();
    let shared = BackendRegistry::with_modes(EvalMode::default(), SharingConfig::default());
    let racing = BackendRegistry::with_modes(EvalMode::default(), SharingConfig::racing_only());
    let sat =
        generators::random_ksat(&RandomKSatConfig::from_ratio(14, 3.0, 3).with_seed(7)).unwrap();
    let unsat = generators::pigeonhole(5, 4);
    for (label, formula) in [("sat_n14", &sat), ("unsat_php5_4", &unsat)] {
        let mut group = c.benchmark_group(format!("portfolio_race_{label}"));
        group.sample_size(10);
        let modes = [
            ("portfolio", &sequential, "portfolio"),
            ("parallel-shared", &shared, "parallel-portfolio"),
            ("parallel-racing", &racing, "parallel-portfolio"),
        ];
        for (name, registry, backend) in modes {
            group.bench_function(name, |b| {
                b.iter(|| {
                    registry
                        .solve(backend, &SolveRequest::new(formula).seed(2012))
                        .unwrap()
                })
            });
        }
        group.finish();
    }
}

/// The pool's lock layout: one coarse lock (`shards = 1`, the degenerate
/// lock-free-alternative baseline) against the default sharded array, under
/// four members exporting and importing concurrently. This is the
/// "benchmark both and keep the winner" evidence the `share` module docs
/// point at.
fn share_pool_lock_layouts(c: &mut Criterion) {
    const MEMBERS: usize = 4;
    const EXPORTS_PER_MEMBER: i64 = 64;
    let mut group = c.benchmark_group("share_pool");
    group.sample_size(10);
    for (name, shards) in [("coarse_1shard", 1usize), ("sharded_8shards", 8)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let pool = Arc::new(SharedClausePool::new(
                    SharingConfig::new().with_shards(shards).with_capacity(4096),
                ));
                let imported: u64 = std::thread::scope(|scope| {
                    (0..MEMBERS)
                        .map(|member| {
                            let pool = Arc::clone(&pool);
                            scope.spawn(move || {
                                let mut handle = ShareHandle::new(pool, member);
                                let mut imported = 0;
                                for i in 0..EXPORTS_PER_MEMBER {
                                    let dimacs = member as i64 * EXPORTS_PER_MEMBER + i + 1;
                                    let clause = [Literal::from_dimacs(dimacs).unwrap()];
                                    handle.export(&clause, 1);
                                    imported += handle.import(|_| {});
                                }
                                imported + handle.import(|_| {})
                            })
                        })
                        .collect::<Vec<_>>()
                        .into_iter()
                        .map(|h| h.join().unwrap())
                        .sum()
                });
                imported
            })
        });
    }
    group.finish();
}

fn solvers_on_pigeonhole(c: &mut Criterion) {
    let registry = BackendRegistry::default();
    let formula = generators::pigeonhole(4, 3);
    let mut group = c.benchmark_group("baseline_pigeonhole_4_3");
    group.sample_size(10);
    // WalkSAT cannot refute the UNSAT pigeonhole instance; benching it here
    // would only time its give-up path, so the complete backends suffice.
    for backend in ["hybrid-symbolic", "dpll", "cdcl"] {
        group.bench_function(backend, |b| {
            b.iter(|| {
                registry
                    .solve(backend, &SolveRequest::new(&formula))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    solvers_on_random_3sat,
    solvers_on_pigeonhole,
    sequential_vs_parallel_portfolio,
    share_pool_lock_layouts
);
criterion_main!(benches);
