//! Criterion bench for E6: the NBL-guided hybrid solver against the classical
//! baselines (DPLL, CDCL, WalkSAT) on random 3-SAT and structured instances.

use cnf::generators::{self, RandomKSatConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use nbl_sat_core::HybridSolver;
use sat_solvers::{CdclSolver, DpllSolver, Solver, WalkSat};

fn solvers_on_random_3sat(c: &mut Criterion) {
    let formula =
        generators::random_ksat(&RandomKSatConfig::from_ratio(10, 4.0, 3).with_seed(17)).unwrap();
    let mut group = c.benchmark_group("baseline_random3sat_n10");
    // The NBL-guided solver issues thousands of exact coprocessor checks per
    // solve; a reduced sample count keeps the whole suite fast.
    group.sample_size(10);
    group.bench_function("hybrid_nbl_guided", |b| {
        b.iter(|| {
            HybridSolver::with_ideal_coprocessor()
                .solve(&formula)
                .unwrap()
        })
    });
    group.bench_function("dpll", |b| b.iter(|| DpllSolver::new().solve(&formula)));
    group.bench_function("cdcl", |b| b.iter(|| CdclSolver::new().solve(&formula)));
    group.bench_function("walksat", |b| b.iter(|| WalkSat::new().solve(&formula)));
    group.finish();
}

fn solvers_on_pigeonhole(c: &mut Criterion) {
    let formula = generators::pigeonhole(4, 3);
    let mut group = c.benchmark_group("baseline_pigeonhole_4_3");
    group.sample_size(10);
    group.bench_function("hybrid_nbl_guided", |b| {
        b.iter(|| {
            HybridSolver::with_ideal_coprocessor()
                .solve(&formula)
                .unwrap()
        })
    });
    group.bench_function("dpll", |b| b.iter(|| DpllSolver::new().solve(&formula)));
    group.bench_function("cdcl", |b| b.iter(|| CdclSolver::new().solve(&formula)));
    group.finish();
}

criterion_group!(benches, solvers_on_random_3sat, solvers_on_pigeonhole);
criterion_main!(benches);
