//! Criterion bench for E10: the circuit-derived SAT pipeline — Tseitin
//! encoding, equivalence-checking miters, SAT-based ATPG instance generation
//! and bit-parallel fault simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use nbl_circuit::{
    atpg_check, equivalence_check, fault_list, fault_simulate, library, Simulator, StuckAtFault,
    TseitinEncoder,
};
use sat_solvers::{CdclSolver, Solver};

fn tseitin_encoding(c: &mut Criterion) {
    let adder = library::ripple_carry_adder(8);
    let multiplier = library::array_multiplier(4);
    let mut group = c.benchmark_group("tseitin_encode");
    group.bench_function("rca8", |b| {
        b.iter(|| TseitinEncoder::new().encode(&adder).unwrap())
    });
    group.bench_function("mul4", |b| {
        b.iter(|| TseitinEncoder::new().encode(&multiplier).unwrap())
    });
    group.finish();
}

fn equivalence_checking(c: &mut Criterion) {
    let golden = library::ripple_carry_adder(4);
    let buggy = library::buggy_ripple_carry_adder(4, 2);
    let identical = library::ripple_carry_adder(4);
    let mut group = c.benchmark_group("equivalence_check_cdcl");
    group.sample_size(20);
    group.bench_function("rca4_vs_buggy_sat", |b| {
        b.iter(|| {
            let check = equivalence_check(&golden, &buggy).unwrap();
            CdclSolver::new().solve(check.formula())
        })
    });
    group.bench_function("rca4_vs_rca4_unsat", |b| {
        b.iter(|| {
            let check = equivalence_check(&golden, &identical).unwrap();
            CdclSolver::new().solve(check.formula())
        })
    });
    group.finish();
}

fn atpg_instance_generation(c: &mut Criterion) {
    let circuit = library::greater_than_comparator(4);
    let fault = StuckAtFault::stuck_at_0(circuit.find("gt").unwrap());
    let mut group = c.benchmark_group("atpg");
    group.sample_size(20);
    group.bench_function("encode_and_solve_gt4_output_sa0", |b| {
        b.iter(|| {
            let check = atpg_check(&circuit, fault).unwrap();
            CdclSolver::new().solve(check.formula())
        })
    });
    group.finish();
}

fn fault_simulation(c: &mut Criterion) {
    let circuit = library::ripple_carry_adder(4);
    let faults = fault_list(&circuit);
    let n = circuit.num_inputs();
    let patterns: Vec<Vec<bool>> = (0..64u64)
        .map(|p| {
            (0..n)
                .map(|i| p.wrapping_mul(0x9E37).wrapping_add(17) >> i & 1 == 1)
                .collect()
        })
        .collect();
    let mut group = c.benchmark_group("fault_simulation_rca4");
    group.bench_function("64_patterns_full_fault_list", |b| {
        b.iter(|| fault_simulate(&circuit, &faults, &patterns).unwrap())
    });
    group.finish();
}

fn bit_parallel_simulation(c: &mut Criterion) {
    let circuit = library::array_multiplier(4);
    let sim = Simulator::new(&circuit).unwrap();
    let words: Vec<u64> = (0..circuit.num_inputs() as u64)
        .map(|i| 0xA5A5_5A5A_F0F0_0F0Fu64.rotate_left(i as u32))
        .collect();
    let scalar_inputs: Vec<bool> = (0..circuit.num_inputs()).map(|i| i % 2 == 0).collect();
    let mut group = c.benchmark_group("simulation_mul4");
    group.bench_function("scalar_pattern", |b| {
        b.iter(|| sim.run(&scalar_inputs).unwrap())
    });
    group.bench_function("word_64_patterns", |b| {
        b.iter(|| sim.run_words(&words).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    tseitin_encoding,
    equivalence_checking,
    atpg_instance_generation,
    fault_simulation,
    bit_parallel_simulation
);
criterion_main!(benches);
