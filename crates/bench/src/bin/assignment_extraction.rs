//! E4 / Algorithm 2: satisfying-assignment extraction cost across random
//! satisfiable 3-SAT instances.
//!
//! ```text
//! cargo run -p nbl-bench --release --bin assignment_extraction
//! ```

fn main() {
    let instances = nbl_bench::env_u64("NBL_EXTRACTION_INSTANCES", 20) as u32;
    let seed = nbl_bench::env_u64("NBL_SEED", 2012);
    let (_, report) = nbl_bench::assignment_extraction(instances, seed);
    print!("{report}");
}
