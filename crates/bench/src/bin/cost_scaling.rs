//! E8 / §III.F: the O(2^{nm}) product-term count and the software engine's
//! per-sample cost across instance sizes.
//!
//! ```text
//! cargo run -p nbl-bench --release --bin cost_scaling
//! ```

fn main() {
    let seed = nbl_bench::env_u64("NBL_SEED", 2012);
    print!("{}", nbl_bench::cost_scaling(seed));
}
