//! E1 / Figure 1: running mean of S_N vs. number of noise samples for the
//! paper's S_SAT and S_UNSAT instances.
//!
//! ```text
//! cargo run -p nbl-bench --release --bin fig1_convergence
//! NBL_FIG1_SAMPLES=100000000 cargo run -p nbl-bench --release --bin fig1_convergence
//! ```

fn main() {
    let max_samples = nbl_bench::env_u64("NBL_FIG1_SAMPLES", 1_000_000);
    let seed = nbl_bench::env_u64("NBL_SEED", 2012);
    let (_, _, report) = nbl_bench::fig1_convergence(max_samples, seed);
    print!("{report}");
}
