//! E9: how much analog imperfection (gain error, offset, saturation,
//! quantization) the block-level NBL-SAT readout tolerates before the
//! SAT/UNSAT discrimination breaks.
//!
//! ```text
//! cargo run -p nbl-bench --release --bin nonideality_ablation
//! ```

fn main() {
    let steps = nbl_bench::env_u64("NBL_SAMPLES", 300_000);
    let seed = nbl_bench::env_u64("NBL_SEED", 2012);
    let (_rows, report) = nbl_bench::nonideality_ablation(steps, seed);
    print!("{report}");
}
