//! E10: circuit-derived SAT workloads — stuck-at ATPG with fault dropping and
//! combinational equivalence checking over the `nbl-circuit` library.
//!
//! ```text
//! cargo run -p nbl-bench --release --bin atpg_coverage
//! ```

fn main() {
    let crosschecks = nbl_bench::env_u64("NBL_ATPG_CROSSCHECKS", 3) as usize;
    let (_rows, atpg_report) = nbl_bench::atpg_coverage(crosschecks);
    print!("{atpg_report}");
    println!();
    print!("{}", nbl_bench::equivalence_workload());
}
