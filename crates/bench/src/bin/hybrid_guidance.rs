//! E6 / §V: NBL-guided branching (hybrid CPU + coprocessor) vs. unguided DPLL
//! and CDCL.
//!
//! ```text
//! cargo run -p nbl-bench --release --bin hybrid_guidance
//! ```

fn main() {
    let seed = nbl_bench::env_u64("NBL_SEED", 2012);
    let (_, report) = nbl_bench::hybrid_guidance(seed);
    print!("{report}");
}
