//! E3: the paper's worked Examples 6 & 7 and the §IV instances, checked with
//! the exact and the sampled engine.
//!
//! ```text
//! cargo run -p nbl-bench --release --bin worked_examples
//! ```

fn main() {
    let samples = nbl_bench::env_u64("NBL_SAMPLES", 500_000);
    let seed = nbl_bench::env_u64("NBL_SEED", 2012);
    print!("{}", nbl_bench::worked_examples(samples, seed));
}
