//! E5 / §III.C: the exact S_N mean is proportional to the (weighted) number of
//! satisfying minterms K.
//!
//! ```text
//! cargo run -p nbl-bench --release --bin mean_vs_k
//! ```

fn main() {
    let seed = nbl_bench::env_u64("NBL_SEED", 2012);
    print!("{}", nbl_bench::mean_vs_k(seed));
}
