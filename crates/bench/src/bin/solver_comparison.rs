//! E11: every baseline solver (complete, incomplete, polynomial special case,
//! portfolio) on a representative workload matrix.
//!
//! ```text
//! cargo run -p nbl-bench --release --bin solver_comparison
//! ```

fn main() {
    let seed = nbl_bench::env_u64("NBL_SEED", 2012);
    let (_rows, report) = nbl_bench::solver_comparison(seed);
    print!("{report}");
}
