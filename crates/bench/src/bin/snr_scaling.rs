//! E2 / §III.F: predicted vs. measured SNR across instance sizes and sample
//! budgets.
//!
//! ```text
//! cargo run -p nbl-bench --release --bin snr_scaling
//! ```

fn main() {
    let trials = nbl_bench::env_u64("NBL_SNR_TRIALS", 8) as u32;
    let seed = nbl_bench::env_u64("NBL_SEED", 2012);
    let samples: Vec<u64> = vec![
        nbl_bench::env_u64("NBL_SNR_SAMPLES_LO", 10_000),
        nbl_bench::env_u64("NBL_SNR_SAMPLES_MID", 100_000),
        nbl_bench::env_u64("NBL_SNR_SAMPLES_HI", 1_000_000),
    ];
    let (_, report) = nbl_bench::snr_scaling(&samples, trials, seed);
    print!("{report}");
}
