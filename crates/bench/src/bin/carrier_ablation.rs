//! E7 / §V realizations: the same SAT check under uniform, Gaussian, random
//! telegraph wave and sinusoidal carriers.
//!
//! ```text
//! cargo run -p nbl-bench --release --bin carrier_ablation
//! ```

fn main() {
    let samples = nbl_bench::env_u64("NBL_SAMPLES", 500_000);
    let seed = nbl_bench::env_u64("NBL_SEED", 2012);
    let (_, report) = nbl_bench::carrier_ablation(samples, seed);
    print!("{report}");
}
