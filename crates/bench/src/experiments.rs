//! Reusable experiment drivers (E1–E8).

use cnf::generators::{self, RandomKSatConfig};
use cnf::{CnfFormula, Variable};
use nbl_noise::CarrierKind;
use nbl_sat_core::{
    AssignmentExtractor, ConvergenceTrace, EngineConfig, HybridSolver, NblEngine, NblSatInstance,
    SampledEngine, SatChecker, SnrModel, SymbolicEngine,
};
use sat_solvers::{CdclSolver, DpllSolver, Solver};
use std::fmt::Write as _;

/// E1 (Figure 1): running mean of S_N vs. number of noise samples for the
/// paper's §IV S_SAT and S_UNSAT instances.
///
/// Returns the two traces (SAT first) and a rendered report.
pub fn fig1_convergence(
    max_samples: u64,
    seed: u64,
) -> (ConvergenceTrace, ConvergenceTrace, String) {
    let sat = NblSatInstance::new(&generators::section4_sat_instance()).expect("valid instance");
    let unsat =
        NblSatInstance::new(&generators::section4_unsat_instance()).expect("valid instance");
    let config = EngineConfig::new()
        .with_seed(seed)
        .with_max_samples(max_samples);
    let mut engine = SampledEngine::new(config);
    let sat_trace = engine
        .trace_logspaced(&sat, &sat.empty_bindings(), "S_SAT", 4)
        .expect("trace");
    let unsat_trace = engine
        .trace_logspaced(&unsat, &unsat.empty_bindings(), "S_UNSAT", 4)
        .expect("trace");

    let expected = SymbolicEngine::new()
        .estimate(&sat, &sat.empty_bindings())
        .expect("exact mean")
        .mean;
    let mut report = String::new();
    let _ = writeln!(
        report,
        "# E1 / Figure 1: S_N running mean vs noise samples (uniform [-0.5,0.5] carriers, seed {seed})"
    );
    let _ = writeln!(
        report,
        "# exact (infinite-sample) S_SAT mean = {expected:.3e}; S_UNSAT mean = 0"
    );
    let _ = writeln!(report, "samples\tS_SAT_mean\tS_UNSAT_mean");
    for (s, u) in sat_trace.points.iter().zip(unsat_trace.points.iter()) {
        let _ = writeln!(report, "{}\t{:+.6e}\t{:+.6e}", s.samples, s.mean, u.mean);
    }
    (sat_trace, unsat_trace, report)
}

/// One row of the E2 SNR-scaling experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct SnrRow {
    /// Variables in the 3-SAT instance.
    pub n: usize,
    /// Clauses in the 3-SAT instance.
    pub m: usize,
    /// Noise samples per trial.
    pub samples: u64,
    /// Analytic SNR from §III.F.
    pub predicted_snr: f64,
    /// Measured separation between the SAT and UNSAT mean populations.
    pub measured_separation: f64,
}

/// E2 (§III.F): predicted vs. measured SNR across instance sizes and sample
/// budgets. For each (n, m) a satisfiable instance with one model and an
/// unsatisfiable instance of the same shape are compared.
pub fn snr_scaling(samples_list: &[u64], trials: u32, seed: u64) -> (Vec<SnrRow>, String) {
    // (n, m, SAT instance with exactly one model, UNSAT instance of equal shape)
    let shapes: Vec<(usize, usize, CnfFormula, CnfFormula)> = vec![
        (
            1,
            2,
            CnfFormula::from_dimacs_clauses(&[vec![1], vec![1]]).expect("valid"),
            CnfFormula::from_dimacs_clauses(&[vec![1], vec![-1]]).expect("valid"),
        ),
        (
            2,
            2,
            CnfFormula::from_dimacs_clauses(&[vec![1], vec![2]]).expect("valid"),
            {
                // (x1)(¬x1) declared over two variables, so the UNSAT partner
                // has the same (n, m) shape and noise-source count.
                let mut f = CnfFormula::new(2);
                f.add_clause([Variable::new(0).positive()]);
                f.add_clause([Variable::new(0).negative()]);
                f
            },
        ),
        (
            2,
            4,
            generators::section4_sat_instance(),
            generators::section4_unsat_instance(),
        ),
    ];
    let model = SnrModel::new();
    let mut rows = Vec::new();
    let mut report = String::new();
    let _ = writeln!(
        report,
        "# E2 / SNR scaling: predicted sqrt(N-1)/(3*2^nm) vs measured separation ({trials} trials)"
    );
    let _ = writeln!(report, "n\tm\tsamples\tpredicted_snr\tmeasured_separation");
    for (n, m, sat_f, unsat_f) in &shapes {
        let sat = NblSatInstance::new(sat_f).expect("valid instance");
        let unsat = NblSatInstance::new(unsat_f).expect("valid instance");
        for &samples in samples_list {
            let measurement = model
                .measure(&sat, &unsat, samples, trials, seed)
                .expect("measurement");
            let row = SnrRow {
                n: *n,
                m: *m,
                samples,
                predicted_snr: model.predicted_snr(*n, *m, samples, 1),
                measured_separation: measurement.separation_sigmas() / 3.0,
            };
            let _ = writeln!(
                report,
                "{}\t{}\t{}\t{:.3}\t{:.3}",
                row.n, row.m, row.samples, row.predicted_snr, row.measured_separation
            );
            rows.push(row);
        }
    }
    (rows, report)
}

/// E3: the worked Examples 6 and 7 of the paper, checked with the exact and
/// the sampled engine.
pub fn worked_examples(samples: u64, seed: u64) -> String {
    let cases = [
        (
            "Example 6  (x1+x2)(¬x1+¬x2)",
            generators::example6_sat(),
            true,
        ),
        ("Example 7  (x1)(¬x1)", generators::example7_unsat(), false),
        (
            "§IV S_SAT  (x1+x2)(x1+x2)(x1+¬x2)(¬x1+x2)",
            generators::section4_sat_instance(),
            true,
        ),
        (
            "§IV S_UNSAT (x1+x2)(x1+¬x2)(¬x1+x2)(¬x1+¬x2)",
            generators::section4_unsat_instance(),
            false,
        ),
    ];
    let mut report = String::new();
    let _ = writeln!(report, "# E3 / worked examples: one-operation SAT checks");
    let _ = writeln!(
        report,
        "instance\texpected\texact_mean\texact_verdict\tsampled_mean\tsampled_verdict\tsamples"
    );
    for (name, formula, expected_sat) in cases {
        let instance = NblSatInstance::new(&formula).expect("valid instance");
        let mut exact = SatChecker::new(SymbolicEngine::new());
        let exact_estimate = exact
            .estimate_with_bindings(&instance, &instance.empty_bindings())
            .expect("estimate");
        let mut sampled = SatChecker::new(SampledEngine::new(
            EngineConfig::new()
                .with_seed(seed)
                .with_max_samples(samples)
                .with_check_interval(samples / 10),
        ));
        let sampled_estimate = sampled
            .estimate_with_bindings(&instance, &instance.empty_bindings())
            .expect("estimate");
        let _ = writeln!(
            report,
            "{name}\t{}\t{:.3e}\t{}\t{:+.3e}\t{}\t{}",
            if expected_sat { "SAT" } else { "UNSAT" },
            exact_estimate.mean,
            exact.decide(&exact_estimate),
            sampled_estimate.mean,
            sampled.decide(&sampled_estimate),
            sampled_estimate.samples
        );
    }
    report
}

/// One row of the E4 assignment-extraction experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractionRow {
    /// Number of variables of the instance.
    pub n: usize,
    /// Number of clauses of the instance.
    pub m: usize,
    /// NBL check operations used by Algorithm 2.
    pub checks_used: u64,
    /// Whether the returned assignment satisfies the formula.
    pub model_valid: bool,
}

/// E4 (Algorithm 2): extraction cost (in check operations) is linear in `n`,
/// and every returned assignment is a model.
pub fn assignment_extraction(num_instances: u32, seed: u64) -> (Vec<ExtractionRow>, String) {
    let mut rows = Vec::new();
    let mut report = String::new();
    let _ = writeln!(
        report,
        "# E4 / Algorithm 2: satisfying-assignment extraction cost (paper bound: n checks)"
    );
    let _ = writeln!(report, "n\tm\tchecks_used\tmodel_valid");
    let mut produced = 0u32;
    let mut attempt = 0u64;
    while produced < num_instances {
        let n = 4 + (attempt % 5) as usize; // 4..=8 variables
        let m = (2.5 * n as f64) as usize;
        let formula =
            generators::random_ksat(&RandomKSatConfig::new(n, m, 3).with_seed(seed + attempt))
                .expect("valid config");
        attempt += 1;
        if formula.count_satisfying_assignments() == 0 {
            continue;
        }
        let instance = NblSatInstance::new(&formula).expect("valid instance");
        let outcome = AssignmentExtractor::new(SymbolicEngine::new())
            .extract(&instance)
            .expect("satisfiable instance");
        let row = ExtractionRow {
            n,
            m,
            checks_used: outcome.checks_used,
            model_valid: formula.evaluate(outcome.assignment.as_ref().expect("minterm")),
        };
        let _ = writeln!(
            report,
            "{}\t{}\t{}\t{}",
            row.n, row.m, row.checks_used, row.model_valid
        );
        rows.push(row);
        produced += 1;
    }
    (rows, report)
}

/// E5 (§III.C): the exact S_N mean is proportional to the number of satisfying
/// minterms `K` (multiplicity-weighted).
pub fn mean_vs_k(seed: u64) -> String {
    let mut report = String::new();
    let _ = writeln!(
        report,
        "# E5 / mean vs K: exact S_N mean against the (weighted) satisfying-minterm count"
    );
    let _ = writeln!(
        report,
        "instance\tn\tm\tK\tweighted_K\texact_mean\tmean/(Var^nm)"
    );
    let mut emit = |name: &str, formula: &CnfFormula| {
        let instance = NblSatInstance::new(formula).expect("valid instance");
        let engine = SymbolicEngine::new();
        let (k, weighted) = engine
            .count_models(&instance, &instance.empty_bindings())
            .expect("count");
        let mean = SymbolicEngine::new()
            .estimate(&instance, &instance.empty_bindings())
            .expect("estimate")
            .mean;
        let normalized = mean / engine.minterm_weight(&instance);
        let _ = writeln!(
            report,
            "{name}\t{}\t{}\t{k}\t{weighted:.1}\t{mean:.3e}\t{normalized:.3}",
            instance.num_vars(),
            instance.num_clauses()
        );
    };
    emit("example6", &generators::example6_sat());
    emit("example7 (UNSAT)", &generators::example7_unsat());
    emit("section4 SAT", &generators::section4_sat_instance());
    emit("section4 UNSAT", &generators::section4_unsat_instance());
    for k in 0..4u64 {
        let formula = generators::random_ksat(&RandomKSatConfig::new(4, 9, 3).with_seed(seed + k))
            .expect("valid config");
        emit(&format!("random 3-SAT #{k}"), &formula);
    }
    report
}

/// One row of the E6 hybrid-guidance experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridRow {
    /// Instance label.
    pub name: String,
    /// Whether the instance is satisfiable.
    pub satisfiable: bool,
    /// Decisions taken by the NBL-guided hybrid solver.
    pub hybrid_decisions: u64,
    /// Conflicts hit by the hybrid solver.
    pub hybrid_conflicts: u64,
    /// NBL coprocessor checks issued.
    pub coprocessor_checks: u64,
    /// Decisions taken by the plain DPLL baseline.
    pub dpll_decisions: u64,
    /// Conflicts hit by DPLL.
    pub dpll_conflicts: u64,
    /// Decisions taken by the CDCL baseline.
    pub cdcl_decisions: u64,
    /// Conflicts hit by CDCL.
    pub cdcl_conflicts: u64,
}

/// E6 (§V): NBL-guided branching vs. unguided DPLL and CDCL.
pub fn hybrid_guidance(seed: u64) -> (Vec<HybridRow>, String) {
    let mut instances: Vec<(String, CnfFormula)> = vec![
        ("pigeonhole 3→3".into(), generators::pigeonhole(3, 3)),
        ("pigeonhole 4→3".into(), generators::pigeonhole(4, 3)),
        ("parity chain n=5".into(), generators::parity_chain(5, true)),
    ];
    for (i, ratio) in [2.0f64, 3.0, 4.0, 4.5].iter().enumerate() {
        let formula = generators::random_ksat(
            &RandomKSatConfig::from_ratio(8, *ratio, 3).with_seed(seed + i as u64),
        )
        .expect("valid config");
        instances.push((format!("random 3-SAT n=8 m/n={ratio}"), formula));
    }
    let mut rows = Vec::new();
    let mut report = String::new();
    let _ = writeln!(
        report,
        "# E6 / hybrid CPU + NBL coprocessor: guided vs unguided branching"
    );
    let _ = writeln!(
        report,
        "instance\tresult\thybrid_decisions\thybrid_conflicts\tcoproc_checks\tdpll_decisions\tdpll_conflicts\tcdcl_decisions\tcdcl_conflicts"
    );
    for (name, formula) in instances {
        let mut hybrid = HybridSolver::with_ideal_coprocessor();
        let hybrid_model = hybrid.solve(&formula).expect("coprocessor fits");
        let mut dpll = DpllSolver::new();
        let dpll_result = dpll.solve(&formula);
        let mut cdcl = CdclSolver::new();
        let cdcl_result = cdcl.solve(&formula);
        assert_eq!(hybrid_model.is_some(), dpll_result.is_sat());
        assert_eq!(hybrid_model.is_some(), cdcl_result.is_sat());
        let row = HybridRow {
            name: name.clone(),
            satisfiable: hybrid_model.is_some(),
            hybrid_decisions: hybrid.stats().decisions,
            hybrid_conflicts: hybrid.stats().conflicts,
            coprocessor_checks: hybrid.stats().coprocessor_checks,
            dpll_decisions: dpll.stats().decisions,
            dpll_conflicts: dpll.stats().conflicts,
            cdcl_decisions: cdcl.stats().decisions,
            cdcl_conflicts: cdcl.stats().conflicts,
        };
        let _ = writeln!(
            report,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            row.name,
            if row.satisfiable { "SAT" } else { "UNSAT" },
            row.hybrid_decisions,
            row.hybrid_conflicts,
            row.coprocessor_checks,
            row.dpll_decisions,
            row.dpll_conflicts,
            row.cdcl_decisions,
            row.cdcl_conflicts
        );
        rows.push(row);
    }
    (rows, report)
}

/// One row of the E7 carrier-ablation experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct CarrierRow {
    /// Carrier family.
    pub carrier: CarrierKind,
    /// Mean estimated on the satisfiable instance.
    pub sat_mean: f64,
    /// Verdict reached on the satisfiable instance.
    pub sat_correct: bool,
    /// Mean estimated on the unsatisfiable instance.
    pub unsat_mean: f64,
    /// Verdict reached on the unsatisfiable instance.
    pub unsat_correct: bool,
}

/// E7 (§V realizations): the same SAT check under uniform, Gaussian, RTW and
/// sinusoidal carriers.
pub fn carrier_ablation(samples: u64, seed: u64) -> (Vec<CarrierRow>, String) {
    let sat = NblSatInstance::new(&generators::example6_sat()).expect("valid instance");
    let unsat = NblSatInstance::new(&generators::example7_unsat()).expect("valid instance");
    let mut rows = Vec::new();
    let mut report = String::new();
    let _ = writeln!(
        report,
        "# E7 / carrier ablation: Example 6 (SAT) and Example 7 (UNSAT) under every carrier family"
    );
    let _ = writeln!(
        report,
        "carrier\tsat_mean\tsat_verdict_correct\tunsat_mean\tunsat_verdict_correct"
    );
    for kind in CarrierKind::all() {
        let config = EngineConfig::new()
            .with_carrier(kind)
            .with_seed(seed)
            .with_max_samples(samples)
            .with_check_interval(samples / 10);
        let mut checker = SatChecker::new(SampledEngine::new(config));
        let sat_est = checker
            .estimate_with_bindings(&sat, &sat.empty_bindings())
            .expect("estimate");
        let unsat_est = checker
            .estimate_with_bindings(&unsat, &unsat.empty_bindings())
            .expect("estimate");
        let row = CarrierRow {
            carrier: kind,
            sat_mean: sat_est.mean,
            sat_correct: checker.decide(&sat_est).is_sat(),
            unsat_mean: unsat_est.mean,
            unsat_correct: !checker.decide(&unsat_est).is_sat(),
        };
        let _ = writeln!(
            report,
            "{}\t{:+.3e}\t{}\t{:+.3e}\t{}",
            row.carrier, row.sat_mean, row.sat_correct, row.unsat_mean, row.unsat_correct
        );
        rows.push(row);
    }
    let _ = writeln!(
        report,
        "# note: sinusoidal carriers with consecutive integer frequencies suffer product-frequency\n\
         # collisions for n·m ≥ 4 and may mis-rank instances — the carrier-planning caveat of §V."
    );
    (rows, report)
}

/// E8 (§III.F): the O(2^{nm}) product count and the software engine's
/// per-sample cost across instance sizes.
pub fn cost_scaling(seed: u64) -> String {
    let mut report = String::new();
    let _ = writeln!(
        report,
        "# E8 / cost model: NBL product-term count (O(2^nm)) and per-sample simulation cost"
    );
    let _ = writeln!(
        report,
        "n\tm\tnm\tnoise_sources\tproduct_terms\tns_per_sample"
    );
    for (n, m) in [(2usize, 2usize), (2, 4), (3, 4), (4, 6), (5, 10), (6, 12)] {
        let formula =
            generators::random_ksat(&RandomKSatConfig::new(n, m, 3.min(n)).with_seed(seed))
                .expect("valid config");
        let instance = NblSatInstance::new(&formula).expect("valid instance");
        let samples = 20_000u64;
        let config = EngineConfig::new()
            .with_seed(seed)
            .with_max_samples(samples)
            .with_check_interval(samples);
        let start = std::time::Instant::now();
        let mut engine = SampledEngine::new(config);
        let _ = engine
            .estimate(&instance, &instance.empty_bindings())
            .expect("estimate");
        let elapsed = start.elapsed();
        let _ = writeln!(
            report,
            "{}\t{}\t{}\t{}\t{:.3e}\t{:.0}",
            n,
            m,
            n * m,
            instance.num_sources(),
            instance.product_term_count(&instance.empty_bindings()),
            elapsed.as_nanos() as f64 / samples as f64
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_traces_have_the_expected_shape() {
        let (sat, unsat, report) = fig1_convergence(20_000, 3);
        assert_eq!(sat.final_samples(), Some(20_000));
        assert_eq!(unsat.final_samples(), Some(20_000));
        assert!(report.contains("Figure 1"));
        assert!(report.lines().count() > 10);
    }

    #[test]
    fn snr_rows_cover_every_shape_and_sample_count() {
        let (rows, report) = snr_scaling(&[5_000, 20_000], 3, 7);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.predicted_snr > 0.0));
        // Larger sample budgets never decrease the predicted SNR.
        for pair in rows.chunks(2) {
            assert!(pair[1].predicted_snr >= pair[0].predicted_snr);
        }
        assert!(report.contains("predicted_snr"));
    }

    #[test]
    fn worked_examples_report_matches_expectations() {
        let report = worked_examples(30_000, 5);
        assert!(report.contains("Example 6"));
        assert!(report.contains("Example 7"));
        // The exact engine's verdict column must show SAT for example 6 and
        // UNSAT for example 7.
        let line6 = report.lines().find(|l| l.starts_with("Example 6")).unwrap();
        assert!(line6.contains("SAT"));
        let line7 = report.lines().find(|l| l.starts_with("Example 7")).unwrap();
        assert!(line7.contains("UNSAT"));
    }

    #[test]
    fn extraction_rows_respect_the_linear_bound() {
        let (rows, _) = assignment_extraction(5, 11);
        assert_eq!(rows.len(), 5);
        for row in rows {
            assert!(row.model_valid);
            assert_eq!(row.checks_used, row.n as u64);
        }
    }

    #[test]
    fn mean_vs_k_reports_zero_for_unsat() {
        let report = mean_vs_k(5);
        let unsat_line = report.lines().find(|l| l.starts_with("example7")).unwrap();
        assert!(unsat_line.contains("\t0\t"));
    }

    #[test]
    fn hybrid_rows_agree_on_satisfiability() {
        let (rows, report) = hybrid_guidance(3);
        assert!(rows.len() >= 6);
        for row in &rows {
            if row.satisfiable {
                assert_eq!(row.hybrid_conflicts, 0, "{}", row.name);
            }
        }
        assert!(report.contains("coproc_checks"));
    }

    #[test]
    fn carrier_ablation_stochastic_families_are_correct() {
        let (rows, _) = carrier_ablation(40_000, 9);
        for row in rows {
            if row.carrier != CarrierKind::Sinusoid {
                assert!(row.sat_correct, "{:?}", row.carrier);
                assert!(row.unsat_correct, "{:?}", row.carrier);
            }
        }
    }

    #[test]
    fn cost_scaling_reports_all_rows() {
        let report = cost_scaling(1);
        assert_eq!(report.lines().count(), 2 + 6);
    }
}
