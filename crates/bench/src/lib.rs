//! Experiment harness for the NBL-SAT reproduction.
//!
//! Each module reproduces one figure or quantitative analysis of the paper
//! (the experiment ids E1–E8 are defined in `DESIGN.md` / `EXPERIMENTS.md`;
//! the extended experiments E9–E11 — analog non-ideality ablation, circuit
//! ATPG / equivalence workloads, and the baseline solver comparison — live in
//! [`extended`]). The binaries in `src/bin/` print the same rows/series the
//! paper reports; the Criterion benches in `benches/` measure the
//! computational kernels.

#![deny(missing_docs)]

pub mod experiments;
pub mod extended;

pub use experiments::*;
pub use extended::*;

/// Reads a `u64` override from an environment variable, falling back to a
/// default. Used by the binaries so long runs (e.g. the paper's 10⁸-sample
/// Figure 1 sweep) can be requested without recompiling.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_override_parses_and_falls_back() {
        std::env::remove_var("NBL_TEST_ENV_U64");
        assert_eq!(env_u64("NBL_TEST_ENV_U64", 7), 7);
        std::env::set_var("NBL_TEST_ENV_U64", "42");
        assert_eq!(env_u64("NBL_TEST_ENV_U64", 7), 42);
        std::env::set_var("NBL_TEST_ENV_U64", "not a number");
        assert_eq!(env_u64("NBL_TEST_ENV_U64", 7), 7);
        std::env::remove_var("NBL_TEST_ENV_U64");
    }
}
