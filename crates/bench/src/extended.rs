//! Extended experiments: E9 (analog non-ideality ablation), E10 (circuit
//! ATPG / equivalence workloads) and E11 (baseline solver comparison).
//!
//! These go beyond the paper's own evaluation section but directly probe the
//! claims its §I and §V make: that the engine can be built from imperfect
//! analog parts (E9), that SAT derived from EDA problems — equivalence
//! checking and test generation — is the motivating workload (E10), and that
//! the classical solver landscape is the baseline NBL-SAT positions itself
//! against (E11).

use cnf::generators::{self, RandomKSatConfig};
use cnf::CnfFormula;
use nbl_analog::{
    CorrelatorBlock, Multiplier, Netlist, NoiseSourceBlock, NonIdealBlock, Nonideality, Summer,
};
use nbl_circuit::{
    atpg_check, equivalence_check, fault_list, fault_simulate, library, Circuit, StuckAtFault,
    TseitinEncoder,
};
use nbl_noise::CarrierKind;
use nbl_sat_core::{
    Artifacts, BackendRegistry, NblSatInstance, SatChecker, SolveRequest, SolveVerdict,
    SymbolicEngine, Verdict,
};
use sat_solvers::{CdclSolver, SolveResult, Solver};
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// E9 — analog non-ideality ablation
// ---------------------------------------------------------------------------

/// One row of the E9 sweep.
#[derive(Debug, Clone)]
pub struct NonidealityRow {
    /// Human-readable description of the imperfection setting.
    pub label: String,
    /// Measured ⟨S_N⟩ for the satisfiable mini-instance.
    pub sat_mean: f64,
    /// Measured ⟨S_N⟩ for the unsatisfiable mini-instance.
    pub unsat_mean: f64,
    /// Whether both verdicts (SAT positive, UNSAT below threshold) are correct.
    pub verdicts_correct: bool,
}

/// Builds the block-level readout of the n = 1, m = 2 mini-instance
/// ((x1)(x1) when `satisfiable`, (x1)(¬x1) otherwise) with the S_N product
/// stage and correlator degraded by `imperfection`, and returns ⟨S_N⟩.
fn degraded_block_level_mean(
    satisfiable: bool,
    imperfection: Nonideality,
    steps: u64,
    seed: u64,
) -> f64 {
    let mut net = Netlist::new();
    let p1 = net.add_block(Box::new(NoiseSourceBlock::new(CarrierKind::Uniform, seed)));
    let m1 = net.add_block(Box::new(NoiseSourceBlock::new(
        CarrierKind::Uniform,
        seed + 1,
    )));
    let p2 = net.add_block(Box::new(NoiseSourceBlock::new(
        CarrierKind::Uniform,
        seed + 2,
    )));
    let m2 = net.add_block(Box::new(NoiseSourceBlock::new(
        CarrierKind::Uniform,
        seed + 3,
    )));

    // τ_N = N¹_x N²_x + N¹_x̄ N²_x̄ — the minterm multipliers are also degraded.
    let tau_pos = net.add_block(Box::new(NonIdealBlock::new(
        Multiplier::new(),
        imperfection,
    )));
    let tau_neg = net.add_block(Box::new(NonIdealBlock::new(
        Multiplier::new(),
        imperfection,
    )));
    let tau = net.add_block(Box::new(Summer::new(2)));
    net.connect(p1, tau_pos, 0).expect("valid netlist");
    net.connect(p2, tau_pos, 1).expect("valid netlist");
    net.connect(m1, tau_neg, 0).expect("valid netlist");
    net.connect(m2, tau_neg, 1).expect("valid netlist");
    net.connect(tau_pos, tau, 0).expect("valid netlist");
    net.connect(tau_neg, tau, 1).expect("valid netlist");

    // Σ_N = N¹_x · N²_x  (SAT)   or   N¹_x · N²_x̄  (UNSAT).
    let sigma = net.add_block(Box::new(NonIdealBlock::new(
        Multiplier::new(),
        imperfection,
    )));
    net.connect(p1, sigma, 0).expect("valid netlist");
    net.connect(if satisfiable { p2 } else { m2 }, sigma, 1)
        .expect("valid netlist");

    let s_n = net.add_block(Box::new(NonIdealBlock::new(
        Multiplier::new(),
        imperfection,
    )));
    let readout = net.add_block(Box::new(CorrelatorBlock::new()));
    net.connect(tau, s_n, 0).expect("valid netlist");
    net.connect(sigma, s_n, 1).expect("valid netlist");
    net.connect(s_n, readout, 0).expect("valid netlist");
    net.run(steps, readout).expect("netlist runs")
}

/// E9: sweeps analog imperfection severity through the block-level NBL-SAT
/// readout and reports when the SAT/UNSAT discrimination breaks down.
pub fn nonideality_ablation(steps: u64, seed: u64) -> (Vec<NonidealityRow>, String) {
    let settings: Vec<(String, Nonideality)> = vec![
        ("ideal".to_string(), Nonideality::ideal()),
        ("gain +10%".to_string(), Nonideality::ideal().with_gain(1.1)),
        ("gain -20%".to_string(), Nonideality::ideal().with_gain(0.8)),
        (
            "offset 1e-3".to_string(),
            Nonideality::ideal().with_offset(1e-3),
        ),
        (
            "offset 5e-3".to_string(),
            Nonideality::ideal().with_offset(5e-3),
        ),
        (
            "offset 2e-2".to_string(),
            Nonideality::ideal().with_offset(2e-2),
        ),
        (
            "soft sat ±0.5".to_string(),
            Nonideality::ideal().with_saturation(0.5),
        ),
        (
            "soft sat ±0.05".to_string(),
            Nonideality::ideal().with_saturation(0.05),
        ),
        (
            "8-bit ADC".to_string(),
            Nonideality::ideal().with_quantizer(8, 0.5),
        ),
        (
            "4-bit ADC".to_string(),
            Nonideality::ideal().with_quantizer(4, 0.5),
        ),
        (
            "offset 1e-3 + 8-bit ADC".to_string(),
            Nonideality::ideal()
                .with_offset(1e-3)
                .with_quantizer(8, 0.5),
        ),
    ];
    // Ideal expected SAT mean for the mini-instance is (1/12)² ≈ 6.94e-3; the
    // decision threshold sits halfway between that and zero.
    let ideal_sat_mean = (1.0f64 / 12.0).powi(2);
    let threshold = 0.5 * ideal_sat_mean;

    let mut rows = Vec::with_capacity(settings.len());
    let mut report = String::new();
    writeln!(
        report,
        "E9 — analog non-ideality ablation (block-level readout, {steps} samples, seed {seed})"
    )
    .expect("write to string");
    writeln!(
        report,
        "{:<26} {:>14} {:>14}  verdicts",
        "imperfection", "SAT mean", "UNSAT mean"
    )
    .expect("write to string");
    for (label, imperfection) in settings {
        let sat_mean = degraded_block_level_mean(true, imperfection, steps, seed);
        let unsat_mean = degraded_block_level_mean(false, imperfection, steps, seed + 100);
        let verdicts_correct = sat_mean > threshold && unsat_mean < threshold;
        writeln!(
            report,
            "{label:<26} {sat_mean:>14.6} {unsat_mean:>14.6}  {}",
            if verdicts_correct { "ok" } else { "BROKEN" }
        )
        .expect("write to string");
        rows.push(NonidealityRow {
            label,
            sat_mean,
            unsat_mean,
            verdicts_correct,
        });
    }
    (rows, report)
}

// ---------------------------------------------------------------------------
// E10 — circuit workloads: ATPG and equivalence checking
// ---------------------------------------------------------------------------

/// One row of the E10 ATPG experiment.
#[derive(Debug, Clone)]
pub struct AtpgRow {
    /// Circuit name.
    pub circuit: String,
    /// Total single stuck-at faults.
    pub faults: usize,
    /// Faults detected by the final test set (equals faults − untestable).
    pub testable: usize,
    /// Faults proven untestable (redundant logic).
    pub untestable: usize,
    /// Number of test patterns in the final (fault-dropped) test set.
    pub patterns: usize,
    /// Fault coverage achieved by the final test set.
    pub coverage: f64,
    /// Whether the NBL-SAT symbolic checker agreed with CDCL on the sampled
    /// ATPG instances it was asked to cross-check.
    pub nbl_agrees: bool,
}

/// Runs SAT-based ATPG with fault dropping on one circuit.
fn atpg_on_circuit(name: &str, circuit: &Circuit, nbl_crosscheck_limit: usize) -> AtpgRow {
    let faults = fault_list(circuit);
    let mut patterns: Vec<Vec<bool>> = Vec::new();
    let mut untestable: Vec<StuckAtFault> = Vec::new();
    let mut remaining: Vec<StuckAtFault> = faults.clone();
    let mut nbl_agrees = true;
    let mut crosschecked = 0usize;

    while let Some(&fault) = remaining.first() {
        let check = atpg_check(circuit, fault).expect("fault injection succeeds");
        let mut cdcl = CdclSolver::new();
        let result = cdcl.solve(check.formula());
        // Cross-check the CNF verdict with the NBL-SAT symbolic engine on the
        // first few instances small enough for its 2^n enumeration.
        if crosschecked < nbl_crosscheck_limit && check.formula().num_vars() <= 18 {
            let instance = NblSatInstance::new(check.formula()).expect("valid CNF");
            let mut checker = SatChecker::new(SymbolicEngine::new());
            let verdict = checker.check(&instance).expect("symbolic check succeeds");
            if (verdict == Verdict::Satisfiable) != result.is_sat() {
                nbl_agrees = false;
            }
            crosschecked += 1;
        }
        match result {
            SolveResult::Satisfiable(model) => {
                let pattern: Vec<bool> = check
                    .counterexample(&model)
                    .into_iter()
                    .map(|(_, v)| v)
                    .collect();
                patterns.push(pattern);
                // Fault dropping: remove every remaining fault the new test
                // set already detects.
                let report = fault_simulate(circuit, &remaining, &patterns)
                    .expect("fault simulation succeeds");
                remaining = report.undetected;
            }
            SolveResult::Unsatisfiable => {
                untestable.push(fault);
                remaining.retain(|f| *f != fault);
            }
            SolveResult::Unknown => unreachable!("CDCL is complete"),
        }
    }

    let detectable: Vec<StuckAtFault> = faults
        .iter()
        .copied()
        .filter(|f| !untestable.contains(f))
        .collect();
    let final_report =
        fault_simulate(circuit, &detectable, &patterns).expect("fault simulation succeeds");
    AtpgRow {
        circuit: name.to_string(),
        faults: faults.len(),
        testable: detectable.len(),
        untestable: untestable.len(),
        patterns: patterns.len(),
        coverage: final_report.coverage(),
        nbl_agrees,
    }
}

/// E10a: SAT-based ATPG (test pattern generation) over the circuit library.
pub fn atpg_coverage(nbl_crosscheck_limit: usize) -> (Vec<AtpgRow>, String) {
    let circuits: Vec<(&str, Circuit)> = vec![
        ("maj3", library::majority3()),
        ("parity4", library::parity_tree(4)),
        ("rca2", library::ripple_carry_adder(2)),
        ("gt3", library::greater_than_comparator(3)),
        ("mux4", library::multiplexer(2)),
    ];
    let mut rows = Vec::new();
    let mut report = String::new();
    writeln!(report, "E10a — SAT-based ATPG with fault dropping").expect("write to string");
    writeln!(
        report,
        "{:<10} {:>7} {:>9} {:>11} {:>9} {:>10}  NBL agrees",
        "circuit", "faults", "testable", "untestable", "patterns", "coverage"
    )
    .expect("write to string");
    for (name, circuit) in &circuits {
        let row = atpg_on_circuit(name, circuit, nbl_crosscheck_limit);
        writeln!(
            report,
            "{:<10} {:>7} {:>9} {:>11} {:>9} {:>9.1}%  {}",
            row.circuit,
            row.faults,
            row.testable,
            row.untestable,
            row.patterns,
            100.0 * row.coverage,
            row.nbl_agrees
        )
        .expect("write to string");
        rows.push(row);
    }
    (rows, report)
}

/// E10b: combinational equivalence checking of golden vs. buggy adders.
pub fn equivalence_workload() -> String {
    let mut report = String::new();
    writeln!(
        report,
        "E10b — equivalence checking (miter CNF, CDCL back end)"
    )
    .expect("write to string");
    writeln!(
        report,
        "{:<28} {:>7} {:>9} {:>10}  result",
        "pair", "vars", "clauses", "decisions"
    )
    .expect("write to string");
    let cases: Vec<(String, Circuit, Circuit)> = vec![
        (
            "rca4 vs rca4".to_string(),
            library::ripple_carry_adder(4),
            library::ripple_carry_adder(4),
        ),
        (
            "rca4 vs buggy(stage1)".to_string(),
            library::ripple_carry_adder(4),
            library::buggy_ripple_carry_adder(4, 1),
        ),
        (
            "rca4 vs buggy(stage3)".to_string(),
            library::ripple_carry_adder(4),
            library::buggy_ripple_carry_adder(4, 3),
        ),
        (
            "parity8 vs parity8".to_string(),
            library::parity_tree(8),
            library::parity_tree(8),
        ),
    ];
    for (label, golden, revised) in cases {
        let check = equivalence_check(&golden, &revised).expect("same interface");
        let mut cdcl = CdclSolver::new();
        let result = cdcl.solve(check.formula());
        let verdict = match result {
            SolveResult::Satisfiable(ref model) => {
                let cex: Vec<String> = check
                    .counterexample(model)
                    .into_iter()
                    .filter(|(_, v)| *v)
                    .map(|(name, _)| name)
                    .collect();
                format!("NOT equivalent (counterexample sets {})", cex.join(","))
            }
            SolveResult::Unsatisfiable => "equivalent".to_string(),
            SolveResult::Unknown => "unknown".to_string(),
        };
        writeln!(
            report,
            "{:<28} {:>7} {:>9} {:>10}  {verdict}",
            label,
            check.formula().num_vars(),
            check.formula().num_clauses(),
            cdcl.stats().decisions
        )
        .expect("write to string");
    }
    report
}

// ---------------------------------------------------------------------------
// E11 — baseline solver comparison
// ---------------------------------------------------------------------------

/// One row of the E11 comparison (one backend on one instance).
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Workload name.
    pub instance: String,
    /// Backend name (as registered in the [`BackendRegistry`]).
    pub solver: String,
    /// Verdict string (`SAT`, `UNSAT`, `unknown`).
    pub verdict: String,
    /// Decisions (complete solvers) or flips (local search).
    pub effort: u64,
    /// For meta-backends (the portfolio): the member that answered.
    pub winner: Option<&'static str>,
}

fn comparison_workloads(seed: u64) -> Vec<(String, CnfFormula)> {
    let mut workloads = Vec::new();
    for ratio in [3.0f64, 4.3, 5.0] {
        let n = 12usize;
        let m = (ratio * n as f64).round() as usize;
        let formula = generators::random_ksat(&RandomKSatConfig::new(n, m, 3).with_seed(seed))
            .expect("valid generator config");
        workloads.push((format!("random 3-SAT n={n} m/n={ratio}"), formula));
    }
    workloads.push(("pigeonhole 4->3".to_string(), generators::pigeonhole(4, 3)));
    workloads.push((
        "parity chain n=6".to_string(),
        generators::parity_chain(6, false),
    ));
    workloads.push((
        "random 2-SAT n=15".to_string(),
        generators::random_ksat(&RandomKSatConfig::new(15, 30, 2).with_seed(seed + 7))
            .expect("valid generator config"),
    ));
    workloads
}

/// The E11 backend line-up, dispatched by name through the unified API.
const COMPARISON_BACKENDS: [&str; 7] = [
    "dpll",
    "cdcl",
    "two-sat",
    "walksat",
    "gsat",
    "schoening",
    "portfolio",
];

/// E11: every baseline solver on a representative workload matrix, dispatched
/// through the [`BackendRegistry`]. The portfolio rows name the member that
/// produced the answer.
pub fn solver_comparison(seed: u64) -> (Vec<ComparisonRow>, String) {
    let registry = BackendRegistry::default();
    let workloads = comparison_workloads(seed);
    let mut rows = Vec::new();
    let mut report = String::new();
    writeln!(report, "E11 — baseline solver comparison (seed {seed})").expect("write to string");
    writeln!(
        report,
        "{:<24} {:<11} {:>8} {:>10}  winner",
        "instance", "backend", "verdict", "effort"
    )
    .expect("write to string");
    for (name, formula) in &workloads {
        for backend in COMPARISON_BACKENDS {
            let request = SolveRequest::new(formula)
                .artifacts(Artifacts::Model)
                .seed(seed);
            let outcome = registry
                .solve(backend, &request)
                .expect("baseline backends have no structural limits");
            let verdict = match outcome.verdict {
                SolveVerdict::Satisfiable => {
                    let model = outcome.model.as_ref().expect("model requested");
                    assert!(formula.evaluate(model), "model must verify");
                    "SAT".to_string()
                }
                SolveVerdict::Unsatisfiable => "UNSAT".to_string(),
                SolveVerdict::Unknown(_) => "unknown".to_string(),
            };
            let effort = if outcome.stats.decisions > 0 {
                outcome.stats.decisions
            } else {
                outcome.stats.flips
            };
            writeln!(
                report,
                "{:<24} {:<11} {:>8} {:>10}  {}",
                name,
                backend,
                verdict,
                effort,
                outcome.stats.winner.unwrap_or("-")
            )
            .expect("write to string");
            rows.push(ComparisonRow {
                instance: name.clone(),
                solver: backend.to_string(),
                verdict,
                effort,
                winner: outcome.stats.winner,
            });
        }
    }
    (rows, report)
}

/// Encodes one circuit satisfiability query (used by the Criterion benches):
/// "can output `output_index` of `circuit` be driven to 1?".
pub fn circuit_output_query(circuit: &Circuit, output_index: usize) -> CnfFormula {
    let mut encoding = TseitinEncoder::new()
        .encode(circuit)
        .expect("acyclic circuit");
    encoding.assert_output(output_index, true);
    encoding.into_formula()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonideality_ideal_row_is_correct_and_extreme_rows_break() {
        let (rows, report) = nonideality_ablation(60_000, 9);
        assert_eq!(rows[0].label, "ideal");
        assert!(rows[0].verdicts_correct, "{report}");
        // The harshest saturation setting crushes the DC component.
        let harsh = rows
            .iter()
            .find(|r| r.label.contains("±0.05"))
            .expect("setting present");
        assert!(harsh.sat_mean < rows[0].sat_mean);
        assert!(report.contains("E9"));
    }

    #[test]
    fn atpg_reaches_full_coverage_on_small_circuits() {
        let (rows, report) = atpg_coverage(1);
        for row in &rows {
            assert!(row.nbl_agrees, "{report}");
            assert!(
                (row.coverage - 1.0).abs() < 1e-9,
                "coverage of detectable faults must be 100% for {}: {report}",
                row.circuit
            );
            assert_eq!(row.faults, row.testable + row.untestable);
        }
    }

    #[test]
    fn equivalence_workload_flags_the_buggy_adders() {
        let report = equivalence_workload();
        assert!(report.contains("rca4 vs rca4"));
        assert!(report.contains("NOT equivalent"));
        assert!(report.contains(" equivalent"));
    }

    #[test]
    fn solver_comparison_is_internally_consistent() {
        let (rows, _report) = solver_comparison(2012);
        // Complete solvers must agree pairwise on every instance.
        for instance in rows
            .iter()
            .map(|r| r.instance.clone())
            .collect::<std::collections::BTreeSet<_>>()
        {
            let verdicts: Vec<&ComparisonRow> = rows
                .iter()
                .filter(|r| {
                    r.instance == instance
                        && (r.solver == "dpll" || r.solver == "cdcl" || r.solver == "portfolio")
                })
                .collect();
            let first = &verdicts[0].verdict;
            assert!(
                verdicts.iter().all(|r| &r.verdict == first),
                "complete solvers disagree on {instance}"
            );
            // Incomplete solvers never claim UNSAT.
            for row in rows.iter().filter(|r| r.instance == instance) {
                if ["walksat", "gsat", "schoening"].contains(&row.solver.as_str()) {
                    assert_ne!(row.verdict, "UNSAT");
                }
            }
        }
    }

    #[test]
    fn circuit_output_query_is_satisfiable_for_parity() {
        let parity = library::parity_tree(4);
        let formula = circuit_output_query(&parity, 0);
        let mut cdcl = CdclSolver::new();
        assert!(cdcl.solve(&formula).is_sat());
    }
}
