//! Solver-level differential tests: for every stochastic local-search solver
//! and the brute-force enumerator, the packed evaluation core must produce
//! results and statistics *bit-identical* to the scalar reference path, and
//! [`Solver::reseed`] must restore a solver to the exact state of a freshly
//! constructed one with the same seed.

use cnf::generators::{self, RandomKSatConfig};
use cnf::{CnfFormula, EvalMode};
use sat_solvers::{
    BruteForceSolver, Gsat, GsatConfig, Schoening, SchoeningConfig, Solver, WalkSat, WalkSatConfig,
};

/// A small mixed bag of instances: worked paper examples, random k-SAT at a
/// few densities, and an unsatisfiable instance.
fn test_instances() -> Vec<CnfFormula> {
    let mut instances = vec![
        generators::example6_sat(),
        generators::example7_unsat(),
        generators::section4_sat_instance(),
        generators::section4_unsat_instance(),
    ];
    for seed in 0..4u64 {
        instances.push(
            generators::random_ksat(&RandomKSatConfig::new(16, 60, 3).with_seed(seed)).unwrap(),
        );
    }
    instances
}

/// Runs one solver in both modes over all instances and asserts the results
/// and stats match exactly.
fn assert_modes_agree<S: Solver>(mut make: impl FnMut(EvalMode) -> S) {
    for formula in test_instances() {
        let mut scalar = make(EvalMode::Scalar);
        let mut packed = make(EvalMode::Packed);
        let scalar_result = scalar.solve(&formula);
        let packed_result = packed.solve(&formula);
        assert_eq!(scalar_result, packed_result, "verdict/model diverged");
        assert_eq!(scalar.stats(), packed.stats(), "stats diverged");
    }
}

#[test]
fn walksat_modes_are_bit_identical() {
    for seed in [0u64, 7, 42] {
        assert_modes_agree(|eval_mode| {
            WalkSat::with_config(WalkSatConfig {
                seed,
                max_flips: 2_000,
                max_restarts: 4,
                eval_mode,
                ..WalkSatConfig::default()
            })
        });
    }
}

#[test]
fn gsat_modes_are_bit_identical() {
    for seed in [0u64, 7, 42] {
        assert_modes_agree(|eval_mode| {
            Gsat::with_config(GsatConfig {
                seed,
                max_flips: 500,
                max_restarts: 4,
                eval_mode,
                ..GsatConfig::default()
            })
        });
    }
}

#[test]
fn schoening_modes_are_bit_identical() {
    for seed in [0u64, 7, 42] {
        assert_modes_agree(|eval_mode| {
            Schoening::with_config(SchoeningConfig {
                seed,
                max_restarts: 30,
                eval_mode,
                ..SchoeningConfig::default()
            })
        });
    }
}

#[test]
fn brute_force_modes_are_bit_identical() {
    assert_modes_agree(|eval_mode| BruteForceSolver::new().with_eval_mode(eval_mode));
}

/// Reseeding an already-used solver must be indistinguishable from building a
/// fresh solver with that seed: same verdict, same model, same stats.
fn assert_reseed_matches_fresh<S: Solver>(mut make: impl FnMut(u64) -> S) {
    let formula = generators::random_ksat(&RandomKSatConfig::new(14, 55, 3).with_seed(11)).unwrap();
    for mode_seed in [3u64, 19] {
        // Use the solver once with a different seed so reseed has stale
        // state to overwrite, then reseed and solve again.
        let mut reseeded = make(999);
        let _ = reseeded.solve(&formula);
        reseeded.reseed(mode_seed);
        let reseeded_result = reseeded.solve(&formula);

        let mut fresh = make(mode_seed);
        let fresh_result = fresh.solve(&formula);

        assert_eq!(reseeded_result, fresh_result, "reseed diverged from fresh");
        assert_eq!(reseeded.stats(), fresh.stats(), "reseed stats diverged");
    }
}

#[test]
fn walksat_reseed_matches_fresh_construction() {
    assert_reseed_matches_fresh(|seed| {
        WalkSat::with_config(WalkSatConfig {
            seed,
            max_flips: 2_000,
            max_restarts: 4,
            ..WalkSatConfig::default()
        })
    });
}

#[test]
fn gsat_reseed_matches_fresh_construction() {
    assert_reseed_matches_fresh(|seed| {
        Gsat::with_config(GsatConfig {
            seed,
            max_flips: 500,
            max_restarts: 4,
            ..GsatConfig::default()
        })
    });
}

#[test]
fn schoening_reseed_matches_fresh_construction() {
    assert_reseed_matches_fresh(|seed| {
        Schoening::with_config(SchoeningConfig {
            seed,
            max_restarts: 30,
            ..SchoeningConfig::default()
        })
    });
}
