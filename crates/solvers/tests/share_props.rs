//! Property suite for the cooperative clause-sharing layer: the
//! [`SharedClausePool`] delivery contract (no self-imports, no duplicate
//! deliveries, bounded residency) and the CDCL integration's soundness
//! contract (every imported clause is implied by the shared input formula;
//! imports taken inside a `push` frame never survive the matching `pop`).

use cnf::generators::{self, RandomKSatConfig};
use cnf::{Assignment, Literal};
use proptest::prelude::*;
use sat_solvers::{CdclSolver, SearchLimits, ShareHandle, SharedClausePool, SharingConfig, Solver};
use std::collections::HashSet;
use std::sync::Arc;

fn lit(i: i64) -> Literal {
    Literal::from_dimacs(i).expect("nonzero dimacs literal")
}

/// An export operation drawn by the generators below: which member publishes
/// and the (1-based) variable indices of the clause's positive literals.
fn arb_exports() -> impl Strategy<Value = Vec<(usize, Vec<u32>)>> {
    proptest::collection::vec(
        (0usize..4, proptest::collection::vec(1u32..40, 1..6)),
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Delivery contract: across an arbitrary export stream, an importing
    /// member never receives one of its own clauses and never receives the
    /// same pooled clause twice, no matter how its imports interleave with
    /// the exports.
    #[test]
    fn pool_never_delivers_own_or_duplicate_clauses(
        (ops, import_every) in (arb_exports(), 1usize..8)
    ) {
        let pool = Arc::new(SharedClausePool::new(
            // Unbounded in practice, so every accepted clause stays visible.
            SharingConfig::new().with_capacity(10_000),
        ));
        let mut handles: Vec<ShareHandle> =
            (0..4).map(|m| ShareHandle::new(Arc::clone(&pool), m)).collect();
        // Tag each export with a unique trailing literal so deliveries can be
        // identified exactly: variable 1000+k for the k-th operation.
        let mut source_of = Vec::new();
        let mut seen: Vec<HashSet<usize>> = vec![HashSet::new(); 4];
        for (k, (member, vars)) in ops.iter().enumerate() {
            let mut clause: Vec<Literal> = vars.iter().map(|&v| lit(v as i64)).collect();
            clause.push(lit(1000 + k as i64));
            prop_assert!(handles[*member].export(&clause, 1));
            source_of.push(*member);
            if k % import_every == 0 {
                let importer = (member + 1) % 4;
                let mut handle = handles[importer].clone();
                handle.import(|lits| {
                    let tag = (lits.last().unwrap().to_dimacs() - 1000) as usize;
                    assert_ne!(source_of[tag], importer, "member got its own clause");
                    assert!(seen[importer].insert(tag), "clause delivered twice");
                });
                handles[importer] = handle;
            }
        }
        // A final settling import per member: everything foreign, nothing
        // twice, nothing of one's own.
        for member in 0..4 {
            let mut handle = handles[member].clone();
            handle.import(|lits| {
                let tag = (lits.last().unwrap().to_dimacs() - 1000) as usize;
                assert_ne!(source_of[tag], member, "member got its own clause");
                assert!(seen[member].insert(tag), "clause delivered twice");
            });
            let foreign = source_of.iter().filter(|&&s| s != member).count();
            prop_assert_eq!(seen[member].len(), foreign);
        }
    }

    /// Residency contract: under any export stream the pool holds at most
    /// `ceil(capacity / shards) * shards` clauses (the sharded rounding of
    /// the configured capacity), and the books balance — accepted exports
    /// minus evictions equals the resident count.
    #[test]
    fn capacity_and_eviction_books_balance(
        (capacity, shards, exports) in (1usize..48, 1usize..6, 1usize..200)
    ) {
        let pool = SharedClausePool::new(
            SharingConfig::new().with_capacity(capacity).with_shards(shards),
        );
        for i in 0..exports {
            prop_assert!(pool.export(i % 3, &[lit(1 + i as i64)], 1));
        }
        let bound = capacity.div_ceil(shards) * shards;
        prop_assert!(pool.len() <= bound, "{} resident > bound {}", pool.len(), bound);
        let stats = pool.stats();
        prop_assert_eq!(stats.exported as usize, exports);
        prop_assert_eq!(stats.exported - stats.evicted, pool.len() as u64);
    }

    /// Soundness contract: every clause a CDCL member imports during a
    /// cooperative solve is implied by the shared input formula — checked by
    /// exhaustive model enumeration on small random instances. The shared
    /// verdict also matches a detached baseline (the PR 3 contract).
    #[test]
    fn imported_clauses_are_implied_by_the_formula(seed in 0u64..24) {
        let cfg = RandomKSatConfig::new(8, 28, 3).with_seed(seed);
        let formula = generators::random_ksat(&cfg).unwrap();
        let baseline = CdclSolver::new().solve(&formula).is_sat();

        let pool = Arc::new(SharedClausePool::default());
        // Restart base 1 forces a restart (and hence an import scan) after
        // every conflict, maximising traffic on these small instances.
        let mut exporter = CdclSolver::new().with_restart_base(1);
        exporter.attach_share(ShareHandle::new(Arc::clone(&pool), 0));
        prop_assert_eq!(exporter.solve(&formula).is_sat(), baseline);

        let mut importer = CdclSolver::new().with_restart_base(1);
        importer.attach_share(ShareHandle::new(Arc::clone(&pool), 1));
        prop_assert_eq!(importer.solve(&formula).is_sat(), baseline);

        let imported = importer.imported_clauses();
        for assignment in Assignment::enumerate_all(formula.num_vars()) {
            if !formula.evaluate(&assignment) {
                continue;
            }
            for clause in &imported {
                prop_assert!(
                    clause.iter().any(|&l| assignment.satisfies(l)),
                    "model {:?} falsifies imported clause {:?}",
                    assignment.to_literals(),
                    clause,
                );
            }
        }
    }

    /// Frame contract: imports taken while a pushed frame is active are
    /// tagged to that frame, so `pop` drops every one of them regardless of
    /// what the foreign members had published.
    #[test]
    fn pop_never_retains_imported_clauses(
        (seed, foreign_clauses) in (
            0u64..16,
            proptest::collection::vec(proptest::collection::vec(1u32..9, 1..4), 1..10),
        )
    ) {
        let pool = Arc::new(SharedClausePool::default());
        let foreign = ShareHandle::new(Arc::clone(&pool), 1);
        for vars in &foreign_clauses {
            // Alternate polarities so the pool holds a mix of clause shapes.
            let clause: Vec<Literal> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| lit(if i % 2 == 0 { v as i64 } else { -(v as i64) }))
                .collect();
            foreign.export(&clause, 2);
        }

        let cfg = RandomKSatConfig::new(8, 34, 3).with_seed(seed + 900);
        let formula = generators::random_ksat(&cfg).unwrap();
        let mut solver = CdclSolver::new().with_restart_base(1);
        solver.attach_share(ShareHandle::new(Arc::clone(&pool), 0));
        solver.push(&formula);
        let _ = solver.solve_under_assumptions(&[], &SearchLimits::unlimited());
        solver.pop();
        prop_assert_eq!(solver.imported_clause_count(), 0);
    }
}
