//! Differential proptest suite: [`FlipScorer`]'s packed break counts and
//! GSAT gains against the scalar oracles in [`sat_solvers::score`], on random
//! formulas × random assignments (short assignments, empty clauses, and
//! tautological clauses included).

use cnf::{Assignment, CnfFormula, Literal, Variable};
use proptest::prelude::*;
use sat_solvers::score;
use sat_solvers::FlipScorer;

/// A random CNF formula paired with a random assignment that may be shorter
/// than the variable range (exercising the totality rule).
fn arb_instance() -> impl Strategy<Value = (CnfFormula, Assignment)> {
    (1..=70usize).prop_flat_map(|n| {
        let clause = proptest::collection::vec((0..n, proptest::bool::ANY), 0..=4);
        let clauses = proptest::collection::vec(clause, 0..=12);
        let assignment = proptest::collection::vec(proptest::bool::ANY, 0..=n);
        (clauses, assignment).prop_map(move |(clauses, values)| {
            let mut formula = CnfFormula::new(n);
            for lits in clauses {
                formula.add_clause(
                    lits.into_iter()
                        .map(|(v, phase)| Literal::with_phase(Variable::new(v), phase)),
                );
            }
            (formula, Assignment::from_bools(values))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Packed break counts over a full word of candidate flips equal the
    /// scalar `break_count` oracle, variable by variable.
    #[test]
    fn packed_break_counts_match_scalar((formula, assignment) in arb_instance()) {
        let n = formula.num_vars();
        let mut scorer = FlipScorer::new(&formula);
        // Score in chunks of up to 64 candidates covering every variable.
        for chunk_start in (0..n).step_by(64) {
            let candidates: Vec<Variable> = (chunk_start..n.min(chunk_start + 64))
                .map(Variable::new)
                .collect();
            let packed: Vec<u32> = scorer.break_counts(&assignment, &candidates).to_vec();
            for (i, &var) in candidates.iter().enumerate() {
                let scalar = score::break_count(&formula, &assignment, var);
                prop_assert_eq!(packed[i] as usize, scalar);
            }
        }
    }

    /// Packed GSAT gains over all variables equal the scalar `flip_gain`
    /// oracle, variable by variable.
    #[test]
    fn packed_gains_match_scalar((formula, assignment) in arb_instance()) {
        let n = formula.num_vars();
        let mut scorer = FlipScorer::new(&formula);
        let packed: Vec<i64> = scorer.gains(&assignment).to_vec();
        prop_assert_eq!(packed.len(), n);
        for (v, &gain) in packed.iter().enumerate() {
            let scalar = score::flip_gain(&formula, &assignment, Variable::new(v));
            prop_assert_eq!(gain, scalar);
        }
    }

    /// Scoring is stable across repeated calls on the same scorer (the
    /// epoch-stamped scratch state never leaks between invocations).
    #[test]
    fn repeated_scoring_is_stable((formula, assignment) in arb_instance()) {
        let n = formula.num_vars();
        let mut scorer = FlipScorer::new(&formula);
        let first: Vec<i64> = scorer.gains(&assignment).to_vec();
        let candidates: Vec<Variable> = (0..n.min(64)).map(Variable::new).collect();
        let breaks_first: Vec<u32> = scorer.break_counts(&assignment, &candidates).to_vec();
        for _ in 0..3 {
            prop_assert_eq!(&scorer.gains(&assignment).to_vec(), &first);
            prop_assert_eq!(
                &scorer.break_counts(&assignment, &candidates).to_vec(),
                &breaks_first
            );
        }
    }
}
