//! Cooperative clause sharing for portfolio search.
//!
//! A pure racing portfolio discards every losing member's learned clauses, so
//! adding cores buys attribution, not search power. This module turns the
//! ensemble cooperative: CDCL members export short learned clauses into a
//! [`SharedClausePool`], every member imports the clauses it has not seen yet
//! at its next restart boundary, and the local-search members treat the
//! imports as soft scoring constraints. Because an exported clause is always
//! a *logical consequence of the shared input formula* (CDCL only exports
//! clauses derived from frame-0 resolution), imports can steer a member's
//! search but can never change a verdict — the pool preserves the racing
//! portfolio's soundness and the PR 3 determinism contract (verdicts are
//! seed-deterministic, attribution stays race-dependent).
//!
//! # Pool design
//!
//! The pool is *sharded-lock*: exports land in `shards` independent
//! `Mutex<VecDeque<_>>` segments selected round-robin by a global atomic
//! epoch counter, so concurrent exporters rarely contend on the same lock
//! and an import scan takes each shard lock only briefly. (A fully lock-free
//! variant was benched against the sharded design in
//! `baseline_comparison`'s `share_pool` group via the `shards = 1` coarse
//! configuration as the degenerate baseline; the sharded layout won and is
//! the default — see the bench for the methodology.) Every accepted clause
//! is stamped with a unique, monotonically increasing epoch. Members track a
//! private epoch cursor ([`ShareHandle`]), so one pool scan per restart
//! imports exactly the clauses published since the member's previous scan —
//! never its own exports, never a clause twice.
//!
//! Capacity is bounded with lazy eviction: only an export that overflows its
//! shard evicts (oldest first), imports never shrink the pool.

use cnf::Literal;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Default maximum exported-clause length, in literals.
pub const DEFAULT_MAX_SHARED_LEN: usize = 8;

/// Default maximum literal-block distance (LBD) of an exported clause.
pub const DEFAULT_MAX_SHARED_LBD: u32 = 6;

/// Default pool capacity (clauses resident across all shards).
pub const DEFAULT_POOL_CAPACITY: usize = 2048;

/// Default shard count of the pool's lock array.
pub const DEFAULT_POOL_SHARDS: usize = 8;

/// Configuration of the cooperative clause-sharing layer of
/// [`crate::ParallelPortfolio`]. Sharing is **on by default**; use
/// [`SharingConfig::racing_only`] to opt back into the pure racing portfolio.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharingConfig {
    /// Whether members share clauses at all. Off = pure racing.
    pub enabled: bool,
    /// Export filter: clauses longer than this never enter the pool.
    pub max_len: usize,
    /// Export filter: clauses with a larger literal-block distance (number
    /// of distinct decision levels at learn time) never enter the pool.
    pub max_lbd: u32,
    /// Total clause capacity of the pool; the oldest clauses of an
    /// overflowing shard are evicted lazily on export.
    pub capacity: usize,
    /// Number of independent lock shards (1 = one coarse lock).
    pub shards: usize,
}

impl Default for SharingConfig {
    fn default() -> Self {
        SharingConfig {
            enabled: true,
            max_len: DEFAULT_MAX_SHARED_LEN,
            max_lbd: DEFAULT_MAX_SHARED_LBD,
            capacity: DEFAULT_POOL_CAPACITY,
            shards: DEFAULT_POOL_SHARDS,
        }
    }
}

impl SharingConfig {
    /// The default cooperative configuration (sharing on).
    pub fn new() -> Self {
        SharingConfig::default()
    }

    /// The opt-out: a pure racing portfolio without any clause traffic.
    pub fn racing_only() -> Self {
        SharingConfig {
            enabled: false,
            ..SharingConfig::default()
        }
    }

    /// Sets the export length cap.
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        self.max_len = max_len.max(1);
        self
    }

    /// Sets the export LBD cap.
    pub fn with_max_lbd(mut self, max_lbd: u32) -> Self {
        self.max_lbd = max_lbd;
        self
    }

    /// Sets the pool capacity (in clauses).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Sets the shard count (1 = a single coarse lock).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }
}

/// One clause resident in the pool.
#[derive(Debug, Clone)]
struct PooledClause {
    /// Unique, monotonically increasing publish stamp.
    epoch: u64,
    /// Index of the exporting member (importers skip their own clauses).
    source: usize,
    literals: Vec<Literal>,
}

/// Counters of one pool's lifetime traffic (see [`SharedClausePool::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Clauses accepted into the pool.
    pub exported: u64,
    /// Export attempts rejected by the length/LBD filter.
    pub rejected: u64,
    /// Clauses evicted to keep the pool within capacity.
    pub evicted: u64,
    /// Clauses handed out across all import scans (one clause delivered to
    /// `k` members counts `k` times).
    pub imported: u64,
}

/// A bounded, sharded-lock clause pool shared by the members of a
/// cooperative portfolio.
///
/// See the [module docs](self) for the design. All methods take `&self`; the
/// pool is meant to live in an [`Arc`] shared across member threads.
///
/// ```
/// use cnf::Literal;
/// use sat_solvers::share::{SharedClausePool, SharingConfig};
///
/// let pool = SharedClausePool::new(SharingConfig::default());
/// let lit = |i| Literal::from_dimacs(i).unwrap();
/// assert!(pool.export(0, &[lit(1), lit(-2)], 2));
/// let mut cursor = 0;
/// let mut seen = Vec::new();
/// // Member 1 imports member 0's clause once...
/// pool.import(1, &mut cursor, |lits| seen.push(lits.to_vec()));
/// assert_eq!(seen, vec![vec![lit(1), lit(-2)]]);
/// // ...and never again through the same cursor.
/// assert_eq!(pool.import(1, &mut cursor, |_| unreachable!()), 0);
/// ```
#[derive(Debug)]
pub struct SharedClausePool {
    config: SharingConfig,
    /// The next publish stamp; doubles as the pool clock import cursors are
    /// compared against.
    epoch: AtomicU64,
    shards: Vec<Mutex<VecDeque<PooledClause>>>,
    per_shard_capacity: usize,
    exported: AtomicU64,
    rejected: AtomicU64,
    evicted: AtomicU64,
    imported: AtomicU64,
}

impl Default for SharedClausePool {
    fn default() -> Self {
        SharedClausePool::new(SharingConfig::default())
    }
}

impl SharedClausePool {
    /// Creates an empty pool with the given configuration.
    pub fn new(config: SharingConfig) -> Self {
        let shard_count = config.shards.max(1);
        let per_shard_capacity = (config.capacity.max(1)).div_ceil(shard_count);
        SharedClausePool {
            config,
            epoch: AtomicU64::new(0),
            shards: (0..shard_count)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            per_shard_capacity,
            exported: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            imported: AtomicU64::new(0),
        }
    }

    /// The pool's configuration.
    pub fn config(&self) -> &SharingConfig {
        &self.config
    }

    /// Offers a clause to the pool on behalf of `member`. Returns `true` when
    /// the clause passed the length/LBD filter and was published.
    pub fn export(&self, member: usize, literals: &[Literal], lbd: u32) -> bool {
        if literals.is_empty() || literals.len() > self.config.max_len || lbd > self.config.max_lbd
        {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[(epoch % self.shards.len() as u64) as usize];
        let mut clauses = shard.lock().unwrap_or_else(PoisonError::into_inner);
        clauses.push_back(PooledClause {
            epoch,
            source: member,
            literals: literals.to_vec(),
        });
        // Lazy eviction: only the exporting call trims its own shard.
        while clauses.len() > self.per_shard_capacity {
            clauses.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        drop(clauses);
        self.exported.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Delivers every clause published since `*cursor` by members other than
    /// `member`, advancing the cursor. Returns the number of delivered
    /// clauses.
    ///
    /// Clauses stamped at or after the scan's snapshot epoch (i.e. published
    /// concurrently with the scan) are left for the next call, which is what
    /// makes "each clause at most once per member" hold under concurrency.
    pub fn import(&self, member: usize, cursor: &mut u64, mut sink: impl FnMut(&[Literal])) -> u64 {
        let snapshot = self.epoch.load(Ordering::Relaxed);
        if snapshot <= *cursor {
            return 0;
        }
        let mut delivered = 0u64;
        for shard in &self.shards {
            let clauses = shard.lock().unwrap_or_else(PoisonError::into_inner);
            for clause in clauses.iter() {
                if clause.epoch >= *cursor && clause.epoch < snapshot && clause.source != member {
                    sink(&clause.literals);
                    delivered += 1;
                }
            }
        }
        *cursor = snapshot;
        if delivered > 0 {
            self.imported.fetch_add(delivered, Ordering::Relaxed);
        }
        delivered
    }

    /// Number of clauses currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// `true` when no clause is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime traffic counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            exported: self.exported.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            imported: self.imported.load(Ordering::Relaxed),
        }
    }
}

/// One member's private handle on a [`SharedClausePool`]: the pool, the
/// member's index (so it never re-imports its own exports) and its epoch
/// cursor (so it imports each foreign clause exactly once).
///
/// Handles are handed to members through
/// [`Solver::attach_share`](crate::Solver::attach_share) before a cooperative
/// solve and detached afterwards.
#[derive(Debug, Clone)]
pub struct ShareHandle {
    pool: Arc<SharedClausePool>,
    member: usize,
    cursor: u64,
}

impl ShareHandle {
    /// Creates a handle for `member` with a fresh cursor (the member will
    /// see every clause already in the pool on its first import).
    pub fn new(pool: Arc<SharedClausePool>, member: usize) -> Self {
        ShareHandle {
            pool,
            member,
            cursor: 0,
        }
    }

    /// The pool's export length cap (lets exporters skip the clone for
    /// clauses that would be rejected anyway).
    pub fn max_len(&self) -> usize {
        self.pool.config().max_len
    }

    /// Exports a clause; returns `true` when the pool accepted it.
    pub fn export(&self, literals: &[Literal], lbd: u32) -> bool {
        self.pool.export(self.member, literals, lbd)
    }

    /// Imports every foreign clause published since the previous import,
    /// returning how many were delivered.
    pub fn import(&mut self, sink: impl FnMut(&[Literal])) -> u64 {
        self.pool.import(self.member, &mut self.cursor, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn lit(i: i64) -> Literal {
        Literal::from_dimacs(i).expect("nonzero dimacs literal")
    }

    #[test]
    fn export_filter_gates_length_and_lbd() {
        let pool = SharedClausePool::new(SharingConfig::new().with_max_len(2).with_max_lbd(3));
        assert!(pool.export(0, &[lit(1), lit(2)], 2));
        assert!(!pool.export(0, &[lit(1), lit(2), lit(3)], 2), "too long");
        assert!(!pool.export(0, &[lit(1)], 4), "LBD too high");
        assert!(!pool.export(0, &[], 0), "empty clause never shared");
        let stats = pool.stats();
        assert_eq!(stats.exported, 1);
        assert_eq!(stats.rejected, 3);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn members_never_see_their_own_exports() {
        let pool = SharedClausePool::new(SharingConfig::default());
        pool.export(0, &[lit(1)], 1);
        pool.export(1, &[lit(2)], 1);
        let mut cursor = 0;
        let mut seen = Vec::new();
        assert_eq!(pool.import(0, &mut cursor, |c| seen.push(c.to_vec())), 1);
        assert_eq!(seen, vec![vec![lit(2)]]);
    }

    #[test]
    fn cursor_delivers_each_clause_exactly_once() {
        let pool = SharedClausePool::new(SharingConfig::default());
        pool.export(0, &[lit(1)], 1);
        let mut cursor = 0;
        assert_eq!(pool.import(1, &mut cursor, |_| {}), 1);
        assert_eq!(pool.import(1, &mut cursor, |_| unreachable!()), 0);
        pool.export(0, &[lit(2)], 1);
        let mut fresh = Vec::new();
        assert_eq!(pool.import(1, &mut cursor, |c| fresh.push(c.to_vec())), 1);
        assert_eq!(fresh, vec![vec![lit(2)]]);
    }

    #[test]
    fn capacity_is_bounded_with_oldest_first_eviction() {
        let pool = SharedClausePool::new(SharingConfig::new().with_capacity(4).with_shards(2));
        for i in 1..=20 {
            assert!(pool.export(0, &[lit(i)], 1));
        }
        assert!(pool.len() <= 4);
        let stats = pool.stats();
        assert_eq!(stats.exported, 20);
        assert_eq!(stats.evicted as usize, 20 - pool.len());
        // Survivors are the most recently exported clauses.
        let mut cursor = 0;
        let mut survivors = Vec::new();
        pool.import(1, &mut cursor, |c| survivors.push(c[0]));
        assert!(survivors.iter().all(|l| l.to_dimacs() > 12));
    }

    #[test]
    fn single_shard_degenerates_to_a_coarse_lock() {
        let pool = SharedClausePool::new(SharingConfig::new().with_shards(1).with_capacity(2));
        for i in 1..=5 {
            pool.export(0, &[lit(i)], 1);
        }
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.stats().evicted, 3);
    }

    #[test]
    fn concurrent_export_import_is_consistent() {
        let pool = Arc::new(SharedClausePool::new(
            SharingConfig::new().with_capacity(100_000),
        ));
        const MEMBERS: usize = 4;
        const PER_MEMBER: u64 = 200;
        let barrier = std::sync::Barrier::new(MEMBERS);
        let totals: Vec<u64> = thread::scope(|scope| {
            let handles: Vec<_> = (0..MEMBERS)
                .map(|member| {
                    let pool = Arc::clone(&pool);
                    let barrier = &barrier;
                    scope.spawn(move || {
                        let mut handle = ShareHandle::new(pool, member);
                        let mut imported = 0u64;
                        for i in 0..PER_MEMBER {
                            let l = lit((member as i64 * PER_MEMBER as i64) + i as i64 + 1);
                            assert!(handle.export(&[l], 1));
                            imported += handle.import(|_| {});
                        }
                        // All exports land before the settling import, so the
                        // totals below are exact.
                        barrier.wait();
                        imported + handle.import(|_| {})
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Nothing evicted at this capacity: every member eventually imports
        // every other member's clauses, exactly once each.
        let expected_per_member = (MEMBERS as u64 - 1) * PER_MEMBER;
        for (member, &total) in totals.iter().enumerate() {
            assert_eq!(total, expected_per_member, "member {member}");
        }
        let stats = pool.stats();
        assert_eq!(stats.exported, MEMBERS as u64 * PER_MEMBER);
        assert_eq!(stats.evicted, 0);
        assert_eq!(stats.imported, MEMBERS as u64 * expected_per_member);
    }

    #[test]
    fn racing_only_is_the_documented_opt_out() {
        let config = SharingConfig::racing_only();
        assert!(!config.enabled);
        assert!(SharingConfig::default().enabled);
        assert_eq!(config.max_len, DEFAULT_MAX_SHARED_LEN);
    }
}
