//! Polynomial-time 2-SAT via implication-graph strongly connected components.

use crate::limits::SearchLimits;
use crate::solver::{SolveResult, Solver, SolverStats};
use cnf::{Assignment, CnfFormula, Literal};

/// A complete, polynomial-time solver for 2-SAT instances (every clause has
/// at most two literals), based on the Aspvall–Plass–Tarjan implication-graph
/// construction.
///
/// Each clause `(a ∨ b)` contributes the implications `¬a → b` and `¬b → a`;
/// the instance is unsatisfiable iff some variable ends up in the same
/// strongly connected component as its negation. 2-SAT is the classical
/// polynomial island inside NP-complete SAT, so this solver is both a fast
/// baseline for 2-CNF workloads (such as the paper's Example 6 and the §IV
/// instances, which are all 2-CNF) and an oracle for tests.
///
/// Formulas containing a clause with three or more literals are outside the
/// solver's scope; [`Solver::solve`] returns [`SolveResult::Unknown`] for
/// them (use [`TwoSatSolver::is_applicable`] to check beforehand).
///
/// ```
/// use cnf::cnf_formula;
/// use sat_solvers::{Solver, TwoSatSolver};
///
/// let mut solver = TwoSatSolver::new();
/// // Example 6 of the paper: (x1 + x2)(¬x1 + ¬x2) — satisfiable.
/// assert!(solver.solve(&cnf_formula![[1, 2], [-1, -2]]).is_sat());
/// // Example 7: (x1)(¬x1) — unsatisfiable.
/// assert!(solver.solve(&cnf_formula![[1], [-1]]).is_unsat());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoSatSolver {
    stats: SolverStats,
}

impl TwoSatSolver {
    /// Creates a 2-SAT solver.
    pub fn new() -> Self {
        TwoSatSolver::default()
    }

    /// Returns `true` if every clause of the formula has at most two literals,
    /// i.e. the formula is within this solver's scope.
    pub fn is_applicable(formula: &CnfFormula) -> bool {
        formula.iter().all(|c| c.len() <= 2)
    }

    /// Builds the implication graph as adjacency lists over literal codes.
    fn implication_graph(formula: &CnfFormula) -> Vec<Vec<usize>> {
        let nodes = 2 * formula.num_vars();
        let mut graph = vec![Vec::new(); nodes];
        for clause in formula.iter() {
            match clause.literals() {
                [a] => {
                    // (a) ≡ (¬a → a)
                    graph[(!*a).code()].push(a.code());
                }
                [a, b] => {
                    graph[(!*a).code()].push(b.code());
                    graph[(!*b).code()].push(a.code());
                }
                _ => unreachable!("is_applicable is checked before building the graph"),
            }
        }
        graph
    }

    /// Kosaraju's algorithm: returns the SCC id of every literal node, with
    /// components numbered in topological order of the implication graph's
    /// condensation (sources receive smaller ids).
    fn condensation(graph: &[Vec<usize>]) -> Vec<usize> {
        let n = graph.len();
        // Pass 1: order nodes by finishing time with an iterative DFS.
        let mut finished = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        for start in 0..n {
            if visited[start] {
                continue;
            }
            // Stack of (node, next-edge-index).
            let mut stack = vec![(start, 0usize)];
            visited[start] = true;
            while let Some(&mut (node, ref mut edge)) = stack.last_mut() {
                if *edge < graph[node].len() {
                    let next = graph[node][*edge];
                    *edge += 1;
                    if !visited[next] {
                        visited[next] = true;
                        stack.push((next, 0));
                    }
                } else {
                    finished.push(node);
                    stack.pop();
                }
            }
        }
        // Transpose graph.
        let mut transpose = vec![Vec::new(); n];
        for (u, edges) in graph.iter().enumerate() {
            for &v in edges {
                transpose[v].push(u);
            }
        }
        // Pass 2: assign components in decreasing finish time.
        let mut component = vec![usize::MAX; n];
        let mut current = 0usize;
        for &start in finished.iter().rev() {
            if component[start] != usize::MAX {
                continue;
            }
            let mut stack = vec![start];
            component[start] = current;
            while let Some(node) = stack.pop() {
                for &next in &transpose[node] {
                    if component[next] == usize::MAX {
                        component[next] = current;
                        stack.push(next);
                    }
                }
            }
            current += 1;
        }
        component
    }
}

impl Solver for TwoSatSolver {
    fn solve_limited(&mut self, formula: &CnfFormula, limits: &SearchLimits) -> SolveResult {
        self.stats = SolverStats::default();
        // The whole algorithm is linear in the formula, so a single up-front
        // deadline check bounds the wall-clock cost well enough.
        if limits.expired() {
            return SolveResult::Unknown;
        }
        if formula.has_empty_clause() {
            return SolveResult::Unsatisfiable;
        }
        if !Self::is_applicable(formula) {
            return SolveResult::Unknown;
        }
        if formula.num_vars() == 0 {
            return SolveResult::Satisfiable(Assignment::from_bools(Vec::new()));
        }
        let graph = Self::implication_graph(formula);
        self.stats.propagations = graph.iter().map(|edges| edges.len() as u64).sum();
        let component = Self::condensation(&graph);
        let mut values = Vec::with_capacity(formula.num_vars());
        for var in formula.variables() {
            let pos = Literal::positive(var).code();
            let neg = Literal::negative(var).code();
            if component[pos] == component[neg] {
                self.stats.conflicts += 1;
                return SolveResult::Unsatisfiable;
            }
            // Components are numbered in topological order (sources first), so
            // a literal whose component comes *later* is the implied one; set
            // the variable to the polarity that cannot imply its own negation.
            values.push(component[pos] > component[neg]);
        }
        let model = Assignment::from_bools(values);
        debug_assert!(formula.evaluate(&model));
        SolveResult::Satisfiable(model)
    }

    fn stats(&self) -> SolverStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "two-sat"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BruteForceSolver, Solver};
    use cnf::cnf_formula;
    use cnf::generators::{self, RandomKSatConfig};

    #[test]
    fn worked_examples() {
        let mut solver = TwoSatSolver::new();
        assert!(solver.solve(&generators::example6_sat()).is_sat());
        assert!(solver.solve(&generators::example7_unsat()).is_unsat());
        assert!(solver.solve(&generators::section4_sat_instance()).is_sat());
        assert!(solver
            .solve(&generators::section4_unsat_instance())
            .is_unsat());
    }

    #[test]
    fn implication_chain_is_respected() {
        // x1 -> x2 -> x3 and x1 forced true.
        let formula = cnf_formula![[1], [-1, 2], [-2, 3]];
        let mut solver = TwoSatSolver::new();
        match solver.solve(&formula) {
            SolveResult::Satisfiable(model) => {
                assert!(
                    model.values().iter().all(|&v| v),
                    "all variables forced true"
                )
            }
            other => panic!("expected SAT, got {other}"),
        }
    }

    #[test]
    fn contradictory_cycle_is_unsat() {
        // (x1 ∨ x2)(¬x1 ∨ x2)(x1 ∨ ¬x2)(¬x1 ∨ ¬x2) is the classic UNSAT 2-CNF.
        let formula = cnf_formula![[1, 2], [-1, 2], [1, -2], [-1, -2]];
        let mut solver = TwoSatSolver::new();
        assert!(solver.solve(&formula).is_unsat());
        assert!(solver.stats().conflicts >= 1);
    }

    #[test]
    fn wide_clauses_are_out_of_scope() {
        let formula = cnf_formula![[1, 2, 3], [-1, -2]];
        assert!(!TwoSatSolver::is_applicable(&formula));
        let mut solver = TwoSatSolver::new();
        assert_eq!(solver.solve(&formula), SolveResult::Unknown);
    }

    #[test]
    fn empty_clause_and_empty_formula() {
        let mut solver = TwoSatSolver::new();
        assert!(solver.solve(&CnfFormula::new(0)).is_sat());
        let mut with_empty = CnfFormula::new(2);
        with_empty.add_clause([]);
        assert!(solver.solve(&with_empty).is_unsat());
    }

    #[test]
    fn agrees_with_brute_force_on_random_2sat() {
        for seed in 0..40u64 {
            let formula = generators::random_ksat(
                &RandomKSatConfig::new(8, 14 + (seed as usize % 10), 2).with_seed(seed),
            )
            .unwrap();
            let mut fast = TwoSatSolver::new();
            let mut oracle = BruteForceSolver::new();
            let fast_result = fast.solve(&formula);
            let oracle_result = oracle.solve(&formula);
            assert_eq!(
                fast_result.is_sat(),
                oracle_result.is_sat(),
                "verdict mismatch on seed {seed}"
            );
            if let SolveResult::Satisfiable(model) = fast_result {
                assert!(formula.evaluate(&model), "model must verify on seed {seed}");
            }
        }
    }
}
