//! GSAT greedy local search.

use crate::limits::SearchLimits;
use crate::score::{self, FlipScorer};
use crate::share::ShareHandle;
use crate::solver::{SolveResult, Solver, SolverStats};
use cnf::{Assignment, BitVector, CnfFormula, EvalMode, Variable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the GSAT local-search solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GsatConfig {
    /// Maximum number of flips per restart (the "max-flips" GSAT parameter).
    pub max_flips: u64,
    /// Maximum number of random restarts (the "max-tries" GSAT parameter).
    pub max_restarts: u64,
    /// Whether sideways moves (flips with zero net gain) are allowed.
    pub allow_sideways: bool,
    /// PRNG seed; the search is deterministic for a fixed seed.
    pub seed: u64,
    /// Evaluation core: packed (all gains in one clause sweep) or the scalar
    /// reference path. Both produce bit-identical searches.
    pub eval_mode: EvalMode,
}

impl Default for GsatConfig {
    fn default() -> Self {
        GsatConfig {
            max_flips: 10_000,
            max_restarts: 10,
            allow_sideways: true,
            seed: 0,
            eval_mode: EvalMode::default(),
        }
    }
}

/// The GSAT incomplete solver (paper reference \[9\]): hill-climbing on the
/// number of satisfied clauses.
///
/// Each step flips the variable whose flip yields the largest increase in the
/// number of satisfied clauses (ties broken uniformly at random); when no
/// improving flip exists, sideways moves are taken if enabled, otherwise the
/// search restarts from a fresh random assignment.
///
/// Like WalkSAT it is incomplete: it answers [`SolveResult::Satisfiable`] or
/// [`SolveResult::Unknown`] — `Unsatisfiable` only for the trivial case of a
/// formula containing an empty clause.
///
/// ```
/// use cnf::cnf_formula;
/// use sat_solvers::{Gsat, Solver};
/// let mut solver = Gsat::new();
/// assert!(solver.solve(&cnf_formula![[1, 2], [-1, -2], [1, -2]]).is_sat());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Gsat {
    config: GsatConfig,
    stats: SolverStats,
    /// Cooperative-portfolio pool handle. Imported clauses become *soft*
    /// scoring constraints: they join the gain computation but never decide
    /// the verdict, which is only declared on the hard input formula.
    share: Option<ShareHandle>,
}

impl Gsat {
    /// Creates a GSAT solver with default parameters.
    pub fn new() -> Self {
        Gsat::default()
    }

    /// Creates a GSAT solver with an explicit configuration.
    pub fn with_config(config: GsatConfig) -> Self {
        Gsat {
            config,
            stats: SolverStats::default(),
            share: None,
        }
    }

    /// Pulls unseen pool clauses into the soft formula (called at restart
    /// boundaries). Clauses mentioning variables beyond the current instance
    /// are skipped — they cannot score against this assignment.
    fn import_soft(&mut self, soft: &mut CnfFormula) {
        let Some(mut share) = self.share.take() else {
            return;
        };
        let num_vars = soft.num_vars();
        let mut imported = 0u64;
        share.import(|lits| {
            if lits.iter().all(|l| l.variable().index() < num_vars) {
                soft.push_clause(cnf::Clause::from_literals(lits.to_vec()));
                imported += 1;
            }
        });
        self.share = Some(share);
        self.stats.clauses_imported += imported;
    }

    /// Net change in the number of satisfied clauses if `var` were flipped.
    fn flip_gain(formula: &CnfFormula, assignment: &Assignment, var: Variable) -> i64 {
        score::flip_gain(formula, assignment, var)
    }

    /// The scalar reference search: gains recomputed one variable at a time.
    fn solve_scalar(&mut self, formula: &CnfFormula, limits: &SearchLimits) -> SolveResult {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut soft = CnfFormula::new(formula.num_vars());
        for _ in 0..self.config.max_restarts.max(1) {
            self.import_soft(&mut soft);
            self.stats.restarts += 1;
            let mut assignment =
                Assignment::from_bools((0..formula.num_vars()).map(|_| rng.gen()).collect());
            self.stats.assignments_tried += 1;
            for _ in 0..self.config.max_flips {
                if limits.expired() {
                    return SolveResult::Unknown;
                }
                if formula.evaluate(&assignment) {
                    return SolveResult::Satisfiable(assignment);
                }
                // Greedy step: find the maximum-gain flip.
                let mut best_gain = i64::MIN;
                let mut best_vars: Vec<Variable> = Vec::new();
                for var in formula.variables() {
                    // The empty soft formula contributes zero gain, so the
                    // baseline (racing) search is untouched without imports.
                    let gain = Self::flip_gain(formula, &assignment, var)
                        + score::flip_gain(&soft, &assignment, var);
                    if gain > best_gain {
                        best_gain = gain;
                        best_vars.clear();
                        best_vars.push(var);
                    } else if gain == best_gain {
                        best_vars.push(var);
                    }
                }
                if best_gain < 0 || (best_gain == 0 && !self.config.allow_sideways) {
                    break; // local minimum -> restart
                }
                let var = best_vars[rng.gen_range(0..best_vars.len())];
                assignment.set(var, !assignment.value(var));
                self.stats.flips += 1;
            }
            if formula.evaluate(&assignment) {
                return SolveResult::Satisfiable(assignment);
            }
        }
        SolveResult::Unknown
    }

    /// The packed search: identical RNG stream and tie list, but the
    /// satisfaction check runs word-at-a-time over a [`BitVector`] mirror and
    /// all gains come from one clause sweep instead of one scan per variable.
    fn solve_packed(&mut self, formula: &CnfFormula, limits: &SearchLimits) -> SolveResult {
        let mut scorer = FlipScorer::new(formula);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut soft = CnfFormula::new(formula.num_vars());
        // A second scorer covers the imported soft clauses; it only exists
        // once imports arrive, so the empty-pool search stays byte-identical
        // to the racing baseline.
        let mut soft_scorer: Option<FlipScorer> = None;
        let mut combined: Vec<i64> = Vec::new();
        for _ in 0..self.config.max_restarts.max(1) {
            let before = soft.num_clauses();
            self.import_soft(&mut soft);
            if soft.num_clauses() > before {
                soft_scorer = Some(FlipScorer::new(&soft));
            }
            self.stats.restarts += 1;
            let mut assignment =
                Assignment::from_bools((0..formula.num_vars()).map(|_| rng.gen()).collect());
            let mut bits = BitVector::from(&assignment);
            self.stats.assignments_tried += 1;
            for _ in 0..self.config.max_flips {
                if limits.expired() {
                    return SolveResult::Unknown;
                }
                if scorer.packed().satisfied(&bits) {
                    debug_assert!(formula.evaluate(&assignment));
                    return SolveResult::Satisfiable(assignment);
                }
                // Greedy step over the packed gain sweep; the tie list is
                // built in the same variable order as the scalar path.
                let gains = match &mut soft_scorer {
                    None => scorer.gains(&assignment),
                    Some(soft_scorer) => {
                        // Hard + soft gains, variable-wise. The hard slice
                        // borrows the scorer's buffer, so copy it out before
                        // sweeping the soft side.
                        combined.clear();
                        combined.extend_from_slice(scorer.gains(&assignment));
                        for (acc, soft_gain) in
                            combined.iter_mut().zip(soft_scorer.gains(&assignment))
                        {
                            *acc += soft_gain;
                        }
                        &combined[..]
                    }
                };
                let mut best_gain = i64::MIN;
                let mut best_vars: Vec<Variable> = Vec::new();
                for (v, &gain) in gains.iter().enumerate() {
                    if gain > best_gain {
                        best_gain = gain;
                        best_vars.clear();
                        best_vars.push(Variable::new(v));
                    } else if gain == best_gain {
                        best_vars.push(Variable::new(v));
                    }
                }
                if best_gain < 0 || (best_gain == 0 && !self.config.allow_sideways) {
                    break; // local minimum -> restart
                }
                let var = best_vars[rng.gen_range(0..best_vars.len())];
                let flipped = !assignment.value(var);
                assignment.set(var, flipped);
                bits.set(var.index(), flipped);
                self.stats.flips += 1;
            }
            if scorer.packed().satisfied(&bits) {
                return SolveResult::Satisfiable(assignment);
            }
        }
        SolveResult::Unknown
    }
}

impl Solver for Gsat {
    fn solve_limited(&mut self, formula: &CnfFormula, limits: &SearchLimits) -> SolveResult {
        self.stats = SolverStats::default();
        // An empty clause can never be satisfied, so even this incomplete
        // solver may answer UNSAT definitively instead of giving up.
        if formula.has_empty_clause() {
            return SolveResult::Unsatisfiable;
        }
        if formula.num_vars() == 0 {
            return SolveResult::Satisfiable(Assignment::from_bools(Vec::new()));
        }
        match self.config.eval_mode {
            EvalMode::Scalar => self.solve_scalar(formula, limits),
            EvalMode::Packed => self.solve_packed(formula, limits),
        }
    }

    fn stats(&self) -> SolverStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "gsat"
    }

    fn reseed(&mut self, seed: u64) {
        self.config.seed = seed;
    }

    fn attach_share(&mut self, handle: ShareHandle) {
        self.share = Some(handle);
    }

    fn detach_share(&mut self) {
        self.share = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::cnf_formula;
    use cnf::generators::{self, RandomKSatConfig};

    #[test]
    fn solves_small_satisfiable_instances() {
        let mut solver = Gsat::new();
        for formula in [
            cnf_formula![[1, 2], [-1, -2], [1, -2]],
            cnf_formula![[1], [2], [3], [-1, -2, 3]],
            generators::section4_sat_instance(),
        ] {
            match solver.solve(&formula) {
                SolveResult::Satisfiable(model) => assert!(formula.evaluate(&model)),
                other => panic!("expected SAT, got {other}"),
            }
        }
    }

    #[test]
    fn returns_unknown_for_unsatisfiable_instances() {
        let mut solver = Gsat::with_config(GsatConfig {
            max_flips: 200,
            max_restarts: 3,
            ..GsatConfig::default()
        });
        let result = solver.solve(&generators::section4_unsat_instance());
        assert_eq!(result, SolveResult::Unknown);
        assert!(solver.stats().restarts >= 1);
    }

    #[test]
    fn trivial_formulas() {
        let mut solver = Gsat::new();
        assert!(solver.solve(&CnfFormula::new(0)).is_sat());
        // Empty clause ⇒ trivially UNSAT, answered definitively.
        let mut empty_clause = CnfFormula::new(1);
        empty_clause.add_clause([]);
        assert_eq!(solver.solve(&empty_clause), SolveResult::Unsatisfiable);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let formula =
            generators::random_ksat(&RandomKSatConfig::new(12, 40, 3).with_seed(7)).unwrap();
        let mut a = Gsat::with_config(GsatConfig {
            seed: 11,
            ..GsatConfig::default()
        });
        let mut b = Gsat::with_config(GsatConfig {
            seed: 11,
            ..GsatConfig::default()
        });
        assert_eq!(a.solve(&formula), b.solve(&formula));
        assert_eq!(a.stats().flips, b.stats().flips);
    }

    #[test]
    fn models_from_random_instances_verify() {
        for seed in 0..5u64 {
            let formula =
                generators::random_ksat(&RandomKSatConfig::new(10, 25, 3).with_seed(seed)).unwrap();
            let mut solver = Gsat::new();
            if let SolveResult::Satisfiable(model) = solver.solve(&formula) {
                assert!(formula.evaluate(&model));
            }
        }
    }

    #[test]
    fn soft_imports_bias_but_never_decide() {
        use crate::share::{ShareHandle, SharedClausePool};
        use std::sync::Arc;
        for mode in [EvalMode::Scalar, EvalMode::Packed] {
            for seed in 0..5 {
                let formula = generators::random_ksat(
                    &RandomKSatConfig::from_ratio(12, 2.0, 3).with_seed(seed),
                )
                .unwrap();
                let pool = Arc::new(SharedClausePool::default());
                let foreign = ShareHandle::new(Arc::clone(&pool), 1);
                // Original clauses are trivially implied by the formula, so
                // they make a sound pool seed.
                for clause in formula.iter().take(4) {
                    assert!(foreign.export(clause.literals(), 2));
                }
                let mut solver = Gsat::with_config(GsatConfig {
                    eval_mode: mode,
                    seed: 7,
                    ..GsatConfig::default()
                });
                solver.attach_share(ShareHandle::new(Arc::clone(&pool), 0));
                let result = solver.solve(&formula);
                assert!(solver.stats().clauses_imported > 0);
                // Soft clauses only bias scoring: any SAT answer still
                // carries a model of the *hard* formula.
                if let Some(model) = result.model() {
                    assert!(formula.evaluate(model));
                }
            }
        }
    }

    #[test]
    fn empty_pool_matches_racing_baseline() {
        use crate::share::{ShareHandle, SharedClausePool};
        use std::sync::Arc;
        let formula =
            generators::random_ksat(&RandomKSatConfig::new(12, 40, 3).with_seed(7)).unwrap();
        for mode in [EvalMode::Scalar, EvalMode::Packed] {
            let config = GsatConfig {
                eval_mode: mode,
                seed: 11,
                ..GsatConfig::default()
            };
            let mut baseline = Gsat::with_config(config);
            let expected = baseline.solve(&formula);
            let mut cooperative = Gsat::with_config(config);
            let pool = Arc::new(SharedClausePool::default());
            cooperative.attach_share(ShareHandle::new(pool, 0));
            // Nothing to import: the search must be byte-identical.
            assert_eq!(cooperative.solve(&formula), expected);
            assert_eq!(cooperative.stats().clauses_imported, 0);
            assert_eq!(cooperative.stats().flips, baseline.stats().flips);
        }
    }

    #[test]
    fn gain_computation_matches_recount() {
        let formula = cnf_formula![[1, 2], [-1, 3], [-2, -3], [1, -3]];
        let assignment = Assignment::from_bools(vec![false, true, true]);
        for var in formula.variables() {
            let before = formula.count_satisfied_clauses(&assignment) as i64;
            let mut flipped = assignment.clone();
            flipped.set(var, !flipped.value(var));
            let after = formula.count_satisfied_clauses(&flipped) as i64;
            assert_eq!(
                Gsat::flip_gain(&formula, &assignment, var),
                after - before,
                "gain mismatch for {var}"
            );
        }
    }
}
