//! Unsatisfiable-core / minimal unsatisfiable subset (MUS) extraction.
//!
//! The hardware SAT-accelerator line of work the paper builds on (its
//! reference \[27\]) treats *unsatisfiable core extraction* as a first-class
//! output next to the SAT/UNSAT verdict: when an instance is UNSAT, which
//! subset of clauses is actually responsible? This module provides a
//! deletion-based extractor that shrinks an unsatisfiable formula to a
//! *minimal* unsatisfiable subset — every clause that remains is necessary
//! (removing any single one makes the rest satisfiable).

use crate::cdcl::CdclSolver;
use crate::solver::{SolveResult, Solver};
use cnf::{Clause, CnfFormula};
use std::fmt;

/// Statistics of a MUS extraction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MusStats {
    /// Number of SAT-solver calls issued.
    pub solver_calls: u64,
    /// Number of clauses in the original formula.
    pub original_clauses: usize,
    /// Number of clauses in the extracted core.
    pub core_clauses: usize,
}

impl fmt::Display for MusStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "core {}/{} clauses in {} solver calls",
            self.core_clauses, self.original_clauses, self.solver_calls
        )
    }
}

/// Outcome of [`MusExtractor::extract`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MusOutcome {
    /// The formula is satisfiable, so no unsatisfiable core exists.
    Satisfiable,
    /// The formula is unsatisfiable; the contained indices (into the original
    /// clause list, in increasing order) form a minimal unsatisfiable subset.
    Core(Vec<usize>),
}

impl MusOutcome {
    /// Returns the core clause indices, if any.
    pub fn core(&self) -> Option<&[usize]> {
        match self {
            MusOutcome::Core(indices) => Some(indices),
            MusOutcome::Satisfiable => None,
        }
    }
}

/// Deletion-based minimal-unsatisfiable-subset extractor.
///
/// The algorithm keeps a working set of clauses (initially all of them) and
/// tries to delete each clause in turn: if the remaining set is still
/// unsatisfiable the deletion is kept, otherwise the clause is marked as
/// necessary. One complete-solver call per clause gives a *minimal* (though
/// not necessarily minimum-cardinality) core.
///
/// ```
/// use cnf::cnf_formula;
/// use sat_solvers::{MusExtractor, MusOutcome};
///
/// // Clause 2 (x3) is irrelevant to the contradiction between clauses 0, 1.
/// let formula = cnf_formula![[1], [-1], [3]];
/// let mut extractor = MusExtractor::new();
/// match extractor.extract(&formula) {
///     MusOutcome::Core(core) => assert_eq!(core, vec![0, 1]),
///     MusOutcome::Satisfiable => unreachable!(),
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct MusExtractor {
    stats: MusStats,
}

impl MusExtractor {
    /// Creates an extractor (CDCL is used for the per-deletion checks).
    pub fn new() -> Self {
        MusExtractor::default()
    }

    /// Statistics of the most recent [`MusExtractor::extract`] call.
    pub fn stats(&self) -> MusStats {
        self.stats
    }

    fn is_unsat(&mut self, num_vars: usize, clauses: &[&Clause]) -> bool {
        self.stats.solver_calls += 1;
        let formula = CnfFormula::from_clauses(num_vars, clauses.iter().map(|&c| c.clone()));
        let mut solver = CdclSolver::new();
        matches!(solver.solve(&formula), SolveResult::Unsatisfiable)
    }

    /// Extracts a minimal unsatisfiable subset of `formula`'s clauses.
    ///
    /// Returns [`MusOutcome::Satisfiable`] if the formula has a model. The
    /// work is one complete-solver call to classify the formula plus one call
    /// per clause of the shrinking working set, so it is intended for the
    /// small-to-medium instances this workspace's experiments use.
    pub fn extract(&mut self, formula: &CnfFormula) -> MusOutcome {
        self.stats = MusStats {
            original_clauses: formula.num_clauses(),
            ..MusStats::default()
        };
        let all: Vec<&Clause> = formula.clauses().iter().collect();
        if !self.is_unsat(formula.num_vars(), &all) {
            return MusOutcome::Satisfiable;
        }
        // Working set of original indices, shrunk in place.
        let mut working: Vec<usize> = (0..formula.num_clauses()).collect();
        let mut i = 0;
        while i < working.len() {
            let candidate: Vec<&Clause> = working
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &idx)| &formula.clauses()[idx])
                .collect();
            if self.is_unsat(formula.num_vars(), &candidate) {
                // The clause is redundant for unsatisfiability; drop it.
                working.remove(i);
            } else {
                // The clause is necessary; keep it and move on.
                i += 1;
            }
        }
        self.stats.core_clauses = working.len();
        MusOutcome::Core(working)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::generators;
    use cnf::{cnf_formula, CnfFormula};

    fn subset_formula(formula: &CnfFormula, indices: &[usize]) -> CnfFormula {
        CnfFormula::from_clauses(
            formula.num_vars(),
            indices.iter().map(|&i| formula.clauses()[i].clone()),
        )
    }

    #[test]
    fn satisfiable_formula_has_no_core() {
        let mut extractor = MusExtractor::new();
        assert_eq!(
            extractor.extract(&generators::example6_sat()),
            MusOutcome::Satisfiable
        );
        assert!(extractor.stats().solver_calls >= 1);
    }

    #[test]
    fn irrelevant_clauses_are_removed() {
        let formula = cnf_formula![[1], [-1], [3], [2, 3], [-2, 3]];
        let mut extractor = MusExtractor::new();
        match extractor.extract(&formula) {
            MusOutcome::Core(core) => assert_eq!(core, vec![0, 1]),
            MusOutcome::Satisfiable => panic!("formula is unsatisfiable"),
        }
        assert_eq!(extractor.stats().core_clauses, 2);
    }

    #[test]
    fn core_is_unsat_and_minimal() {
        // The §IV UNSAT instance plus two padding clauses.
        let mut formula = generators::section4_unsat_instance();
        formula.add_clause([cnf::Variable::new(2).positive()]);
        formula.add_clause([
            cnf::Variable::new(2).negative(),
            cnf::Variable::new(0).positive(),
        ]);
        let mut extractor = MusExtractor::new();
        let MusOutcome::Core(core) = extractor.extract(&formula) else {
            panic!("formula is unsatisfiable");
        };
        // The core itself must be UNSAT.
        let mut cdcl = crate::CdclSolver::new();
        assert!(cdcl.solve(&subset_formula(&formula, &core)).is_unsat());
        // ... and minimal: dropping any single clause makes it satisfiable.
        for skip in 0..core.len() {
            let reduced: Vec<usize> = core
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &idx)| idx)
                .collect();
            let mut solver = crate::CdclSolver::new();
            assert!(
                solver.solve(&subset_formula(&formula, &reduced)).is_sat(),
                "core is not minimal: clause {skip} is redundant"
            );
        }
    }

    #[test]
    fn pigeonhole_core_spans_the_whole_instance() {
        // PHP(3,2) is minimally unsatisfiable only after removing nothing:
        // every clause participates in some refutation, but deletion-based
        // extraction still returns a valid (possibly smaller) MUS.
        let formula = generators::pigeonhole(3, 2);
        let mut extractor = MusExtractor::new();
        let MusOutcome::Core(core) = extractor.extract(&formula) else {
            panic!("pigeonhole instances are unsatisfiable");
        };
        let mut cdcl = crate::CdclSolver::new();
        assert!(cdcl.solve(&subset_formula(&formula, &core)).is_unsat());
        assert!(core.len() <= formula.num_clauses());
        assert_eq!(extractor.stats().original_clauses, formula.num_clauses());
    }

    #[test]
    fn stats_display() {
        let stats = MusStats {
            solver_calls: 5,
            original_clauses: 4,
            core_clauses: 2,
        };
        assert!(stats.to_string().contains("2/4"));
    }
}
