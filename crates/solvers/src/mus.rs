//! Unsatisfiable-core / minimal unsatisfiable subset (MUS) extraction.
//!
//! The hardware SAT-accelerator line of work the paper builds on (its
//! reference \[27\]) treats *unsatisfiable core extraction* as a first-class
//! output next to the SAT/UNSAT verdict: when an instance is UNSAT, which
//! subset of clauses is actually responsible? This module provides a
//! deletion-based extractor that shrinks an unsatisfiable formula to a
//! *minimal* unsatisfiable subset — every clause that remains is necessary
//! (removing any single one makes the rest satisfiable).

use crate::cdcl::{CdclSolver, IncrementalResult};
use crate::limits::SearchLimits;
use cnf::{CnfFormula, Literal, Variable};
use std::collections::HashSet;
use std::fmt;

/// Statistics of a MUS extraction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MusStats {
    /// Number of SAT-solver calls issued.
    pub solver_calls: u64,
    /// Number of clauses in the original formula.
    pub original_clauses: usize,
    /// Number of clauses in the extracted core.
    pub core_clauses: usize,
}

impl fmt::Display for MusStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "core {}/{} clauses in {} solver calls",
            self.core_clauses, self.original_clauses, self.solver_calls
        )
    }
}

/// Outcome of [`MusExtractor::extract`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MusOutcome {
    /// The formula is satisfiable, so no unsatisfiable core exists.
    Satisfiable,
    /// The formula is unsatisfiable; the contained indices (into the original
    /// clause list, in increasing order) form a minimal unsatisfiable subset.
    Core(Vec<usize>),
}

impl MusOutcome {
    /// Returns the core clause indices, if any.
    pub fn core(&self) -> Option<&[usize]> {
        match self {
            MusOutcome::Core(indices) => Some(indices),
            MusOutcome::Satisfiable => None,
        }
    }
}

/// Deletion-based minimal-unsatisfiable-subset extractor.
///
/// The algorithm keeps a working set of clauses (initially all of them) and
/// tries to delete each clause in turn: if the remaining set is still
/// unsatisfiable the deletion is kept, otherwise the clause is marked as
/// necessary. One complete-solver call per clause gives a *minimal* (though
/// not necessarily minimum-cardinality) core.
///
/// The checks run on **one** incremental [`CdclSolver`]: every original
/// clause `C_i` is augmented once with a fresh *selector* variable
/// (`C_i ∨ ¬s_i`) and pushed up front, and each membership question is then a
/// [`CdclSolver::solve_under_assumptions`] call over the active selectors —
/// no per-candidate formula rebuild, and learned clauses carry over between
/// checks. Failed-assumption cores double as *clause-set refinement*: when a
/// deletion keeps the set unsatisfiable, every clause outside the returned
/// core is discarded in the same stroke.
///
/// ```
/// use cnf::cnf_formula;
/// use sat_solvers::{MusExtractor, MusOutcome};
///
/// // Clause 2 (x3) is irrelevant to the contradiction between clauses 0, 1.
/// let formula = cnf_formula![[1], [-1], [3]];
/// let mut extractor = MusExtractor::new();
/// match extractor.extract(&formula) {
///     MusOutcome::Core(core) => assert_eq!(core, vec![0, 1]),
///     MusOutcome::Satisfiable => unreachable!(),
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct MusExtractor {
    stats: MusStats,
}

impl MusExtractor {
    /// Creates an extractor (CDCL is used for the per-deletion checks).
    pub fn new() -> Self {
        MusExtractor::default()
    }

    /// Statistics of the most recent [`MusExtractor::extract`] call.
    pub fn stats(&self) -> MusStats {
        self.stats
    }

    /// Extracts a minimal unsatisfiable subset of `formula`'s clauses.
    ///
    /// Returns [`MusOutcome::Satisfiable`] if the formula has a model. The
    /// work is one incremental-solver call to classify the formula plus one
    /// call per clause of the shrinking working set — the selector-augmented
    /// formula is encoded and pushed exactly once, so the per-candidate cost
    /// is an assumption-driven re-search, not a solver rebuild.
    pub fn extract(&mut self, formula: &CnfFormula) -> MusOutcome {
        let num_vars = formula.num_vars();
        let num_clauses = formula.num_clauses();
        self.stats = MusStats {
            original_clauses: num_clauses,
            ..MusStats::default()
        };
        // Guard clause `i` with selector variable `s_i = num_vars + i`:
        // assuming `s_i` activates the clause, omitting it disables it.
        let mut augmented = CnfFormula::new(num_vars + num_clauses);
        for (index, clause) in formula.clauses().iter().enumerate() {
            let guard = Variable::new(num_vars + index).negative();
            augmented.add_clause(clause.iter().copied().chain([guard]));
        }
        let mut solver = CdclSolver::new();
        solver.push(&augmented);
        let limits = SearchLimits::unlimited();
        let selector_of = |index: usize| Variable::new(num_vars + index).positive();
        let index_of = |literal: Literal| literal.variable().index() - num_vars;

        // Classify the formula with every clause active; the failed core
        // already discards clauses the refutation never touched.
        let assume_all: Vec<Literal> = (0..num_clauses).map(selector_of).collect();
        self.stats.solver_calls += 1;
        let mut pending = match solver.solve_under_assumptions(&assume_all, &limits) {
            IncrementalResult::Satisfiable(_) => return MusOutcome::Satisfiable,
            IncrementalResult::Unsatisfiable(core) => {
                let mut indices: Vec<usize> = core.iter().map(|&lit| index_of(lit)).collect();
                indices.sort_unstable();
                indices
            }
            IncrementalResult::Unknown => unreachable!("unlimited search reported a timeout"),
        };

        // Deletion loop: try each remaining clause without its selector.
        let mut necessary: Vec<usize> = Vec::new();
        while !pending.is_empty() {
            let candidate = pending.remove(0);
            let assumptions: Vec<Literal> = necessary
                .iter()
                .chain(pending.iter())
                .map(|&index| selector_of(index))
                .collect();
            self.stats.solver_calls += 1;
            match solver.solve_under_assumptions(&assumptions, &limits) {
                IncrementalResult::Satisfiable(_) => necessary.push(candidate),
                IncrementalResult::Unsatisfiable(core) => {
                    // Still unsatisfiable without the candidate: drop it, and
                    // drop every other pending clause outside the new core in
                    // the same stroke.
                    let keep: HashSet<usize> = core.iter().map(|&lit| index_of(lit)).collect();
                    pending.retain(|index| keep.contains(index));
                }
                IncrementalResult::Unknown => unreachable!("unlimited search reported a timeout"),
            }
        }
        necessary.sort_unstable();
        self.stats.core_clauses = necessary.len();
        MusOutcome::Core(necessary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;
    use cnf::generators;
    use cnf::{cnf_formula, CnfFormula};

    fn subset_formula(formula: &CnfFormula, indices: &[usize]) -> CnfFormula {
        CnfFormula::from_clauses(
            formula.num_vars(),
            indices.iter().map(|&i| formula.clauses()[i].clone()),
        )
    }

    #[test]
    fn satisfiable_formula_has_no_core() {
        let mut extractor = MusExtractor::new();
        assert_eq!(
            extractor.extract(&generators::example6_sat()),
            MusOutcome::Satisfiable
        );
        assert!(extractor.stats().solver_calls >= 1);
    }

    #[test]
    fn irrelevant_clauses_are_removed() {
        let formula = cnf_formula![[1], [-1], [3], [2, 3], [-2, 3]];
        let mut extractor = MusExtractor::new();
        match extractor.extract(&formula) {
            MusOutcome::Core(core) => assert_eq!(core, vec![0, 1]),
            MusOutcome::Satisfiable => panic!("formula is unsatisfiable"),
        }
        assert_eq!(extractor.stats().core_clauses, 2);
    }

    #[test]
    fn core_is_unsat_and_minimal() {
        // The §IV UNSAT instance plus two padding clauses.
        let mut formula = generators::section4_unsat_instance();
        formula.add_clause([cnf::Variable::new(2).positive()]);
        formula.add_clause([
            cnf::Variable::new(2).negative(),
            cnf::Variable::new(0).positive(),
        ]);
        let mut extractor = MusExtractor::new();
        let MusOutcome::Core(core) = extractor.extract(&formula) else {
            panic!("formula is unsatisfiable");
        };
        // The core itself must be UNSAT.
        let mut cdcl = crate::CdclSolver::new();
        assert!(cdcl.solve(&subset_formula(&formula, &core)).is_unsat());
        // ... and minimal: dropping any single clause makes it satisfiable.
        for skip in 0..core.len() {
            let reduced: Vec<usize> = core
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &idx)| idx)
                .collect();
            let mut solver = crate::CdclSolver::new();
            assert!(
                solver.solve(&subset_formula(&formula, &reduced)).is_sat(),
                "core is not minimal: clause {skip} is redundant"
            );
        }
    }

    #[test]
    fn pigeonhole_core_spans_the_whole_instance() {
        // PHP(3,2) is minimally unsatisfiable only after removing nothing:
        // every clause participates in some refutation, but deletion-based
        // extraction still returns a valid (possibly smaller) MUS.
        let formula = generators::pigeonhole(3, 2);
        let mut extractor = MusExtractor::new();
        let MusOutcome::Core(core) = extractor.extract(&formula) else {
            panic!("pigeonhole instances are unsatisfiable");
        };
        let mut cdcl = crate::CdclSolver::new();
        assert!(cdcl.solve(&subset_formula(&formula, &core)).is_unsat());
        assert!(core.len() <= formula.num_clauses());
        assert_eq!(extractor.stats().original_clauses, formula.num_clauses());
    }

    #[test]
    fn overlapping_cores_yield_one_minimal_core() {
        // Two independent contradictions plus glue clauses belonging to
        // neither; a minimal core is either {0, 1} or {2, 3}, never a mix.
        let formula = cnf_formula![[1], [-1], [2], [-2], [1, 2, 3], [-3, 4]];
        let mut extractor = MusExtractor::new();
        let MusOutcome::Core(core) = extractor.extract(&formula) else {
            panic!("formula is unsatisfiable");
        };
        assert!(
            core == vec![0, 1] || core == vec![2, 3],
            "core {core:?} mixes independent contradictions"
        );
        // Minimality: dropping any single core clause flips the verdict.
        for skip in 0..core.len() {
            let reduced: Vec<usize> = core
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &idx)| idx)
                .collect();
            let mut solver = crate::CdclSolver::new();
            assert!(
                solver.solve(&subset_formula(&formula, &reduced)).is_sat(),
                "core is not minimal: position {skip} is redundant"
            );
        }
        // One classification call plus at most one deletion attempt per
        // clause; clause-set refinement can only lower the count.
        assert!(extractor.stats().solver_calls <= 1 + formula.num_clauses() as u64);
        assert_eq!(extractor.stats().core_clauses, 2);
    }

    #[test]
    fn stats_display() {
        let stats = MusStats {
            solver_calls: 5,
            original_clauses: 4,
            core_clauses: 2,
        };
        assert!(stats.to_string().contains("2/4"));
    }
}
