//! WalkSAT stochastic local search.

use crate::limits::SearchLimits;
use crate::score::{self, FlipScorer};
use crate::share::ShareHandle;
use crate::solver::{SolveResult, Solver, SolverStats};
use cnf::{Assignment, BitVector, CnfFormula, EvalMode, Variable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the WalkSAT local-search solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkSatConfig {
    /// Probability of taking a purely random flip inside an unsatisfied clause.
    pub noise: f64,
    /// Maximum number of flips per restart.
    pub max_flips: u64,
    /// Maximum number of random restarts.
    pub max_restarts: u64,
    /// PRNG seed (the search is deterministic for a fixed seed).
    pub seed: u64,
    /// Evaluation core: packed (64 candidate flips per word) or the scalar
    /// reference path. Both produce bit-identical searches.
    pub eval_mode: EvalMode,
}

impl Default for WalkSatConfig {
    fn default() -> Self {
        WalkSatConfig {
            noise: 0.5,
            max_flips: 10_000,
            max_restarts: 10,
            seed: 0,
            eval_mode: EvalMode::default(),
        }
    }
}

/// The WalkSAT incomplete solver (paper reference \[8\]): repeatedly picks an
/// unsatisfied clause and flips one of its variables, choosing either the
/// least-breaking variable or a random one.
///
/// Being incomplete, it can only answer [`SolveResult::Satisfiable`] or
/// [`SolveResult::Unknown`] — it never *proves* unsatisfiability, except for
/// the trivial case of a formula containing an empty clause, which is
/// unsatisfiable by inspection.
///
/// ```
/// use cnf::cnf_formula;
/// use sat_solvers::{Solver, WalkSat};
/// let mut solver = WalkSat::new();
/// assert!(solver.solve(&cnf_formula![[1, 2], [-1, -2]]).is_sat());
/// ```
#[derive(Debug, Clone, Default)]
pub struct WalkSat {
    config: WalkSatConfig,
    stats: SolverStats,
    /// Cooperative-portfolio pool handle. Imported clauses become *soft*
    /// scoring constraints: they bias the greedy flip choice but never decide
    /// the verdict, which is only declared on the hard input formula.
    share: Option<ShareHandle>,
}

impl WalkSat {
    /// Creates a WalkSAT solver with default parameters.
    pub fn new() -> Self {
        WalkSat::default()
    }

    /// Creates a WalkSAT solver with an explicit configuration.
    pub fn with_config(config: WalkSatConfig) -> Self {
        WalkSat {
            config,
            stats: SolverStats::default(),
            share: None,
        }
    }

    /// Pulls unseen pool clauses into the soft formula (called at restart
    /// boundaries). Clauses mentioning variables beyond the current instance
    /// are skipped — they cannot score against this assignment.
    fn import_soft(&mut self, soft: &mut CnfFormula) {
        let Some(mut share) = self.share.take() else {
            return;
        };
        let num_vars = soft.num_vars();
        let mut imported = 0u64;
        share.import(|lits| {
            if lits.iter().all(|l| l.variable().index() < num_vars) {
                soft.push_clause(cnf::Clause::from_literals(lits.to_vec()));
                imported += 1;
            }
        });
        self.share = Some(share);
        self.stats.clauses_imported += imported;
    }

    /// Number of clauses that would become unsatisfied by flipping `var`.
    fn break_count(formula: &CnfFormula, assignment: &Assignment, var: Variable) -> usize {
        score::break_count(formula, assignment, var)
    }

    /// The scalar reference search: one assignment and one candidate flip at
    /// a time over `Vec<bool>` structures.
    fn solve_scalar(&mut self, formula: &CnfFormula, limits: &SearchLimits) -> SolveResult {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut soft = CnfFormula::new(formula.num_vars());
        for _ in 0..self.config.max_restarts.max(1) {
            self.import_soft(&mut soft);
            // Random initial assignment.
            let mut assignment =
                Assignment::from_bools((0..formula.num_vars()).map(|_| rng.gen()).collect());
            self.stats.assignments_tried += 1;
            for _ in 0..self.config.max_flips {
                if limits.expired() {
                    return SolveResult::Unknown;
                }
                let unsatisfied: Vec<usize> = formula
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| !c.evaluate(&assignment))
                    .map(|(i, _)| i)
                    .collect();
                if unsatisfied.is_empty() {
                    debug_assert!(formula.evaluate(&assignment));
                    return SolveResult::Satisfiable(assignment);
                }
                let clause = formula
                    .clause(unsatisfied[rng.gen_range(0..unsatisfied.len())])
                    .expect("index valid");
                let var = if rng.gen_bool(self.config.noise) {
                    clause.literals()[rng.gen_range(0..clause.len())].variable()
                } else {
                    // Imported soft clauses join the break score: a flip that
                    // would violate shared knowledge is penalized, but the
                    // empty soft formula contributes zero and leaves the
                    // baseline search untouched.
                    clause
                        .iter()
                        .map(|l| l.variable())
                        .min_by_key(|&v| {
                            Self::break_count(formula, &assignment, v)
                                + score::break_count(&soft, &assignment, v)
                        })
                        .expect("clause non-empty")
                };
                assignment.set(var, !assignment.value(var));
                self.stats.flips += 1;
            }
        }
        SolveResult::Unknown
    }

    /// The packed search: identical RNG stream and tie-breaking, but clause
    /// checks run 64 variables per word over a [`BitVector`] mirror and a
    /// whole clause of candidate flips is break-scored in one pass.
    fn solve_packed(&mut self, formula: &CnfFormula, limits: &SearchLimits) -> SolveResult {
        let mut scorer = FlipScorer::new(formula);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut candidates: Vec<Variable> = Vec::new();
        let mut soft = CnfFormula::new(formula.num_vars());
        // A second scorer covers the imported soft clauses; it only exists
        // once imports arrive, so the empty-pool search stays byte-identical
        // to the racing baseline.
        let mut soft_scorer: Option<FlipScorer> = None;
        let mut combined: Vec<u32> = Vec::new();
        for _ in 0..self.config.max_restarts.max(1) {
            let before = soft.num_clauses();
            self.import_soft(&mut soft);
            if soft.num_clauses() > before {
                soft_scorer = Some(FlipScorer::new(&soft));
            }
            let mut assignment =
                Assignment::from_bools((0..formula.num_vars()).map(|_| rng.gen()).collect());
            let mut bits = BitVector::from(&assignment);
            self.stats.assignments_tried += 1;
            for _ in 0..self.config.max_flips {
                if limits.expired() {
                    return SolveResult::Unknown;
                }
                let unsatisfied: Vec<usize> = (0..scorer.packed().num_clauses())
                    .filter(|&c| !scorer.packed().clause_satisfied(c, &bits))
                    .collect();
                if unsatisfied.is_empty() {
                    debug_assert!(formula.evaluate(&assignment));
                    return SolveResult::Satisfiable(assignment);
                }
                let clause = formula
                    .clause(unsatisfied[rng.gen_range(0..unsatisfied.len())])
                    .expect("index valid");
                let var = if rng.gen_bool(self.config.noise) {
                    clause.literals()[rng.gen_range(0..clause.len())].variable()
                } else if clause.len() <= cnf::bits::WORD_BITS {
                    // Score the whole clause of candidate flips in one pass;
                    // the first minimum matches `min_by_key` tie-breaking.
                    candidates.clear();
                    candidates.extend(clause.iter().map(|l| l.variable()));
                    let breaks = match &mut soft_scorer {
                        None => scorer.break_counts(&assignment, &candidates),
                        Some(soft_scorer) => {
                            // Hard + soft break counts, lane-wise. The hard
                            // slice borrows the scorer's buffer, so copy it
                            // out before scoring the soft side.
                            combined.clear();
                            combined
                                .extend_from_slice(scorer.break_counts(&assignment, &candidates));
                            for (acc, soft_breaks) in combined
                                .iter_mut()
                                .zip(soft_scorer.break_counts(&assignment, &candidates))
                            {
                                *acc += soft_breaks;
                            }
                            &combined[..]
                        }
                    };
                    let best = breaks
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, b)| b)
                        .expect("clause non-empty")
                        .0;
                    candidates[best]
                } else {
                    // Clauses wider than a word fall back to the scalar scan.
                    clause
                        .iter()
                        .map(|l| l.variable())
                        .min_by_key(|&v| {
                            Self::break_count(formula, &assignment, v)
                                + score::break_count(&soft, &assignment, v)
                        })
                        .expect("clause non-empty")
                };
                let flipped = !assignment.value(var);
                assignment.set(var, flipped);
                bits.set(var.index(), flipped);
                self.stats.flips += 1;
            }
        }
        SolveResult::Unknown
    }
}

impl Solver for WalkSat {
    fn solve_limited(&mut self, formula: &CnfFormula, limits: &SearchLimits) -> SolveResult {
        self.stats = SolverStats::default();
        // An empty clause can never be satisfied, so even this incomplete
        // solver may answer UNSAT definitively instead of giving up.
        if formula.has_empty_clause() {
            return SolveResult::Unsatisfiable;
        }
        if formula.num_vars() == 0 {
            return SolveResult::Satisfiable(Assignment::from_bools(Vec::new()));
        }
        match self.config.eval_mode {
            EvalMode::Scalar => self.solve_scalar(formula, limits),
            EvalMode::Packed => self.solve_packed(formula, limits),
        }
    }

    fn stats(&self) -> SolverStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "walksat"
    }

    fn reseed(&mut self, seed: u64) {
        self.config.seed = seed;
    }

    fn attach_share(&mut self, handle: ShareHandle) {
        self.share = Some(handle);
    }

    fn detach_share(&mut self) {
        self.share = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::cnf_formula;
    use cnf::generators::{self, RandomKSatConfig};

    #[test]
    fn finds_models_for_satisfiable_instances() {
        let mut solver = WalkSat::new();
        for f in [
            generators::example6_sat(),
            generators::section4_sat_instance(),
            generators::parity_chain(5, false),
        ] {
            let result = solver.solve(&f);
            let model = result.model().expect("satisfiable instance");
            assert!(f.evaluate(model));
            assert!(solver.stats().assignments_tried >= 1);
        }
    }

    #[test]
    fn returns_unknown_on_unsat() {
        let config = WalkSatConfig {
            max_flips: 200,
            max_restarts: 2,
            ..WalkSatConfig::default()
        };
        let mut solver = WalkSat::with_config(config);
        assert_eq!(
            solver.solve(&generators::example7_unsat()),
            SolveResult::Unknown
        );
        assert_eq!(
            solver.solve(&generators::pigeonhole(3, 2)),
            SolveResult::Unknown
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let f = generators::random_ksat(&RandomKSatConfig::new(12, 40, 3).with_seed(3)).unwrap();
        let mut a = WalkSat::with_config(WalkSatConfig {
            seed: 9,
            ..WalkSatConfig::default()
        });
        let mut b = WalkSat::with_config(WalkSatConfig {
            seed: 9,
            ..WalkSatConfig::default()
        });
        assert_eq!(a.solve(&f), b.solve(&f));
    }

    #[test]
    fn solves_easy_random_instances() {
        // Under-constrained random 3-SAT (ratio 2.0) is almost surely satisfiable
        // and easy for local search.
        for seed in 0..10 {
            let f =
                generators::random_ksat(&RandomKSatConfig::from_ratio(15, 2.0, 3).with_seed(seed))
                    .unwrap();
            let mut solver = WalkSat::new();
            let result = solver.solve(&f);
            let model = result.model().expect("under-constrained instance");
            assert!(f.evaluate(model));
        }
    }

    #[test]
    fn empty_formula_and_empty_clause_edge_cases() {
        let mut solver = WalkSat::new();
        assert!(solver.solve(&cnf::CnfFormula::new(0)).is_sat());
        // A formula with an empty clause is trivially UNSAT, and even an
        // incomplete solver must say so rather than give up.
        let mut f = cnf::CnfFormula::new(1);
        f.push_clause(cnf::Clause::new());
        assert_eq!(solver.solve(&f), SolveResult::Unsatisfiable);
        assert_eq!(solver.name(), "walksat");
    }

    #[test]
    fn reseed_changes_then_restores_the_search() {
        let f = generators::random_ksat(&RandomKSatConfig::new(12, 40, 3).with_seed(3)).unwrap();
        let mut solver = WalkSat::with_config(WalkSatConfig {
            seed: 1,
            ..WalkSatConfig::default()
        });
        let first = solver.solve(&f);
        let first_stats = solver.stats();
        solver.reseed(99);
        let _ = solver.solve(&f);
        solver.reseed(1);
        assert_eq!(solver.solve(&f), first);
        assert_eq!(solver.stats(), first_stats);
    }

    #[test]
    fn soft_imports_bias_but_never_decide() {
        use crate::share::{ShareHandle, SharedClausePool};
        use std::sync::Arc;
        for mode in [EvalMode::Scalar, EvalMode::Packed] {
            for seed in 0..5 {
                let f = generators::random_ksat(
                    &RandomKSatConfig::from_ratio(12, 2.0, 3).with_seed(seed),
                )
                .unwrap();
                let pool = Arc::new(SharedClausePool::default());
                let foreign = ShareHandle::new(Arc::clone(&pool), 1);
                // Original clauses are trivially implied by the formula, so
                // they make a sound pool seed.
                for clause in f.iter().take(4) {
                    assert!(foreign.export(clause.literals(), 2));
                }
                let mut solver = WalkSat::with_config(WalkSatConfig {
                    eval_mode: mode,
                    seed: 7,
                    ..WalkSatConfig::default()
                });
                solver.attach_share(ShareHandle::new(Arc::clone(&pool), 0));
                let result = solver.solve(&f);
                assert!(solver.stats().clauses_imported > 0);
                // Soft clauses only bias scoring: any SAT answer still
                // carries a model of the *hard* formula.
                if let Some(model) = result.model() {
                    assert!(f.evaluate(model));
                }
            }
        }
    }

    #[test]
    fn empty_pool_matches_racing_baseline() {
        use crate::share::{ShareHandle, SharedClausePool};
        use std::sync::Arc;
        let f = generators::random_ksat(&RandomKSatConfig::new(12, 40, 3).with_seed(3)).unwrap();
        for mode in [EvalMode::Scalar, EvalMode::Packed] {
            let config = WalkSatConfig {
                eval_mode: mode,
                seed: 11,
                ..WalkSatConfig::default()
            };
            let mut baseline = WalkSat::with_config(config);
            let expected = baseline.solve(&f);
            let mut cooperative = WalkSat::with_config(config);
            let pool = Arc::new(SharedClausePool::default());
            cooperative.attach_share(ShareHandle::new(pool, 0));
            // Nothing to import: the search must be byte-identical.
            assert_eq!(cooperative.solve(&f), expected);
            assert_eq!(cooperative.stats().clauses_imported, 0);
            assert_eq!(cooperative.stats().flips, baseline.stats().flips);
        }
    }

    #[test]
    fn break_count_identifies_critical_variable() {
        // (x1)(x1+x2): flipping x1 from true breaks both clauses; flipping x2 breaks none.
        let f = cnf_formula![[1], [1, 2]];
        let a = Assignment::from_bools(vec![true, false]);
        assert_eq!(WalkSat::break_count(&f, &a, Variable::new(0)), 2);
        assert_eq!(WalkSat::break_count(&f, &a, Variable::new(1)), 0);
    }
}
