//! A sequential solver portfolio.

use crate::cdcl::CdclSolver;
use crate::limits::SearchLimits;
use crate::solver::{SolveResult, Solver, SolverStats};
use crate::two_sat::TwoSatSolver;
use crate::walksat::{WalkSat, WalkSatConfig};
use cnf::CnfFormula;
use std::fmt;

/// A sequential portfolio: run a list of member solvers in order and return
/// the first definitive (SAT or UNSAT) answer.
///
/// The default portfolio mirrors how a practical front end would dispatch the
/// workloads in this workspace:
///
/// 1. [`TwoSatSolver`] — answers 2-CNF instances (the paper's worked examples)
///    in polynomial time and bows out of everything else,
/// 2. a short [`WalkSat`] burst — cheaply finds models of easy satisfiable
///    instances,
/// 3. [`CdclSolver`] — the complete backstop, so the portfolio as a whole is
///    complete.
///
/// ```
/// use cnf::cnf_formula;
/// use sat_solvers::{Portfolio, Solver};
///
/// let mut portfolio = Portfolio::new();
/// assert!(portfolio.solve(&cnf_formula![[1, 2], [-1, -2]]).is_sat());
/// assert_eq!(portfolio.winner(), Some("two-sat"));
///
/// assert!(portfolio.solve(&cnf_formula![[1, 2, 3], [-1], [-2], [-3]]).is_unsat());
/// assert_eq!(portfolio.winner(), Some("cdcl"));
/// ```
pub struct Portfolio {
    members: Vec<Box<dyn Solver>>,
    stats: SolverStats,
}

impl fmt::Debug for Portfolio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Portfolio")
            .field("members", &self.member_names())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for Portfolio {
    fn default() -> Self {
        Portfolio::new()
    }
}

impl Portfolio {
    /// Creates the default three-member portfolio (2-SAT, WalkSAT, CDCL).
    pub fn new() -> Self {
        let walksat = WalkSat::with_config(WalkSatConfig {
            max_flips: 2_000,
            max_restarts: 2,
            ..WalkSatConfig::default()
        });
        Portfolio::with_members(vec![
            Box::new(TwoSatSolver::new()),
            Box::new(walksat),
            Box::new(CdclSolver::new()),
        ])
    }

    /// Creates a portfolio from an explicit member list (tried in order).
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn with_members(members: Vec<Box<dyn Solver>>) -> Self {
        assert!(!members.is_empty(), "a portfolio needs at least one member");
        Portfolio {
            members,
            stats: SolverStats::default(),
        }
    }

    /// The name of the member that produced the last definitive answer, if
    /// any. Also surfaced as [`SolverStats::winner`] so downstream stats
    /// consumers can tell the members apart.
    pub fn winner(&self) -> Option<&'static str> {
        self.stats.winner
    }

    /// Names of the member solvers, in dispatch order.
    pub fn member_names(&self) -> Vec<&'static str> {
        self.members.iter().map(|m| m.name()).collect()
    }
}

fn accumulate(total: &mut SolverStats, part: SolverStats) {
    total.decisions += part.decisions;
    total.conflicts += part.conflicts;
    total.propagations += part.propagations;
    total.restarts += part.restarts;
    total.learned_clauses += part.learned_clauses;
    total.assignments_tried += part.assignments_tried;
    total.flips += part.flips;
}

impl Solver for Portfolio {
    fn solve_limited(&mut self, formula: &CnfFormula, limits: &SearchLimits) -> SolveResult {
        self.stats = SolverStats::default();
        for member in &mut self.members {
            if limits.expired() {
                break;
            }
            let result = member.solve_limited(formula, limits);
            accumulate(&mut self.stats, member.stats());
            match result {
                SolveResult::Unknown => continue,
                definitive => {
                    self.stats.winner = Some(member.name());
                    return definitive;
                }
            }
        }
        SolveResult::Unknown
    }

    fn stats(&self) -> SolverStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "portfolio"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BruteForceSolver, Gsat, Schoening};
    use cnf::cnf_formula;
    use cnf::generators::{self, RandomKSatConfig};

    #[test]
    fn two_sat_member_wins_on_2cnf() {
        let mut portfolio = Portfolio::new();
        assert!(portfolio.solve(&generators::example6_sat()).is_sat());
        assert_eq!(portfolio.winner(), Some("two-sat"));
        assert!(portfolio.solve(&generators::example7_unsat()).is_unsat());
        assert_eq!(portfolio.winner(), Some("two-sat"));
    }

    #[test]
    fn cdcl_backstop_makes_portfolio_complete() {
        let mut portfolio = Portfolio::new();
        let unsat3 = generators::pigeonhole(4, 3);
        assert!(portfolio.solve(&unsat3).is_unsat());
        assert_eq!(portfolio.winner(), Some("cdcl"));
    }

    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        for seed in 0..15u64 {
            let formula =
                generators::random_ksat(&RandomKSatConfig::new(9, 36, 3).with_seed(seed)).unwrap();
            let mut portfolio = Portfolio::new();
            let mut oracle = BruteForceSolver::new();
            assert_eq!(
                portfolio.solve(&formula).is_sat(),
                oracle.solve(&formula).is_sat(),
                "seed {seed}"
            );
            assert!(portfolio.winner().is_some());
        }
    }

    #[test]
    fn custom_member_list() {
        let mut portfolio =
            Portfolio::with_members(vec![Box::new(Schoening::new()), Box::new(Gsat::new())]);
        assert_eq!(portfolio.member_names(), vec!["schoening", "gsat"]);
        // Both members are incomplete, so an UNSAT instance stays Unknown.
        assert_eq!(
            portfolio.solve(&generators::section4_unsat_instance()),
            SolveResult::Unknown
        );
        assert_eq!(portfolio.winner(), None);
        // A satisfiable instance is found by the first member that succeeds.
        assert!(portfolio.solve(&cnf_formula![[1, 2], [2, 3]]).is_sat());
        assert_eq!(portfolio.winner(), Some("schoening"));
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_portfolio_panics() {
        let _ = Portfolio::with_members(Vec::new());
    }

    #[test]
    fn stats_are_accumulated_across_members() {
        let mut portfolio = Portfolio::new();
        let formula = generators::pigeonhole(4, 3);
        let _ = portfolio.solve(&formula);
        // WalkSAT flips plus CDCL decisions should both be visible.
        let stats = portfolio.stats();
        assert!(stats.flips > 0, "walksat member must have run");
        assert!(stats.decisions > 0, "cdcl member must have run");
    }

    #[test]
    fn winning_member_is_reported_in_stats() {
        let mut portfolio = Portfolio::new();
        let _ = portfolio.solve(&generators::example6_sat());
        assert_eq!(portfolio.stats().winner, Some("two-sat"));
        assert_eq!(portfolio.winner(), portfolio.stats().winner);
        assert!(portfolio.stats().to_string().contains("winner=two-sat"));
        let _ = portfolio.solve(&generators::pigeonhole(4, 3));
        assert_eq!(portfolio.stats().winner, Some("cdcl"));
    }

    #[test]
    fn expired_deadline_interrupts_with_unknown() {
        let mut portfolio = Portfolio::new();
        let limits = crate::SearchLimits::deadline_in(std::time::Duration::ZERO);
        assert_eq!(
            portfolio.solve_limited(&generators::pigeonhole(5, 4), &limits),
            SolveResult::Unknown
        );
        assert_eq!(portfolio.winner(), None);
    }
}
