//! A sequential solver portfolio.

use crate::cdcl::CdclSolver;
use crate::limits::SearchLimits;
use crate::solver::{SolveResult, Solver, SolverStats};
use crate::two_sat::TwoSatSolver;
use crate::walksat::{WalkSat, WalkSatConfig};
use cnf::{CnfFormula, EvalMode};
use std::fmt;

/// Derives a per-member seed from a portfolio seed and the member's index
/// (SplitMix64 finalizer), so every stochastic member of an ensemble walks an
/// independent — yet fully request-deterministic — pseudo-random stream.
pub(crate) fn member_seed(seed: u64, index: usize) -> u64 {
    let mut z = seed
        .wrapping_add(1 + index as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A sequential portfolio: run a list of member solvers in order and return
/// the first definitive (SAT or UNSAT) answer.
///
/// The default portfolio mirrors how a practical front end would dispatch the
/// workloads in this workspace:
///
/// 1. [`TwoSatSolver`] — answers 2-CNF instances (the paper's worked examples)
///    in polynomial time and bows out of everything else,
/// 2. a short [`WalkSat`] burst — cheaply finds models of easy satisfiable
///    instances,
/// 3. [`CdclSolver`] — the complete backstop, so the portfolio as a whole is
///    complete.
///
/// Before each solve, every stochastic member is reseeded with a value
/// derived from the portfolio seed ([`Portfolio::with_seed`]) and the
/// member's position, so a fixed portfolio seed makes the whole ensemble
/// deterministic — the property the unified API's per-request seeding relies
/// on. Members must be [`Send`] so the same member list type also powers the
/// thread-racing [`crate::ParallelPortfolio`].
///
/// ```
/// use cnf::cnf_formula;
/// use sat_solvers::{Portfolio, Solver};
///
/// let mut portfolio = Portfolio::new();
/// assert!(portfolio.solve(&cnf_formula![[1, 2], [-1, -2]]).is_sat());
/// assert_eq!(portfolio.winner(), Some("two-sat"));
///
/// assert!(portfolio.solve(&cnf_formula![[1, 2, 3], [-1], [-2], [-3]]).is_unsat());
/// assert_eq!(portfolio.winner(), Some("cdcl"));
/// ```
pub struct Portfolio {
    members: Vec<Box<dyn Solver + Send>>,
    stats: SolverStats,
    seed: u64,
}

impl fmt::Debug for Portfolio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Portfolio")
            .field("members", &self.member_names())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for Portfolio {
    fn default() -> Self {
        Portfolio::new()
    }
}

/// The default member trio shared by [`Portfolio::new`] and
/// [`crate::ParallelPortfolio::new`]: 2-SAT, a short WalkSAT burst, CDCL.
/// One definition keeps the sequential and racing portfolios comparable.
pub(crate) fn default_members() -> Vec<Box<dyn Solver + Send>> {
    default_members_with(EvalMode::default())
}

/// [`default_members`] with an explicit evaluation core for the members that
/// have scalar/packed paths.
pub(crate) fn default_members_with(eval_mode: EvalMode) -> Vec<Box<dyn Solver + Send>> {
    let walksat = WalkSat::with_config(WalkSatConfig {
        max_flips: 2_000,
        max_restarts: 2,
        eval_mode,
        ..WalkSatConfig::default()
    });
    vec![
        Box::new(TwoSatSolver::new()),
        Box::new(walksat),
        Box::new(CdclSolver::new()),
    ]
}

impl Portfolio {
    /// Creates the default three-member portfolio (2-SAT, WalkSAT, CDCL).
    pub fn new() -> Self {
        Portfolio::with_members(default_members())
    }

    /// Creates the default portfolio with an explicit evaluation core for
    /// the members that have scalar/packed paths.
    pub fn new_with_eval_mode(eval_mode: EvalMode) -> Self {
        Portfolio::with_members(default_members_with(eval_mode))
    }

    /// Creates a portfolio from an explicit member list (tried in order).
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn with_members(members: Vec<Box<dyn Solver + Send>>) -> Self {
        assert!(!members.is_empty(), "a portfolio needs at least one member");
        Portfolio {
            members,
            stats: SolverStats::default(),
            seed: 0,
        }
    }

    /// Sets the seed from which the per-member seeds of the stochastic
    /// members are derived on every solve.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The name of the member that produced the last definitive answer, if
    /// any. Also surfaced as [`SolverStats::winner`] so downstream stats
    /// consumers can tell the members apart.
    pub fn winner(&self) -> Option<&'static str> {
        self.stats.winner
    }

    /// Names of the member solvers, in dispatch order.
    pub fn member_names(&self) -> Vec<&'static str> {
        self.members.iter().map(|m| m.name()).collect()
    }
}

/// Folds one member's statistics into a portfolio total (shared by the
/// sequential and the thread-racing portfolio, so a new [`SolverStats`]
/// counter only needs to be wired up here).
pub(crate) fn accumulate(total: &mut SolverStats, part: SolverStats) {
    total.decisions += part.decisions;
    total.conflicts += part.conflicts;
    total.propagations += part.propagations;
    total.restarts += part.restarts;
    total.learned_clauses += part.learned_clauses;
    total.assignments_tried += part.assignments_tried;
    total.flips += part.flips;
    total.clauses_exported += part.clauses_exported;
    total.clauses_imported += part.clauses_imported;
}

impl Solver for Portfolio {
    fn solve_limited(&mut self, formula: &CnfFormula, limits: &SearchLimits) -> SolveResult {
        self.stats = SolverStats::default();
        let seed = self.seed;
        for (index, member) in self.members.iter_mut().enumerate() {
            if limits.expired() {
                break;
            }
            // Reseed per solve (not per construction) so the per-request seed
            // of the unified API actually reaches the stochastic members.
            member.reseed(member_seed(seed, index));
            let result = member.solve_limited(formula, limits);
            accumulate(&mut self.stats, member.stats());
            match result {
                SolveResult::Unknown => continue,
                definitive => {
                    self.stats.winner = Some(member.name());
                    return definitive;
                }
            }
        }
        SolveResult::Unknown
    }

    fn stats(&self) -> SolverStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "portfolio"
    }

    fn reseed(&mut self, seed: u64) {
        self.seed = seed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BruteForceSolver, Gsat, Schoening};
    use cnf::cnf_formula;
    use cnf::generators::{self, RandomKSatConfig};

    #[test]
    fn two_sat_member_wins_on_2cnf() {
        let mut portfolio = Portfolio::new();
        assert!(portfolio.solve(&generators::example6_sat()).is_sat());
        assert_eq!(portfolio.winner(), Some("two-sat"));
        assert!(portfolio.solve(&generators::example7_unsat()).is_unsat());
        assert_eq!(portfolio.winner(), Some("two-sat"));
    }

    #[test]
    fn cdcl_backstop_makes_portfolio_complete() {
        let mut portfolio = Portfolio::new();
        let unsat3 = generators::pigeonhole(4, 3);
        assert!(portfolio.solve(&unsat3).is_unsat());
        assert_eq!(portfolio.winner(), Some("cdcl"));
    }

    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        for seed in 0..15u64 {
            let formula =
                generators::random_ksat(&RandomKSatConfig::new(9, 36, 3).with_seed(seed)).unwrap();
            let mut portfolio = Portfolio::new();
            let mut oracle = BruteForceSolver::new();
            assert_eq!(
                portfolio.solve(&formula).is_sat(),
                oracle.solve(&formula).is_sat(),
                "seed {seed}"
            );
            assert!(portfolio.winner().is_some());
        }
    }

    #[test]
    fn custom_member_list() {
        let mut portfolio =
            Portfolio::with_members(vec![Box::new(Schoening::new()), Box::new(Gsat::new())]);
        assert_eq!(portfolio.member_names(), vec!["schoening", "gsat"]);
        // Both members are incomplete, so an UNSAT instance stays Unknown.
        assert_eq!(
            portfolio.solve(&generators::section4_unsat_instance()),
            SolveResult::Unknown
        );
        assert_eq!(portfolio.winner(), None);
        // A satisfiable instance is found by the first member that succeeds.
        assert!(portfolio.solve(&cnf_formula![[1, 2], [2, 3]]).is_sat());
        assert_eq!(portfolio.winner(), Some("schoening"));
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_portfolio_panics() {
        let _ = Portfolio::with_members(Vec::new());
    }

    #[test]
    fn stats_are_accumulated_across_members() {
        let mut portfolio = Portfolio::new();
        let formula = generators::pigeonhole(4, 3);
        let _ = portfolio.solve(&formula);
        // WalkSAT flips plus CDCL decisions should both be visible.
        let stats = portfolio.stats();
        assert!(stats.flips > 0, "walksat member must have run");
        assert!(stats.decisions > 0, "cdcl member must have run");
    }

    #[test]
    fn winning_member_is_reported_in_stats() {
        let mut portfolio = Portfolio::new();
        let _ = portfolio.solve(&generators::example6_sat());
        assert_eq!(portfolio.stats().winner, Some("two-sat"));
        assert_eq!(portfolio.winner(), portfolio.stats().winner);
        assert!(portfolio.stats().to_string().contains("winner=two-sat"));
        let _ = portfolio.solve(&generators::pigeonhole(4, 3));
        assert_eq!(portfolio.stats().winner, Some("cdcl"));
    }

    #[test]
    fn expired_deadline_interrupts_with_unknown() {
        let mut portfolio = Portfolio::new();
        let limits = crate::SearchLimits::deadline_in(std::time::Duration::ZERO);
        assert_eq!(
            portfolio.solve_limited(&generators::pigeonhole(5, 4), &limits),
            SolveResult::Unknown
        );
        assert_eq!(portfolio.winner(), None);
    }

    #[test]
    fn same_seed_solves_identically_different_seed_reaches_members() {
        // Regression for the fixed-config portfolio: the seed must reach the
        // stochastic members on *every* solve, so two solves of the same
        // request are bit-identical (outcome and stats).
        let formula =
            generators::random_ksat(&RandomKSatConfig::new(14, 56, 3).with_seed(11)).unwrap();
        let mut a = Portfolio::new().with_seed(42);
        let mut b = Portfolio::new().with_seed(42);
        let ra = a.solve(&formula);
        let rb = b.solve(&formula);
        assert_eq!(ra, rb);
        assert_eq!(a.stats(), b.stats());
        // Re-solving on the same instance is also stable (the reseed happens
        // per call, not per construction).
        assert_eq!(a.solve(&formula), ra);
        assert_eq!(a.stats(), b.stats());
        // Reseeding the whole portfolio steers the stochastic members.
        let mut c = Portfolio::new().with_seed(43);
        let _ = c.solve(&formula);
        assert!(c.winner().is_some());
    }

    #[test]
    fn member_seed_is_deterministic_and_spread() {
        assert_eq!(member_seed(7, 0), member_seed(7, 0));
        assert_ne!(member_seed(7, 0), member_seed(7, 1));
        assert_ne!(member_seed(7, 0), member_seed(8, 0));
    }

    #[test]
    fn empty_clause_is_unsat_through_the_portfolio() {
        let mut portfolio = Portfolio::new();
        assert!(portfolio.solve(&cnf_formula![[]]).is_unsat());
        assert_eq!(portfolio.winner(), Some("two-sat"));
    }
}
