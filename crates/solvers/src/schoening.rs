//! Schöning's randomized k-SAT algorithm.

use crate::limits::SearchLimits;
use crate::solver::{SolveResult, Solver, SolverStats};
use cnf::{Assignment, BitVector, CnfFormula, EvalMode, PackedFormula};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of [`Schoening`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchoeningConfig {
    /// Number of independent random-restart trials.
    pub max_restarts: u64,
    /// Walk length per trial as a multiple of the variable count
    /// (Schöning's analysis uses 3·n).
    pub walk_length_factor: u64,
    /// PRNG seed; the search is deterministic for a fixed seed.
    pub seed: u64,
    /// Evaluation core: packed (64 variables per word in the unsatisfied
    /// clause scan) or the scalar reference path. Both produce bit-identical
    /// walks.
    pub eval_mode: EvalMode,
}

impl Default for SchoeningConfig {
    fn default() -> Self {
        SchoeningConfig {
            max_restarts: 200,
            walk_length_factor: 3,
            seed: 0,
            eval_mode: EvalMode::default(),
        }
    }
}

/// Schöning's random-walk algorithm for k-SAT: start from a uniformly random
/// assignment and, for `3·n` steps, pick any unsatisfied clause and flip a
/// *uniformly random* variable from it; restart if no model was found.
///
/// For 3-SAT each trial succeeds with probability `(3/4)^n` on satisfiable
/// instances, giving the well-known `O(1.334^n)` expected running time — a
/// useful stochastic baseline to contrast with NBL-SAT's single-operation
/// check. The solver is incomplete: it answers [`SolveResult::Satisfiable`]
/// or [`SolveResult::Unknown`] (`Unsatisfiable` only for the trivial case of
/// a formula containing an empty clause).
///
/// ```
/// use cnf::cnf_formula;
/// use sat_solvers::{Schoening, Solver};
/// let mut solver = Schoening::new();
/// assert!(solver.solve(&cnf_formula![[1, 2], [-1, 2], [1, -2]]).is_sat());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Schoening {
    config: SchoeningConfig,
    stats: SolverStats,
}

impl Schoening {
    /// Creates a solver with default parameters.
    pub fn new() -> Self {
        Schoening::default()
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SchoeningConfig) -> Self {
        Schoening {
            config,
            stats: SolverStats::default(),
        }
    }

    /// The scalar reference walk: clause checks one literal at a time.
    fn solve_scalar(&mut self, formula: &CnfFormula, limits: &SearchLimits) -> SolveResult {
        let n = formula.num_vars();
        let walk_length = (self.config.walk_length_factor.max(1)) * n as u64;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        for _ in 0..self.config.max_restarts.max(1) {
            self.stats.restarts += 1;
            let mut assignment = Assignment::from_bools((0..n).map(|_| rng.gen()).collect());
            self.stats.assignments_tried += 1;
            for _ in 0..walk_length {
                if limits.expired() {
                    return SolveResult::Unknown;
                }
                let unsatisfied = formula.iter().find(|clause| !clause.evaluate(&assignment));
                let Some(clause) = unsatisfied else {
                    return SolveResult::Satisfiable(assignment);
                };
                let lit = clause.literals()[rng.gen_range(0..clause.len())];
                let var = lit.variable();
                assignment.set(var, !assignment.value(var));
                self.stats.flips += 1;
            }
            if formula.evaluate(&assignment) {
                return SolveResult::Satisfiable(assignment);
            }
        }
        SolveResult::Unknown
    }

    /// The packed walk: identical RNG stream, but the first-unsatisfied
    /// clause scan runs word-at-a-time over a [`BitVector`] mirror of the
    /// current assignment.
    fn solve_packed(&mut self, formula: &CnfFormula, limits: &SearchLimits) -> SolveResult {
        let packed = PackedFormula::new(formula);
        let n = formula.num_vars();
        let walk_length = (self.config.walk_length_factor.max(1)) * n as u64;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        for _ in 0..self.config.max_restarts.max(1) {
            self.stats.restarts += 1;
            let mut assignment = Assignment::from_bools((0..n).map(|_| rng.gen()).collect());
            let mut bits = BitVector::from(&assignment);
            self.stats.assignments_tried += 1;
            for _ in 0..walk_length {
                if limits.expired() {
                    return SolveResult::Unknown;
                }
                let Some(c) = packed.first_unsatisfied(&bits) else {
                    debug_assert!(formula.evaluate(&assignment));
                    return SolveResult::Satisfiable(assignment);
                };
                let clause = formula.clause(c).expect("index valid");
                let lit = clause.literals()[rng.gen_range(0..clause.len())];
                let var = lit.variable();
                let flipped = !assignment.value(var);
                assignment.set(var, flipped);
                bits.set(var.index(), flipped);
                self.stats.flips += 1;
            }
            if packed.satisfied(&bits) {
                return SolveResult::Satisfiable(assignment);
            }
        }
        SolveResult::Unknown
    }
}

impl Solver for Schoening {
    fn solve_limited(&mut self, formula: &CnfFormula, limits: &SearchLimits) -> SolveResult {
        self.stats = SolverStats::default();
        // An empty clause can never be satisfied, so even this incomplete
        // solver may answer UNSAT definitively instead of giving up.
        if formula.has_empty_clause() {
            return SolveResult::Unsatisfiable;
        }
        if formula.num_vars() == 0 {
            return SolveResult::Satisfiable(Assignment::from_bools(Vec::new()));
        }
        match self.config.eval_mode {
            EvalMode::Scalar => self.solve_scalar(formula, limits),
            EvalMode::Packed => self.solve_packed(formula, limits),
        }
    }

    fn stats(&self) -> SolverStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "schoening"
    }

    fn reseed(&mut self, seed: u64) {
        self.config.seed = seed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::cnf_formula;
    use cnf::generators::{self, RandomKSatConfig};

    #[test]
    fn solves_worked_examples() {
        let mut solver = Schoening::new();
        for formula in [
            generators::example6_sat(),
            generators::section4_sat_instance(),
            cnf_formula![[1], [2, 3], [-1, 3], [1, -2, -3]],
        ] {
            match solver.solve(&formula) {
                SolveResult::Satisfiable(model) => assert!(formula.evaluate(&model)),
                other => panic!("expected SAT, got {other}"),
            }
        }
    }

    #[test]
    fn unsatisfiable_instances_return_unknown() {
        let mut solver = Schoening::with_config(SchoeningConfig {
            max_restarts: 20,
            ..SchoeningConfig::default()
        });
        assert_eq!(
            solver.solve(&generators::example7_unsat()),
            SolveResult::Unknown
        );
        assert_eq!(
            solver.solve(&generators::section4_unsat_instance()),
            SolveResult::Unknown
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let formula =
            generators::random_ksat(&RandomKSatConfig::new(14, 50, 3).with_seed(5)).unwrap();
        let mut a = Schoening::with_config(SchoeningConfig {
            seed: 9,
            ..SchoeningConfig::default()
        });
        let mut b = Schoening::with_config(SchoeningConfig {
            seed: 9,
            ..SchoeningConfig::default()
        });
        assert_eq!(a.solve(&formula), b.solve(&formula));
        assert_eq!(a.stats().flips, b.stats().flips);
    }

    #[test]
    fn models_from_random_instances_verify() {
        for seed in 0..6u64 {
            let formula =
                generators::random_ksat(&RandomKSatConfig::new(12, 30, 3).with_seed(seed)).unwrap();
            let mut solver = Schoening::new();
            if let SolveResult::Satisfiable(model) = solver.solve(&formula) {
                assert!(formula.evaluate(&model));
            }
        }
    }

    #[test]
    fn trivial_formulas() {
        let mut solver = Schoening::new();
        assert!(solver.solve(&CnfFormula::new(0)).is_sat());
        // Empty clause ⇒ trivially UNSAT, answered definitively.
        let mut with_empty = CnfFormula::new(2);
        with_empty.add_clause([]);
        assert_eq!(solver.solve(&with_empty), SolveResult::Unsatisfiable);
    }

    #[test]
    fn walk_length_scales_with_variable_count() {
        // A contradiction over many variables exhausts exactly
        // max_restarts * walk_length flips (no early exit is possible).
        let formula = cnf_formula![[1], [-1], [2, 3], [4, 5, 6]];
        let mut solver = Schoening::with_config(SchoeningConfig {
            max_restarts: 4,
            walk_length_factor: 3,
            seed: 1,
            eval_mode: EvalMode::default(),
        });
        assert_eq!(solver.solve(&formula), SolveResult::Unknown);
        assert_eq!(solver.stats().flips, 4 * 3 * 6);
        assert_eq!(solver.stats().restarts, 4);
    }
}
