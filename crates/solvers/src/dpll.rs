//! Recursive DPLL solver.

use crate::limits::SearchLimits;
use crate::solver::{SolveResult, Solver, SolverStats};
use cnf::{
    propagate_units, pure_literals, CnfFormula, PartialAssignment, PropagationOutcome, Variable,
};

/// Branching heuristics for the DPLL solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BranchHeuristic {
    /// Branch on the first unassigned variable.
    #[default]
    FirstUnassigned,
    /// Branch on the unassigned variable with the most occurrences in
    /// not-yet-satisfied clauses (a static MOMS-like rule).
    MostOccurrences,
}

/// A classical DPLL (Davis–Putnam–Logemann–Loveland) solver: depth-first
/// search with unit propagation and pure-literal elimination.
///
/// This is the "complete approach" family the paper contrasts NBL-SAT with:
/// variables are assigned one at a time and backtracked on conflict, so the
/// search explores candidate assignments *sequentially* — exactly the
/// restriction the NBL superposition sidesteps.
///
/// ```
/// use cnf::cnf_formula;
/// use sat_solvers::{DpllSolver, Solver};
/// let mut solver = DpllSolver::new();
/// let result = solver.solve(&cnf_formula![[1, 2, 3], [-1, -2], [-2, -3], [2]]);
/// assert!(result.is_sat());
/// ```
#[derive(Debug, Clone, Default)]
pub struct DpllSolver {
    stats: SolverStats,
    heuristic: BranchHeuristic,
    limits: SearchLimits,
    interrupted: bool,
}

impl DpllSolver {
    /// Creates a DPLL solver with the default branching heuristic.
    pub fn new() -> Self {
        DpllSolver::default()
    }

    /// Selects the branching heuristic.
    pub fn with_heuristic(mut self, heuristic: BranchHeuristic) -> Self {
        self.heuristic = heuristic;
        self
    }

    fn choose_variable(
        &self,
        formula: &CnfFormula,
        assignment: &PartialAssignment,
    ) -> Option<Variable> {
        match self.heuristic {
            BranchHeuristic::FirstUnassigned => assignment.first_unassigned(),
            BranchHeuristic::MostOccurrences => {
                let mut counts = vec![0usize; formula.num_vars()];
                for clause in formula.iter() {
                    if clause.evaluate_partial(assignment) == Some(true) {
                        continue;
                    }
                    for lit in clause.iter() {
                        if assignment.value(lit.variable()).is_none() {
                            counts[lit.variable().index()] += 1;
                        }
                    }
                }
                counts
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| assignment.value(Variable::new(i)).is_none())
                    .max_by_key(|&(_, c)| *c)
                    .map(|(i, _)| Variable::new(i))
            }
        }
    }

    fn search(&mut self, formula: &CnfFormula, assignment: &mut PartialAssignment) -> bool {
        // Deadline check: abort the whole search (unwinding as "no model found
        // here"; the top level reports Unknown when `interrupted` is set).
        if self.interrupted || self.limits.expired() {
            self.interrupted = true;
            return false;
        }
        // Unit propagation.
        let before: Vec<Option<bool>> = (0..formula.num_vars())
            .map(|i| assignment.value(Variable::new(i)))
            .collect();
        match propagate_units(formula, assignment) {
            PropagationOutcome::Conflict { .. } => {
                self.stats.conflicts += 1;
                restore(assignment, &before);
                return false;
            }
            PropagationOutcome::Consistent { implied } => {
                self.stats.propagations += implied.len() as u64;
            }
        }
        // Pure literals can be fixed greedily (they never hurt satisfiability).
        for lit in pure_literals(formula, assignment) {
            assignment.assign_literal(lit);
        }
        match formula.evaluate_partial(assignment) {
            Some(true) => return true,
            Some(false) => {
                self.stats.conflicts += 1;
                restore(assignment, &before);
                return false;
            }
            None => {}
        }
        let var = match self.choose_variable(formula, assignment) {
            Some(v) => v,
            None => {
                // All variables assigned yet not decided: evaluate directly.
                let sat = formula.evaluate_partial(assignment) == Some(true);
                if !sat {
                    restore(assignment, &before);
                }
                return sat;
            }
        };
        for value in [true, false] {
            self.stats.decisions += 1;
            assignment.assign(var, value);
            if self.search(formula, assignment) {
                return true;
            }
            assignment.unassign(var);
        }
        restore(assignment, &before);
        false
    }
}

fn restore(assignment: &mut PartialAssignment, snapshot: &[Option<bool>]) {
    for (i, v) in snapshot.iter().enumerate() {
        match v {
            Some(b) => assignment.assign(Variable::new(i), *b),
            None => assignment.unassign(Variable::new(i)),
        }
    }
}

impl Solver for DpllSolver {
    fn solve_limited(&mut self, formula: &CnfFormula, limits: &SearchLimits) -> SolveResult {
        self.stats = SolverStats::default();
        self.limits = limits.clone();
        self.interrupted = false;
        if formula.has_empty_clause() {
            return SolveResult::Unsatisfiable;
        }
        let mut assignment = PartialAssignment::new(formula.num_vars());
        if self.search(formula, &mut assignment) {
            let model = assignment.to_complete(false);
            debug_assert!(formula.evaluate(&model));
            SolveResult::Satisfiable(model)
        } else if self.interrupted {
            SolveResult::Unknown
        } else {
            SolveResult::Unsatisfiable
        }
    }

    fn stats(&self) -> SolverStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "dpll"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceSolver;
    use cnf::cnf_formula;
    use cnf::generators::{self, RandomKSatConfig};

    #[test]
    fn solves_paper_instances() {
        let mut solver = DpllSolver::new();
        assert!(solver.solve(&generators::example6_sat()).is_sat());
        assert!(solver.solve(&generators::example7_unsat()).is_unsat());
        assert!(solver.solve(&generators::section4_sat_instance()).is_sat());
        assert!(solver
            .solve(&generators::section4_unsat_instance())
            .is_unsat());
    }

    #[test]
    fn model_is_always_valid() {
        let f = cnf_formula![[1, 2, 3], [-1, -2], [-1, -3], [-2, -3], [1]];
        let mut solver = DpllSolver::new();
        let result = solver.solve(&f);
        assert!(f.evaluate(result.model().expect("satisfiable")));
    }

    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        for heuristic in [
            BranchHeuristic::FirstUnassigned,
            BranchHeuristic::MostOccurrences,
        ] {
            for seed in 0..30 {
                let cfg = RandomKSatConfig::new(8, 35, 3).with_seed(seed);
                let f = generators::random_ksat(&cfg).unwrap();
                let expected = BruteForceSolver::new().solve(&f).is_sat();
                let mut solver = DpllSolver::new().with_heuristic(heuristic);
                let got = solver.solve(&f);
                assert_eq!(got.is_sat(), expected, "seed {seed} {heuristic:?}");
                if let Some(m) = got.model() {
                    assert!(f.evaluate(m));
                }
            }
        }
    }

    #[test]
    fn unsat_pigeonhole() {
        let f = generators::pigeonhole(4, 3);
        let mut solver = DpllSolver::new().with_heuristic(BranchHeuristic::MostOccurrences);
        assert!(solver.solve(&f).is_unsat());
        assert!(solver.stats().conflicts > 0);
    }

    #[test]
    fn empty_clause_short_circuit() {
        let mut f = cnf::CnfFormula::new(2);
        f.push_clause(cnf::Clause::new());
        assert!(DpllSolver::new().solve(&f).is_unsat());
    }

    #[test]
    fn expired_deadline_interrupts_with_unknown() {
        let f = generators::pigeonhole(6, 5);
        let mut solver = DpllSolver::new();
        let limits = SearchLimits::deadline_in(std::time::Duration::ZERO);
        assert_eq!(solver.solve_limited(&f, &limits), SolveResult::Unknown);
        // Unlimited solve on the same solver still works afterwards.
        assert!(solver.solve(&generators::example6_sat()).is_sat());
    }

    #[test]
    fn stats_are_reset_between_solves() {
        let mut solver = DpllSolver::new();
        let _ = solver.solve(&generators::pigeonhole(3, 2));
        let first = solver.stats();
        let _ = solver.solve(&cnf_formula![[1]]);
        assert!(solver.stats().decisions <= first.decisions);
        assert_eq!(solver.name(), "dpll");
    }
}
