//! Search resource limits shared by every solver.
//!
//! The unified solving API of `nbl-sat-core` hands each backend a resource
//! [`Budget`](https://en.wikipedia.org/wiki/Anytime_algorithm); for the
//! classical solvers in this crate the applicable resources are wall-clock
//! time, expressed here as an absolute deadline so that nested search loops
//! can test it cheaply, and an external *cancellation token* so that a racing
//! meta-solver (the parallel portfolio) can stop losing members the moment a
//! winner answers. Every solver checks [`SearchLimits::expired`] inside its
//! hot loop (per DPLL node, per CDCL conflict/decision, per local-search
//! flip, per enumerated assignment) and aborts with [`SolveResult::Unknown`]
//! once it fires — turning an exponential search into an anytime, cancellable
//! procedure instead of an unbounded one.
//!
//! [`SolveResult::Unknown`]: crate::SolveResult::Unknown

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The latest deadline representable after `now` for budgets so large that
/// `now + wall` overflows [`Instant`].
///
/// `Instant::checked_add` answers `None` on overflow; mapping that to "no
/// deadline" would silently turn an absurdly large but *finite* budget into
/// an unlimited one. This helper instead saturates: it halves the requested
/// duration until the addition fits, so the returned deadline is at least
/// half the platform's representable horizon away — indistinguishable from
/// "never" in practice, but still a real limit that [`SearchLimits::expired`]
/// compares against.
pub fn saturating_deadline_after(now: Instant, wall: Duration) -> Instant {
    if let Some(deadline) = now.checked_add(wall) {
        return deadline;
    }
    let mut wall = wall;
    loop {
        wall /= 2;
        if let Some(deadline) = now.checked_add(wall) {
            return deadline;
        }
    }
}

/// Resource limits for a single [`Solver::solve_limited`] call: an optional
/// absolute wall-clock deadline plus any number of shared cancellation flags.
///
/// The default (and [`SearchLimits::unlimited`]) imposes no limit, which makes
/// [`Solver::solve`] equivalent to the pre-limit behaviour.
///
/// # Cancellation semantics
///
/// A limits value carrying a token installed with [`SearchLimits::with_cancel`]
/// reports [`SearchLimits::expired`] as soon as the flag is raised (store
/// `true`), from any thread. Solvers poll `expired()` in their innermost
/// loops, so a raised flag stops the search within one poll interval — one
/// propagation pass (CDCL), one search node (DPLL), one flip (local search),
/// one enumerated assignment (brute force). The flag is level-triggered and
/// never reset by the solvers; clearing it is the owner's business.
///
/// Tokens *chain*: each [`SearchLimits::with_cancel`] call appends another
/// flag, and the limits count as cancelled once **any** of them is raised.
/// This is how nested cancellation scopes compose — a per-job token from a
/// solve service chained onto a service-wide abort token, with the parallel
/// portfolio chaining its own race flag on top for its members — without any
/// layer having to forward another layer's flag by polling.
///
/// Two limits compare equal when their deadlines are equal and they carry the
/// *same* cancellation tokens ([`Arc::ptr_eq`], in the same chain order),
/// since distinct flags make the limits observably different.
///
/// [`Solver::solve`]: crate::Solver::solve
/// [`Solver::solve_limited`]: crate::Solver::solve_limited
#[derive(Debug, Clone, Default)]
pub struct SearchLimits {
    deadline: Option<Instant>,
    cancel: Vec<Arc<AtomicBool>>,
}

impl PartialEq for SearchLimits {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline
            && self.cancel.len() == other.cancel.len()
            && self
                .cancel
                .iter()
                .zip(&other.cancel)
                .all(|(a, b)| Arc::ptr_eq(a, b))
    }
}

impl SearchLimits {
    /// No limits: the search runs to completion (or to the solver's own
    /// internal restart/flip caps).
    pub fn unlimited() -> Self {
        SearchLimits::default()
    }

    /// Limits the search to the given absolute deadline.
    pub fn with_deadline(deadline: Instant) -> Self {
        SearchLimits {
            deadline: Some(deadline),
            cancel: Vec::new(),
        }
    }

    /// Limits the search to `budget` of wall-clock time from now.
    ///
    /// A budget too large to represent as an absolute deadline (e.g.
    /// [`Duration::MAX`]) saturates to the far-future deadline of
    /// [`saturating_deadline_after`] instead of silently becoming unlimited.
    pub fn deadline_in(budget: Duration) -> Self {
        SearchLimits {
            deadline: Some(saturating_deadline_after(Instant::now(), budget)),
            cancel: Vec::new(),
        }
    }

    /// Chains a shared cancellation token: once any thread stores `true`
    /// into the flag, [`SearchLimits::expired`] answers `true` and every
    /// solver polling these limits aborts with `Unknown` within one poll
    /// interval. Combines with an existing deadline and with previously
    /// attached tokens (whichever fires first wins).
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel.push(cancel);
        self
    }

    /// The absolute deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The first attached cancellation token, if any (the whole chain is
    /// available through [`SearchLimits::cancel_tokens`]).
    pub fn cancel_token(&self) -> Option<&Arc<AtomicBool>> {
        self.cancel.first()
    }

    /// Every cancellation token chained onto these limits, in attachment
    /// order.
    pub fn cancel_tokens(&self) -> &[Arc<AtomicBool>] {
        &self.cancel
    }

    /// Returns `true` once any chained cancellation flag was raised
    /// (regardless of any deadline).
    pub fn cancelled(&self) -> bool {
        self.cancel.iter().any(|flag| flag.load(Ordering::Relaxed))
    }

    /// Returns `true` once the deadline has passed or the cancellation flag
    /// was raised. Solvers call this inside their search loops and abort with
    /// `Unknown` when it fires.
    pub fn expired(&self) -> bool {
        if self.cancelled() {
            return true;
        }
        match self.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let limits = SearchLimits::unlimited();
        assert_eq!(limits.deadline(), None);
        assert!(limits.cancel_token().is_none());
        assert!(!limits.expired());
        assert_eq!(limits, SearchLimits::default());
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let limits = SearchLimits::deadline_in(Duration::ZERO);
        assert!(limits.expired());
        assert!(limits.deadline().is_some());
    }

    #[test]
    fn generous_budget_does_not_expire() {
        let limits = SearchLimits::deadline_in(Duration::from_secs(3600));
        assert!(!limits.expired());
        let explicit = SearchLimits::with_deadline(limits.deadline().unwrap());
        assert_eq!(explicit, limits);
    }

    #[test]
    fn overflowing_budget_saturates_instead_of_unlimiting() {
        // Regression: Duration::MAX used to map to deadline = None, i.e. the
        // caller's huge-but-finite budget silently became *unlimited*.
        let limits = SearchLimits::deadline_in(Duration::MAX);
        let deadline = limits.deadline().expect("deadline must survive overflow");
        assert!(!limits.expired());
        // The saturated deadline is still far in the future (decades at
        // least; half the platform horizon).
        assert!(deadline.duration_since(Instant::now()) > Duration::from_secs(86_400 * 365));
    }

    #[test]
    fn cancellation_flag_trips_expired() {
        let flag = Arc::new(AtomicBool::new(false));
        let limits = SearchLimits::unlimited().with_cancel(Arc::clone(&flag));
        assert!(!limits.expired());
        assert!(!limits.cancelled());
        flag.store(true, Ordering::Relaxed);
        assert!(limits.cancelled());
        assert!(limits.expired());
        // Deadline-free limits with a raised flag are expired even though no
        // deadline exists.
        assert_eq!(limits.deadline(), None);
    }

    #[test]
    fn equality_is_by_deadline_and_token_identity() {
        let flag = Arc::new(AtomicBool::new(false));
        let a = SearchLimits::unlimited().with_cancel(Arc::clone(&flag));
        let b = SearchLimits::unlimited().with_cancel(Arc::clone(&flag));
        let c = SearchLimits::unlimited().with_cancel(Arc::new(AtomicBool::new(false)));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, SearchLimits::unlimited());
    }

    #[test]
    fn chained_tokens_trip_on_any_flag() {
        let job = Arc::new(AtomicBool::new(false));
        let service = Arc::new(AtomicBool::new(false));
        let limits = SearchLimits::unlimited()
            .with_cancel(Arc::clone(&job))
            .with_cancel(Arc::clone(&service));
        assert_eq!(limits.cancel_tokens().len(), 2);
        assert!(Arc::ptr_eq(limits.cancel_token().unwrap(), &job));
        assert!(!limits.cancelled());
        // Raising the *second* link of the chain is enough.
        service.store(true, Ordering::Relaxed);
        assert!(limits.cancelled());
        assert!(limits.expired());
        service.store(false, Ordering::Relaxed);
        job.store(true, Ordering::Relaxed);
        assert!(limits.cancelled());
    }

    #[test]
    fn saturating_deadline_is_monotone() {
        let now = Instant::now();
        let small = saturating_deadline_after(now, Duration::from_secs(5));
        assert_eq!(small, now + Duration::from_secs(5));
        let huge = saturating_deadline_after(now, Duration::MAX);
        assert!(huge > small);
    }
}
